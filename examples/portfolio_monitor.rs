//! Portfolio monitoring (the paper's Q2): a continuous query computing
//! bounds on a weighted portfolio value as interest-rate ticks stream in.
//!
//! ```sh
//! cargo run --release --example portfolio_monitor
//! ```
//!
//! Builds a 60-bond universe, a hot–cold portfolio (a few large positions,
//! many small ones), and processes a stream of rate ticks twice — once
//! with the SUM VAO and once with traditional black-box execution —
//! reporting per-tick answers and work.

use vao_repro::bondlab::{BondPricer, BondUniverse, RateSeries};
use vao_repro::stream::relation::BondRelation;
use vao_repro::stream::{ContinuousQueryEngine, ExecutionMode, Query};
use vao_repro::workloads::HotColdWeights;

fn main() {
    let universe = BondUniverse::generate(60, 1994);
    let relation = BondRelation::from_universe(&universe);
    let pricer = BondPricer::default();

    // 10% of positions carry 90% of the portfolio weight.
    let weights = HotColdWeights::paper_scheme(universe.len(), 0.9, 7);
    let epsilon = universe.len() as f64 * 0.01 * (1.0 + 1e-9); // paper: N * $0.01
    let query = Query::Sum {
        weights: weights.weights().to_vec(),
        epsilon,
    };

    let series = RateSeries::january_1994();
    let ticks = series.intraday_ticks(5, 42);

    println!("portfolio of {} bonds, ε = ${epsilon:.2}", universe.len());
    println!("processing {} rate ticks\n", ticks.len());

    for mode in [ExecutionMode::Vao, ExecutionMode::Traditional] {
        let engine = ContinuousQueryEngine::new(pricer, relation.clone(), query.clone(), mode);
        println!("== {mode:?} execution ==");
        let mut total_work = 0u64;
        let results = engine.run(&ticks).expect("query evaluates");
        for (tick, (out, stats)) in ticks.iter().zip(&results) {
            let bounds = out.bounds().expect("aggregate output");
            println!(
                "  t={:6.1}min rate={:.4}  value ∈ {}  (work {:>12}, {:>5} iterations)",
                tick.minutes,
                stats.rate,
                bounds,
                stats.total_work(),
                stats.iterations
            );
            total_work += stats.total_work();
        }
        println!("  total work: {total_work}\n");
    }

    println!(
        "(the VAO leaves the {} low-weight positions at coarse accuracy; the\n\
         traditional engine prices every bond to $0.01 on every tick)",
        universe.len() - weights.hot_indices().len()
    );
}
