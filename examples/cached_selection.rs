//! Continuous selection with predicate result-range caching (the CASPER
//! integration the paper lists as future work, §2).
//!
//! ```sh
//! cargo run --release --example cached_selection
//! ```
//!
//! Bond prices are monotone in the rate, so every decisive evaluation
//! proves the predicate over a whole rate range. As ticks revisit the same
//! band, more and more predicates are answered without touching the model.

use vao_repro::bondlab::{BondPricer, BondUniverse, RateSeries};
use vao_repro::stream::casper::CachedSelectionEngine;
use vao_repro::stream::relation::BondRelation;
use vao_repro::vao::ops::selection::CmpOp;

fn main() {
    let universe = BondUniverse::generate(40, 1994);
    let relation = BondRelation::from_universe(&universe);
    let mut engine = CachedSelectionEngine::new(BondPricer::default(), relation, CmpOp::Gt, 100.0)
        .expect("valid predicate");

    let series = RateSeries::january_1994();
    let ticks = series.intraday_ticks(12, 42);

    println!(
        "continuous query: price(rate, bond) > $100 over {} bonds\n",
        universe.len()
    );
    println!("tick  rate     selected  cache-hits  misses        work");
    let mut total_work = 0u64;
    for (i, tick) in ticks.iter().enumerate() {
        let (selected, stats) = engine.process_rate(tick.rate).expect("evaluates");
        total_work += stats.work;
        println!(
            "{:>4}  {:.5}  {:>8}  {:>10}  {:>6}  {:>10}",
            i,
            tick.rate,
            selected.len(),
            stats.hits,
            stats.misses,
            stats.work
        );
    }
    println!("\ntotal work across ticks: {total_work}");
    println!(
        "(an uncached engine would pay the first tick's cost on every tick;\n\
         the range cache answers revisited rate bands for free)"
    );
}
