//! Best-performing bond (the paper's Q3): a MAX aggregate over model
//! results, comparing the VAO against the oracle-optimal strategy and the
//! traditional black-box operator.
//!
//! ```sh
//! cargo run --release --example best_bond
//! ```

use vao_repro::bondlab::{BondPricer, BondUniverse, RateSeries};
use vao_repro::vao::cost::WorkMeter;
use vao_repro::vao::ops::minmax::max_vao;
use vao_repro::vao::ops::oracle::oracle_max;
use vao_repro::vao::ops::traditional::{calibrate, traditional_max};
use vao_repro::vao::precision::PrecisionConstraint;

fn main() {
    let universe = BondUniverse::generate(80, 1994);
    let pricer = BondPricer::default();
    let rate = RateSeries::january_1994().opening_rate();
    let eps = PrecisionConstraint::new(0.01).expect("valid epsilon");

    // Off-the-clock calibration: converged values for the oracle and the
    // black-box specs for the traditional operator (§6's methodology).
    let mut off_clock = WorkMeter::new();
    let mut converged = Vec::new();
    let mut specs = Vec::new();
    for &bond in universe.bonds() {
        let mut obj = pricer.price(bond, rate, &mut off_clock);
        let spec = calibrate(&mut obj, &mut off_clock).expect("model converges");
        converged.push(spec.value);
        specs.push(spec);
    }
    let true_argmax = converged
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty");

    let fresh_objects = |meter: &mut WorkMeter| {
        universe
            .bonds()
            .iter()
            .map(|&b| pricer.price(b, rate, meter))
            .collect::<Vec<_>>()
    };

    // Optimal (knows the winner a priori).
    let mut meter = WorkMeter::new();
    let mut objs = fresh_objects(&mut meter);
    let opt = oracle_max(&mut objs, true_argmax, eps, &mut meter).expect("oracle");
    let opt_work = meter.total();

    // The MAX VAO.
    let mut meter = WorkMeter::new();
    let mut objs = fresh_objects(&mut meter);
    let vao = max_vao(&mut objs, eps, &mut meter).expect("max vao");
    let vao_work = meter.total();

    // Traditional black-box.
    let mut meter = WorkMeter::new();
    let (trad_idx, trad_value) = traditional_max(&specs, &mut meter).expect("non-empty");
    let trad_work = meter.total();

    println!(
        "best bond over {} candidates at rate {:.4}\n",
        universe.len(),
        rate
    );
    println!(
        "  Optimal     : bond #{:<3} bounds {}  work {:>12}",
        universe[opt.argext].id, opt.bounds, opt_work
    );
    println!(
        "  MAX VAO     : bond #{:<3} bounds {}  work {:>12}",
        universe[vao.argext].id, vao.bounds, vao_work
    );
    println!(
        "  Traditional : bond #{:<3} value  ${trad_value:.2}          work {trad_work:>12}",
        universe[trad_idx].id
    );

    assert_eq!(opt.argext, vao.argext, "both must agree on the winner");
    assert_eq!(vao.argext, trad_idx);

    println!(
        "\n  VAO overhead over optimal : {:+.1}%",
        (vao_work as f64 / opt_work as f64 - 1.0) * 100.0
    );
    println!(
        "  VAO speedup vs traditional: {:.1}x",
        trad_work as f64 / vao_work as f64
    );
}
