//! A tour of the four solver families of §4, each exposed through the
//! variable-accuracy interface: PDE (bond model), ODE boundary-value
//! problem (beam deflection), numerical integration, and root finding.
//!
//! ```sh
//! cargo run --release --example numerics_tour
//! ```

use vao_repro::numerics::integrate::{QuadratureResultObject, QuadratureRule, QuadratureVaoConfig};
use vao_repro::numerics::ode::{BeamProblem, OdeResultObject, OdeVaoConfig};
use vao_repro::numerics::pde::{PdeResultObject, PdeVaoConfig};
use vao_repro::numerics::roots::{RootResultObject, RootVaoConfig};
use vao_repro::vao::cost::WorkMeter;
use vao_repro::vao::interface::ResultObject;

use vao_repro::bondlab::model::{BondPde, ShortRateModel};
use vao_repro::bondlab::Bond;

fn trace(label: &str, obj: &mut dyn ResultObject, max_iters: usize) {
    let mut meter = WorkMeter::new();
    println!("{label}");
    println!(
        "  start : {} (width {:.3e})",
        obj.bounds(),
        obj.bounds().width()
    );
    for i in 1..=max_iters {
        if obj.converged() {
            break;
        }
        let b = obj.iterate(&mut meter);
        println!(
            "  it {i:2}: {} (width {:.3e}, est next cost {})",
            b,
            b.width(),
            obj.est_cpu()
        );
    }
    println!(
        "  converged: {} | cumulative work {} | standalone-equivalent {}\n",
        obj.converged(),
        obj.cumulative_cost(),
        obj.standalone_cost()
    );
}

fn main() {
    let mut meter = WorkMeter::new();

    // §4.1 — PDE: the Figure-4 bond model.
    let bond = Bond::new(0, 0.07, 29.5, 100.0);
    let mut pde = PdeResultObject::new(
        BondPde::new(bond, ShortRateModel::default(), 0.0583),
        PdeVaoConfig {
            min_width: 0.01,
            ..PdeVaoConfig::default()
        },
        &mut meter,
    )
    .expect("PDE constructs");
    trace(
        "PDE solver — 7% 30-year MBS price, minWidth $0.01",
        &mut pde,
        20,
    );

    // §4.2 — ODE BVP: beam deflection.
    let mut ode = OdeResultObject::new(
        BeamProblem::example(),
        OdeVaoConfig {
            min_width: 1e-8,
            ..OdeVaoConfig::default()
        },
        &mut meter,
    )
    .expect("BVP constructs");
    trace(
        "ODE BVP — beam deflection at midspan (w'' = (S/EI)w + qx(x-l)/2EI)",
        &mut ode,
        20,
    );
    println!(
        "  closed form: {:.10}\n",
        BeamProblem::example().exact(60.0)
    );

    // §4.3 — numerical integration: ∫₀^π sin = 2.
    let mut quad = QuadratureResultObject::new(
        |x: f64| x.sin(),
        0.0,
        std::f64::consts::PI,
        QuadratureVaoConfig {
            rule: QuadratureRule::Trapezoid,
            min_width: 1e-8,
            ..QuadratureVaoConfig::default()
        },
        &mut meter,
    );
    trace(
        "Numerical integration — ∫₀^π sin(x)dx (exact: 2)",
        &mut quad,
        20,
    );

    // §4.4 — root finding: √2 by bisection.
    let mut root = RootResultObject::new(
        |x: f64| x * x - 2.0,
        0.0,
        2.0,
        RootVaoConfig {
            min_width: 1e-6,
            ..RootVaoConfig::default()
        },
        &mut meter,
    )
    .expect("bracket valid");
    trace(
        "Root finding — x² = 2 on [0, 2] (exact: 1.41421356…)",
        &mut root,
        25,
    );
}
