//! Quickstart: price a bond through the variable-accuracy interface and
//! evaluate a selection predicate over it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the core idea of the paper: the first call to the model
//! returns coarse bounds almost for free; a query that only needs to know
//! whether the price clears \$100 stops refining orders of magnitude
//! before full \$0.01 accuracy.

use vao_repro::bondlab::{Bond, BondPricer};
use vao_repro::vao::cost::WorkMeter;
use vao_repro::vao::interface::ResultObject;
use vao_repro::vao::ops::selection::{select, CmpOp};
use vao_repro::vao::ops::traditional::calibrate;

fn main() {
    let pricer = BondPricer::default();
    let bond = Bond::new(0, 0.075, 29.5, 100.0); // 7.5% 30-year MBS
    let rate = 0.0583; // 10-year CMT, Jan 3 1994 open

    // --- The iterative interface -----------------------------------------
    let mut meter = WorkMeter::new();
    let mut obj = pricer.price(bond, rate, &mut meter);
    println!(
        "initial bounds : {} (width {:.2})",
        obj.bounds(),
        obj.bounds().width()
    );
    println!("initial work   : {} mesh cells\n", meter.total());

    // Watch the bounds tighten as iterations are spent.
    for i in 1..=4 {
        let b = obj.iterate(&mut meter);
        println!(
            "after iterate {i}: {} (width {:.4}, cumulative work {})",
            b,
            b.width(),
            meter.total()
        );
    }

    // --- Query-driven refinement ------------------------------------------
    // Q1-style predicate: is this bond worth more than $100?
    let mut sel_meter = WorkMeter::new();
    let mut fresh = pricer.price(bond, rate, &mut sel_meter);
    let outcome = select(&mut fresh, CmpOp::Gt, 100.0, &mut sel_meter).expect("selection");
    println!(
        "\npredicate price > $100: {} after {} iterations ({} work units)",
        outcome.satisfied,
        outcome.iterations,
        sel_meter.total()
    );
    println!("bounds at decision   : {}", outcome.final_bounds);

    // --- The black-box comparison ------------------------------------------
    let mut cal_meter = WorkMeter::new();
    let mut full = pricer.price(bond, rate, &mut cal_meter);
    let spec = calibrate(&mut full, &mut cal_meter).expect("calibration");
    println!(
        "\nfull-accuracy price  : ${:.2} (width {:.4}) at {} work units",
        spec.value,
        spec.final_width,
        cal_meter.total()
    );
    println!(
        "query answered with {:.3}% of the full-accuracy work",
        sel_meter.total() as f64 / cal_meter.total() as f64 * 100.0
    );
}
