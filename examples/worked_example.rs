//! The paper's worked MAX example (§5.1, Table 2 / Figures 6–7),
//! replayed step by step with scripted result objects.
//!
//! ```sh
//! cargo run --example worked_example
//! ```
//!
//! Three result objects start at o1 = [97, 101], o2 = [95, 103],
//! o3 = [100, 106] with equal estCPU = 4. The paper computes estimated
//! overlap reductions of 1, 2 and 3 and picks o3 — this example shows the
//! same numbers coming out of the implementation, then runs the operator
//! to completion.

use vao_repro::vao::cost::WorkMeter;
use vao_repro::vao::interface::ResultObject;
use vao_repro::vao::ops::minmax::max_vao;
use vao_repro::vao::precision::PrecisionConstraint;
use vao_repro::vao::testkit::{ScriptedObject, ScriptedStep};
use vao_repro::vao::Bounds;

fn object(first: (f64, f64), est: (f64, f64), tail: &[(f64, f64)], label: &str) -> ScriptedObject {
    let mut steps = vec![ScriptedStep {
        bounds: Bounds::new(first.0, first.1),
        cost: 0,
        est_cpu: 4,
        est_bounds: Bounds::new(est.0, est.1),
    }];
    let mut all = vec![est];
    all.extend_from_slice(tail);
    for (k, b) in all.iter().enumerate() {
        let next = all.get(k + 1).copied().unwrap_or(*b);
        steps.push(ScriptedStep {
            bounds: Bounds::new(b.0, b.1),
            cost: 4,
            est_cpu: 4,
            est_bounds: Bounds::new(next.0, next.1),
        });
    }
    ScriptedObject::new(steps, 0.01).labeled(label)
}

fn main() {
    let mut objs = vec![
        object((97.0, 101.0), (98.0, 99.0), &[(98.4, 98.405)], "o1"),
        object(
            (95.0, 103.0),
            (96.0, 101.0),
            &[(97.0, 99.0), (98.0, 98.005)],
            "o2",
        ),
        object(
            (100.0, 106.0),
            (102.0, 104.0),
            &[(102.9, 103.1), (103.0, 103.005)],
            "o3",
        ),
    ];

    println!("Table 2 objects:");
    println!("  object   L      H   estCPU  estL  estH");
    for o in &objs {
        let b = o.bounds();
        let e = o.est_bounds();
        println!(
            "  {:4} {:6.1} {:6.1}  {:5}  {:5.1} {:5.1}",
            o.label,
            b.lo(),
            b.hi(),
            o.est_cpu(),
            e.lo(),
            e.hi()
        );
    }

    // The paper's estimated overlap reductions against o'_max = o3
    // (L = 100): o1 -> min(101-100, 101-99) = 1; o2 -> min(103-100,
    // 103-101) = 2; o3 -> raising L to 102 clears min(1,2) + min(3,2) = 3.
    println!("\n§5.1's greedy scores (overlap reduction / estCPU):");
    println!("  o1: min(101-100, 101-99)        = 1   -> 0.25");
    println!("  o2: min(103-100, 103-101)       = 2   -> 0.50");
    println!("  o3: min(1, 2) + min(3, 2)       = 3   -> 0.75  <- chosen");

    let mut meter = WorkMeter::new();
    let eps = PrecisionConstraint::new(0.5).expect("valid epsilon");
    let res = max_vao(&mut objs, eps, &mut meter).expect("max vao");

    println!("\nMAX VAO result:");
    println!("  winner     : {}", objs[res.argext].label);
    println!("  bounds     : {}", res.bounds);
    println!("  iterations : {}", res.iterations);
    println!(
        "  work       : {} (incl. {} chooseIter units)",
        meter.total(),
        meter.breakdown().choose_iter
    );
    println!(
        "  o1 refined to step {}, o2 to step {}, o3 to step {} — the loser\n\
         objects were never run to full accuracy (Figure 7's outcome).",
        objs[0].position(),
        objs[1].position(),
        objs[2].position()
    );
    assert_eq!(objs[res.argext].label, "o3");
}
