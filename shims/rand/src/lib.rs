//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `rand` crate cannot be downloaded. This shim re-implements, with no
//! dependencies beyond `std`, exactly the API subset the workspace uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — a deterministic
//!   seeded generator (xoshiro256** seeded via splitmix64);
//! * [`Rng::gen`] for `f64`/`u64`/`bool`, [`Rng::gen_range`] over integer
//!   and float ranges, [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! The generated *streams* differ from upstream `rand` (no compatibility is
//! claimed), but every consumer in this workspace only relies on
//! per-seed determinism and reasonable uniformity, both of which hold.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::ops::Range;

/// A source of uniformly random values (the subset of upstream's `Rng`
/// used by this workspace).
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their
    /// domain, `bool` fair coin).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a standard distribution [`Rng::gen`] can sample from.
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift keeps the modulo bias negligible for the
                // span sizes this workspace uses.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Seedable generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via splitmix64. Not the upstream `StdRng` algorithm, but a
    /// high-quality generator with the same interface.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random sequence operations.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (the subset of upstream's `SliceRandom` used here).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-3..3i64);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_endpoints() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(-0.0015..0.0015);
            assert!((-0.0015..0.0015).contains(&v));
        }
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(5));
        b.shuffle(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(a, sorted, "20 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
