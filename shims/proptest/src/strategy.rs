//! Value-generation strategies: numeric ranges, tuples, mapped strategies
//! and collections.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (*self.start() as i128 + hi) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// An inclusive length range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// The strategy produced by [`collection_vec`].
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u128 + 1;
        let n = self.size.lo + (((rng.next_u64() as u128 * span) >> 64) as usize);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy generating `Vec`s of `element` values with a length drawn
/// from `size` (exposed as `prop::collection::vec`).
pub fn collection_vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (5u64..=9).sample(&mut rng);
            assert!((5..=9).contains(&i));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (0.0f64..1.0, 1usize..4).prop_map(|(x, n)| vec![x; n]);
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let strat = collection_vec(0u64..10, 2..=5);
        let mut rng = TestRng::new(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..=5).contains(&v.len()));
            seen.insert(v.len());
        }
        assert_eq!(seen.len(), 4, "all sizes 2..=5 should appear");
    }

    #[test]
    fn just_yields_its_value() {
        let mut rng = TestRng::new(4);
        assert_eq!(Just(41).sample(&mut rng), 41);
    }
}
