//! Offline stand-in for the crates.io `proptest` crate.
//!
//! This workspace's build environment has no network access, so the real
//! `proptest` cannot be downloaded. This shim re-implements the subset its
//! property tests rely on, with no dependencies beyond `std`:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * [`Strategy`](strategy::Strategy) with `prop_map`, implemented for numeric ranges and
//!   tuples up to arity 8;
//! * [`prop::collection::vec`] with `Range`/`RangeInclusive` size ranges;
//! * [`arbitrary::any`] (via `any::<T>()` in the prelude);
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Differences from upstream: cases are drawn from a seed derived
//! deterministically from the test name (fully reproducible, every run),
//! failures report the generated input but are **not shrunk**, and
//! `proptest-regressions` files are ignored.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Strategy constructors namespaced like upstream's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::collection_vec as vec;
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// A strategy producing arbitrary values of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests.
///
/// Supported grammar (the subset of upstream's used by this workspace):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///
///     #[test]
///     fn my_property(x in 0.0f64..1.0, (a, b) in pair_strategy()) {
///         prop_assert!(x >= 0.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let strategy = ($($strat,)+);
            runner.run(stringify!($name), &strategy, |($($pat,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Fails the current test case (without panicking the generator loop)
/// when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`", lhs, rhs),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?} == {:?}`: {}",
                    lhs,
                    rhs,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Rejects (skips) the current test case when the assumption is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}
