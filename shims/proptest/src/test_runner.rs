//! The case-generation loop: configuration, RNG, and failure reporting.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::strategy::Strategy;

/// Runner configuration (the subset of upstream's used here).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many accepted cases each property must pass.
    pub cases: u32,
    /// How many rejected cases ([`crate::prop_assume!`]) are tolerated
    /// before the runner gives up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A default configuration overridden to run `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case is invalid for this property and should be skipped.
    Reject(String),
    /// The property is violated.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        Self::Fail(message.into())
    }

    /// A rejection with the given message.
    #[must_use]
    pub fn reject(message: impl Into<String>) -> Self {
        Self::Reject(message.into())
    }
}

/// The deterministic generator strategies draw from.
///
/// Internally xoshiro256** seeded via splitmix64, like the workspace's
/// `rand` shim.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds the generator deterministically from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw from `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drives one property: draws cases from a strategy and applies the body.
#[derive(Clone, Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given configuration.
    #[must_use]
    pub fn new(config: ProptestConfig) -> Self {
        Self { config }
    }

    /// Runs `body` against `config.cases` accepted draws from `strategy`.
    ///
    /// The RNG seed is derived from `name`, so every run of a given test
    /// replays the same cases (there is no `proptest-regressions`
    /// persistence and no shrinking).
    ///
    /// # Panics
    ///
    /// Panics when `body` returns [`TestCaseError::Fail`] (reporting the
    /// generated input) or when the reject budget is exhausted.
    pub fn run<S, F>(&mut self, name: &str, strategy: &S, body: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        let mut rng = TestRng::new(hasher.finish());

        let mut accepted = 0u32;
        let mut rejects = 0u32;
        while accepted < self.config.cases {
            let value = strategy.sample(&mut rng);
            let rendered = format!("{value:?}");
            match body(value) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    assert!(
                        rejects <= self.config.max_global_rejects,
                        "property `{name}` exceeded {} rejected cases \
                         (last rejection: {why})",
                        self.config.max_global_rejects,
                    );
                }
                Err(TestCaseError::Fail(why)) => {
                    panic!(
                        "property `{name}` failed after {accepted} passing \
                         case(s)\n  input: {rendered}\n  {why}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_accepts_passing_property() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
        runner.run("always_in_range", &(0u64..10,), |(x,)| {
            assert!(x < 10);
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn runner_panics_on_failure() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
        runner.run("always_fails", &(0u64..10,), |(_x,)| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    #[should_panic(expected = "rejected cases")]
    fn runner_panics_when_reject_budget_exhausted() {
        let mut runner = TestRunner::new(ProptestConfig {
            cases: 4,
            max_global_rejects: 16,
        });
        runner.run("always_rejects", &(0u64..10,), |(_x,)| {
            Err(TestCaseError::reject("assume failed"))
        });
    }

    #[test]
    fn seeds_are_per_test_name_and_stable() {
        let mut a = {
            let mut h = DefaultHasher::new();
            "foo".hash(&mut h);
            TestRng::new(h.finish())
        };
        let mut b = {
            let mut h = DefaultHasher::new();
            "foo".hash(&mut h);
            TestRng::new(h.finish())
        };
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
