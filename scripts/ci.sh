#!/usr/bin/env bash
# Tier-1 gate for the VAO repro workspace. Runs entirely offline: every
# dependency is either vendored under shims/ or part of the Rust toolchain.
#
#   ./scripts/ci.sh
#
# Seven stages, all mandatory:
#   1. cargo fmt --check        -- formatting drift fails the gate
#   2. cargo clippy -D warnings -- lints are errors, across all targets
#   3. cargo test -q            -- the full workspace test suite
#   4. cargo test -p va-server  -- the server crate's own suite, explicitly,
#                                  plus the batched-scheduler determinism and
#                                  empty-relation tests by name (golden serial
#                                  equivalence must never be filtered out)
#   5. va-server --smoke        -- loopback TCP exchange of the line protocol,
#                                  serial and again with --workers 4
#   6. cargo doc -D warnings    -- rustdoc must build clean
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo test -q (workspace)"
cargo test --workspace -q

echo "==> cargo test -p va-server -q"
cargo test -p va-server -q

echo "==> batched-scheduler determinism + empty-relation tests"
cargo test -q -p va-server --test parallel_determinism
cargo test -q -p va-server --lib demand::tests::empty_pool_yields_typed_errors_not_panics

echo "==> va-server loopback smoke (subscribe -> tick -> result -> quit)"
cargo run -q -p va-server -- --smoke --bonds 24 --seed 42

echo "==> va-server loopback smoke with a 4-worker batched scheduler"
cargo run -q -p va-server -- --smoke --bonds 24 --seed 42 --workers 4

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> tier-1 gate passed"
