#!/usr/bin/env bash
# Tier-1 gate for the VAO repro workspace. Runs entirely offline: every
# dependency is either vendored under shims/ or part of the Rust toolchain.
#
#   ./scripts/ci.sh
#
# Fourteen stages, all mandatory:
#   1. cargo fmt --check        -- formatting drift fails the gate
#   2. cargo clippy -D warnings -- lints are errors, across all targets
#   3. cargo test -q            -- the full workspace test suite
#   4. cargo test -p va-server  -- the server crate's own suite, explicitly,
#                                  plus the batched-scheduler determinism,
#                                  crash-recovery and empty-relation tests by
#                                  name (golden serial equivalence must never
#                                  be filtered out)
#   5. va-server --smoke        -- loopback TCP exchange of the line protocol,
#                                  serial and again with --workers 4
#   6. kill-and-recover smoke   -- start a --data-dir server, subscribe and
#                                  tick over TCP, SIGKILL it, restart on the
#                                  same dir, RESUME the session and tick again
#   6b. calibration gate        -- the cost-calibration tests by name, then
#                                  the calibration-scaling harness target
#                                  (which asserts a strict admission-error
#                                  improvement and off-mode bit-identity)
#   6c. calibrated recovery     -- stage 6 again with --calibrate on: the
#                                  STATS calibration counters must be
#                                  bit-identical across the SIGKILL before
#                                  any post-restart tick
#   7. sketch-query smoke       -- SUBSCRIBE PERCENTILE and HEAVYHITTERS over
#                                  TCP, tick, SIGKILL, restart on the same
#                                  dir, RESUME both sessions and tick again
#                                  (the sketch summaries are derived state and
#                                  must rebuild from the journal alone)
#   8. compaction smoke         -- long run with --snapshot-every 4, SIGKILL,
#                                  assert the data dir holds only the tail
#                                  segments and two snapshots, then restart
#                                  and RESUME as in stage 6
#   9. connection-churn soak   -- 20 clients subscribe/tick across the run
#                                  while every fourth is SIGKILLed
#                                  mid-connection and a wedged client parks
#                                  on an open socket the whole time; then
#                                  SIGKILL the server mid-churn, restart,
#                                  and assert the RESUMEd session line is
#                                  bit-identical before and after the crash
#  10. multi-relation tenancy   -- CREATE_RELATION/DROP_RELATION/USE over
#                                  TCP on a --catalog dir, TICK_MULTI across
#                                  two relations, SIGKILL, restart with *no*
#                                  relation flags (the dir is
#                                  self-describing), RESUME both tenants and
#                                  assert the dropped relation stayed dropped
#  11. batched-solver smoke    -- the SoA lane solver must produce answers
#                                  bit-identical to the scalar executor on a
#                                  small universe (numerics kernel identity +
#                                  server dispatch identity, by name)
#  12. cargo doc -D warnings    -- rustdoc must build clean
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo test -q (workspace)"
cargo test --workspace -q

echo "==> cargo test -p va-server -q"
cargo test -p va-server -q

echo "==> batched-scheduler determinism + crash-recovery + empty-relation tests"
cargo test -q -p va-server --test parallel_determinism
cargo test -q -p va-server --test recovery
cargo test -q -p va-server --test compaction
cargo test -q -p va-server --lib demand::tests::empty_pool_yields_typed_errors_not_panics

echo "==> va-server loopback smoke (subscribe -> tick -> result -> quit)"
cargo run -q -p va-server -- --smoke --bonds 24 --seed 42

echo "==> va-server loopback smoke with a 4-worker batched scheduler"
cargo run -q -p va-server -- --smoke --bonds 24 --seed 42 --workers 4

echo "==> va-server kill-and-recover smoke (SIGKILL mid-stream, RESUME after restart)"
cargo build -q -p va-server
VA_SERVER=target/debug/va-server
DATA_DIR=$(mktemp -d)
SRV_LOG=$(mktemp)
cleanup() { kill -9 "${SRV_PID:-0}" 2>/dev/null || true; rm -rf "$DATA_DIR" "$SRV_LOG"; }
trap cleanup EXIT

"$VA_SERVER" --addr 127.0.0.1:0 --bonds 24 --seed 42 --data-dir "$DATA_DIR" >"$SRV_LOG" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^va-server listening on \([0-9.:]*\) .*/\1/p' "$SRV_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never printed its address"; cat "$SRV_LOG"; exit 1; }

# Subscribe and tick, then let the client hang up (no QUIT: the journal,
# not a clean shutdown, must carry the state across the kill).
PRE=$(printf '%s\n%s\n' \
  '{"type":"SUBSCRIBE","query":{"kind":"max","epsilon":0.5},"priority":2}' \
  '{"type":"TICK","rate":0.0583}' \
  | "$VA_SERVER" --client "$ADDR")
echo "$PRE" | grep -q '"type":"SUBSCRIBED"' || { echo "no SUBSCRIBED: $PRE"; exit 1; }
echo "$PRE" | grep -q '"type":"RESULT"'     || { echo "no RESULT: $PRE"; exit 1; }

kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true

"$VA_SERVER" --addr 127.0.0.1:0 --bonds 24 --seed 42 --data-dir "$DATA_DIR" >"$SRV_LOG" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^va-server listening on \([0-9.:]*\) .*/\1/p' "$SRV_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "restarted server never printed its address"; cat "$SRV_LOG"; exit 1; }

POST=$(printf '%s\n%s\n%s\n' \
  '{"type":"RESUME","session":1}' \
  '{"type":"TICK","rate":0.0584}' \
  '{"type":"QUIT"}' \
  | "$VA_SERVER" --client "$ADDR")
echo "$POST" | grep -q '"type":"RESUMED"' || { echo "no RESUMED: $POST"; exit 1; }
echo "$POST" | grep -q '"session":1'      || { echo "wrong session: $POST"; exit 1; }
echo "$POST" | grep -q '"type":"RESULT"'  || { echo "no post-recovery RESULT: $POST"; exit 1; }
grep -q "recovered from" "$SRV_LOG"       || { echo "no recovery line"; cat "$SRV_LOG"; exit 1; }

kill -9 "$SRV_PID" 2>/dev/null || true
wait "$SRV_PID" 2>/dev/null || true
cleanup
trap - EXIT
echo "    kill-and-recover smoke ok (session resumed across SIGKILL)"

echo "==> cost-calibration tests + harness (strict admission-error improvement)"
cargo test -q -p vao --lib cost::
cargo test -q -p va-persist --test calibration_roundtrip
cargo test -q -p va-server --test calibration
cargo test -q -p va-server --lib server::tests::poisoned_downward_calibration_never_frees_admission_for_warm_pools
CAL_OUT=$(mktemp -d)
cargo run -q -p va-bench --bin harness -- --bonds 24 --seed 7 --out "$CAL_OUT" calibration-scaling
[ -s "$CAL_OUT/calibration.csv" ] || { echo "harness wrote no calibration.csv"; ls "$CAL_OUT"; exit 1; }
rm -rf "$CAL_OUT"

echo "==> va-server calibrated kill-and-recover smoke (--calibrate on, model survives SIGKILL)"
DATA_DIR=$(mktemp -d)
SRV_LOG=$(mktemp)
trap cleanup EXIT

"$VA_SERVER" --addr 127.0.0.1:0 --bonds 24 --seed 42 --budget 9000 --calibrate on --data-dir "$DATA_DIR" >"$SRV_LOG" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^va-server listening on \([0-9.:]*\) .*/\1/p' "$SRV_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never printed its address"; cat "$SRV_LOG"; exit 1; }

# Two ticks warm the cost model; STATS exports its counters. Hang up
# without QUIT so only the journal carries the model across the kill.
PRE=$(printf '%s\n%s\n%s\n%s\n' \
  '{"type":"SUBSCRIBE","query":{"kind":"max","epsilon":0.5},"priority":2}' \
  '{"type":"TICK","rate":0.0583}' \
  '{"type":"TICK","rate":0.0601}' \
  '{"type":"STATS"}' \
  | "$VA_SERVER" --client "$ADDR")
echo "$PRE" | grep -q '"type":"RESULT"' || { echo "no RESULT: $PRE"; exit 1; }
PRE_CAL=$(echo "$PRE" | sed -n 's/.*"calibration":{\([^}]*\)}.*/\1/p')
[ -n "$PRE_CAL" ] || { echo "no calibration object in STATS: $PRE"; exit 1; }
if echo "$PRE_CAL" | grep -q '"observations":0,'; then
  echo "calibrated ticks left the model cold: $PRE_CAL"; exit 1
fi

kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true

"$VA_SERVER" --addr 127.0.0.1:0 --bonds 24 --seed 42 --budget 9000 --calibrate on --data-dir "$DATA_DIR" >"$SRV_LOG" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^va-server listening on \([0-9.:]*\) .*/\1/p' "$SRV_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "restarted server never printed its address"; cat "$SRV_LOG"; exit 1; }

# STATS *before* any post-restart tick: the counters must come from the
# journal, bit-identical to the pre-kill model, and the session resumes.
POST=$(printf '%s\n%s\n%s\n%s\n' \
  '{"type":"STATS"}' \
  '{"type":"RESUME","session":1}' \
  '{"type":"TICK","rate":0.0584}' \
  '{"type":"QUIT"}' \
  | "$VA_SERVER" --client "$ADDR")
POST_CAL=$(echo "$POST" | sed -n 's/.*"calibration":{\([^}]*\)}.*/\1/p')
[ "$PRE_CAL" = "$POST_CAL" ] || {
  echo "calibration state diverged across SIGKILL:"
  echo "  pre:  $PRE_CAL"
  echo "  post: $POST_CAL"
  exit 1
}
echo "$POST" | grep -q '"type":"RESUMED"' || { echo "no RESUMED: $POST"; exit 1; }
echo "$POST" | grep -q '"type":"RESULT"'  || { echo "no post-recovery RESULT: $POST"; exit 1; }
grep -q "recovered from" "$SRV_LOG"       || { echo "no recovery line"; cat "$SRV_LOG"; exit 1; }

kill -9 "$SRV_PID" 2>/dev/null || true
wait "$SRV_PID" 2>/dev/null || true
cleanup
trap - EXIT
echo "    calibrated kill-and-recover smoke ok (cost model bit-identical across SIGKILL)"

echo "==> va-server sketch-query smoke (PERCENTILE + HEAVYHITTERS across SIGKILL)"
DATA_DIR=$(mktemp -d)
SRV_LOG=$(mktemp)
trap cleanup EXIT

"$VA_SERVER" --addr 127.0.0.1:0 --bonds 24 --seed 42 --data-dir "$DATA_DIR" >"$SRV_LOG" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^va-server listening on \([0-9.:]*\) .*/\1/p' "$SRV_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never printed its address"; cat "$SRV_LOG"; exit 1; }

# Subscribe the sketch-guided family and tick, then hang up without QUIT:
# the sketches themselves are derived state and must never need the journal.
PRE=$(printf '%s\n%s\n%s\n' \
  '{"type":"SUBSCRIBE","query":{"kind":"percentile","phi":0.5,"epsilon":0.5},"priority":2}' \
  '{"type":"SUBSCRIBE","query":{"kind":"heavyhitters","k":3,"epsilon":1.0},"priority":1}' \
  '{"type":"TICK","rate":0.0583}' \
  | "$VA_SERVER" --client "$ADDR")
echo "$PRE" | grep -q '"type":"SUBSCRIBED"'  || { echo "no SUBSCRIBED: $PRE"; exit 1; }
echo "$PRE" | grep -q '"shape":"aggregate"'  || { echo "no percentile RESULT: $PRE"; exit 1; }
echo "$PRE" | grep -q '"shape":"heavy"'      || { echo "no heavyhitters RESULT: $PRE"; exit 1; }

kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true

"$VA_SERVER" --addr 127.0.0.1:0 --bonds 24 --seed 42 --data-dir "$DATA_DIR" >"$SRV_LOG" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^va-server listening on \([0-9.:]*\) .*/\1/p' "$SRV_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "restarted server never printed its address"; cat "$SRV_LOG"; exit 1; }

POST=$(printf '%s\n%s\n%s\n%s\n' \
  '{"type":"RESUME","session":1}' \
  '{"type":"RESUME","session":2}' \
  '{"type":"TICK","rate":0.0584}' \
  '{"type":"QUIT"}' \
  | "$VA_SERVER" --client "$ADDR")
echo "$POST" | grep -q '"type":"RESUMED"'         || { echo "no RESUMED: $POST"; exit 1; }
echo "$POST" | grep -q '"operator":"percentile"'  || { echo "percentile session lost: $POST"; exit 1; }
echo "$POST" | grep -q '"operator":"heavyhitters"' || { echo "heavyhitters session lost: $POST"; exit 1; }
echo "$POST" | grep -q '"shape":"aggregate"'      || { echo "no post-recovery percentile RESULT: $POST"; exit 1; }
echo "$POST" | grep -q '"shape":"heavy"'          || { echo "no post-recovery heavyhitters RESULT: $POST"; exit 1; }
grep -q "recovered from" "$SRV_LOG"               || { echo "no recovery line"; cat "$SRV_LOG"; exit 1; }

kill -9 "$SRV_PID" 2>/dev/null || true
wait "$SRV_PID" 2>/dev/null || true
cleanup
trap - EXIT
echo "    sketch-query smoke ok (percentile + heavyhitters resumed across SIGKILL)"

echo "==> va-server compaction smoke (--snapshot-every 4, bounded dir across SIGKILL)"
DATA_DIR=$(mktemp -d)
SRV_LOG=$(mktemp)
trap cleanup EXIT

"$VA_SERVER" --addr 127.0.0.1:0 --bonds 24 --seed 42 --data-dir "$DATA_DIR" --snapshot-every 4 >"$SRV_LOG" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^va-server listening on \([0-9.:]*\) .*/\1/p' "$SRV_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never printed its address"; cat "$SRV_LOG"; exit 1; }

# Subscribe and run well past 20x the snapshot cadence in journal events,
# then hang up without QUIT: the dir must already be compacted when the
# SIGKILL lands.
LONG=$( { printf '%s\n' '{"type":"SUBSCRIBE","query":{"kind":"max","epsilon":0.5},"priority":2}';
          for i in $(seq 1 12); do printf '{"type":"TICK","rate":0.058%d}\n' $((i % 10)); done; } \
  | "$VA_SERVER" --client "$ADDR")
echo "$LONG" | grep -q '"type":"SUBSCRIBED"' || { echo "no SUBSCRIBED: $LONG"; exit 1; }
echo "$LONG" | grep -q '"type":"RESULT"'     || { echo "no RESULT: $LONG"; exit 1; }

kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true

SEGMENTS=$(find "$DATA_DIR" -name 'journal-*.jsonl' | wc -l)
SNAPSHOTS=$(find "$DATA_DIR" -name 'snapshot-*.json' | wc -l)
[ "$SEGMENTS" -le 3 ] || { echo "journal not compacted: $SEGMENTS segments"; ls "$DATA_DIR"; exit 1; }
[ "$SNAPSHOTS" -le 2 ] || { echo "snapshots not pruned: $SNAPSHOTS files"; ls "$DATA_DIR"; exit 1; }
[ ! -e "$DATA_DIR/journal.jsonl" ] || { echo "legacy journal.jsonl present"; ls "$DATA_DIR"; exit 1; }
[ ! -e "$DATA_DIR/journal-1.jsonl" ] || { echo "segment 1 never compacted away"; ls "$DATA_DIR"; exit 1; }

"$VA_SERVER" --addr 127.0.0.1:0 --bonds 24 --seed 42 --data-dir "$DATA_DIR" --snapshot-every 4 >"$SRV_LOG" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^va-server listening on \([0-9.:]*\) .*/\1/p' "$SRV_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "restarted server never printed its address"; cat "$SRV_LOG"; exit 1; }

POST=$(printf '%s\n%s\n%s\n' \
  '{"type":"RESUME","session":1}' \
  '{"type":"TICK","rate":0.0584}' \
  '{"type":"QUIT"}' \
  | "$VA_SERVER" --client "$ADDR")
echo "$POST" | grep -q '"type":"RESUMED"' || { echo "no RESUMED: $POST"; exit 1; }
echo "$POST" | grep -q '"type":"RESULT"'  || { echo "no post-recovery RESULT: $POST"; exit 1; }
grep -q "recovered from" "$SRV_LOG"       || { echo "no recovery line"; cat "$SRV_LOG"; exit 1; }

kill -9 "$SRV_PID" 2>/dev/null || true
wait "$SRV_PID" 2>/dev/null || true
cleanup
trap - EXIT
echo "    compaction smoke ok (bounded data dir, session resumed across SIGKILL)"

echo "==> va-server connection-churn soak (20 clients, rude kills, SIGKILL mid-churn)"
DATA_DIR=$(mktemp -d)
SRV_LOG=$(mktemp)
WEDGE_PID=0
KILLED=""
cleanup_churn() {
  kill -9 "${SRV_PID:-0}" "${WEDGE_PID:-0}" $KILLED 2>/dev/null || true
  rm -rf "$DATA_DIR" "$SRV_LOG"
}
trap cleanup_churn EXIT

"$VA_SERVER" --addr 127.0.0.1:0 --bonds 24 --seed 42 --data-dir "$DATA_DIR" >"$SRV_LOG" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^va-server listening on \([0-9.:]*\) .*/\1/p' "$SRV_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never printed its address"; cat "$SRV_LOG"; exit 1; }

# Session 1 is the one resumed across the crash; its owner hangs up rudely.
SETUP=$(printf '%s\n%s\n' \
  '{"type":"SUBSCRIBE","query":{"kind":"max","epsilon":0.5},"priority":2}' \
  '{"type":"TICK","rate":0.0583}' \
  | "$VA_SERVER" --client "$ADDR")
echo "$SETUP" | grep -q '"type":"SUBSCRIBED"' || { echo "no SUBSCRIBED: $SETUP"; exit 1; }
echo "$SETUP" | grep -q '"type":"RESULT"'     || { echo "no RESULT: $SETUP"; exit 1; }

# A wedge client parks on an open connection for the whole soak: it must
# neither stall the churn below nor interfere with the crash recovery.
sleep 30 | "$VA_SERVER" --client "$ADDR" >/dev/null 2>&1 &
WEDGE_PID=$!

# Twenty churn clients; every fourth is killed -9 mid-connection (after its
# SUBSCRIBE is in flight, before it finishes), the rest subscribe, tick once
# and hang up without QUIT.
for i in $(seq 1 20); do
  if [ $((i % 4)) -eq 0 ]; then
    { printf '{"type":"SUBSCRIBE","query":{"kind":"ave","epsilon":0.5}}\n'; sleep 10; } \
      | "$VA_SERVER" --client "$ADDR" >/dev/null 2>&1 &
    KILLED="$KILLED $!"
  else
    OUT=$(printf '{"type":"SUBSCRIBE","query":{"kind":"ave","epsilon":0.5}}\n{"type":"TICK","rate":0.058%d}\n' $((i % 10)) \
      | "$VA_SERVER" --client "$ADDR")
    echo "$OUT" | grep -q '"type":"SUBSCRIBED"' || { echo "churn client $i: $OUT"; exit 1; }
    echo "$OUT" | grep -q '"type":"TICK_DONE"'  || { echo "churn client $i lost its tick: $OUT"; exit 1; }
  fi
done
for pid in $KILLED; do kill -9 "$pid" 2>/dev/null || true; done

# What session 1 looks like just before the crash...
PRE=$(printf '{"type":"RESUME","session":1}\n' | "$VA_SERVER" --client "$ADDR")
PRE_LINE=$(echo "$PRE" | grep '"type":"RESUMED"') || { echo "no pre-kill RESUMED: $PRE"; exit 1; }

# ...SIGKILL mid-churn, with the wedge still parked on its connection...
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
kill -9 "$WEDGE_PID" 2>/dev/null || true

"$VA_SERVER" --addr 127.0.0.1:0 --bonds 24 --seed 42 --data-dir "$DATA_DIR" >"$SRV_LOG" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^va-server listening on \([0-9.:]*\) .*/\1/p' "$SRV_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "restarted server never printed its address"; cat "$SRV_LOG"; exit 1; }

# ...and after recovery the same RESUME must produce the same bytes.
POST=$(printf '{"type":"RESUME","session":1}\n{"type":"QUIT"}\n' | "$VA_SERVER" --client "$ADDR")
POST_LINE=$(echo "$POST" | grep '"type":"RESUMED"') || { echo "no post-kill RESUMED: $POST"; exit 1; }
[ "$PRE_LINE" = "$POST_LINE" ] || {
  echo "recovery diverged:"
  echo "  pre:  $PRE_LINE"
  echo "  post: $POST_LINE"
  exit 1
}
grep -q "recovered from" "$SRV_LOG" || { echo "no recovery line"; cat "$SRV_LOG"; exit 1; }

kill -9 "$SRV_PID" 2>/dev/null || true
wait "$SRV_PID" 2>/dev/null || true
cleanup_churn
trap - EXIT
echo "    connection-churn soak ok (20-client churn + wedge survived, RESUME bit-identical across SIGKILL)"

echo "==> va-server multi-relation tenancy smoke (catalog dir, TICK_MULTI, SIGKILL, flagless restart)"
DATA_DIR=$(mktemp -d)
SRV_LOG=$(mktemp)
trap cleanup EXIT

"$VA_SERVER" --addr 127.0.0.1:0 --catalog --data-dir "$DATA_DIR" >"$SRV_LOG" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^va-server listening on \([0-9.:]*\) .*/\1/p' "$SRV_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never printed its address"; cat "$SRV_LOG"; exit 1; }

# Build the catalog over the wire: two live relations, one created and
# dropped (the journal must keep it dead), sessions in both tenants, and
# one TICK_MULTI across the pair. No QUIT: the journal carries it all.
PRE=$(printf '%s\n%s\n%s\n%s\n%s\n%s\n%s\n%s\n' \
  '{"type":"CREATE_RELATION","name":"alpha","seed":7,"count":12}' \
  '{"type":"CREATE_RELATION","name":"beta","seed":9,"count":8}' \
  '{"type":"CREATE_RELATION","name":"gamma","seed":11,"count":4}' \
  '{"type":"DROP_RELATION","name":"gamma"}' \
  '{"type":"USE","name":"alpha"}' \
  '{"type":"SUBSCRIBE","query":{"kind":"max","epsilon":0.5},"priority":2}' \
  '{"type":"SUBSCRIBE","relation":"beta","query":{"kind":"min","epsilon":0.5}}' \
  '{"type":"TICK_MULTI","ticks":[{"relation":"alpha","rate":0.0583},{"relation":"beta","rate":0.06}]}' \
  | "$VA_SERVER" --client "$ADDR")
echo "$PRE" | grep -q '"type":"CREATED","relation":"alpha"'    || { echo "no CREATED alpha: $PRE"; exit 1; }
echo "$PRE" | grep -q '"type":"CREATED","relation":"beta"'     || { echo "no CREATED beta: $PRE"; exit 1; }
echo "$PRE" | grep -q '"type":"DROPPED","relation":"gamma"'    || { echo "no DROPPED gamma: $PRE"; exit 1; }
echo "$PRE" | grep -q '"type":"USING","relation":"alpha"'      || { echo "no USING alpha: $PRE"; exit 1; }
echo "$PRE" | grep -q '"type":"SUBSCRIBED","relation":"alpha"' || { echo "USE did not route the subscribe: $PRE"; exit 1; }
echo "$PRE" | grep -q '"type":"SUBSCRIBED","relation":"beta"'  || { echo "no beta subscribe: $PRE"; exit 1; }
echo "$PRE" | grep -q '"type":"TICK_DONE","relation":"alpha"'  || { echo "no alpha tick: $PRE"; exit 1; }
echo "$PRE" | grep -q '"type":"TICK_DONE","relation":"beta"'   || { echo "no beta tick: $PRE"; exit 1; }

kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true

# Restart with *no* relation flags: the dir alone must describe both
# tenants (zero flag-based reconstruction).
"$VA_SERVER" --addr 127.0.0.1:0 --data-dir "$DATA_DIR" >"$SRV_LOG" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^va-server listening on \([0-9.:]*\) .*/\1/p' "$SRV_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "restarted server never printed its address"; cat "$SRV_LOG"; exit 1; }

POST=$(printf '%s\n%s\n%s\n%s\n%s\n' \
  '{"type":"RESUME","relation":"alpha","session":1}' \
  '{"type":"RESUME","relation":"beta","session":1}' \
  '{"type":"STATS","relation":"gamma"}' \
  '{"type":"TICK_MULTI","ticks":[{"relation":"alpha","rate":0.0584},{"relation":"beta","rate":0.061}]}' \
  '{"type":"QUIT"}' \
  | "$VA_SERVER" --client "$ADDR")
echo "$POST" | grep -q '"type":"RESUMED","relation":"alpha"'  || { echo "alpha session lost: $POST"; exit 1; }
echo "$POST" | grep -q '"type":"RESUMED","relation":"beta"'   || { echo "beta session lost: $POST"; exit 1; }
echo "$POST" | grep -q 'unknown relation \\"gamma\\"'         || { echo "dropped relation resurfaced: $POST"; exit 1; }
echo "$POST" | grep -q '"type":"TICK_DONE","relation":"alpha"' || { echo "no post-recovery alpha tick: $POST"; exit 1; }
echo "$POST" | grep -q '"type":"TICK_DONE","relation":"beta"'  || { echo "no post-recovery beta tick: $POST"; exit 1; }
grep -q "recovered from .* (2 relations" "$SRV_LOG"           || { echo "no 2-relation recovery line"; cat "$SRV_LOG"; exit 1; }

kill -9 "$SRV_PID" 2>/dev/null || true
wait "$SRV_PID" 2>/dev/null || true
cleanup
trap - EXIT
echo "    multi-relation tenancy smoke ok (catalog recovered flag-free across SIGKILL)"

echo "==> batched SoA solver == scalar executor smoke"
cargo test -q -p va-numerics --lib tridiag::tests::batched_solve_is_bit_identical_to_scalar_lanes
cargo test -q -p va-numerics --lib pde::batch::tests::lockstep_solve_is_bit_identical_to_scalar_iterates
cargo test -q -p va-server --test parallel_determinism batched_solver_matches_scalar_answers

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> tier-1 gate passed"
