#!/usr/bin/env bash
# Tier-1 gate for the VAO repro workspace. Runs entirely offline: every
# dependency is either vendored under shims/ or part of the Rust toolchain.
#
#   ./scripts/ci.sh
#
# Three stages, all mandatory:
#   1. cargo fmt --check       -- formatting drift fails the gate
#   2. cargo clippy -D warnings -- lints are errors, across all targets
#   3. cargo test -q            -- the full workspace test suite
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo test -q (workspace)"
cargo test --workspace -q

echo "==> tier-1 gate passed"
