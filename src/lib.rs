//! Umbrella crate for the VAO reproduction workspace.
//!
//! Re-exports the public API of all member crates so that examples and
//! integration tests can use a single import root. Downstream users should
//! depend on the individual crates (`vao`, `va-numerics`, `bondlab`,
//! `va-stream`, `va-workloads`) directly.

pub use bondlab;
pub use va_numerics as numerics;
pub use va_stream as stream;
pub use va_workloads as workloads;
pub use vao;
