//! Determinism guarantees: identical seeds reproduce identical answers and
//! identical work accounting across the whole stack — the property that
//! makes EXPERIMENTS.md's numbers reproducible on any machine.

use va_bench::experiments::{fig12_sum_hotcold, max_table, selection_sweep};
use va_bench::Lab;
use vao_repro::bondlab::BondUniverse;
use vao_repro::vao::ops::selection::CmpOp;

#[test]
fn universes_are_bit_identical_per_seed() {
    let a = BondUniverse::generate(50, 123);
    let b = BondUniverse::generate(50, 123);
    assert_eq!(a.bonds(), b.bonds());
}

#[test]
fn lab_calibration_is_reproducible() {
    let a = Lab::new(10, 77);
    let b = Lab::new(10, 77);
    assert_eq!(a.converged, b.converged);
    assert_eq!(a.specs, b.specs);
    assert_eq!(a.final_meshes, b.final_meshes);
}

#[test]
fn experiment_work_counts_are_reproducible() {
    let lab1 = Lab::new(12, 5);
    let lab2 = Lab::new(12, 5);

    let s1 = selection_sweep(&lab1, CmpOp::Gt, &[0.3, 0.7]);
    let s2 = selection_sweep(&lab2, CmpOp::Gt, &[0.3, 0.7]);
    for (a, b) in s1.iter().zip(&s2) {
        assert_eq!(a.vao_work, b.vao_work);
        assert_eq!(a.trad_work, b.trad_work);
        assert_eq!(a.selected, b.selected);
    }

    let m1 = max_table(&lab1);
    let m2 = max_table(&lab2);
    for (a, b) in m1.iter().zip(&m2) {
        assert_eq!(a.work, b.work, "{}", a.operator);
        assert_eq!(a.iterations, b.iterations);
    }

    let h1 = fig12_sum_hotcold(&lab1, &[0.5], 9);
    let h2 = fig12_sum_hotcold(&lab2, &[0.5], 9);
    assert_eq!(h1[0].vao_work, h2[0].vao_work);
    assert_eq!(h1[0].hybrid_work, h2[0].hybrid_work);
}

#[test]
fn different_seeds_give_different_workloads() {
    let a = Lab::new(12, 1);
    let b = Lab::new(12, 2);
    assert_ne!(a.converged, b.converged);
}
