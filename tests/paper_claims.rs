//! The paper's headline quantitative claims, verified end-to-end on a
//! scaled-down lab (work-unit metric; see EXPERIMENTS.md for the
//! paper-scale numbers).

use vao_repro::vao::cost::WorkMeter;
use vao_repro::vao::interface::ResultObject;
use vao_repro::vao::ops::minmax::max_vao;
use vao_repro::vao::ops::oracle::oracle_max;
use vao_repro::vao::ops::selection::CmpOp;
use vao_repro::vao::precision::PrecisionConstraint;

use va_bench::experiments::{
    fig10_selection_stress, fig11_max_stress, fig12_sum_hotcold, run_selection_vao, selection_sweep,
};
use va_bench::Lab;

fn lab() -> Lab {
    Lab::new(32, 1994)
}

#[test]
fn selection_vao_is_an_order_of_magnitude_faster_on_real_like_data() {
    // §6.1: "the selection VAO outperforms the traditional operator by
    // over two orders of magnitude" at paper scale; at 32 bonds with our
    // simulator we require at least one solid order of magnitude at every
    // selectivity.
    let lab = lab();
    let rows = selection_sweep(&lab, CmpOp::Gt, &[0.1, 0.3, 0.5, 0.7, 0.9]);
    for r in &rows {
        assert!(
            r.speedup() > 10.0,
            "selectivity {}: only {:.1}x",
            r.selectivity,
            r.speedup()
        );
    }
}

#[test]
fn selection_runtime_is_driven_by_proximity_not_selectivity() {
    // §6.1: runtime does not increase monotonically with selectivity; it
    // depends on how close results are to the constant. A constant placed
    // in a dense region must cost more than one in the far tail, whatever
    // the selectivities.
    let lab = lab();
    let mut sorted = lab.converged.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    let far_above = sorted.last().unwrap() + 50.0;

    let (_, work_median, _) = run_selection_vao(&lab, CmpOp::Gt, median);
    let (_, work_far, _) = run_selection_vao(&lab, CmpOp::Gt, far_above);
    assert!(
        work_far < work_median,
        "far constant {work_far} must be cheaper than median {work_median}"
    );
}

#[test]
fn gt_runtime_at_s_equals_lt_runtime_at_one_minus_s() {
    // §6.1's mirror observation between Figures 8 and 9.
    let lab = lab();
    for s in [0.25, 0.5, 0.75] {
        let gt = selection_sweep(&lab, CmpOp::Gt, &[s]);
        let lt = selection_sweep(&lab, CmpOp::Lt, &[1.0 - s]);
        assert_eq!(gt[0].vao_work, lt[0].vao_work, "s = {s}");
    }
}

#[test]
fn max_vao_is_close_to_optimal_and_far_from_traditional() {
    // §6.2's table: VAO within a few percent of Optimal (paper: <3%), and
    // orders of magnitude under Traditional.
    let lab = lab();
    let eps = PrecisionConstraint::new(0.01).unwrap();
    let argmax = lab
        .converged
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();

    let mut meter = WorkMeter::new();
    let mut objs = lab.objects(&mut meter);
    oracle_max(&mut objs, argmax, eps, &mut meter).unwrap();
    let optimal = meter.total();

    let mut meter = WorkMeter::new();
    let mut objs = lab.objects(&mut meter);
    let res = max_vao(&mut objs, eps, &mut meter).unwrap();
    let vao = meter.total();

    assert_eq!(res.argext, argmax);
    let overhead = vao as f64 / optimal as f64 - 1.0;
    assert!(
        overhead < 0.25,
        "VAO should be near-optimal; overhead {:.1}%",
        overhead * 100.0
    );
    // The MAX speedup scales with the universe: the VAO pays ~2 full
    // solves (the winner and the runner-up) regardless of N, while the
    // traditional operator pays N. At 32 bonds that is ~N/3.3 ≈ 9-10x; at
    // the paper's 500 bonds the harness reports the ~60x of §6.2.
    let trad = lab.traditional_work();
    assert!(
        trad as f64 / vao as f64 > 6.0,
        "VAO {vao} vs traditional {trad}"
    );
}

#[test]
fn stress_experiments_reproduce_the_paper_shapes() {
    let lab = lab();

    // Figure 10: VAO loses only at sigma = 0 and wins from $0.05 up
    // (paper: "much cheaper than the traditional case at only $0.05").
    let rows = fig10_selection_stress(&lab, &[0.0, 0.05, 1.0, 5.0], 3);
    assert!(
        rows[0].speedup() < 1.0,
        "σ=0 speedup {:.2}",
        rows[0].speedup()
    );
    assert!(
        rows[1].speedup() > 1.0,
        "σ=0.05 speedup {:.2}",
        rows[1].speedup()
    );
    assert!(rows[2].speedup() > rows[1].speedup(), "improves with σ");
    assert!(
        rows[3].speedup() > 5.0,
        "σ=$5 speedup {:.2}",
        rows[3].speedup()
    );

    // Figure 11: same shape for MAX under lower-half clustering; paper:
    // clearly better by σ = $0.10.
    let rows = fig11_max_stress(&lab, &[0.0, 0.1, 1.0], 3);
    assert!(rows[0].speedup() < 1.0);
    assert!(
        rows[1].speedup() > 1.0,
        "σ=0.10 speedup {:.2}",
        rows[1].speedup()
    );
    assert!(rows[2].speedup() > rows[1].speedup());
}

#[test]
fn sum_crossover_matches_figure_12() {
    // Figure 12: traditional wins at low hot-share, the VAO wins big at
    // high hot-share (paper: up to >4x).
    let lab = lab();
    let rows = fig12_sum_hotcold(&lab, &[0.10, 0.90, 0.99], 5);
    assert!(
        rows[0].speedup() < 1.0,
        "uniform weights: traditional should win, got {:.2}x",
        rows[0].speedup()
    );
    assert!(
        rows[2].speedup() > 2.0,
        "99% hot share: VAO should win clearly, got {:.2}x",
        rows[2].speedup()
    );
    assert!(rows[1].speedup() > rows[0].speedup());
}

#[test]
fn vao_total_cost_is_within_the_2x_bound_of_section_41() {
    // §4.1: the geometric doubling of iteration cost means running a
    // result object to full accuracy costs ≈ 2x the traditional solve
    // (plus the small construction trio). Check every bond.
    let lab = lab();
    let mut meter = WorkMeter::new();
    for (i, &bond) in lab.universe.bonds().iter().enumerate() {
        let mut obj = lab.pricer.price(bond, lab.rate, &mut meter);
        let spec = vao_repro::vao::ops::traditional::calibrate(&mut obj, &mut meter).unwrap();
        let ratio = obj.cumulative_cost() as f64 / spec.work as f64;
        assert!(
            ratio < 4.0,
            "bond {i}: iterative/standalone = {ratio:.2} (cumulative {}, standalone {})",
            obj.cumulative_cost(),
            spec.work
        );
    }
}
