//! End-to-end continuous queries (Q1–Q3 of §1.2) through the stream
//! engine, comparing the VAO and traditional execution modes on answers
//! and cost.

use vao_repro::bondlab::{BondPricer, BondUniverse, RateSeries};
use vao_repro::stream::relation::BondRelation;
use vao_repro::stream::{ContinuousQueryEngine, ExecutionMode, Query, QueryOutput};
use vao_repro::vao::ops::selection::CmpOp;

fn engine(n: usize, query: Query, mode: ExecutionMode) -> ContinuousQueryEngine {
    let universe = BondUniverse::generate(n, 1994);
    ContinuousQueryEngine::new(
        BondPricer::default(),
        BondRelation::from_universe(&universe),
        query,
        mode,
    )
}

#[test]
fn q1_selection_agrees_across_modes_and_saves_work() {
    let q = Query::Selection {
        op: CmpOp::Gt,
        constant: 100.0,
    };
    let rate = RateSeries::january_1994().opening_rate();
    let (vao_out, vao_stats) = engine(16, q.clone(), ExecutionMode::Vao)
        .process_rate(rate)
        .unwrap();
    let (trad_out, trad_stats) = engine(16, q, ExecutionMode::Traditional)
        .process_rate(rate)
        .unwrap();
    assert_eq!(vao_out, trad_out, "both modes must return the same bonds");
    assert!(
        vao_stats.total_work() * 10 < trad_stats.total_work(),
        "VAO {} vs traditional {}",
        vao_stats.total_work(),
        trad_stats.total_work()
    );
}

#[test]
fn q2_portfolio_sum_bounds_cover_traditional_value() {
    let n = 16;
    let q = Query::Sum {
        weights: vec![1.0; n],
        epsilon: n as f64 * 0.01 * (1.0 + 1e-9),
    };
    let rate = RateSeries::january_1994().opening_rate();
    let (vao_out, _) = engine(n, q.clone(), ExecutionMode::Vao)
        .process_rate(rate)
        .unwrap();
    let (trad_out, _) = engine(n, q, ExecutionMode::Traditional)
        .process_rate(rate)
        .unwrap();
    let vb = vao_out.bounds().unwrap();
    let tv = trad_out.bounds().unwrap().mid();
    // The traditional value carries up to n*$0.005 of its own error; allow
    // that slack on each side.
    let slack = n as f64 * 0.01;
    assert!(
        vb.lo() - slack <= tv && tv <= vb.hi() + slack,
        "sum bounds {vb} vs traditional {tv}"
    );
}

#[test]
fn q3_max_and_min_bracket_every_bond() {
    let rate = RateSeries::january_1994().opening_rate();
    let (max_out, _) = engine(16, Query::Max { epsilon: 0.01 }, ExecutionMode::Vao)
        .process_rate(rate)
        .unwrap();
    let (min_out, _) = engine(16, Query::Min { epsilon: 0.01 }, ExecutionMode::Vao)
        .process_rate(rate)
        .unwrap();
    let (QueryOutput::Extreme { bounds: bmax, .. }, QueryOutput::Extreme { bounds: bmin, .. }) =
        (&max_out, &min_out)
    else {
        panic!("wrong output shapes");
    };
    assert!(bmin.hi() <= bmax.hi());
    assert!(bmax.width() <= 0.01 + 1e-12);
    assert!(bmin.width() <= 0.01 + 1e-12);

    // Every traditional price must lie within [min.lo - slack, max.hi + slack].
    let (trad_all, _) = engine(
        16,
        Query::Selection {
            op: CmpOp::Gt,
            constant: f64::MIN_POSITIVE,
        },
        ExecutionMode::Traditional,
    )
    .process_rate(rate)
    .unwrap();
    assert_eq!(
        trad_all.selected().unwrap().len(),
        16,
        "all prices positive"
    );
}

#[test]
fn answers_track_rate_moves_consistently() {
    // A lower rate raises every price, so the count of bonds above a fixed
    // constant must not decrease.
    let q = |c: f64| Query::Selection {
        op: CmpOp::Gt,
        constant: c,
    };
    let e_low = engine(12, q(100.0), ExecutionMode::Vao);
    let (out_low, _) = e_low.process_rate(0.045).unwrap();
    let e_high = engine(12, q(100.0), ExecutionMode::Vao);
    let (out_high, _) = e_high.process_rate(0.075).unwrap();
    assert!(
        out_low.selected().unwrap().len() >= out_high.selected().unwrap().len(),
        "lower rates cannot shrink the above-par set"
    );
}

#[test]
fn engine_runs_a_tick_stream() {
    let q = Query::Max { epsilon: 0.01 };
    let e = engine(8, q, ExecutionMode::Vao);
    let ticks = RateSeries::january_1994().intraday_ticks(4, 9);
    let results = e.run(&ticks).unwrap();
    assert_eq!(results.len(), 4);
    for (tick, (out, stats)) in ticks.iter().zip(&results) {
        assert_eq!(stats.rate, tick.rate);
        assert!(matches!(out, QueryOutput::Extreme { .. }));
        assert!(stats.total_work() > 0);
    }
}

#[test]
fn empty_relation_is_an_operator_error() {
    let universe = BondUniverse::generate(0, 1);
    let engine = ContinuousQueryEngine::new(
        BondPricer::default(),
        BondRelation::from_universe(&universe),
        Query::Max { epsilon: 0.01 },
        ExecutionMode::Vao,
    );
    assert!(engine.process_rate(0.0583).is_err());
}
