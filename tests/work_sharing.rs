//! Cross-query work sharing: the `va-server` shared pool against
//! independent per-query engines.
//!
//! Two claims, both on fixed seeds:
//! 1. **Same answers.** For concurrent queries over the same relation, the
//!    shared-pool server's converged answers agree with what a dedicated
//!    [`ContinuousQueryEngine`] per query produces (exact set/winner
//!    equality for discrete outputs; ε-respecting overlapping intervals
//!    for aggregates, which may legitimately stop at different points
//!    inside the precision constraint).
//! 2. **Less work.** The shared pool invokes the pricing model once per
//!    bond per tick instead of once per bond *per query*, so its total
//!    deterministic work units stay below the sum of the independent runs
//!    — the server's reason to exist (§1.2's multi-trader workload).

use va_server::{Answer, Server, ServerConfig};
use vao_repro::bondlab::{BondPricer, BondUniverse, RateSeries};
use vao_repro::stream::relation::BondRelation;
use vao_repro::stream::{ContinuousQueryEngine, ExecutionMode, Query, QueryOutput};
use vao_repro::vao::ops::selection::CmpOp;

fn relation(n: usize, seed: u64) -> BondRelation {
    BondRelation::from_universe(&BondUniverse::generate(n, seed))
}

fn independent_run(n: usize, seed: u64, rate: f64, query: Query) -> (QueryOutput, u64) {
    let engine = ContinuousQueryEngine::new(
        BondPricer::default(),
        relation(n, seed),
        query,
        ExecutionMode::Vao,
    );
    let (out, stats) = engine.process_rate(rate).expect("engine tick");
    (out, stats.total_work())
}

#[test]
fn three_concurrent_queries_match_independent_engines() {
    let (n, seed) = (48, 1994);
    let rate = RateSeries::january_1994().opening_rate();
    let queries = [
        Query::Selection {
            op: CmpOp::Gt,
            constant: 100.0,
        },
        Query::Max { epsilon: 0.05 },
        Query::Sum {
            weights: vec![1.0; n],
            epsilon: 1.0,
        },
    ];

    let mut server = Server::new(
        BondPricer::default(),
        relation(n, seed),
        ServerConfig::default(),
    );
    for q in &queries {
        server.subscribe(q.clone(), 1).expect("subscribe");
    }
    let shared = server.tick(rate).expect("shared tick");
    assert!(!shared.budget_exhausted);

    let mut independent_work = 0u64;
    for (i, q) in queries.iter().enumerate() {
        let (solo_out, work) = independent_run(n, seed, rate, q.clone());
        independent_work += work;
        let shared_out = shared.answers[i]
            .1
            .final_output()
            .expect("unbudgeted answers are final");
        match (&solo_out, shared_out) {
            (QueryOutput::Selected(a), QueryOutput::Selected(b)) => {
                assert_eq!(a, b, "selection sets must agree");
            }
            (
                QueryOutput::Extreme {
                    bond_id: a,
                    bounds: ab,
                    ..
                },
                QueryOutput::Extreme {
                    bond_id: b,
                    bounds: bb,
                    ..
                },
            ) => {
                assert_eq!(a, b, "max winner must agree");
                assert!(ab.width() <= 0.05 && bb.width() <= 0.05);
                assert!(
                    ab.lo() <= bb.hi() && bb.lo() <= ab.hi(),
                    "winner intervals must overlap: {ab} vs {bb}"
                );
            }
            (QueryOutput::Aggregate { bounds: ab }, QueryOutput::Aggregate { bounds: bb }) => {
                assert!(ab.width() <= 1.0 && bb.width() <= 1.0);
                assert!(
                    ab.lo() <= bb.hi() && bb.lo() <= ab.hi(),
                    "sum intervals must overlap: {ab} vs {bb}"
                );
            }
            (solo, shared) => panic!("shape mismatch: {solo:?} vs {shared:?}"),
        }
    }

    assert!(
        shared.stats.total_work() <= independent_work,
        "shared {} must not exceed the independent total {}",
        shared.stats.total_work(),
        independent_work
    );
}

#[test]
fn eight_queries_over_500_bonds_share_measurably() {
    let (n, seed) = (500, 1994);
    let rate = RateSeries::january_1994().opening_rate();
    // Eight traders over one relation, with the overlap real desks have:
    // two MAX watchers at different precisions, a portfolio SUM at two
    // tolerances, and a selection/count pair on the same predicate. The
    // shared pool answers all of them off one set of result objects.
    let queries = [
        Query::Max { epsilon: 1.0 },
        Query::Max { epsilon: 0.5 },
        Query::Min { epsilon: 1.0 },
        Query::TopK { k: 5, epsilon: 1.0 },
        Query::Sum {
            weights: vec![1.0; n],
            epsilon: 50.0,
        },
        Query::Sum {
            weights: vec![1.0; n],
            epsilon: 60.0,
        },
        Query::Selection {
            op: CmpOp::Gt,
            constant: 100.0,
        },
        Query::Count {
            op: CmpOp::Gt,
            constant: 100.0,
            slack: 25,
        },
    ];

    let mut server = Server::new(
        BondPricer::default(),
        relation(n, seed),
        ServerConfig::default(),
    );
    for q in &queries {
        server.subscribe(q.clone(), 1).expect("subscribe");
    }
    let shared = server.tick(rate).expect("shared tick");
    let shared_work = shared.stats.total_work();
    assert!(shared.answers.iter().all(|(_, a)| a.is_final()));

    let independent_work: u64 = queries
        .iter()
        .map(|q| independent_run(n, seed, rate, q.clone()).1)
        .sum();

    // The deterministic work units make this exactly reproducible: the
    // shared pool lands around 1.7x below the independent total for this
    // workload. Assert a 1.5x floor so incidental scheduler changes don't
    // flake the build while real sharing regressions still fail.
    assert!(
        shared_work * 3 <= independent_work * 2,
        "8-query shared pool must do measurably less work: shared {shared_work} vs independent {independent_work}"
    );
}

#[test]
fn budget_limited_tick_brackets_the_converged_answers() {
    let (n, seed) = (48, 1994);
    let rate = RateSeries::january_1994().opening_rate();
    let queries = [
        Query::Max { epsilon: 0.05 },
        Query::Sum {
            weights: vec![1.0; n],
            epsilon: 0.5,
        },
    ];

    let mut full = Server::new(
        BondPricer::default(),
        relation(n, seed),
        ServerConfig::default(),
    );
    for q in &queries {
        full.subscribe(q.clone(), 1).expect("subscribe");
    }
    let converged = full.tick(rate).expect("unbudgeted tick");

    let budget = converged.stats.total_work() / 2;
    let mut capped = Server::new(
        BondPricer::default(),
        relation(n, seed),
        ServerConfig::budgeted(budget),
    );
    for q in &queries {
        capped.subscribe(q.clone(), 1).expect("subscribe");
    }
    let partial = capped.tick(rate).expect("budgeted tick");
    assert!(partial.budget_exhausted, "half the work must not converge");
    assert!(partial.stats.total_work() <= converged.stats.total_work());

    for ((_, full_ans), (_, capped_ans)) in converged.answers.iter().zip(&partial.answers) {
        let bounds = match capped_ans {
            Answer::Partial { bounds } => *bounds,
            Answer::Final(_) => continue, // a cheap query may still finish
        };
        let final_bounds = match full_ans.final_output().expect("final") {
            QueryOutput::Extreme { bounds, .. } | QueryOutput::Aggregate { bounds } => *bounds,
            other => panic!("unexpected shape {other:?}"),
        };
        let mid = 0.5 * (final_bounds.lo() + final_bounds.hi());
        let slack = 0.5 * final_bounds.width() + 1e-9;
        assert!(
            bounds.lo() - slack <= mid && mid <= bounds.hi() + slack,
            "anytime bounds {bounds} must bracket the converged answer {mid}"
        );
    }
}
