//! Cross-crate solver checks: degenerate-limit agreement with closed
//! forms, and heterogeneous result objects (PDE, quadrature, roots, ODE)
//! flowing through the same operators.

use vao_repro::bondlab::model::{BondPde, ShortRateModel};
use vao_repro::bondlab::{Bond, BondPricer};
use vao_repro::numerics::integrate::{QuadratureResultObject, QuadratureVaoConfig};
use vao_repro::numerics::ode::{BeamProblem, OdeResultObject, OdeVaoConfig};
use vao_repro::numerics::pde::{PdeResultObject, PdeVaoConfig};
use vao_repro::numerics::roots::{RootResultObject, RootVaoConfig};
use vao_repro::vao::cost::WorkMeter;
use vao_repro::vao::interface::ResultObject;
use vao_repro::vao::ops::minmax::max_vao;
use vao_repro::vao::ops::selection::{select, CmpOp};
use vao_repro::vao::ops::sum::sum_vao;
use vao_repro::vao::ops::traditional::calibrate;
use vao_repro::vao::precision::PrecisionConstraint;

#[test]
fn pde_price_matches_closed_form_in_deterministic_limit() {
    // σ = 0, κ = 0: rates are frozen, so the PDE price must converge to
    // flat discounting at the current rate.
    let bond = Bond::new(0, 0.065, 20.0, 100.0);
    let model = ShortRateModel {
        sigma: 0.0,
        kappa: 0.0,
        ..ShortRateModel::default()
    };
    let mut meter = WorkMeter::new();
    let mut obj = PdeResultObject::new(
        BondPde::new(bond, model, 0.055),
        PdeVaoConfig {
            min_width: 0.01,
            ..PdeVaoConfig::default()
        },
        &mut meter,
    )
    .unwrap();
    let spec = calibrate(&mut obj, &mut meter).unwrap();
    let exact = bond.flat_rate_value(0.055);
    assert!(
        (spec.value - exact).abs() < 0.05,
        "PDE {} vs closed form {exact}",
        spec.value
    );
}

#[test]
fn heterogeneous_objects_share_one_max_operator() {
    // MAX over four completely different solver families at once: the
    // operator only sees the ResultObject interface.
    let mut meter = WorkMeter::new();

    let quad: Box<dyn ResultObject> = Box::new(QuadratureResultObject::new(
        // ∫₀^π 1.2·sin = 2.4
        |x: f64| 1.2 * x.sin(),
        0.0,
        std::f64::consts::PI,
        QuadratureVaoConfig {
            min_width: 1e-6,
            ..QuadratureVaoConfig::default()
        },
        &mut meter,
    ));
    let root: Box<dyn ResultObject> = Box::new(
        RootResultObject::new(
            // root at √2 ≈ 1.414
            |x: f64| x * x - 2.0,
            0.0,
            2.0,
            RootVaoConfig {
                min_width: 1e-6,
                ..RootVaoConfig::default()
            },
            &mut meter,
        )
        .unwrap(),
    );
    let ode: Box<dyn ResultObject> = Box::new(
        OdeResultObject::new(
            // midspan beam deflection, a small negative number
            BeamProblem::example(),
            OdeVaoConfig {
                min_width: 1e-6,
                ..OdeVaoConfig::default()
            },
            &mut meter,
        )
        .unwrap(),
    );

    let mut objs = vec![quad, root, ode];
    let res = max_vao(
        &mut objs,
        PrecisionConstraint::new(1e-6).unwrap(),
        &mut meter,
    )
    .unwrap();
    // The midspan deflection (~8.7) beats the integral (2.4) and the root
    // (~1.41).
    let beam_exact = BeamProblem::example().exact(60.0);
    assert!(beam_exact > 2.4, "sanity: beam value {beam_exact}");
    assert_eq!(res.argext, 2, "the beam deflection is the largest value");
    assert!(res.bounds.contains(beam_exact));

    // And a SUM across the same families: 2.4 + 1.41421356 + w(60).
    let mut meter = WorkMeter::new();
    let mut objs: Vec<Box<dyn ResultObject>> = vec![
        Box::new(QuadratureResultObject::new(
            |x: f64| 1.2 * x.sin(),
            0.0,
            std::f64::consts::PI,
            QuadratureVaoConfig {
                min_width: 1e-6,
                ..QuadratureVaoConfig::default()
            },
            &mut meter,
        )),
        Box::new(
            RootResultObject::new(
                |x: f64| x * x - 2.0,
                0.0,
                2.0,
                RootVaoConfig {
                    min_width: 1e-6,
                    ..RootVaoConfig::default()
                },
                &mut meter,
            )
            .unwrap(),
        ),
    ];
    let res = sum_vao(
        &mut objs,
        PrecisionConstraint::new(1e-4).unwrap(),
        &mut meter,
    )
    .unwrap();
    let expected = 2.4 + std::f64::consts::SQRT_2;
    assert!(
        res.bounds.contains(expected),
        "{} should contain {expected}",
        res.bounds
    );
    assert!(res.bounds.width() <= 1e-4 + 1e-12);
}

#[test]
fn selection_over_a_root_object_stops_early() {
    let mut meter = WorkMeter::new();
    let mut root = RootResultObject::new(
        |x: f64| x.cos() - x, // root ≈ 0.739
        0.0,
        1.0,
        RootVaoConfig {
            min_width: 1e-12,
            ..RootVaoConfig::default()
        },
        &mut meter,
    )
    .unwrap();
    let out = select(&mut root, CmpOp::Lt, 0.9, &mut meter).unwrap();
    assert!(out.satisfied);
    assert!(
        out.iterations <= 4,
        "needed only a few halvings, got {}",
        out.iterations
    );
}

#[test]
fn bond_pricer_bounds_always_contain_the_converged_price() {
    // Refinement soundness end-to-end on a handful of bonds: every
    // intermediate bound interval must contain the final converged value
    // (within the final interval's own width).
    let pricer = BondPricer::default();
    for (i, coupon) in [0.055, 0.07, 0.085].iter().enumerate() {
        let bond = Bond::new(i as u32, *coupon, 29.5, 100.0);
        let mut meter = WorkMeter::new();

        // First pass: converge to find the reference value.
        let mut obj = pricer.price(bond, 0.0583, &mut meter);
        let reference = calibrate(&mut obj, &mut meter).unwrap().value;

        // Second pass: check every intermediate interval.
        let mut obj = pricer.price(bond, 0.0583, &mut meter);
        let mut guard = 0;
        while !obj.converged() && guard < 40 {
            let b = obj.iterate(&mut meter);
            assert!(
                b.lo() - 0.02 <= reference && reference <= b.hi() + 0.02,
                "coupon {coupon}: bounds {b} vs reference {reference}"
            );
            guard += 1;
        }
    }
}
