//! Observability acceptance tests: the trace layer must see the exact
//! event stream the operators produce, and attaching an observer must not
//! change a single bit of any answer or any work total.

use vao_repro::vao::cost::WorkMeter;
use vao_repro::vao::ops::minmax::{max_vao, max_vao_traced, AggregateConfig};
use vao_repro::vao::ops::selection::{select_traced, CmpOp, SelectionVao};
use vao_repro::vao::ops::sum::{weighted_sum_vao, weighted_sum_vao_traced};
use vao_repro::vao::precision::PrecisionConstraint;
use vao_repro::vao::testkit::ScriptedObject;
use vao_repro::vao::trace::{OperatorKind, Recorder, TraceEvent};
use vao_repro::vao::Bounds;

use va_bench::Lab;

/// A scripted selection produces the exact expected event sequence: one
/// operator start, one iteration (with the scripted bounds and perfectly
/// predictable CPU accounting), one operator end.
#[test]
fn scripted_selection_emits_exact_event_sequence() {
    // Initial bounds straddle the constant; the first refinement clears it.
    let mut obj =
        ScriptedObject::converging(&[(98.0, 110.0), (102.0, 107.0), (105.0, 105.005)], 10, 0.01);
    let mut meter = WorkMeter::new();
    let mut rec = Recorder::new();
    let out = select_traced(&mut obj, CmpOp::Gt, 100.0, &mut meter, &mut rec).unwrap();
    assert!(out.satisfied);

    let events = rec.events();
    assert_eq!(
        events.len(),
        3,
        "start + 1 iteration + end, got {events:#?}"
    );

    let TraceEvent::OperatorStart { kind, objects } = &events[0] else {
        panic!("expected OperatorStart, got {:?}", events[0]);
    };
    assert_eq!(*kind, OperatorKind::Selection);
    assert_eq!(*objects, 1);

    let TraceEvent::Iteration(it) = &events[1] else {
        panic!("expected Iteration, got {:?}", events[1]);
    };
    assert_eq!(it.object, 0);
    assert_eq!(it.seq, 1);
    assert_eq!(it.before, Bounds::new(98.0, 110.0));
    assert_eq!(it.after, Bounds::new(102.0, 107.0));
    // ScriptedObject estimates are its next step's exec cost; the actual
    // charge adds one get_state and one store_state unit on top.
    assert_eq!(it.est_cpu, 10);
    assert_eq!(it.actual_cpu, 12);
    assert_eq!(it.cpu_error(), -2);

    let TraceEvent::OperatorEnd(end) = &events[2] else {
        panic!("expected OperatorEnd, got {:?}", events[2]);
    };
    assert_eq!(end.kind, OperatorKind::Selection);
    assert_eq!(end.iterations, 1);
    assert_eq!(end.work.exec_iter, 10);
    assert_eq!(end.work.get_state, 1);
    assert_eq!(end.work.store_state, 1);
    assert_eq!(end.work, meter.breakdown());
}

/// A scripted MAX run: the trace brackets the evaluation with start/end,
/// every meter-counted iteration appears as an event, and the recorded
/// trajectory of the winner ends at its final bounds.
#[test]
fn scripted_max_trace_is_complete_and_ordered() {
    let mut objs = vec![
        ScriptedObject::converging(&[(90.0, 110.0), (100.0, 100.005)], 10, 0.01),
        ScriptedObject::converging(&[(40.0, 95.0), (50.0, 50.005)], 10, 0.01),
    ];
    let mut meter = WorkMeter::new();
    let mut rec = Recorder::new();
    let eps = PrecisionConstraint::new(0.01).unwrap();
    let res = max_vao_traced(
        &mut objs,
        eps,
        &mut AggregateConfig::default(),
        &mut meter,
        &mut rec,
    )
    .unwrap();
    assert_eq!(res.argext, 0);

    let events = rec.events();
    assert!(matches!(
        events.first(),
        Some(TraceEvent::OperatorStart {
            kind: OperatorKind::Max,
            objects: 2
        })
    ));
    assert!(matches!(events.last(), Some(TraceEvent::OperatorEnd(e))
        if e.kind == OperatorKind::Max && e.iterations == res.iterations));

    let iteration_events = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Iteration(_)))
        .count() as u64;
    assert_eq!(iteration_events, res.iterations);
    assert_eq!(iteration_events, meter.iterations());

    let traj = rec.trajectory(res.argext);
    assert_eq!(*traj.last().unwrap(), res.bounds);
}

/// Observer-on and observer-off runs over bit-identical inputs produce
/// bit-identical answers, iteration counts and per-component work — the
/// tracing layer charges nothing and changes nothing.
#[test]
fn observer_on_and_off_are_bit_identical() {
    let eps = PrecisionConstraint::new(0.01).unwrap();

    // MAX over the real bond workload.
    let lab = Lab::new(12, 5);
    let mut plain_meter = WorkMeter::new();
    let mut objs = lab.objects(&mut plain_meter);
    let plain = max_vao(&mut objs, eps, &mut plain_meter).unwrap();

    let mut traced_meter = WorkMeter::new();
    let mut objs = lab.objects(&mut traced_meter);
    let mut rec = Recorder::new();
    let traced = max_vao_traced(
        &mut objs,
        eps,
        &mut AggregateConfig::default(),
        &mut traced_meter,
        &mut rec,
    )
    .unwrap();

    assert_eq!(plain.argext, traced.argext);
    assert_eq!(plain.bounds, traced.bounds);
    assert_eq!(plain.iterations, traced.iterations);
    assert_eq!(plain_meter.breakdown(), traced_meter.breakdown());
    assert_eq!(plain_meter.iterations(), traced_meter.iterations());
    // And the recorder agrees with the meter about how much happened.
    assert_eq!(
        rec.iterations_per_object().iter().sum::<u64>(),
        traced_meter.iterations()
    );

    // SUM over the same workload.
    let n = lab.len();
    let weights = vec![1.0; n];
    let sum_eps = PrecisionConstraint::new(n as f64 * 0.01 * (1.0 + 1e-9)).unwrap();
    let mut plain_meter = WorkMeter::new();
    let mut objs = lab.objects(&mut plain_meter);
    let plain = weighted_sum_vao(&mut objs, &weights, sum_eps, &mut plain_meter).unwrap();

    let mut traced_meter = WorkMeter::new();
    let mut objs = lab.objects(&mut traced_meter);
    let mut rec = Recorder::new();
    let traced = weighted_sum_vao_traced(
        &mut objs,
        &weights,
        sum_eps,
        &mut AggregateConfig::default(),
        &mut traced_meter,
        &mut rec,
    )
    .unwrap();

    assert_eq!(plain.bounds, traced.bounds);
    assert_eq!(plain.iterations, traced.iterations);
    assert_eq!(plain_meter.breakdown(), traced_meter.breakdown());
    assert_eq!(rec.cpu_estimation().iterations, traced.iterations);
}

/// Same property for the per-object selection path used by the stream
/// engine and the Figure-8 sweep.
#[test]
fn selection_observer_does_not_change_work() {
    let mut obj_a =
        ScriptedObject::converging(&[(98.0, 110.0), (99.0, 103.0), (100.5, 101.0)], 10, 0.01);
    let mut obj_b = obj_a.clone();
    let vao = SelectionVao::new(CmpOp::Gt, 100.0).unwrap();

    let mut plain_meter = WorkMeter::new();
    let plain = vao.evaluate(&mut obj_a, &mut plain_meter).unwrap();

    let mut traced_meter = WorkMeter::new();
    let mut rec = Recorder::new();
    let traced = vao
        .evaluate_traced(&mut obj_b, &mut traced_meter, &mut rec)
        .unwrap();

    assert_eq!(plain.satisfied, traced.satisfied);
    assert_eq!(plain_meter.breakdown(), traced_meter.breakdown());
    assert_eq!(plain_meter.iterations(), traced_meter.iterations());
    assert_eq!(rec.iterations_for(0), traced_meter.iterations());
}
