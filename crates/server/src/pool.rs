//! The shared result-object pool.
//!
//! The paper's motivating scenario (§1.2) has many traders' queries priced
//! off the *same* bond relation at the *same* tick — yet a per-query engine
//! re-invokes the pricing model once per query per bond. The pool keys one
//! [`ResultObject`] per bond per tick: the model is invoked exactly once,
//! every registered query reads the same monotonically shrinking bounds,
//! and each object ends up iterated only as far as the *tightest* demand
//! any live query places on it.

use bondlab::BondPricer;
use va_stream::BondRelation;
use vao::adapters::{WarmStart, WarmStarted};
use vao::batch::GridShape;
use vao::cost::{Work, WorkMeter};
use vao::interface::{ResultObject, VariableAccuracyFn};
use vao::Bounds;

/// One tick's worth of shared result objects, aligned with the relation.
///
/// Objects are `Send` (the interface guarantees it) so the batched
/// scheduler can hand disjoint objects to worker threads via
/// [`SharedPool::disjoint_mut`].
pub struct SharedPool {
    objects: Vec<Box<dyn ResultObject + Send>>,
    rate: f64,
}

impl std::fmt::Debug for SharedPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPool")
            .field("rate", &self.rate)
            .field("objects", &self.objects.len())
            .finish()
    }
}

impl SharedPool {
    /// Invokes the pricer once per bond at `rate`, charging the shared
    /// meter. This is the work a per-query engine would repeat K times.
    #[must_use]
    pub fn invoke(
        pricer: &BondPricer,
        relation: &BondRelation,
        rate: f64,
        meter: &mut WorkMeter,
    ) -> Self {
        let objects = relation
            .bonds()
            .iter()
            .map(|&bond| pricer.invoke(&(rate, bond), meter))
            .collect();
        Self { objects, rate }
    }

    /// Like [`SharedPool::invoke`], but wraps every freshly invoked object
    /// in a [`WarmStarted`] adapter seeded from `warm` — the recovered
    /// per-object state a durable server journaled the last time it priced
    /// this rate. Invocation charges the meter exactly as a cold invoke
    /// does; the savings come later, when the scheduler skips objects whose
    /// seed already satisfies the stopping condition.
    ///
    /// `warm` must be aligned with the relation (one entry per bond);
    /// mismatched lengths fall back to a cold invoke, since a stale seed
    /// set (e.g. after the universe changed) must never corrupt answers.
    #[must_use]
    pub fn invoke_warm(
        pricer: &BondPricer,
        relation: &BondRelation,
        rate: f64,
        warm: &[WarmStart],
        meter: &mut WorkMeter,
    ) -> Self {
        if warm.len() != relation.bonds().len() {
            return Self::invoke(pricer, relation, rate, meter);
        }
        let objects = relation
            .bonds()
            .iter()
            .zip(warm)
            .map(|(&bond, &seed)| {
                let inner = pricer.invoke(&(rate, bond), meter);
                Box::new(WarmStarted::new(inner, seed)) as Box<dyn ResultObject + Send>
            })
            .collect();
        Self { objects, rate }
    }

    /// Builds a pool from pre-made result objects (testing and tooling; the
    /// server always goes through [`SharedPool::invoke`]).
    #[must_use]
    pub fn from_objects(objects: Vec<Box<dyn ResultObject + Send>>, rate: f64) -> Self {
        Self { objects, rate }
    }

    /// The rate this pool was invoked at.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Number of pooled objects (== relation size).
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The pooled objects (for envelope computations and ε validation).
    #[must_use]
    pub fn objects(&self) -> &[Box<dyn ResultObject + Send>] {
        &self.objects
    }

    /// Splits the pool into simultaneous `&mut` borrows of the objects at
    /// `indices`, in that order — the aliasing story that lets a batched
    /// scheduler iterate disjoint objects on separate worker threads while
    /// the borrow checker still guarantees no object is handed out twice.
    ///
    /// `indices` must be strictly ascending and in range; the scheduler
    /// sorts its batch (batches are distinct by construction) before
    /// calling. Built on `split_at_mut`, so no `unsafe` is involved.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is not strictly ascending or indexes out of
    /// range — both are caller bugs, not data conditions.
    pub fn disjoint_mut(&mut self, indices: &[usize]) -> Vec<&mut (dyn ResultObject + Send + '_)> {
        let mut out: Vec<&mut (dyn ResultObject + Send)> = Vec::with_capacity(indices.len());
        let mut rest: &mut [Box<dyn ResultObject + Send>] = &mut self.objects;
        let mut consumed = 0usize; // objects already split off the front
        for &i in indices {
            assert!(
                i >= consumed,
                "disjoint_mut indices must be strictly ascending"
            );
            let (head, tail) = rest.split_at_mut(i - consumed + 1);
            out.push(head[i - consumed].as_mut());
            consumed = i + 1;
            rest = tail;
        }
        out
    }

    /// Current bounds of object `i`.
    #[must_use]
    pub fn bounds(&self, i: usize) -> Bounds {
        self.objects[i].bounds()
    }

    /// Estimated post-iteration bounds of object `i`.
    #[must_use]
    pub fn est_bounds(&self, i: usize) -> Bounds {
        self.objects[i].est_bounds()
    }

    /// Estimated cost of the next iteration of object `i`.
    #[must_use]
    pub fn est_cpu(&self, i: usize) -> Work {
        self.objects[i].est_cpu()
    }

    /// The grid shape of object `i`'s next refinement, when that
    /// refinement can run as one lane of a batched solve (`None` for
    /// converged, capped, or cache-served steps — and for object families
    /// that never batch). The scheduler probes this before splitting
    /// borrows so it can group same-shape objects into one SoA sweep.
    #[must_use]
    pub fn batch_shape(&self, i: usize) -> Option<GridShape> {
        self.objects[i].batch_shape()
    }

    /// Whether object `i` has reached its stopping condition.
    #[must_use]
    pub fn converged(&self, i: usize) -> bool {
        self.objects[i].converged()
    }

    /// Lifetime work charged by object `i`, including any prior-run cost a
    /// [`WarmStarted`] seed carried across a restart.
    #[must_use]
    pub fn cumulative_cost(&self, i: usize) -> Work {
        self.objects[i].cumulative_cost()
    }

    /// Refines object `i` one step on the shared meter.
    pub fn iterate(&mut self, i: usize, meter: &mut WorkMeter) -> Bounds {
        self.objects[i].iterate(meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bondlab::BondUniverse;

    #[test]
    fn pool_invokes_once_per_bond() {
        let universe = BondUniverse::generate(4, 7);
        let relation = BondRelation::from_universe(&universe);
        let pricer = BondPricer::default();
        let mut meter = WorkMeter::new();
        let pool = SharedPool::invoke(&pricer, &relation, 0.0583, &mut meter);
        assert_eq!(pool.len(), 4);
        assert!(!pool.is_empty());
        assert_eq!(pool.rate(), 0.0583);
        assert!(meter.total() > 0, "model invocation charges the meter");
        for i in 0..pool.len() {
            let b = pool.bounds(i);
            assert!(b.lo() <= b.hi());
        }
    }

    #[test]
    fn disjoint_mut_hands_out_distinct_objects() {
        let universe = BondUniverse::generate(5, 7);
        let relation = BondRelation::from_universe(&universe);
        let pricer = BondPricer::default();
        let mut meter = WorkMeter::new();
        let mut pool = SharedPool::invoke(&pricer, &relation, 0.0583, &mut meter);
        let before: Vec<_> = [0, 2, 4].iter().map(|&i| pool.bounds(i)).collect();
        {
            let mut parts = pool.disjoint_mut(&[0, 2, 4]);
            assert_eq!(parts.len(), 3);
            let mut scratch = WorkMeter::new();
            for obj in &mut parts {
                obj.iterate(&mut scratch);
            }
            assert_eq!(scratch.iterations(), 3);
        }
        for (k, &i) in [0usize, 2, 4].iter().enumerate() {
            assert!(
                pool.bounds(i).width() <= before[k].width(),
                "object {i} refined through the disjoint borrow"
            );
        }
        // Untouched objects kept their bounds.
        assert_eq!(pool.bounds(1), pool.bounds(1));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn disjoint_mut_rejects_unsorted_indices() {
        let universe = BondUniverse::generate(3, 7);
        let relation = BondRelation::from_universe(&universe);
        let pricer = BondPricer::default();
        let mut meter = WorkMeter::new();
        let mut pool = SharedPool::invoke(&pricer, &relation, 0.0583, &mut meter);
        let _ = pool.disjoint_mut(&[2, 0]);
    }

    #[test]
    fn warm_invoke_seeds_converged_objects_for_free() {
        let universe = BondUniverse::generate(3, 7);
        let relation = BondRelation::from_universe(&universe);
        let pricer = BondPricer::default();

        // Converge one object cold to learn its final bounds and cost.
        let mut meter = WorkMeter::new();
        let mut cold = SharedPool::invoke(&pricer, &relation, 0.0583, &mut meter);
        while !cold.converged(0) {
            cold.iterate(0, &mut meter);
        }
        let final_bounds = cold.bounds(0);
        let cold_cost = cold.cumulative_cost(0);

        // Warm-invoke with that object seeded converged; others cold-ish.
        let warm = vec![
            WarmStart {
                bounds: final_bounds,
                converged: true,
                prior_cost: cold_cost,
            },
            WarmStart {
                bounds: cold.bounds(1),
                converged: false,
                prior_cost: 0,
            },
            WarmStart {
                bounds: cold.bounds(2),
                converged: false,
                prior_cost: 0,
            },
        ];
        let mut meter2 = WorkMeter::new();
        let mut pool = SharedPool::invoke_warm(&pricer, &relation, 0.0583, &warm, &mut meter2);
        assert!(pool.converged(0), "converged seed finishes the object");
        assert_eq!(pool.bounds(0), final_bounds);
        assert_eq!(pool.est_cpu(0), 0);
        assert!(
            pool.cumulative_cost(0) >= cold_cost,
            "prior-run cost survives the restart"
        );
        let spent = meter2.total();
        let b = pool.iterate(0, &mut meter2);
        assert_eq!(b, final_bounds, "iterating a finished object is a no-op");
        assert_eq!(meter2.total(), spent, "and charges nothing");

        // A mismatched seed set must fall back to a cold invoke.
        let mut meter3 = WorkMeter::new();
        let fallback = SharedPool::invoke_warm(&pricer, &relation, 0.0583, &warm[..1], &mut meter3);
        assert!(!fallback.converged(0), "stale seeds are ignored wholesale");
    }

    #[test]
    fn iterate_shrinks_on_the_shared_meter() {
        let universe = BondUniverse::generate(2, 7);
        let relation = BondRelation::from_universe(&universe);
        let pricer = BondPricer::default();
        let mut meter = WorkMeter::new();
        let mut pool = SharedPool::invoke(&pricer, &relation, 0.0583, &mut meter);
        let before = pool.bounds(0);
        let spent = meter.total();
        let after = pool.iterate(0, &mut meter);
        assert!(after.width() <= before.width(), "monotone shrinkage");
        assert!(meter.total() > spent, "iteration charges the shared meter");
        assert_eq!(meter.iterations(), 1);
    }
}
