//! The shared result-object pool.
//!
//! The paper's motivating scenario (§1.2) has many traders' queries priced
//! off the *same* bond relation at the *same* tick — yet a per-query engine
//! re-invokes the pricing model once per query per bond. The pool keys one
//! [`ResultObject`] per bond per tick: the model is invoked exactly once,
//! every registered query reads the same monotonically shrinking bounds,
//! and each object ends up iterated only as far as the *tightest* demand
//! any live query places on it.

use bondlab::BondPricer;
use va_stream::BondRelation;
use vao::cost::{Work, WorkMeter};
use vao::interface::{ResultObject, VariableAccuracyFn};
use vao::Bounds;

/// One tick's worth of shared result objects, aligned with the relation.
pub struct SharedPool {
    objects: Vec<Box<dyn ResultObject>>,
    rate: f64,
}

impl std::fmt::Debug for SharedPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPool")
            .field("rate", &self.rate)
            .field("objects", &self.objects.len())
            .finish()
    }
}

impl SharedPool {
    /// Invokes the pricer once per bond at `rate`, charging the shared
    /// meter. This is the work a per-query engine would repeat K times.
    #[must_use]
    pub fn invoke(
        pricer: &BondPricer,
        relation: &BondRelation,
        rate: f64,
        meter: &mut WorkMeter,
    ) -> Self {
        let objects = relation
            .bonds()
            .iter()
            .map(|&bond| pricer.invoke(&(rate, bond), meter))
            .collect();
        Self { objects, rate }
    }

    /// Builds a pool from pre-made result objects (testing and tooling; the
    /// server always goes through [`SharedPool::invoke`]).
    #[must_use]
    pub fn from_objects(objects: Vec<Box<dyn ResultObject>>, rate: f64) -> Self {
        Self { objects, rate }
    }

    /// The rate this pool was invoked at.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Number of pooled objects (== relation size).
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The pooled objects (for envelope computations and ε validation).
    #[must_use]
    pub fn objects(&self) -> &[Box<dyn ResultObject>] {
        &self.objects
    }

    /// Current bounds of object `i`.
    #[must_use]
    pub fn bounds(&self, i: usize) -> Bounds {
        self.objects[i].bounds()
    }

    /// Estimated post-iteration bounds of object `i`.
    #[must_use]
    pub fn est_bounds(&self, i: usize) -> Bounds {
        self.objects[i].est_bounds()
    }

    /// Estimated cost of the next iteration of object `i`.
    #[must_use]
    pub fn est_cpu(&self, i: usize) -> Work {
        self.objects[i].est_cpu()
    }

    /// Whether object `i` has reached its stopping condition.
    #[must_use]
    pub fn converged(&self, i: usize) -> bool {
        self.objects[i].converged()
    }

    /// Refines object `i` one step on the shared meter.
    pub fn iterate(&mut self, i: usize, meter: &mut WorkMeter) -> Bounds {
        self.objects[i].iterate(meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bondlab::BondUniverse;

    #[test]
    fn pool_invokes_once_per_bond() {
        let universe = BondUniverse::generate(4, 7);
        let relation = BondRelation::from_universe(&universe);
        let pricer = BondPricer::default();
        let mut meter = WorkMeter::new();
        let pool = SharedPool::invoke(&pricer, &relation, 0.0583, &mut meter);
        assert_eq!(pool.len(), 4);
        assert!(!pool.is_empty());
        assert_eq!(pool.rate(), 0.0583);
        assert!(meter.total() > 0, "model invocation charges the meter");
        for i in 0..pool.len() {
            let b = pool.bounds(i);
            assert!(b.lo() <= b.hi());
        }
    }

    #[test]
    fn iterate_shrinks_on_the_shared_meter() {
        let universe = BondUniverse::generate(2, 7);
        let relation = BondRelation::from_universe(&universe);
        let pricer = BondPricer::default();
        let mut meter = WorkMeter::new();
        let mut pool = SharedPool::invoke(&pricer, &relation, 0.0583, &mut meter);
        let before = pool.bounds(0);
        let spent = meter.total();
        let after = pool.iterate(0, &mut meter);
        assert!(after.width() <= before.width(), "monotone shrinkage");
        assert!(meter.total() > spent, "iteration charges the shared meter");
        assert_eq!(meter.iterations(), 1);
    }
}
