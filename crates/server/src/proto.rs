//! The newline-delimited JSON line protocol (see `docs/SERVER.md` for the
//! full schema).
//!
//! Every request and response is one JSON object per line. Requests carry a
//! `"type"` tag (`SUBSCRIBE`, `UNSUBSCRIBE`, `RESUME`, `TICK`, `TICKS`,
//! `STATS`, `QUIT`); the server answers with `SUBSCRIBED`, `UNSUBSCRIBED`,
//! `RESUMED`, one `RESULT` per session plus a `TICK_DONE` per processed
//! tick, `STATS`, `BYE`, or `ERROR`. Parsing is strict about shapes (a
//! malformed request yields `ERROR` without killing the connection) and
//! numbers ride as JSON numbers, never strings.

use va_stream::{Query, QueryOutput};
use vao::ops::selection::CmpOp;

use crate::answer::Answer;
use crate::json::{escape, Json};
use crate::server::{Server, TickResult};
use crate::session::SessionId;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Register a query at a priority.
    Subscribe {
        /// The query, with SUM weights still optional.
        query: WireQuery,
        /// Scheduling priority (defaults to 1 on the wire).
        priority: u32,
    },
    /// Remove a session.
    Unsubscribe {
        /// The session to remove.
        session: u64,
    },
    /// Re-attach to a session (typically after a reconnect or a server
    /// restart from a data dir) and get its registration plus its most
    /// recent answer back.
    Resume {
        /// The session to re-attach to.
        session: u64,
    },
    /// Process one rate tick.
    Tick {
        /// The new 10-year rate.
        rate: f64,
    },
    /// Offer a burst of ticks; the server coalesces to the newest.
    Ticks {
        /// Rates in arrival order.
        rates: Vec<f64>,
    },
    /// Report run statistics.
    Stats,
    /// Close the connection.
    Quit,
}

/// A query as it appears on the wire: identical to [`Query`] except SUM
/// weights may be omitted (defaulting to all-ones once the relation size is
/// known).
#[derive(Clone, Debug, PartialEq)]
pub enum WireQuery {
    /// `{"kind":"selection","op":">","constant":c}`
    Selection {
        /// Comparison operator.
        op: CmpOp,
        /// Constant compared against.
        constant: f64,
    },
    /// `{"kind":"count","op":">","constant":c,"slack":s}`
    Count {
        /// Comparison operator.
        op: CmpOp,
        /// Constant compared against.
        constant: f64,
        /// Tolerated unresolved objects.
        slack: usize,
    },
    /// `{"kind":"sum","epsilon":e,"weights":[...]}` (weights optional)
    Sum {
        /// Optional per-bond weights.
        weights: Option<Vec<f64>>,
        /// Output precision.
        epsilon: f64,
    },
    /// `{"kind":"ave","epsilon":e}`
    Ave {
        /// Output precision.
        epsilon: f64,
    },
    /// `{"kind":"max","epsilon":e}`
    Max {
        /// Output precision.
        epsilon: f64,
    },
    /// `{"kind":"min","epsilon":e}`
    Min {
        /// Output precision.
        epsilon: f64,
    },
    /// `{"kind":"topk","k":k,"epsilon":e}`
    TopK {
        /// How many bonds to rank.
        k: usize,
        /// Output precision.
        epsilon: f64,
    },
    /// `{"kind":"median","epsilon":e}`
    Median {
        /// Output precision.
        epsilon: f64,
    },
    /// `{"kind":"percentile","phi":p,"epsilon":e}`
    Percentile {
        /// Quantile fraction in `[0, 1]`.
        phi: f64,
        /// Output precision.
        epsilon: f64,
    },
    /// `{"kind":"heavyhitters","k":k,"epsilon":e}`
    HeavyHitters {
        /// How many cells to report.
        k: usize,
        /// Price-cell width.
        epsilon: f64,
    },
}

impl WireQuery {
    /// Resolves to an engine [`Query`], defaulting omitted SUM weights to
    /// all-ones over a relation of `n` bonds.
    #[must_use]
    pub fn into_query(self, n: usize) -> Query {
        match self {
            WireQuery::Selection { op, constant } => Query::Selection { op, constant },
            WireQuery::Count {
                op,
                constant,
                slack,
            } => Query::Count {
                op,
                constant,
                slack,
            },
            WireQuery::Sum { weights, epsilon } => Query::Sum {
                weights: weights.unwrap_or_else(|| vec![1.0; n]),
                epsilon,
            },
            WireQuery::Ave { epsilon } => Query::Ave { epsilon },
            WireQuery::Max { epsilon } => Query::Max { epsilon },
            WireQuery::Min { epsilon } => Query::Min { epsilon },
            WireQuery::TopK { k, epsilon } => Query::TopK { k, epsilon },
            WireQuery::Median { epsilon } => Query::Median { epsilon },
            WireQuery::Percentile { phi, epsilon } => Query::Percentile { phi, epsilon },
            WireQuery::HeavyHitters { k, epsilon } => Query::HeavyHitters { k, epsilon },
        }
    }
}

/// Parses one request line. Errors are human-readable strings the server
/// echoes back in an `ERROR` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line)?;
    let kind = doc
        .get("type")
        .and_then(Json::as_str)
        .ok_or("missing \"type\"")?;
    match kind {
        "SUBSCRIBE" => {
            let query = parse_query(doc.get("query").ok_or("missing \"query\"")?)?;
            let priority = match doc.get("priority") {
                None => 1,
                Some(p) => u32::try_from(
                    p.as_u64()
                        .ok_or("\"priority\" must be a nonnegative integer")?,
                )
                .map_err(|_| "\"priority\" out of range".to_string())?,
            };
            Ok(Request::Subscribe { query, priority })
        }
        "UNSUBSCRIBE" => Ok(Request::Unsubscribe {
            session: doc
                .get("session")
                .and_then(Json::as_u64)
                .ok_or("missing \"session\"")?,
        }),
        "RESUME" => Ok(Request::Resume {
            session: doc
                .get("session")
                .and_then(Json::as_u64)
                .ok_or("missing \"session\"")?,
        }),
        "TICK" => Ok(Request::Tick {
            rate: finite(doc.get("rate").and_then(Json::as_f64), "rate")?,
        }),
        "TICKS" => {
            let rates = doc
                .get("rates")
                .and_then(Json::as_array)
                .ok_or("missing \"rates\"")?
                .iter()
                .map(|r| finite(r.as_f64(), "rates"))
                .collect::<Result<Vec<f64>, String>>()?;
            // Validated at parse time, like the query params: an empty
            // burst is a malformed request, not a runtime condition.
            if rates.is_empty() {
                return Err("\"rates\" must not be empty".to_string());
            }
            Ok(Request::Ticks { rates })
        }
        "STATS" => Ok(Request::Stats),
        "QUIT" => Ok(Request::Quit),
        other => Err(format!("unknown request type \"{other}\"")),
    }
}

fn finite(v: Option<f64>, field: &str) -> Result<f64, String> {
    match v {
        Some(x) if x.is_finite() => Ok(x),
        Some(_) => Err(format!("\"{field}\" must be finite")),
        None => Err(format!("missing \"{field}\"")),
    }
}

fn parse_cmp_op(doc: &Json) -> Result<CmpOp, String> {
    match doc.get("op").and_then(Json::as_str) {
        Some(">") => Ok(CmpOp::Gt),
        Some(">=") => Ok(CmpOp::Ge),
        Some("<") => Ok(CmpOp::Lt),
        Some("<=") => Ok(CmpOp::Le),
        Some(other) => Err(format!("unknown op \"{other}\"")),
        None => Err("missing \"op\"".to_string()),
    }
}

fn parse_query(doc: &Json) -> Result<WireQuery, String> {
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing query \"kind\"")?;
    let epsilon = || finite(doc.get("epsilon").and_then(Json::as_f64), "epsilon");
    match kind {
        "selection" => Ok(WireQuery::Selection {
            op: parse_cmp_op(doc)?,
            constant: finite(doc.get("constant").and_then(Json::as_f64), "constant")?,
        }),
        "count" => Ok(WireQuery::Count {
            op: parse_cmp_op(doc)?,
            constant: finite(doc.get("constant").and_then(Json::as_f64), "constant")?,
            slack: doc.get("slack").and_then(Json::as_u64).unwrap_or(0) as usize,
        }),
        "sum" => {
            let weights = match doc.get("weights") {
                None => None,
                Some(w) => Some(
                    w.as_array()
                        .ok_or("\"weights\" must be an array")?
                        .iter()
                        .map(|x| x.as_f64().ok_or_else(|| "non-numeric weight".to_string()))
                        .collect::<Result<Vec<f64>, String>>()?,
                ),
            };
            Ok(WireQuery::Sum {
                weights,
                epsilon: epsilon()?,
            })
        }
        "ave" => Ok(WireQuery::Ave {
            epsilon: epsilon()?,
        }),
        "max" => Ok(WireQuery::Max {
            epsilon: epsilon()?,
        }),
        "min" => Ok(WireQuery::Min {
            epsilon: epsilon()?,
        }),
        "topk" => Ok(WireQuery::TopK {
            k: doc.get("k").and_then(Json::as_u64).ok_or("missing \"k\"")? as usize,
            epsilon: epsilon()?,
        }),
        "median" => Ok(WireQuery::Median {
            epsilon: epsilon()?,
        }),
        "percentile" => Ok(WireQuery::Percentile {
            phi: finite(doc.get("phi").and_then(Json::as_f64), "phi")?,
            epsilon: epsilon()?,
        }),
        "heavyhitters" => Ok(WireQuery::HeavyHitters {
            k: doc.get("k").and_then(Json::as_u64).ok_or("missing \"k\"")? as usize,
            epsilon: epsilon()?,
        }),
        other => Err(format!("unknown query kind \"{other}\"")),
    }
}

// -------------------------------------------------------------- requests

/// Serializes a [`WireQuery`] to the object shape [`parse_request`]
/// accepts (omitted SUM weights stay omitted).
#[must_use]
pub fn query_json(q: &WireQuery) -> String {
    let op_str = |op: &CmpOp| match op {
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
    };
    match q {
        WireQuery::Selection { op, constant } => format!(
            "{{\"kind\":\"selection\",\"op\":\"{}\",\"constant\":{constant}}}",
            op_str(op)
        ),
        WireQuery::Count {
            op,
            constant,
            slack,
        } => format!(
            "{{\"kind\":\"count\",\"op\":\"{}\",\"constant\":{constant},\"slack\":{slack}}}",
            op_str(op)
        ),
        WireQuery::Sum { weights, epsilon } => match weights {
            None => format!("{{\"kind\":\"sum\",\"epsilon\":{epsilon}}}"),
            Some(w) => {
                let items: Vec<String> = w.iter().map(|x| format!("{x}")).collect();
                format!(
                    "{{\"kind\":\"sum\",\"epsilon\":{epsilon},\"weights\":[{}]}}",
                    items.join(",")
                )
            }
        },
        WireQuery::Ave { epsilon } => format!("{{\"kind\":\"ave\",\"epsilon\":{epsilon}}}"),
        WireQuery::Max { epsilon } => format!("{{\"kind\":\"max\",\"epsilon\":{epsilon}}}"),
        WireQuery::Min { epsilon } => format!("{{\"kind\":\"min\",\"epsilon\":{epsilon}}}"),
        WireQuery::TopK { k, epsilon } => {
            format!("{{\"kind\":\"topk\",\"k\":{k},\"epsilon\":{epsilon}}}")
        }
        WireQuery::Median { epsilon } => {
            format!("{{\"kind\":\"median\",\"epsilon\":{epsilon}}}")
        }
        WireQuery::Percentile { phi, epsilon } => {
            format!("{{\"kind\":\"percentile\",\"phi\":{phi},\"epsilon\":{epsilon}}}")
        }
        WireQuery::HeavyHitters { k, epsilon } => {
            format!("{{\"kind\":\"heavyhitters\",\"k\":{k},\"epsilon\":{epsilon}}}")
        }
    }
}

/// Serializes a [`Request`] to one protocol line that [`parse_request`]
/// parses back to an equal value — the round-trip contract the protocol
/// property tests pin down.
#[must_use]
pub fn render_request(req: &Request) -> String {
    match req {
        Request::Subscribe { query, priority } => format!(
            "{{\"type\":\"SUBSCRIBE\",\"query\":{},\"priority\":{priority}}}",
            query_json(query)
        ),
        Request::Unsubscribe { session } => {
            format!("{{\"type\":\"UNSUBSCRIBE\",\"session\":{session}}}")
        }
        Request::Resume { session } => {
            format!("{{\"type\":\"RESUME\",\"session\":{session}}}")
        }
        Request::Tick { rate } => format!("{{\"type\":\"TICK\",\"rate\":{rate}}}"),
        Request::Ticks { rates } => {
            let items: Vec<String> = rates.iter().map(|r| format!("{r}")).collect();
            format!("{{\"type\":\"TICKS\",\"rates\":[{}]}}", items.join(","))
        }
        Request::Stats => "{\"type\":\"STATS\"}".to_string(),
        Request::Quit => "{\"type\":\"QUIT\"}".to_string(),
    }
}

// ------------------------------------------------------------- responses

/// `SUBSCRIBED` response line.
#[must_use]
pub fn subscribed(id: SessionId) -> String {
    format!("{{\"type\":\"SUBSCRIBED\",\"session\":{id}}}")
}

/// `UNSUBSCRIBED` response line.
#[must_use]
pub fn unsubscribed(id: u64) -> String {
    format!("{{\"type\":\"UNSUBSCRIBED\",\"session\":{id}}}")
}

/// `RESUMED` response line: the session's registration, its lifetime
/// counters, the server's tick counter, and — when the session has been
/// answered at least once — its most recent answer.
#[must_use]
pub fn resumed(sess: &crate::session::Session, tick: u64, answer: Option<&Answer>) -> String {
    let answer_field = match answer {
        None => String::new(),
        Some(Answer::Final(out)) => format!(
            ",\"answer\":{{\"status\":\"final\",\"output\":{}}}",
            output_json(out)
        ),
        Some(Answer::Partial { bounds }) => format!(
            ",\"answer\":{{\"status\":\"partial\",\"lo\":{},\"hi\":{}}}",
            bounds.lo(),
            bounds.hi()
        ),
    };
    format!(
        "{{\"type\":\"RESUMED\",\"session\":{},\"operator\":\"{}\",\"priority\":{},\"finals\":{},\"partials\":{},\"tick\":{}{answer_field}}}",
        sess.id, sess.query.operator_name(), sess.priority, sess.finals, sess.partials, tick
    )
}

/// `ERROR` response line.
#[must_use]
pub fn error(message: &str) -> String {
    format!("{{\"type\":\"ERROR\",\"message\":\"{}\"}}", escape(message))
}

/// `BYE` response line (connection closing).
#[must_use]
pub fn bye() -> String {
    "{\"type\":\"BYE\"}".to_string()
}

/// The session-independent fragment of a `RESULT` line: everything after
/// the `"session"` field. The broadcast fan-out serializes this once per
/// (tick, query shape) group and wraps it per session with
/// [`result_line`], so N subscribers on one shape cost one
/// serialization, not N.
#[must_use]
pub fn result_payload(tick: u64, rate: f64, answer: &Answer) -> String {
    match answer {
        Answer::Final(out) => format!(
            "\"tick\":{tick},\"rate\":{rate},\"status\":\"final\",\"output\":{}",
            output_json(out)
        ),
        Answer::Partial { bounds } => format!(
            "\"tick\":{tick},\"rate\":{rate},\"status\":\"partial\",\"bounds\":{{\"lo\":{},\"hi\":{}}}",
            bounds.lo(),
            bounds.hi()
        ),
    }
}

/// Wraps a [`result_payload`] fragment into one session's `RESULT` line.
#[must_use]
pub fn result_line(session: SessionId, payload: &str) -> String {
    format!("{{\"type\":\"RESULT\",\"session\":{session},{payload}}}")
}

/// One `RESULT` line for one session's answer on one tick — the
/// composition of [`result_payload`] and [`result_line`], byte-identical
/// to what the broadcast path emits.
#[must_use]
pub fn result(tick: u64, rate: f64, session: SessionId, answer: &Answer) -> String {
    result_line(session, &result_payload(tick, rate, answer))
}

/// `TICK_DONE` trailer after a tick's `RESULT` lines.
#[must_use]
pub fn tick_done(res: &TickResult, shed: u64) -> String {
    format!(
        "{{\"type\":\"TICK_DONE\",\"tick\":{},\"rate\":{},\"work_units\":{},\"iterations\":{},\"budget_exhausted\":{},\"shed\":{shed}}}",
        res.tick,
        res.rate,
        res.stats.total_work(),
        res.stats.iterations,
        res.budget_exhausted
    )
}

/// `STATS` response line summarizing the run so far.
#[must_use]
pub fn stats(server: &Server) -> String {
    let summary = server.summary();
    let sessions: Vec<String> = summary
        .per_query
        .iter()
        .map(|r| {
            format!(
                "{{\"session\":{},\"operator\":\"{}\",\"priority\":{},\"finals\":{},\"partials\":{},\"driven_iterations\":{}}}",
                r.session, r.operator, r.priority, r.finals, r.partials, r.driven_iterations
            )
        })
        .collect();
    format!(
        "{{\"type\":\"STATS\",\"ticks\":{},\"shed_ticks\":{},\"work_units\":{},\"iterations\":{},\"sessions\":[{}]}}",
        summary.ticks,
        server.shed_ticks(),
        summary.work.total(),
        summary.iterations,
        sessions.join(",")
    )
}

fn bounds_fields(lo: f64, hi: f64) -> String {
    format!("\"lo\":{lo},\"hi\":{hi}")
}

fn ids_json(ids: &[u32]) -> String {
    let items: Vec<String> = ids.iter().map(u32::to_string).collect();
    format!("[{}]", items.join(","))
}

/// Serializes a final [`QueryOutput`] to its wire shape.
#[must_use]
pub fn output_json(out: &QueryOutput) -> String {
    match out {
        QueryOutput::Selected(ids) => {
            format!("{{\"shape\":\"selected\",\"ids\":{}}}", ids_json(ids))
        }
        QueryOutput::Extreme {
            bond_id,
            bounds,
            ties,
        } => format!(
            "{{\"shape\":\"extreme\",\"bond\":{bond_id},{},\"ties\":{}}}",
            bounds_fields(bounds.lo(), bounds.hi()),
            ids_json(ties)
        ),
        QueryOutput::Aggregate { bounds } => format!(
            "{{\"shape\":\"aggregate\",{}}}",
            bounds_fields(bounds.lo(), bounds.hi())
        ),
        QueryOutput::Ranked { members, ties } => {
            let rows: Vec<String> = members
                .iter()
                .map(|(id, b)| format!("{{\"bond\":{id},{}}}", bounds_fields(b.lo(), b.hi())))
                .collect();
            format!(
                "{{\"shape\":\"ranked\",\"members\":[{}],\"ties\":{}}}",
                rows.join(","),
                ids_json(ties)
            )
        }
        QueryOutput::Count { lo, hi } => {
            format!("{{\"shape\":\"count\",\"lo\":{lo},\"hi\":{hi}}}")
        }
        QueryOutput::Heavy { cells, ties } => {
            let rows: Vec<String> = cells
                .iter()
                .map(|c| format!("{{\"cell\":{},\"count\":{}}}", c.cell, c.count))
                .collect();
            let tie_items: Vec<String> = ties.iter().map(i64::to_string).collect();
            format!(
                "{{\"shape\":\"heavy\",\"cells\":[{}],\"ties\":[{}]}}",
                rows.join(","),
                tie_items.join(",")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vao::Bounds;

    #[test]
    fn parses_every_request_type() {
        assert_eq!(
            parse_request(r#"{"type":"TICK","rate":0.0583}"#).unwrap(),
            Request::Tick { rate: 0.0583 }
        );
        assert_eq!(
            parse_request(r#"{"type":"TICKS","rates":[0.05,0.06]}"#).unwrap(),
            Request::Ticks {
                rates: vec![0.05, 0.06]
            }
        );
        assert_eq!(
            parse_request(r#"{"type":"UNSUBSCRIBE","session":3}"#).unwrap(),
            Request::Unsubscribe { session: 3 }
        );
        assert_eq!(
            parse_request(r#"{"type":"STATS"}"#).unwrap(),
            Request::Stats
        );
        assert_eq!(parse_request(r#"{"type":"QUIT"}"#).unwrap(), Request::Quit);
        assert_eq!(
            parse_request(r#"{"type":"RESUME","session":9}"#).unwrap(),
            Request::Resume { session: 9 }
        );
        let sub = parse_request(
            r#"{"type":"SUBSCRIBE","query":{"kind":"topk","k":3,"epsilon":0.1},"priority":4}"#,
        )
        .unwrap();
        assert_eq!(
            sub,
            Request::Subscribe {
                query: WireQuery::TopK { k: 3, epsilon: 0.1 },
                priority: 4
            }
        );
    }

    #[test]
    fn parses_every_query_kind() {
        let q = |s: &str| parse_query(&Json::parse(s).unwrap()).unwrap();
        assert_eq!(
            q(r#"{"kind":"selection","op":">","constant":99.5}"#),
            WireQuery::Selection {
                op: CmpOp::Gt,
                constant: 99.5
            }
        );
        assert_eq!(
            q(r#"{"kind":"count","op":"<=","constant":99.5,"slack":2}"#),
            WireQuery::Count {
                op: CmpOp::Le,
                constant: 99.5,
                slack: 2
            }
        );
        assert_eq!(
            q(r#"{"kind":"sum","epsilon":1.5}"#),
            WireQuery::Sum {
                weights: None,
                epsilon: 1.5
            }
        );
        assert_eq!(
            q(r#"{"kind":"sum","epsilon":1.5,"weights":[1,0,2]}"#).into_query(3),
            Query::Sum {
                weights: vec![1.0, 0.0, 2.0],
                epsilon: 1.5
            }
        );
        assert_eq!(
            q(r#"{"kind":"ave","epsilon":0.2}"#),
            WireQuery::Ave { epsilon: 0.2 }
        );
        assert_eq!(
            q(r#"{"kind":"max","epsilon":0.2}"#),
            WireQuery::Max { epsilon: 0.2 }
        );
        assert_eq!(
            q(r#"{"kind":"min","epsilon":0.2}"#),
            WireQuery::Min { epsilon: 0.2 }
        );
        assert_eq!(
            q(r#"{"kind":"median","epsilon":0.2}"#),
            WireQuery::Median { epsilon: 0.2 }
        );
        assert_eq!(
            q(r#"{"kind":"percentile","phi":0.9,"epsilon":0.2}"#),
            WireQuery::Percentile {
                phi: 0.9,
                epsilon: 0.2
            }
        );
        assert_eq!(
            q(r#"{"kind":"heavyhitters","k":4,"epsilon":0.5}"#),
            WireQuery::HeavyHitters { k: 4, epsilon: 0.5 }
        );
    }

    #[test]
    fn default_sum_weights_are_all_ones() {
        let q = WireQuery::Sum {
            weights: None,
            epsilon: 1.0,
        };
        assert_eq!(
            q.into_query(4),
            Query::Sum {
                weights: vec![1.0; 4],
                epsilon: 1.0
            }
        );
    }

    #[test]
    fn malformed_requests_read_as_errors() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"type":"WARP"}"#).is_err());
        assert!(parse_request(r#"{"type":"TICK"}"#).is_err());
        assert!(parse_request(r#"{"type":"TICK","rate":"fast"}"#).is_err());
        assert_eq!(
            parse_request(r#"{"type":"TICKS","rates":[]}"#),
            Err("\"rates\" must not be empty".to_string()),
            "an empty burst is rejected at parse time"
        );
        assert!(parse_request(r#"{"type":"SUBSCRIBE","query":{"kind":"sum"}}"#).is_err());
        assert!(parse_request(
            r#"{"type":"SUBSCRIBE","query":{"kind":"selection","op":"=","constant":1}}"#
        )
        .is_err());
    }

    #[test]
    fn rendered_requests_parse_back() {
        let reqs = [
            Request::Subscribe {
                query: WireQuery::Sum {
                    weights: None,
                    epsilon: 2.5,
                },
                priority: 3,
            },
            Request::Subscribe {
                query: WireQuery::Count {
                    op: CmpOp::Ge,
                    constant: 101.25,
                    slack: 4,
                },
                priority: 1,
            },
            Request::Subscribe {
                query: WireQuery::Median { epsilon: 0.05 },
                priority: 1,
            },
            Request::Subscribe {
                query: WireQuery::Percentile {
                    phi: 0.95,
                    epsilon: 0.25,
                },
                priority: 2,
            },
            Request::Subscribe {
                query: WireQuery::HeavyHitters { k: 3, epsilon: 0.5 },
                priority: 1,
            },
            Request::Unsubscribe { session: 12 },
            Request::Resume { session: 12 },
            Request::Tick { rate: 0.0583 },
            Request::Ticks {
                rates: vec![0.05, 0.0625],
            },
            Request::Stats,
            Request::Quit,
        ];
        for req in &reqs {
            let line = render_request(req);
            assert_eq!(&parse_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn result_lines_compose_from_shared_payloads() {
        let partial = Answer::Partial {
            bounds: Bounds::new(1.0, 2.5),
        };
        let fin = Answer::Final(QueryOutput::Count { lo: 2, hi: 2 });
        for answer in [&partial, &fin] {
            let payload = result_payload(7, 0.0584, answer);
            for session in [SessionId(1), SessionId(40)] {
                assert_eq!(
                    result_line(session, &payload),
                    result(7, 0.0584, session, answer),
                    "broadcast wrap must stay byte-identical to the direct line"
                );
            }
        }
    }

    #[test]
    fn resumed_lines_carry_the_last_answer() {
        let sess = crate::session::Session {
            id: SessionId(4),
            query: Query::Max { epsilon: 0.5 },
            priority: 2,
            finals: 7,
            partials: 1,
            driven_iterations: 90,
        };
        let none = resumed(&sess, 8, None);
        assert!(Json::parse(&none).is_ok(), "{none}");
        assert!(!none.contains("\"answer\""));
        assert!(none.contains("\"operator\":\"max\""));
        let partial = Answer::Partial {
            bounds: Bounds::new(1.0, 2.0),
        };
        let line = resumed(&sess, 8, Some(&partial));
        assert!(Json::parse(&line).is_ok(), "{line}");
        assert!(line.contains("\"status\":\"partial\""));
        let fin = Answer::Final(QueryOutput::Count { lo: 3, hi: 3 });
        let line = resumed(&sess, 8, Some(&fin));
        assert!(line.contains("\"status\":\"final\""));
        assert!(line.contains("\"shape\":\"count\""));
    }

    #[test]
    fn responses_are_single_line_json() {
        let lines = [
            subscribed(SessionId(7)),
            unsubscribed(7),
            error("bad \"thing\"\nhappened"),
            bye(),
            result(
                3,
                0.0583,
                SessionId(1),
                &Answer::Partial {
                    bounds: Bounds::new(1.0, 2.0),
                },
            ),
            output_json(&QueryOutput::Extreme {
                bond_id: 5,
                bounds: Bounds::new(99.0, 99.5),
                ties: vec![6, 7],
            }),
            output_json(&QueryOutput::Ranked {
                members: vec![(1, Bounds::new(2.0, 3.0))],
                ties: vec![],
            }),
            output_json(&QueryOutput::Selected(vec![1, 2])),
            output_json(&QueryOutput::Count { lo: 2, hi: 4 }),
            output_json(&QueryOutput::Heavy {
                cells: vec![vao::ops::heavy::HeavyCell { cell: -3, count: 7 }],
                ties: vec![-2, 5],
            }),
        ];
        for line in &lines {
            assert!(!line.contains('\n'), "{line}");
            let parsed = Json::parse(line);
            assert!(parsed.is_ok(), "{line}: {parsed:?}");
        }
        assert!(lines[4].contains("\"status\":\"partial\""));
    }
}
