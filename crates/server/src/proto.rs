//! The newline-delimited JSON line protocol (see `docs/SERVER.md` for the
//! full schema).
//!
//! Every request and response is one JSON object per line. Requests carry a
//! `"type"` tag (`SUBSCRIBE`, `UNSUBSCRIBE`, `RESUME`, `TICK`, `TICKS`,
//! `TICK_MULTI`, `STATS`, `QUIT`, plus the catalog control plane:
//! `CREATE_RELATION`, `DROP_RELATION`, `ADD_BOND`, `USE`, `RELATIONS`);
//! the server answers with `SUBSCRIBED`, `UNSUBSCRIBED`, `RESUMED`, one
//! `RESULT` per session plus a `TICK_DONE` per processed tick, `STATS`,
//! `CREATED`, `DROPPED`, `BOND_ADDED`, `USING`, `RELATIONS`, `BYE`, or
//! `ERROR`. Parsing is strict about shapes (a malformed request yields
//! `ERROR` without killing the connection) and numbers ride as JSON
//! numbers, never strings.
//!
//! Data-plane requests carry an optional `"relation"` field naming the
//! relation they address; when omitted, the connection's `USE` selection
//! applies, falling back to `"default"`. Responses echo the resolved
//! relation so multiplexed clients can demux.

use va_stream::{Query, QueryOutput};
use vao::ops::selection::CmpOp;

use crate::answer::Answer;
use crate::json::{escape, Json};
use crate::server::{Server, TickResult};
use crate::session::SessionId;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Register a query at a priority.
    Subscribe {
        /// Relation addressed (`None` → the connection's `USE` selection).
        relation: Option<String>,
        /// The query, with SUM weights still optional.
        query: WireQuery,
        /// Scheduling priority (defaults to 1 on the wire).
        priority: u32,
    },
    /// Remove a session.
    Unsubscribe {
        /// Relation addressed (`None` → the connection's `USE` selection).
        relation: Option<String>,
        /// The session to remove.
        session: u64,
    },
    /// Re-attach to a session (typically after a reconnect or a server
    /// restart from a data dir) and get its registration plus its most
    /// recent answer back.
    Resume {
        /// Relation addressed (`None` → the connection's `USE` selection).
        relation: Option<String>,
        /// The session to re-attach to.
        session: u64,
    },
    /// Process one rate tick.
    Tick {
        /// Relation addressed (`None` → the connection's `USE` selection).
        relation: Option<String>,
        /// The new 10-year rate.
        rate: f64,
    },
    /// Offer a burst of ticks; the server coalesces to the newest.
    Ticks {
        /// Relation addressed (`None` → the connection's `USE` selection).
        relation: Option<String>,
        /// Rates in arrival order.
        rates: Vec<f64>,
    },
    /// Process one tick across several relations under one arbitrated
    /// budget.
    TickMulti {
        /// `(relation, rate)` pairs, one per relation (no duplicates).
        ticks: Vec<(String, f64)>,
    },
    /// Report run statistics for one relation.
    Stats {
        /// Relation addressed (`None` → the connection's `USE` selection).
        relation: Option<String>,
    },
    /// Create a relation in the catalog.
    CreateRelation {
        /// New relation's name.
        name: String,
        /// Where its bonds come from.
        spec: RelationSpec,
    },
    /// Drop a relation and everything namespaced under it.
    DropRelation {
        /// The relation to drop.
        name: String,
    },
    /// Append one bond to a relation.
    AddBond {
        /// Relation addressed (`None` → the connection's `USE` selection).
        relation: Option<String>,
        /// The bond to append (id is assigned by the server).
        bond: WireBond,
    },
    /// Select the connection's default relation for subsequent requests.
    Use {
        /// The relation to select.
        name: String,
    },
    /// List the catalog.
    Relations,
    /// Close the connection.
    Quit,
}

/// How `CREATE RELATION` sources its bonds.
#[derive(Clone, Debug, PartialEq)]
pub enum RelationSpec {
    /// Generate `count` bonds from the deterministic universe generator.
    Seeded {
        /// Generator seed.
        seed: u64,
        /// Number of bonds.
        count: u64,
    },
    /// Explicit bonds shipped on the wire (ids assigned in order).
    Bonds(Vec<WireBond>),
}

/// One bond as it rides the wire (the id is always server-assigned).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireBond {
    /// Annual coupon fraction.
    pub coupon: f64,
    /// Years to maturity.
    pub maturity: f64,
    /// Face value.
    pub face: f64,
}

/// A query as it appears on the wire: identical to [`Query`] except SUM
/// weights may be omitted (defaulting to all-ones once the relation size is
/// known).
#[derive(Clone, Debug, PartialEq)]
pub enum WireQuery {
    /// `{"kind":"selection","op":">","constant":c}`
    Selection {
        /// Comparison operator.
        op: CmpOp,
        /// Constant compared against.
        constant: f64,
    },
    /// `{"kind":"count","op":">","constant":c,"slack":s}`
    Count {
        /// Comparison operator.
        op: CmpOp,
        /// Constant compared against.
        constant: f64,
        /// Tolerated unresolved objects.
        slack: usize,
    },
    /// `{"kind":"sum","epsilon":e,"weights":[...]}` (weights optional)
    Sum {
        /// Optional per-bond weights.
        weights: Option<Vec<f64>>,
        /// Output precision.
        epsilon: f64,
    },
    /// `{"kind":"ave","epsilon":e}`
    Ave {
        /// Output precision.
        epsilon: f64,
    },
    /// `{"kind":"max","epsilon":e}`
    Max {
        /// Output precision.
        epsilon: f64,
    },
    /// `{"kind":"min","epsilon":e}`
    Min {
        /// Output precision.
        epsilon: f64,
    },
    /// `{"kind":"topk","k":k,"epsilon":e}`
    TopK {
        /// How many bonds to rank.
        k: usize,
        /// Output precision.
        epsilon: f64,
    },
    /// `{"kind":"median","epsilon":e}`
    Median {
        /// Output precision.
        epsilon: f64,
    },
    /// `{"kind":"percentile","phi":p,"epsilon":e}`
    Percentile {
        /// Quantile fraction in `[0, 1]`.
        phi: f64,
        /// Output precision.
        epsilon: f64,
    },
    /// `{"kind":"heavyhitters","k":k,"epsilon":e}`
    HeavyHitters {
        /// How many cells to report.
        k: usize,
        /// Price-cell width.
        epsilon: f64,
    },
}

impl WireQuery {
    /// Resolves to an engine [`Query`], defaulting omitted SUM weights to
    /// all-ones over a relation of `n` bonds.
    #[must_use]
    pub fn into_query(self, n: usize) -> Query {
        match self {
            WireQuery::Selection { op, constant } => Query::Selection { op, constant },
            WireQuery::Count {
                op,
                constant,
                slack,
            } => Query::Count {
                op,
                constant,
                slack,
            },
            WireQuery::Sum { weights, epsilon } => Query::Sum {
                weights: weights.unwrap_or_else(|| vec![1.0; n]),
                epsilon,
            },
            WireQuery::Ave { epsilon } => Query::Ave { epsilon },
            WireQuery::Max { epsilon } => Query::Max { epsilon },
            WireQuery::Min { epsilon } => Query::Min { epsilon },
            WireQuery::TopK { k, epsilon } => Query::TopK { k, epsilon },
            WireQuery::Median { epsilon } => Query::Median { epsilon },
            WireQuery::Percentile { phi, epsilon } => Query::Percentile { phi, epsilon },
            WireQuery::HeavyHitters { k, epsilon } => Query::HeavyHitters { k, epsilon },
        }
    }
}

/// Parses one request line. Errors are human-readable strings the server
/// echoes back in an `ERROR` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line)?;
    let kind = doc
        .get("type")
        .and_then(Json::as_str)
        .ok_or("missing \"type\"")?;
    let relation = || match doc.get("relation") {
        None => Ok(None),
        Some(r) => r
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| "\"relation\" must be a string".to_string()),
    };
    let name = || {
        doc.get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| "missing \"name\"".to_string())
    };
    match kind {
        "SUBSCRIBE" => {
            let query = parse_query(doc.get("query").ok_or("missing \"query\"")?)?;
            let priority = match doc.get("priority") {
                None => 1,
                Some(p) => u32::try_from(
                    p.as_u64()
                        .ok_or("\"priority\" must be a nonnegative integer")?,
                )
                .map_err(|_| "\"priority\" out of range".to_string())?,
            };
            Ok(Request::Subscribe {
                relation: relation()?,
                query,
                priority,
            })
        }
        "UNSUBSCRIBE" => Ok(Request::Unsubscribe {
            relation: relation()?,
            session: doc
                .get("session")
                .and_then(Json::as_u64)
                .ok_or("missing \"session\"")?,
        }),
        "RESUME" => Ok(Request::Resume {
            relation: relation()?,
            session: doc
                .get("session")
                .and_then(Json::as_u64)
                .ok_or("missing \"session\"")?,
        }),
        "TICK" => Ok(Request::Tick {
            relation: relation()?,
            rate: finite(doc.get("rate").and_then(Json::as_f64), "rate")?,
        }),
        "TICKS" => {
            let rates = doc
                .get("rates")
                .and_then(Json::as_array)
                .ok_or("missing \"rates\"")?
                .iter()
                .map(|r| finite(r.as_f64(), "rates"))
                .collect::<Result<Vec<f64>, String>>()?;
            // Validated at parse time, like the query params: an empty
            // burst is a malformed request, not a runtime condition.
            if rates.is_empty() {
                return Err("\"rates\" must not be empty".to_string());
            }
            Ok(Request::Ticks {
                relation: relation()?,
                rates,
            })
        }
        "TICK_MULTI" => {
            let ticks = doc
                .get("ticks")
                .and_then(Json::as_array)
                .ok_or("missing \"ticks\"")?
                .iter()
                .map(|t| {
                    let rel = t
                        .get("relation")
                        .and_then(Json::as_str)
                        .ok_or("each tick needs a \"relation\"")?;
                    let rate = finite(t.get("rate").and_then(Json::as_f64), "rate")?;
                    Ok((rel.to_string(), rate))
                })
                .collect::<Result<Vec<(String, f64)>, String>>()?;
            if ticks.is_empty() {
                return Err("\"ticks\" must not be empty".to_string());
            }
            Ok(Request::TickMulti { ticks })
        }
        "STATS" => Ok(Request::Stats {
            relation: relation()?,
        }),
        "CREATE_RELATION" => {
            let name = name()?;
            let spec = match (doc.get("bonds"), doc.get("seed"), doc.get("count")) {
                (Some(_), Some(_), _) | (Some(_), _, Some(_)) => {
                    return Err("specify either \"bonds\" or \"seed\"/\"count\", not both".into())
                }
                (Some(bonds), None, None) => {
                    let bonds = bonds
                        .as_array()
                        .ok_or("\"bonds\" must be an array")?
                        .iter()
                        .map(parse_bond)
                        .collect::<Result<Vec<WireBond>, String>>()?;
                    if bonds.is_empty() {
                        return Err("\"bonds\" must not be empty".to_string());
                    }
                    RelationSpec::Bonds(bonds)
                }
                (None, seed, count) => {
                    let seed = seed.and_then(Json::as_u64).ok_or("missing \"seed\"")?;
                    let count = count.and_then(Json::as_u64).ok_or("missing \"count\"")?;
                    if count == 0 {
                        return Err("\"count\" must be positive".to_string());
                    }
                    RelationSpec::Seeded { seed, count }
                }
            };
            Ok(Request::CreateRelation { name, spec })
        }
        "DROP_RELATION" => Ok(Request::DropRelation { name: name()? }),
        "ADD_BOND" => Ok(Request::AddBond {
            relation: relation()?,
            bond: parse_bond(doc.get("bond").ok_or("missing \"bond\"")?)?,
        }),
        "USE" => Ok(Request::Use { name: name()? }),
        "RELATIONS" => Ok(Request::Relations),
        "QUIT" => Ok(Request::Quit),
        other => Err(format!("unknown request type \"{other}\"")),
    }
}

fn parse_bond(doc: &Json) -> Result<WireBond, String> {
    Ok(WireBond {
        coupon: finite(doc.get("coupon").and_then(Json::as_f64), "coupon")?,
        maturity: finite(doc.get("maturity").and_then(Json::as_f64), "maturity")?,
        face: finite(doc.get("face").and_then(Json::as_f64), "face")?,
    })
}

fn finite(v: Option<f64>, field: &str) -> Result<f64, String> {
    match v {
        Some(x) if x.is_finite() => Ok(x),
        Some(_) => Err(format!("\"{field}\" must be finite")),
        None => Err(format!("missing \"{field}\"")),
    }
}

fn parse_cmp_op(doc: &Json) -> Result<CmpOp, String> {
    match doc.get("op").and_then(Json::as_str) {
        Some(">") => Ok(CmpOp::Gt),
        Some(">=") => Ok(CmpOp::Ge),
        Some("<") => Ok(CmpOp::Lt),
        Some("<=") => Ok(CmpOp::Le),
        Some(other) => Err(format!("unknown op \"{other}\"")),
        None => Err("missing \"op\"".to_string()),
    }
}

fn parse_query(doc: &Json) -> Result<WireQuery, String> {
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing query \"kind\"")?;
    let epsilon = || finite(doc.get("epsilon").and_then(Json::as_f64), "epsilon");
    match kind {
        "selection" => Ok(WireQuery::Selection {
            op: parse_cmp_op(doc)?,
            constant: finite(doc.get("constant").and_then(Json::as_f64), "constant")?,
        }),
        "count" => Ok(WireQuery::Count {
            op: parse_cmp_op(doc)?,
            constant: finite(doc.get("constant").and_then(Json::as_f64), "constant")?,
            slack: doc.get("slack").and_then(Json::as_u64).unwrap_or(0) as usize,
        }),
        "sum" => {
            let weights = match doc.get("weights") {
                None => None,
                Some(w) => Some(
                    w.as_array()
                        .ok_or("\"weights\" must be an array")?
                        .iter()
                        .map(|x| x.as_f64().ok_or_else(|| "non-numeric weight".to_string()))
                        .collect::<Result<Vec<f64>, String>>()?,
                ),
            };
            Ok(WireQuery::Sum {
                weights,
                epsilon: epsilon()?,
            })
        }
        "ave" => Ok(WireQuery::Ave {
            epsilon: epsilon()?,
        }),
        "max" => Ok(WireQuery::Max {
            epsilon: epsilon()?,
        }),
        "min" => Ok(WireQuery::Min {
            epsilon: epsilon()?,
        }),
        "topk" => Ok(WireQuery::TopK {
            k: doc.get("k").and_then(Json::as_u64).ok_or("missing \"k\"")? as usize,
            epsilon: epsilon()?,
        }),
        "median" => Ok(WireQuery::Median {
            epsilon: epsilon()?,
        }),
        "percentile" => Ok(WireQuery::Percentile {
            phi: finite(doc.get("phi").and_then(Json::as_f64), "phi")?,
            epsilon: epsilon()?,
        }),
        "heavyhitters" => Ok(WireQuery::HeavyHitters {
            k: doc.get("k").and_then(Json::as_u64).ok_or("missing \"k\"")? as usize,
            epsilon: epsilon()?,
        }),
        other => Err(format!("unknown query kind \"{other}\"")),
    }
}

// -------------------------------------------------------------- requests

/// Serializes a [`WireQuery`] to the object shape [`parse_request`]
/// accepts (omitted SUM weights stay omitted).
#[must_use]
pub fn query_json(q: &WireQuery) -> String {
    let op_str = |op: &CmpOp| match op {
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
    };
    match q {
        WireQuery::Selection { op, constant } => format!(
            "{{\"kind\":\"selection\",\"op\":\"{}\",\"constant\":{constant}}}",
            op_str(op)
        ),
        WireQuery::Count {
            op,
            constant,
            slack,
        } => format!(
            "{{\"kind\":\"count\",\"op\":\"{}\",\"constant\":{constant},\"slack\":{slack}}}",
            op_str(op)
        ),
        WireQuery::Sum { weights, epsilon } => match weights {
            None => format!("{{\"kind\":\"sum\",\"epsilon\":{epsilon}}}"),
            Some(w) => {
                let items: Vec<String> = w.iter().map(|x| format!("{x}")).collect();
                format!(
                    "{{\"kind\":\"sum\",\"epsilon\":{epsilon},\"weights\":[{}]}}",
                    items.join(",")
                )
            }
        },
        WireQuery::Ave { epsilon } => format!("{{\"kind\":\"ave\",\"epsilon\":{epsilon}}}"),
        WireQuery::Max { epsilon } => format!("{{\"kind\":\"max\",\"epsilon\":{epsilon}}}"),
        WireQuery::Min { epsilon } => format!("{{\"kind\":\"min\",\"epsilon\":{epsilon}}}"),
        WireQuery::TopK { k, epsilon } => {
            format!("{{\"kind\":\"topk\",\"k\":{k},\"epsilon\":{epsilon}}}")
        }
        WireQuery::Median { epsilon } => {
            format!("{{\"kind\":\"median\",\"epsilon\":{epsilon}}}")
        }
        WireQuery::Percentile { phi, epsilon } => {
            format!("{{\"kind\":\"percentile\",\"phi\":{phi},\"epsilon\":{epsilon}}}")
        }
        WireQuery::HeavyHitters { k, epsilon } => {
            format!("{{\"kind\":\"heavyhitters\",\"k\":{k},\"epsilon\":{epsilon}}}")
        }
    }
}

/// Serializes a [`Request`] to one protocol line that [`parse_request`]
/// parses back to an equal value — the round-trip contract the protocol
/// property tests pin down.
#[must_use]
pub fn render_request(req: &Request) -> String {
    let rel = |relation: &Option<String>| match relation {
        None => String::new(),
        Some(name) => format!(",\"relation\":\"{}\"", escape(name)),
    };
    match req {
        Request::Subscribe {
            relation,
            query,
            priority,
        } => format!(
            "{{\"type\":\"SUBSCRIBE\",\"query\":{},\"priority\":{priority}{}}}",
            query_json(query),
            rel(relation)
        ),
        Request::Unsubscribe { relation, session } => {
            format!(
                "{{\"type\":\"UNSUBSCRIBE\",\"session\":{session}{}}}",
                rel(relation)
            )
        }
        Request::Resume { relation, session } => {
            format!(
                "{{\"type\":\"RESUME\",\"session\":{session}{}}}",
                rel(relation)
            )
        }
        Request::Tick { relation, rate } => {
            format!("{{\"type\":\"TICK\",\"rate\":{rate}{}}}", rel(relation))
        }
        Request::Ticks { relation, rates } => {
            let items: Vec<String> = rates.iter().map(|r| format!("{r}")).collect();
            format!(
                "{{\"type\":\"TICKS\",\"rates\":[{}]{}}}",
                items.join(","),
                rel(relation)
            )
        }
        Request::TickMulti { ticks } => {
            let items: Vec<String> = ticks
                .iter()
                .map(|(name, rate)| {
                    format!("{{\"relation\":\"{}\",\"rate\":{rate}}}", escape(name))
                })
                .collect();
            format!("{{\"type\":\"TICK_MULTI\",\"ticks\":[{}]}}", items.join(","))
        }
        Request::Stats { relation } => format!("{{\"type\":\"STATS\"{}}}", rel(relation)),
        Request::CreateRelation { name, spec } => match spec {
            RelationSpec::Seeded { seed, count } => format!(
                "{{\"type\":\"CREATE_RELATION\",\"name\":\"{}\",\"seed\":{seed},\"count\":{count}}}",
                escape(name)
            ),
            RelationSpec::Bonds(bonds) => {
                let items: Vec<String> = bonds.iter().map(bond_json).collect();
                format!(
                    "{{\"type\":\"CREATE_RELATION\",\"name\":\"{}\",\"bonds\":[{}]}}",
                    escape(name),
                    items.join(",")
                )
            }
        },
        Request::DropRelation { name } => {
            format!("{{\"type\":\"DROP_RELATION\",\"name\":\"{}\"}}", escape(name))
        }
        Request::AddBond { relation, bond } => format!(
            "{{\"type\":\"ADD_BOND\",\"bond\":{}{}}}",
            bond_json(bond),
            rel(relation)
        ),
        Request::Use { name } => format!("{{\"type\":\"USE\",\"name\":\"{}\"}}", escape(name)),
        Request::Relations => "{\"type\":\"RELATIONS\"}".to_string(),
        Request::Quit => "{\"type\":\"QUIT\"}".to_string(),
    }
}

/// Serializes a [`WireBond`] to the object shape [`parse_request`] accepts.
#[must_use]
pub fn bond_json(b: &WireBond) -> String {
    format!(
        "{{\"coupon\":{},\"maturity\":{},\"face\":{}}}",
        b.coupon, b.maturity, b.face
    )
}

// ------------------------------------------------------------- responses

/// `SUBSCRIBED` response line, echoing the resolved relation.
#[must_use]
pub fn subscribed(relation: &str, id: SessionId) -> String {
    format!(
        "{{\"type\":\"SUBSCRIBED\",\"relation\":\"{}\",\"session\":{id}}}",
        escape(relation)
    )
}

/// `UNSUBSCRIBED` response line.
#[must_use]
pub fn unsubscribed(relation: &str, id: u64) -> String {
    format!(
        "{{\"type\":\"UNSUBSCRIBED\",\"relation\":\"{}\",\"session\":{id}}}",
        escape(relation)
    )
}

/// `CREATED` response line after `CREATE_RELATION`.
#[must_use]
pub fn created(relation: &str, id: u64, bonds: usize) -> String {
    format!(
        "{{\"type\":\"CREATED\",\"relation\":\"{}\",\"id\":{id},\"bonds\":{bonds}}}",
        escape(relation)
    )
}

/// `DROPPED` response line after `DROP_RELATION`.
#[must_use]
pub fn dropped(relation: &str, id: u64) -> String {
    format!(
        "{{\"type\":\"DROPPED\",\"relation\":\"{}\",\"id\":{id}}}",
        escape(relation)
    )
}

/// `BOND_ADDED` response line after `ADD_BOND`.
#[must_use]
pub fn bond_added(relation: &str, bond: u32, bonds: usize) -> String {
    format!(
        "{{\"type\":\"BOND_ADDED\",\"relation\":\"{}\",\"bond\":{bond},\"bonds\":{bonds}}}",
        escape(relation)
    )
}

/// `USING` response line after `USE`.
#[must_use]
pub fn using(relation: &str) -> String {
    format!(
        "{{\"type\":\"USING\",\"relation\":\"{}\"}}",
        escape(relation)
    )
}

/// `RELATIONS` response line listing the catalog.
#[must_use]
pub fn relations(server: &Server) -> String {
    let rows: Vec<String> = server
        .catalog()
        .tenants()
        .iter()
        .map(|t| {
            format!(
                "{{\"name\":\"{}\",\"id\":{},\"bonds\":{},\"sessions\":{},\"ticks\":{}}}",
                escape(t.name()),
                t.id().0,
                t.relation().len(),
                t.sessions().sessions().len(),
                t.ticks()
            )
        })
        .collect();
    format!(
        "{{\"type\":\"RELATIONS\",\"relations\":[{}]}}",
        rows.join(",")
    )
}

/// `RESUMED` response line: the session's registration, its lifetime
/// counters, the relation's tick counter, and — when the session has been
/// answered at least once — its most recent answer.
#[must_use]
pub fn resumed(
    relation: &str,
    sess: &crate::session::Session,
    tick: u64,
    answer: Option<&Answer>,
) -> String {
    let answer_field = match answer {
        None => String::new(),
        Some(Answer::Final(out)) => format!(
            ",\"answer\":{{\"status\":\"final\",\"output\":{}}}",
            output_json(out)
        ),
        Some(Answer::Partial { bounds }) => format!(
            ",\"answer\":{{\"status\":\"partial\",\"lo\":{},\"hi\":{}}}",
            bounds.lo(),
            bounds.hi()
        ),
    };
    format!(
        "{{\"type\":\"RESUMED\",\"relation\":\"{}\",\"session\":{},\"operator\":\"{}\",\"priority\":{},\"finals\":{},\"partials\":{},\"tick\":{}{answer_field}}}",
        escape(relation), sess.id, sess.query.operator_name(), sess.priority, sess.finals, sess.partials, tick
    )
}

/// `ERROR` response line.
#[must_use]
pub fn error(message: &str) -> String {
    format!("{{\"type\":\"ERROR\",\"message\":\"{}\"}}", escape(message))
}

/// `BYE` response line (connection closing).
#[must_use]
pub fn bye() -> String {
    "{\"type\":\"BYE\"}".to_string()
}

/// The session-independent fragment of a `RESULT` line: everything after
/// the `"session"` field. The broadcast fan-out serializes this once per
/// (relation, tick, query shape) group and wraps it per session with
/// [`result_line`], so N subscribers on one shape cost one
/// serialization, not N.
#[must_use]
pub fn result_payload(relation: &str, tick: u64, rate: f64, answer: &Answer) -> String {
    let rel = escape(relation);
    match answer {
        Answer::Final(out) => format!(
            "\"relation\":\"{rel}\",\"tick\":{tick},\"rate\":{rate},\"status\":\"final\",\"output\":{}",
            output_json(out)
        ),
        Answer::Partial { bounds } => format!(
            "\"relation\":\"{rel}\",\"tick\":{tick},\"rate\":{rate},\"status\":\"partial\",\"bounds\":{{\"lo\":{},\"hi\":{}}}",
            bounds.lo(),
            bounds.hi()
        ),
    }
}

/// Wraps a [`result_payload`] fragment into one session's `RESULT` line.
#[must_use]
pub fn result_line(session: SessionId, payload: &str) -> String {
    format!("{{\"type\":\"RESULT\",\"session\":{session},{payload}}}")
}

/// One `RESULT` line for one session's answer on one tick — the
/// composition of [`result_payload`] and [`result_line`], byte-identical
/// to what the broadcast path emits.
#[must_use]
pub fn result(relation: &str, tick: u64, rate: f64, session: SessionId, answer: &Answer) -> String {
    result_line(session, &result_payload(relation, tick, rate, answer))
}

/// `TICK_DONE` trailer after a tick's `RESULT` lines.
#[must_use]
pub fn tick_done(relation: &str, res: &TickResult, shed: u64) -> String {
    format!(
        "{{\"type\":\"TICK_DONE\",\"relation\":\"{}\",\"tick\":{},\"rate\":{},\"work_units\":{},\"iterations\":{},\"budget_exhausted\":{},\"shed\":{shed}}}",
        escape(relation),
        res.tick,
        res.rate,
        res.stats.total_work(),
        res.stats.iterations,
        res.budget_exhausted
    )
}

/// `STATS` response line summarizing one relation's run so far. The
/// caller has already resolved `relation` (an unknown name is an `ERROR`
/// before this builder runs).
#[must_use]
pub fn stats(server: &Server, relation: &str) -> String {
    let summary = server
        .summary_in(relation)
        .expect("caller resolved the relation");
    let tenant = server
        .catalog()
        .by_name(relation)
        .expect("caller resolved the relation");
    let shed = tenant.shed();
    let sessions: Vec<String> = summary
        .per_query
        .iter()
        .map(|r| {
            format!(
                "{{\"session\":{},\"operator\":\"{}\",\"priority\":{},\"finals\":{},\"partials\":{},\"driven_iterations\":{}}}",
                r.session, r.operator, r.priority, r.finals, r.partials, r.driven_iterations
            )
        })
        .collect();
    // Calibration progress rides STATS so an operator (and the CI smoke
    // test) can confirm a recovered server kept its learned model without
    // reading the journal: observation count and the pooled actual/claimed
    // cost ratio in ppm (1e6 = identity/cold).
    format!(
        "{{\"type\":\"STATS\",\"relation\":\"{}\",\"ticks\":{},\"shed_ticks\":{},\"work_units\":{},\"iterations\":{},\"calibration\":{{\"observations\":{},\"gain_ppm\":{}}},\"sessions\":[{}]}}",
        escape(relation),
        summary.ticks,
        shed,
        summary.work.total(),
        summary.iterations,
        tenant.calibration_observations(),
        tenant.calibration_gain_ppm(),
        sessions.join(",")
    )
}

fn bounds_fields(lo: f64, hi: f64) -> String {
    format!("\"lo\":{lo},\"hi\":{hi}")
}

fn ids_json(ids: &[u32]) -> String {
    let items: Vec<String> = ids.iter().map(u32::to_string).collect();
    format!("[{}]", items.join(","))
}

/// Serializes a final [`QueryOutput`] to its wire shape.
#[must_use]
pub fn output_json(out: &QueryOutput) -> String {
    match out {
        QueryOutput::Selected(ids) => {
            format!("{{\"shape\":\"selected\",\"ids\":{}}}", ids_json(ids))
        }
        QueryOutput::Extreme {
            bond_id,
            bounds,
            ties,
        } => format!(
            "{{\"shape\":\"extreme\",\"bond\":{bond_id},{},\"ties\":{}}}",
            bounds_fields(bounds.lo(), bounds.hi()),
            ids_json(ties)
        ),
        QueryOutput::Aggregate { bounds } => format!(
            "{{\"shape\":\"aggregate\",{}}}",
            bounds_fields(bounds.lo(), bounds.hi())
        ),
        QueryOutput::Ranked { members, ties } => {
            let rows: Vec<String> = members
                .iter()
                .map(|(id, b)| format!("{{\"bond\":{id},{}}}", bounds_fields(b.lo(), b.hi())))
                .collect();
            format!(
                "{{\"shape\":\"ranked\",\"members\":[{}],\"ties\":{}}}",
                rows.join(","),
                ids_json(ties)
            )
        }
        QueryOutput::Count { lo, hi } => {
            format!("{{\"shape\":\"count\",\"lo\":{lo},\"hi\":{hi}}}")
        }
        QueryOutput::Heavy { cells, ties } => {
            let rows: Vec<String> = cells
                .iter()
                .map(|c| format!("{{\"cell\":{},\"count\":{}}}", c.cell, c.count))
                .collect();
            let tie_items: Vec<String> = ties.iter().map(i64::to_string).collect();
            format!(
                "{{\"shape\":\"heavy\",\"cells\":[{}],\"ties\":[{}]}}",
                rows.join(","),
                tie_items.join(",")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vao::Bounds;

    #[test]
    fn parses_every_request_type() {
        assert_eq!(
            parse_request(r#"{"type":"TICK","rate":0.0583}"#).unwrap(),
            Request::Tick {
                relation: None,
                rate: 0.0583
            }
        );
        assert_eq!(
            parse_request(r#"{"type":"TICK","rate":0.0583,"relation":"energy"}"#).unwrap(),
            Request::Tick {
                relation: Some("energy".to_string()),
                rate: 0.0583
            }
        );
        assert_eq!(
            parse_request(r#"{"type":"TICKS","rates":[0.05,0.06]}"#).unwrap(),
            Request::Ticks {
                relation: None,
                rates: vec![0.05, 0.06]
            }
        );
        assert_eq!(
            parse_request(r#"{"type":"UNSUBSCRIBE","session":3}"#).unwrap(),
            Request::Unsubscribe {
                relation: None,
                session: 3
            }
        );
        assert_eq!(
            parse_request(r#"{"type":"STATS"}"#).unwrap(),
            Request::Stats { relation: None }
        );
        assert_eq!(parse_request(r#"{"type":"QUIT"}"#).unwrap(), Request::Quit);
        assert_eq!(
            parse_request(r#"{"type":"RESUME","session":9}"#).unwrap(),
            Request::Resume {
                relation: None,
                session: 9
            }
        );
        let sub = parse_request(
            r#"{"type":"SUBSCRIBE","query":{"kind":"topk","k":3,"epsilon":0.1},"priority":4}"#,
        )
        .unwrap();
        assert_eq!(
            sub,
            Request::Subscribe {
                relation: None,
                query: WireQuery::TopK { k: 3, epsilon: 0.1 },
                priority: 4
            }
        );
    }

    #[test]
    fn parses_catalog_requests() {
        assert_eq!(
            parse_request(r#"{"type":"CREATE_RELATION","name":"energy","seed":7,"count":16}"#)
                .unwrap(),
            Request::CreateRelation {
                name: "energy".to_string(),
                spec: RelationSpec::Seeded { seed: 7, count: 16 }
            }
        );
        assert_eq!(
            parse_request(
                r#"{"type":"CREATE_RELATION","name":"fx","bonds":[{"coupon":0.05,"maturity":10,"face":100}]}"#
            )
            .unwrap(),
            Request::CreateRelation {
                name: "fx".to_string(),
                spec: RelationSpec::Bonds(vec![WireBond {
                    coupon: 0.05,
                    maturity: 10.0,
                    face: 100.0
                }])
            }
        );
        assert_eq!(
            parse_request(r#"{"type":"DROP_RELATION","name":"fx"}"#).unwrap(),
            Request::DropRelation {
                name: "fx".to_string()
            }
        );
        assert_eq!(
            parse_request(
                r#"{"type":"ADD_BOND","relation":"fx","bond":{"coupon":0.06,"maturity":5,"face":100}}"#
            )
            .unwrap(),
            Request::AddBond {
                relation: Some("fx".to_string()),
                bond: WireBond {
                    coupon: 0.06,
                    maturity: 5.0,
                    face: 100.0
                }
            }
        );
        assert_eq!(
            parse_request(r#"{"type":"USE","name":"fx"}"#).unwrap(),
            Request::Use {
                name: "fx".to_string()
            }
        );
        assert_eq!(
            parse_request(r#"{"type":"RELATIONS"}"#).unwrap(),
            Request::Relations
        );
        assert_eq!(
            parse_request(
                r#"{"type":"TICK_MULTI","ticks":[{"relation":"default","rate":0.05},{"relation":"fx","rate":0.06}]}"#
            )
            .unwrap(),
            Request::TickMulti {
                ticks: vec![
                    ("default".to_string(), 0.05),
                    ("fx".to_string(), 0.06)
                ]
            }
        );
        // Malformed catalog requests are parse errors, not panics.
        assert!(parse_request(r#"{"type":"CREATE_RELATION","name":"x"}"#).is_err());
        assert!(parse_request(
            r#"{"type":"CREATE_RELATION","name":"x","seed":1,"count":4,"bonds":[]}"#
        )
        .is_err());
        assert!(
            parse_request(r#"{"type":"CREATE_RELATION","name":"x","seed":1,"count":0}"#).is_err()
        );
        assert!(parse_request(r#"{"type":"CREATE_RELATION","name":"x","bonds":[]}"#).is_err());
        assert!(parse_request(r#"{"type":"ADD_BOND","bond":{"coupon":0.05}}"#).is_err());
        assert!(parse_request(r#"{"type":"USE"}"#).is_err());
        assert!(parse_request(r#"{"type":"TICK_MULTI","ticks":[]}"#).is_err());
        assert!(parse_request(r#"{"type":"TICK","rate":0.05,"relation":7}"#).is_err());
    }

    #[test]
    fn parses_every_query_kind() {
        let q = |s: &str| parse_query(&Json::parse(s).unwrap()).unwrap();
        assert_eq!(
            q(r#"{"kind":"selection","op":">","constant":99.5}"#),
            WireQuery::Selection {
                op: CmpOp::Gt,
                constant: 99.5
            }
        );
        assert_eq!(
            q(r#"{"kind":"count","op":"<=","constant":99.5,"slack":2}"#),
            WireQuery::Count {
                op: CmpOp::Le,
                constant: 99.5,
                slack: 2
            }
        );
        assert_eq!(
            q(r#"{"kind":"sum","epsilon":1.5}"#),
            WireQuery::Sum {
                weights: None,
                epsilon: 1.5
            }
        );
        assert_eq!(
            q(r#"{"kind":"sum","epsilon":1.5,"weights":[1,0,2]}"#).into_query(3),
            Query::Sum {
                weights: vec![1.0, 0.0, 2.0],
                epsilon: 1.5
            }
        );
        assert_eq!(
            q(r#"{"kind":"ave","epsilon":0.2}"#),
            WireQuery::Ave { epsilon: 0.2 }
        );
        assert_eq!(
            q(r#"{"kind":"max","epsilon":0.2}"#),
            WireQuery::Max { epsilon: 0.2 }
        );
        assert_eq!(
            q(r#"{"kind":"min","epsilon":0.2}"#),
            WireQuery::Min { epsilon: 0.2 }
        );
        assert_eq!(
            q(r#"{"kind":"median","epsilon":0.2}"#),
            WireQuery::Median { epsilon: 0.2 }
        );
        assert_eq!(
            q(r#"{"kind":"percentile","phi":0.9,"epsilon":0.2}"#),
            WireQuery::Percentile {
                phi: 0.9,
                epsilon: 0.2
            }
        );
        assert_eq!(
            q(r#"{"kind":"heavyhitters","k":4,"epsilon":0.5}"#),
            WireQuery::HeavyHitters { k: 4, epsilon: 0.5 }
        );
    }

    #[test]
    fn default_sum_weights_are_all_ones() {
        let q = WireQuery::Sum {
            weights: None,
            epsilon: 1.0,
        };
        assert_eq!(
            q.into_query(4),
            Query::Sum {
                weights: vec![1.0; 4],
                epsilon: 1.0
            }
        );
    }

    #[test]
    fn malformed_requests_read_as_errors() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"type":"WARP"}"#).is_err());
        assert!(parse_request(r#"{"type":"TICK"}"#).is_err());
        assert!(parse_request(r#"{"type":"TICK","rate":"fast"}"#).is_err());
        assert_eq!(
            parse_request(r#"{"type":"TICKS","rates":[]}"#),
            Err("\"rates\" must not be empty".to_string()),
            "an empty burst is rejected at parse time"
        );
        assert!(parse_request(r#"{"type":"SUBSCRIBE","query":{"kind":"sum"}}"#).is_err());
        assert!(parse_request(
            r#"{"type":"SUBSCRIBE","query":{"kind":"selection","op":"=","constant":1}}"#
        )
        .is_err());
    }

    #[test]
    fn rendered_requests_parse_back() {
        let reqs = [
            Request::Subscribe {
                relation: None,
                query: WireQuery::Sum {
                    weights: None,
                    epsilon: 2.5,
                },
                priority: 3,
            },
            Request::Subscribe {
                relation: Some("energy".to_string()),
                query: WireQuery::Count {
                    op: CmpOp::Ge,
                    constant: 101.25,
                    slack: 4,
                },
                priority: 1,
            },
            Request::Subscribe {
                relation: None,
                query: WireQuery::Median { epsilon: 0.05 },
                priority: 1,
            },
            Request::Subscribe {
                relation: None,
                query: WireQuery::Percentile {
                    phi: 0.95,
                    epsilon: 0.25,
                },
                priority: 2,
            },
            Request::Subscribe {
                relation: None,
                query: WireQuery::HeavyHitters { k: 3, epsilon: 0.5 },
                priority: 1,
            },
            Request::Unsubscribe {
                relation: Some("fx".to_string()),
                session: 12,
            },
            Request::Resume {
                relation: None,
                session: 12,
            },
            Request::Tick {
                relation: Some("energy".to_string()),
                rate: 0.0583,
            },
            Request::Ticks {
                relation: None,
                rates: vec![0.05, 0.0625],
            },
            Request::TickMulti {
                ticks: vec![("default".to_string(), 0.05), ("fx".to_string(), 0.06)],
            },
            Request::Stats {
                relation: Some("fx".to_string()),
            },
            Request::CreateRelation {
                name: "energy".to_string(),
                spec: RelationSpec::Seeded { seed: 7, count: 16 },
            },
            Request::CreateRelation {
                name: "fx".to_string(),
                spec: RelationSpec::Bonds(vec![
                    WireBond {
                        coupon: 0.05,
                        maturity: 10.0,
                        face: 100.0,
                    },
                    WireBond {
                        coupon: 0.0625,
                        maturity: 30.0,
                        face: 1000.0,
                    },
                ]),
            },
            Request::DropRelation {
                name: "fx".to_string(),
            },
            Request::AddBond {
                relation: None,
                bond: WireBond {
                    coupon: 0.07,
                    maturity: 2.5,
                    face: 100.0,
                },
            },
            Request::Use {
                name: "energy".to_string(),
            },
            Request::Relations,
            Request::Stats { relation: None },
            Request::Quit,
        ];
        for req in &reqs {
            let line = render_request(req);
            assert_eq!(&parse_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn result_lines_compose_from_shared_payloads() {
        let partial = Answer::Partial {
            bounds: Bounds::new(1.0, 2.5),
        };
        let fin = Answer::Final(QueryOutput::Count { lo: 2, hi: 2 });
        for answer in [&partial, &fin] {
            let payload = result_payload("default", 7, 0.0584, answer);
            for session in [SessionId(1), SessionId(40)] {
                assert_eq!(
                    result_line(session, &payload),
                    result("default", 7, 0.0584, session, answer),
                    "broadcast wrap must stay byte-identical to the direct line"
                );
            }
        }
    }

    #[test]
    fn resumed_lines_carry_the_last_answer() {
        let sess = crate::session::Session {
            id: SessionId(4),
            query: Query::Max { epsilon: 0.5 },
            priority: 2,
            finals: 7,
            partials: 1,
            driven_iterations: 90,
        };
        let none = resumed("default", &sess, 8, None);
        assert!(Json::parse(&none).is_ok(), "{none}");
        assert!(!none.contains("\"answer\""));
        assert!(none.contains("\"operator\":\"max\""));
        assert!(none.contains("\"relation\":\"default\""));
        let partial = Answer::Partial {
            bounds: Bounds::new(1.0, 2.0),
        };
        let line = resumed("default", &sess, 8, Some(&partial));
        assert!(Json::parse(&line).is_ok(), "{line}");
        assert!(line.contains("\"status\":\"partial\""));
        let fin = Answer::Final(QueryOutput::Count { lo: 3, hi: 3 });
        let line = resumed("default", &sess, 8, Some(&fin));
        assert!(line.contains("\"status\":\"final\""));
        assert!(line.contains("\"shape\":\"count\""));
    }

    #[test]
    fn responses_are_single_line_json() {
        let lines = [
            subscribed("default", SessionId(7)),
            unsubscribed("default", 7),
            created("energy", 2, 16),
            dropped("energy", 2),
            bond_added("default", 8, 9),
            using("energy"),
            error("bad \"thing\"\nhappened"),
            bye(),
            result(
                "default",
                3,
                0.0583,
                SessionId(1),
                &Answer::Partial {
                    bounds: Bounds::new(1.0, 2.0),
                },
            ),
            output_json(&QueryOutput::Extreme {
                bond_id: 5,
                bounds: Bounds::new(99.0, 99.5),
                ties: vec![6, 7],
            }),
            output_json(&QueryOutput::Ranked {
                members: vec![(1, Bounds::new(2.0, 3.0))],
                ties: vec![],
            }),
            output_json(&QueryOutput::Selected(vec![1, 2])),
            output_json(&QueryOutput::Count { lo: 2, hi: 4 }),
            output_json(&QueryOutput::Heavy {
                cells: vec![vao::ops::heavy::HeavyCell { cell: -3, count: 7 }],
                ties: vec![-2, 5],
            }),
        ];
        for line in &lines {
            assert!(!line.contains('\n'), "{line}");
            let parsed = Json::parse(line);
            assert!(parsed.is_ok(), "{line}: {parsed:?}");
        }
        assert!(lines[8].contains("\"status\":\"partial\""));
    }
}
