//! The in-process server: relation catalog, per-tenant session registries
//! and the budgeted scheduler behind one API. The TCP front-end in
//! [`crate::net`] is a thin line-protocol shell over this type, so
//! everything here is testable without sockets.
//!
//! A server hosts one or more relations ([`crate::catalog::Catalog`]).
//! Single-relation construction paths ([`Server::new`],
//! [`Server::open_durable`]) host exactly one relation named
//! [`DEFAULT_RELATION`], and the relation-unqualified methods
//! ([`Server::subscribe`], [`Server::tick`], …) resolve it — existing
//! callers see the historical single-relation behavior unchanged, down to
//! the bit.

use std::path::Path;
use std::time::Instant;

use bondlab::BondPricer;
use va_persist::record::{
    AnswerEntry, AnswerRecord, BondRecord, CalibrationState, JournalEvent, PredicateCounterRecord,
    RelationDefRecord, RelationRecord, RelationSnapshot, SessionSnapshot, SessionTickRecord,
    SnapshotRecord, StatsRecord, TickRecord, WarmObjectRecord, WarmRateRecord,
};
use va_persist::{Meta, MetaRelation, PersistError, Recovery, Store, META_FILE};
use va_stream::{BondRelation, Query, QueryRunRow, RunSummary, TickObserver, TickStats};
use vao::adapters::WarmStart;
use vao::cost::{CalCell, Calibrator, Work, WorkMeter, CAL_CLASSES};
use vao::error::VaoError;
use vao::ops::DEFAULT_ITERATION_LIMIT;
use vao::trace::{
    BudgetExhaustedRecord, ChoiceRecord, CompactionRecord, ExecObserver, HybridDecisionRecord,
    IterationRecord, NoopObserver, OperatorEndRecord, OperatorKind, RecoveryRecord, RoundRecord,
};
use vao::{Bounds, PrecisionConstraint};

use crate::answer::Answer;
use crate::catalog::{Catalog, RelationId, Tenant, DEFAULT_RELATION};
use crate::demand::{PassFail, PredicateStats};
use crate::error::ServerError;
use crate::pool::SharedPool;
use crate::sched;
use crate::session::{Session, SessionId, SessionRegistry};

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Per-tick work budget in deterministic work units (model invocation
    /// and refinement draw from the same allowance). `None` runs every tick
    /// to full convergence. On a multi-relation tick the budget is
    /// arbitrated across the ticked relations by
    /// [`crate::sched::arbitrate_budget`].
    pub budget: Option<Work>,
    /// Defensive cap on scheduler iterations per tick.
    pub iteration_limit: u64,
    /// Worker threads used to execute an admitted batch (and, on a
    /// multi-relation tick, to shard independent relations). Workers never
    /// change *what* the scheduler computes — only how an already-chosen
    /// batch is executed — so any worker count produces bit-identical
    /// answers for a fixed [`ServerConfig::batch`].  Clamped to ≥ 1.
    pub workers: usize,
    /// Objects selected per scheduling round (`None` → 1 when `workers`
    /// is 1, else `2 × workers`: a queue deeper than the worker pool keeps
    /// workers fed and amortizes the per-round demand recomputation
    /// further). This *does* shape the schedule: a batch of B recomputes
    /// demand once per B iterations. `Some(1)` reproduces the historical
    /// serial schedule exactly.
    pub batch: Option<usize>,
    /// Whether an admitted round routes same-grid-shape refinements
    /// through one lane-parallel struct-of-arrays solve instead of
    /// per-object scalar solves (default `true`). Per-lane arithmetic is
    /// bit-identical to the scalar path — same answers, same meter
    /// charges, same traces — so this is purely a throughput knob;
    /// `false` retains the scalar executor as a benchmark baseline.
    pub batch_solver: bool,
    /// Journal events between periodic snapshots on a durable server
    /// (clamped to ≥ 1; ignored without a data dir). This is also the
    /// recovery/disk bound: the journal tail replayed at open and the
    /// segments kept on disk are both O(`snapshot_every`), so lowering it
    /// trades more frequent snapshot writes for faster restarts and a
    /// smaller data dir.
    pub snapshot_every: u64,
    /// Whether the scheduler runs with online cost calibration (PR 10):
    /// admission, budget accounting and cross-tenant arbitration use
    /// `corrected = model(estCPU)` from a per-tenant
    /// [`vao::cost::Calibrator`] trained on every executed iteration, and
    /// SELECT/COUNT probe demands are reordered by learned pass/fail
    /// correlation. Default **off** — and with it off every code path is
    /// bit-identical to the uncalibrated server, which is the golden
    /// contract `--calibrate off` tests pin.
    pub calibrate: bool,
}

/// Default for [`ServerConfig::snapshot_every`]: small enough that
/// recovery replay stays trivial, large enough that snapshot writes stay
/// rare.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 64;

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            budget: None,
            iteration_limit: DEFAULT_ITERATION_LIMIT,
            workers: 1,
            batch: None,
            batch_solver: true,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            calibrate: false,
        }
    }
}

impl ServerConfig {
    /// Config with a per-tick work budget.
    #[must_use]
    pub fn budgeted(budget: Work) -> Self {
        Self {
            budget: Some(budget),
            ..Self::default()
        }
    }

    /// Returns `self` with `workers` worker threads (batch still defaults
    /// to the worker count unless [`ServerConfig::batch`] is set).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns `self` with online cost calibration switched on or off.
    #[must_use]
    pub fn with_calibration(mut self, calibrate: bool) -> Self {
        self.calibrate = calibrate;
        self
    }

    /// The effective per-round batch size: explicit `batch`, else 1 for a
    /// single worker (the serial schedule) and `2 × workers` otherwise,
    /// clamped to ≥ 1.
    #[must_use]
    pub fn effective_batch(&self) -> usize {
        self.batch
            .unwrap_or(if self.workers <= 1 {
                1
            } else {
                self.workers * 2
            })
            .max(1)
    }
}

/// Everything one processed tick produced.
#[derive(Clone, Debug)]
pub struct TickResult {
    /// The relation this tick priced.
    pub relation: RelationId,
    /// 1-based tick sequence number, *per relation*.
    pub tick: u64,
    /// The rate the pool was priced at.
    pub rate: f64,
    /// Per-session answers, in registration order.
    pub answers: Vec<(SessionId, Answer)>,
    /// Work/iteration accounting for the tick (operator `"shared_pool"`).
    pub stats: TickStats,
    /// Whether the budget ran out and some answers degraded to `Partial`.
    pub budget_exhausted: bool,
}

/// A multi-query, multi-relation continuous-query server.
///
/// Register queries with [`Server::subscribe_to`], feed rate ticks with
/// [`Server::tick_relation`] or [`Server::tick_multi`], and every
/// registered session gets an answer per tick — exact when the scheduler
/// converged it within budget, anytime bounds otherwise.
#[derive(Debug)]
pub struct Server {
    pricer: BondPricer,
    config: ServerConfig,
    catalog: Catalog,
    durability: Option<Durability>,
    recovery: Option<RecoveryRecord>,
    recovery_emitted: bool,
    /// Compactions that happened since the last observed tick. Snapshot
    /// writes (and thus compactions) happen between ticks, outside any
    /// observer scope, so they are queued here and emitted into the next
    /// tick's trace stream.
    pending_compactions: Vec<CompactionRecord>,
}

/// The durable half of a server opened with [`Server::open_durable`] or
/// [`Server::open_durable_catalog`]: the on-disk store plus snapshot
/// cadence bookkeeping. (Per-rate warm caches live in each
/// [`Tenant`], not here — warm state is relation-scoped.)
#[derive(Debug)]
struct Durability {
    store: Store,
    snapshot_every: u64,
    events_at_last_snapshot: u64,
}

/// FNV-1a accumulator for the fingerprint functions.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn eat_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn eat_f64(&mut self, v: f64) {
        self.eat_u64(v.to_bits());
    }
}

fn eat_pricer(h: &mut Fnv, pricer: &BondPricer) {
    let m = &pricer.model;
    h.eat_f64(m.sigma);
    h.eat_f64(m.kappa);
    h.eat_f64(m.mu);
    h.eat_f64(m.q);
    h.eat_f64(m.x_min);
    h.eat_f64(m.x_max);
    let v = &pricer.vao;
    h.eat_u64(u64::from(v.initial_nx));
    h.eat_u64(u64::from(v.initial_nt));
    h.eat_f64(v.min_width);
    h.eat_f64(v.safety);
    h.eat_u64(v.solver.max_cells);
}

/// A stable fingerprint of everything that determines what journaled warm
/// bounds *mean* for one relation: the bond universe (cardinality and
/// every bond's fields) and the pricer configuration (short-rate model and
/// result-object construction parameters). Persisted per relation in the
/// data dir metadata; recovery refuses a binding whose fingerprint
/// disagrees, because converged bounds from a different universe that
/// happen to overlap this one's would otherwise be served as final
/// answers.
#[must_use]
pub fn durability_fingerprint(pricer: &BondPricer, relation: &BondRelation) -> u64 {
    let mut h = Fnv::new();
    h.eat_u64(relation.bonds().len() as u64);
    for b in relation.bonds() {
        h.eat_u64(u64::from(b.id));
        h.eat_f64(b.coupon);
        h.eat_f64(b.years_to_maturity);
        h.eat_f64(b.face);
    }
    eat_pricer(&mut h, pricer);
    h.0
}

/// The pricer-only fingerprint stored in catalog metadata: the same FNV
/// tail [`durability_fingerprint`] feeds after the relation, so a legacy
/// combined fingerprint and the catalog's `(pricer, per-relation)` split
/// bind exactly the same facts between them.
#[must_use]
pub fn pricer_fingerprint(pricer: &BondPricer) -> u64 {
    let mut h = Fnv::new();
    eat_pricer(&mut h, pricer);
    h.0
}

/// The definition record a bootstrap (`--bonds`/`--seed`) relation
/// journals when it first lands in a catalog.
fn bootstrap_def(relation: &BondRelation) -> RelationDefRecord {
    RelationDefRecord {
        name: DEFAULT_RELATION.to_string(),
        seed: None,
        bonds: relation
            .bonds()
            .iter()
            .map(|b| BondRecord {
                id: b.id,
                coupon: b.coupon,
                maturity: b.years_to_maturity,
                face: b.face,
            })
            .collect(),
    }
}

/// The catalog metadata this server would persist right now: the pricer
/// fingerprint plus one cached binding per defined relation.
fn catalog_meta(pricer: &BondPricer, catalog: &Catalog) -> Meta {
    Meta::V2 {
        pricer: pricer_fingerprint(pricer),
        relations: catalog
            .tenants()
            .iter()
            .filter(|t| t.is_defined())
            .map(|t| MetaRelation {
                relation: t.id().0,
                fingerprint: durability_fingerprint(pricer, t.relation()),
            })
            .collect(),
    }
}

fn mismatch(dir: &Path, expected: u64, found: u64) -> ServerError {
    PersistError::Mismatch {
        path: dir.join(META_FILE).display().to_string(),
        expected,
        found,
    }
    .into()
}

fn layout(dir: &Path, detail: &str) -> ServerError {
    PersistError::Layout {
        path: dir.display().to_string(),
        detail: detail.to_string(),
    }
    .into()
}

/// Refuses recovered state that references a relation under legacy (V1)
/// metadata that a single-relation dir cannot legitimately contain. The
/// one tolerated catalog event is `CreateRelation` for relation 1 — the
/// footprint of a migration that crashed between the journal append and
/// the metadata rewrite; its definition is fingerprint-checked by the
/// caller.
fn check_legacy_layout(recovered: &Recovery, dir: &Path) -> Result<(), ServerError> {
    if let Some(snap) = &recovered.snapshot {
        for rel in &snap.relations {
            if rel.relation != 1 {
                return Err(layout(
                    dir,
                    "snapshot defines additional relations under legacy single-relation metadata \
                     (mixed generations)",
                ));
            }
        }
    }
    for ev in &recovered.tail {
        let foreign = match ev {
            JournalEvent::CreateRelation(rec) => rec.relation != 1,
            JournalEvent::DropRelation { .. } | JournalEvent::AddBond { .. } => true,
            JournalEvent::Subscribe { relation, .. }
            | JournalEvent::Unsubscribe { relation, .. } => *relation != 1,
            JournalEvent::Tick(t) => t.relation != 1,
            JournalEvent::SnapshotMarker { .. } => false,
        };
        if foreign {
            return Err(layout(
                dir,
                "catalog journal events under legacy single-relation metadata (mixed generations)",
            ));
        }
    }
    Ok(())
}

/// Captures a tenant's calibration state for persistence, or `None` while
/// the state is trivially cold. The cold case is deliberately *absent*
/// rather than serialized: an uncalibrated run's journal bytes are
/// bit-identical to a pre-calibration server's, and parsing an absent
/// field already restores cold state.
fn calibration_state(tenant: &Tenant) -> Option<CalibrationState> {
    if tenant.calibrator.is_cold() && tenant.predicates.is_empty() {
        return None;
    }
    Some(CalibrationState {
        cells: tenant.calibrator.cells().to_vec(),
        predicates: tenant
            .predicates
            .entries()
            .map(|(op, constant, pf)| PredicateCounterRecord {
                op,
                constant,
                pass: pf.pass,
                fail: pf.fail,
            })
            .collect(),
    })
}

/// Restores a persisted calibration state into its tenant, replacing
/// whatever was there (journal replay is last-wins: a later tick's state
/// supersedes the snapshot's).
fn restore_calibration(tenant: &mut Tenant, state: &CalibrationState) -> Result<(), ServerError> {
    let cells: [CalCell; CAL_CLASSES] =
        state
            .cells
            .clone()
            .try_into()
            .map_err(|_| ServerError::Persist {
                detail: format!(
                    "calibration state has {} cells, expected {CAL_CLASSES}",
                    state.cells.len()
                ),
            })?;
    tenant.calibrator = Calibrator::from_cells(cells);
    tenant.predicates = PredicateStats::new();
    for p in &state.predicates {
        tenant.predicates.restore_counter(
            p.op,
            p.constant,
            PassFail {
                pass: p.pass,
                fail: p.fail,
            },
        );
    }
    Ok(())
}

/// Replays recovered state into a catalog: the snapshot's per-relation
/// sections, then the journal tail, then the folded warm maps. Events may
/// reference relations whose `CREATE` was already folded into the snapshot
/// span — [`Catalog::shell`] gives their state somewhere to land, and the
/// caller decides whether a still-undefined shell is acceptable.
fn fold_into_catalog(catalog: &mut Catalog, recovered: &Recovery) -> Result<(), ServerError> {
    if let Some(snap) = &recovered.snapshot {
        catalog.reserve_through(snap.next_relation_id);
        for rel in &snap.relations {
            let tenant = catalog.shell(rel.relation);
            if let Some(def) = &rel.def {
                tenant.define(def)?;
            }
            tenant
                .registry
                .reserve_through(SessionId(rel.next_session_id.saturating_sub(1)));
            for s in &rel.sessions {
                tenant.registry.restore(Session {
                    id: SessionId(s.session),
                    query: s.query.clone(),
                    priority: s.priority,
                    finals: s.finals,
                    partials: s.partials,
                    driven_iterations: s.driven,
                });
            }
            tenant.ticks = rel.ticks;
            tenant.shed = rel.shed;
            tenant.history = rel.history.iter().map(StatsRecord::to_stats).collect();
            tenant.last_answers = restore_answers(&rel.answers)?;
            if let Some(cal) = &rel.calibration {
                restore_calibration(tenant, cal)?;
            }
        }
    }
    for ev in &recovered.tail {
        match ev {
            JournalEvent::CreateRelation(rec) => {
                catalog.shell(rec.relation).define(&rec.def)?;
            }
            JournalEvent::DropRelation { relation } => {
                catalog.remove(RelationId(*relation));
            }
            JournalEvent::AddBond { relation, bond } => {
                let b = crate::catalog::try_bond(bond.id, bond.coupon, bond.maturity, bond.face)
                    .map_err(|detail| ServerError::Persist {
                        detail: format!("corrupt journaled bond {}: {detail}", bond.id),
                    })?;
                catalog.shell(*relation).relation.push(b);
            }
            JournalEvent::Subscribe {
                relation,
                session,
                priority,
                query,
            } => {
                catalog.shell(*relation).registry.restore(Session {
                    id: SessionId(*session),
                    query: query.clone(),
                    priority: *priority,
                    finals: 0,
                    partials: 0,
                    driven_iterations: 0,
                });
            }
            JournalEvent::Unsubscribe { relation, session } => {
                // The id stays burned: the Subscribe replay (or the
                // snapshot's high-water mark) already advanced `next`.
                catalog
                    .shell(*relation)
                    .registry
                    .deregister(SessionId(*session));
            }
            JournalEvent::Tick(t) => {
                let tenant = catalog.shell(t.relation);
                tenant.ticks = t.tick;
                tenant.shed = t.shed;
                tenant.history.push(t.stats.to_stats());
                for delta in &t.sessions {
                    if let Some(sess) = tenant
                        .registry
                        .sessions_mut()
                        .iter_mut()
                        .find(|s| s.id.0 == delta.session)
                    {
                        if delta.is_final {
                            sess.finals += 1;
                        } else {
                            sess.partials += 1;
                        }
                        sess.driven_iterations += delta.driven;
                    }
                }
                tenant.last_answers = restore_answers(&t.answers)?;
                if let Some(cal) = &t.calibration {
                    restore_calibration(tenant, cal)?;
                }
            }
            JournalEvent::SnapshotMarker { .. } => {}
        }
    }
    for (relation, warm) in recovered.warm_maps() {
        if let Some(tenant) = catalog.get_mut(RelationId(relation)) {
            tenant.warm = warm;
        }
    }
    Ok(())
}

/// Refuses a fold that left a tenant without a definition: its `CREATE
/// RELATION` is missing from the journal, so every event that referenced
/// it is attached to a phantom.
fn refuse_undefined_shells(catalog: &Catalog, dir: &Path) -> Result<(), ServerError> {
    for t in catalog.tenants() {
        if !t.is_defined() {
            return Err(PersistError::Corrupt {
                path: dir.display().to_string(),
                detail: format!(
                    "journal references relation {} but no definition was recovered",
                    t.id()
                ),
            }
            .into());
        }
    }
    Ok(())
}

impl Server {
    /// An in-memory server hosting `relation` as the single
    /// [`DEFAULT_RELATION`], pricing with `pricer`.
    #[must_use]
    pub fn new(pricer: BondPricer, relation: BondRelation, config: ServerConfig) -> Self {
        let mut catalog = Catalog::new();
        catalog
            .create(DEFAULT_RELATION, relation, None)
            .expect("empty catalog cannot collide");
        Self {
            pricer,
            config,
            catalog,
            durability: None,
            recovery: None,
            recovery_emitted: false,
            pending_compactions: Vec::new(),
        }
    }

    /// A durable server backed by the data dir at `dir`, hosting
    /// `relation` as [`DEFAULT_RELATION`] and recovering any state a
    /// previous incarnation journaled there.
    ///
    /// Recovery loads the newest valid snapshot, replays the journal tail
    /// on top (pure bookkeeping — journal events carry executed *outcomes*,
    /// so replay never re-prices anything), and seeds each relation's
    /// per-rate warm cache so the next tick at a recovered rate re-admits
    /// objects at their achieved accuracy. A torn final journal record is
    /// truncated and reported (see [`Server::last_recovery`]); anything
    /// worse is a hard [`ServerError::Persist`].
    ///
    /// Identity is checked per generation. A fresh dir is bootstrapped:
    /// the relation definition is journaled as a `CreateRelation` event
    /// and catalog metadata is written, making the dir self-describing
    /// from its first byte. A legacy single-relation dir (PR-4/5
    /// `meta.json`) is verified against its combined fingerprint and then
    /// migrated in place to the catalog layout. A catalog dir is verified
    /// against the pricer fingerprint and its journaled `"default"`
    /// definition — which must match `relation`, since the caller is
    /// asserting this universe. Mixed or ambiguous layouts are refused
    /// with a typed [`PersistError::Layout`].
    pub fn open_durable(
        pricer: BondPricer,
        relation: BondRelation,
        config: ServerConfig,
        dir: &Path,
    ) -> Result<Self, ServerError> {
        let (mut store, recovered, meta) = Store::open(dir)?;
        let mut catalog = Catalog::new();
        match &meta {
            None => {
                if !recovered.is_fresh() {
                    return Err(PersistError::Corrupt {
                        path: dir.join(META_FILE).display().to_string(),
                        detail: "metadata file missing from a non-empty data dir".to_string(),
                    }
                    .into());
                }
                bootstrap_default(&mut store, &mut catalog, &pricer, relation, true)?;
            }
            Some(Meta::V1 { fingerprint }) => {
                let expected = durability_fingerprint(&pricer, &relation);
                if *fingerprint != expected {
                    return Err(mismatch(dir, expected, *fingerprint));
                }
                check_legacy_layout(&recovered, dir)?;
                fold_into_catalog(&mut catalog, &recovered)?;
                let tenant = catalog.shell(1);
                if tenant.is_defined() {
                    // A migration that crashed after journaling the
                    // definition: accept it only if it describes exactly
                    // the bootstrap relation.
                    let found = durability_fingerprint(&pricer, tenant.relation());
                    if found != expected {
                        return Err(mismatch(dir, expected, found));
                    }
                } else {
                    let def = bootstrap_def(&relation);
                    store.append(&JournalEvent::CreateRelation(Box::new(RelationRecord {
                        relation: 1,
                        def: def.clone(),
                    })))?;
                    catalog.shell(1).define(&def)?;
                }
                store.write_meta(&catalog_meta(&pricer, &catalog))?;
            }
            Some(Meta::V2 { pricer: stored, .. }) => {
                let ours = pricer_fingerprint(&pricer);
                if *stored != ours {
                    return Err(mismatch(dir, ours, *stored));
                }
                fold_into_catalog(&mut catalog, &recovered)?;
                if catalog.is_empty() && recovered.is_fresh() {
                    // A fresh bootstrap that crashed after writing catalog
                    // metadata but before journaling its CreateRelation.
                    bootstrap_default(&mut store, &mut catalog, &pricer, relation, false)?;
                } else {
                    refuse_undefined_shells(&catalog, dir)?;
                    let expected = durability_fingerprint(&pricer, &relation);
                    let found = match catalog.by_name(DEFAULT_RELATION) {
                        Some(t) => durability_fingerprint(&pricer, t.relation()),
                        None => {
                            return Err(layout(
                                dir,
                                "catalog data dir has no \"default\" relation; open it with \
                                 open_durable_catalog instead of a bootstrap relation",
                            ))
                        }
                    };
                    if found != expected {
                        return Err(mismatch(dir, expected, found));
                    }
                    // Heal stale cached bindings (a crash between a catalog
                    // journal append and the metadata rewrite): the journal
                    // is authoritative, the metadata is a cache.
                    let want = catalog_meta(&pricer, &catalog);
                    if meta.as_ref() != Some(&want) {
                        store.write_meta(&want)?;
                    }
                }
            }
        }
        Ok(Self::finish_durable(
            pricer, config, store, &recovered, catalog,
        ))
    }

    /// A durable server over a *self-describing* catalog data dir: every
    /// relation definition comes from the journal, none from flags. A
    /// fresh dir opens with an empty catalog (create relations over the
    /// protocol); a legacy single-relation dir is refused with
    /// [`PersistError::Layout`] — open it once via [`Server::open_durable`]
    /// with its original bootstrap relation to migrate it.
    pub fn open_durable_catalog(
        pricer: BondPricer,
        config: ServerConfig,
        dir: &Path,
    ) -> Result<Self, ServerError> {
        let (store, recovered, meta) = Store::open(dir)?;
        let mut catalog = Catalog::new();
        match &meta {
            None => {
                if !recovered.is_fresh() {
                    return Err(PersistError::Corrupt {
                        path: dir.join(META_FILE).display().to_string(),
                        detail: "metadata file missing from a non-empty data dir".to_string(),
                    }
                    .into());
                }
                store.write_meta(&Meta::V2 {
                    pricer: pricer_fingerprint(&pricer),
                    relations: Vec::new(),
                })?;
            }
            Some(Meta::V1 { .. }) => {
                return Err(layout(
                    dir,
                    "legacy single-relation data dir; open it once with its bootstrap relation \
                     (--bonds/--seed) to migrate it to the catalog layout",
                ));
            }
            Some(Meta::V2 { pricer: stored, .. }) => {
                let ours = pricer_fingerprint(&pricer);
                if *stored != ours {
                    return Err(mismatch(dir, ours, *stored));
                }
                fold_into_catalog(&mut catalog, &recovered)?;
                refuse_undefined_shells(&catalog, dir)?;
                let want = catalog_meta(&pricer, &catalog);
                if meta.as_ref() != Some(&want) {
                    store.write_meta(&want)?;
                }
            }
        }
        Ok(Self::finish_durable(
            pricer, config, store, &recovered, catalog,
        ))
    }

    fn finish_durable(
        pricer: BondPricer,
        config: ServerConfig,
        store: Store,
        recovered: &Recovery,
        catalog: Catalog,
    ) -> Self {
        let events_at_last_snapshot = recovered.snapshot.as_ref().map_or(0, |s| s.journal_events);
        Self {
            pricer,
            config,
            catalog,
            durability: Some(Durability {
                store,
                snapshot_every: config.snapshot_every.max(1),
                events_at_last_snapshot,
            }),
            recovery: Some(RecoveryRecord {
                snapshot_seq: recovered.snapshot_seq(),
                replayed_events: recovered.replayed_events(),
                truncated_bytes: recovered.truncated_bytes,
                skipped_snapshots: recovered.skipped_snapshot_count(),
                swept_tmp_files: recovered.swept_tmp_files,
            }),
            recovery_emitted: false,
            pending_compactions: Vec::new(),
        }
    }

    /// The relation catalog this server hosts.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The recovery report from a durable open, if this server was opened
    /// durably: which snapshot seeded it, how many journal events replayed
    /// on top, and whether a torn final record was truncated. `None` for
    /// in-memory servers.
    #[must_use]
    pub fn last_recovery(&self) -> Option<RecoveryRecord> {
        self.recovery
    }

    /// Whether this server journals to a data dir.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    fn tenant(&self, name: &str) -> Result<&Tenant, ServerError> {
        self.catalog
            .by_name(name)
            .ok_or_else(|| ServerError::UnknownRelation(name.to_string()))
    }

    fn tenant_index(&self, name: &str) -> Result<usize, ServerError> {
        self.catalog
            .index_of_name(name)
            .ok_or_else(|| ServerError::UnknownRelation(name.to_string()))
    }

    fn default_tenant(&self) -> &Tenant {
        self.catalog
            .by_name(DEFAULT_RELATION)
            .expect("server has no \"default\" relation")
    }

    /// Persists the current catalog metadata; no-op on in-memory servers.
    fn rewrite_meta(&self) -> Result<(), ServerError> {
        if let Some(d) = &self.durability {
            d.store
                .write_meta(&catalog_meta(&self.pricer, &self.catalog))?;
        }
        Ok(())
    }

    /// Creates (and, when durable, journals) a new relation. The
    /// definition is journaled *before* the catalog commits it, and the
    /// metadata cache is rewritten after — a crash between the two leaves
    /// a stale cache that the next open heals from the journal.
    pub fn create_relation(
        &mut self,
        name: &str,
        relation: BondRelation,
        seed: Option<u64>,
    ) -> Result<RelationId, ServerError> {
        if self.catalog.by_name(name).is_some() {
            return Err(ServerError::RelationExists(name.to_string()));
        }
        let id = self.catalog.next_id();
        if let Some(d) = &mut self.durability {
            let def = RelationDefRecord {
                name: name.to_string(),
                seed,
                bonds: relation
                    .bonds()
                    .iter()
                    .map(|b| BondRecord {
                        id: b.id,
                        coupon: b.coupon,
                        maturity: b.years_to_maturity,
                        face: b.face,
                    })
                    .collect(),
            };
            d.store
                .append(&JournalEvent::CreateRelation(Box::new(RelationRecord {
                    relation: id.0,
                    def,
                })))?;
        }
        let created = self.catalog.create(name, relation, seed)?;
        debug_assert_eq!(created, id);
        self.rewrite_meta()?;
        self.maybe_snapshot()?;
        Ok(id)
    }

    /// Drops a relation and everything namespaced under it (sessions,
    /// warm state, history). The relation id stays burned.
    pub fn drop_relation(&mut self, name: &str) -> Result<RelationId, ServerError> {
        let id = self.tenant(name)?.id();
        if let Some(d) = &mut self.durability {
            d.store
                .append(&JournalEvent::DropRelation { relation: id.0 })?;
        }
        self.catalog.remove(id);
        self.rewrite_meta()?;
        self.maybe_snapshot()?;
        Ok(id)
    }

    /// Appends one bond to a relation, assigning the next id in relation
    /// order. Existing warm state for the relation keys to the old
    /// cardinality and is discarded lazily by the alignment filter at the
    /// next tick; `SUM` subscriptions whose weight vectors were sized for
    /// the old cardinality will fail their per-tick validation until
    /// resubscribed.
    pub fn add_bond(
        &mut self,
        name: &str,
        coupon: f64,
        maturity: f64,
        face: f64,
    ) -> Result<u32, ServerError> {
        let idx = self.tenant_index(name)?;
        let bond_id =
            u32::try_from(self.catalog.tenants()[idx].relation().len()).map_err(|_| {
                ServerError::Internal {
                    detail: "relation grew past u32 bond ids",
                }
            })?;
        let bond = crate::catalog::try_bond(bond_id, coupon, maturity, face)
            .map_err(ServerError::InvalidBond)?;
        if let Some(d) = &mut self.durability {
            d.store.append(&JournalEvent::AddBond {
                relation: self.catalog.tenants()[idx].id().0,
                bond: BondRecord {
                    id: bond.id,
                    coupon: bond.coupon,
                    maturity: bond.years_to_maturity,
                    face: bond.face,
                },
            })?;
        }
        self.catalog.tenants_mut()[idx].relation.push(bond);
        self.rewrite_meta()?;
        self.maybe_snapshot()?;
        Ok(bond_id)
    }

    /// Registers a query against the named relation. Structural validation
    /// (ε positive and finite, weight count, k range, finite constants)
    /// happens here so a malformed subscription fails fast; the `minWidth`
    /// floor checks run per tick against the live pool.
    pub fn subscribe_to(
        &mut self,
        name: &str,
        query: Query,
        priority: u32,
    ) -> Result<SessionId, ServerError> {
        let idx = self.tenant_index(name)?;
        let n = self.catalog.tenants()[idx].relation().len();
        if n == 0 {
            return Err(ServerError::EmptyRelation);
        }
        validate_query_structure(&query, n)?;
        // Write-ahead order: the admission is journaled (and fsync'd)
        // before the registry commits it, so a crash can lose an
        // unacknowledged subscription but never acknowledge one it lost.
        if let Some(d) = &mut self.durability {
            let tenant = &self.catalog.tenants()[idx];
            d.store.append(&JournalEvent::Subscribe {
                relation: tenant.id().0,
                session: tenant.sessions().next_id(),
                priority: priority.max(1),
                query: query.clone(),
            })?;
        }
        let id = self.catalog.tenants_mut()[idx]
            .registry
            .register(query, priority);
        self.maybe_snapshot()?;
        Ok(id)
    }

    /// Removes a session from the named relation.
    pub fn unsubscribe_in(&mut self, name: &str, id: SessionId) -> Result<(), ServerError> {
        let idx = self.tenant_index(name)?;
        if self.catalog.tenants()[idx].sessions().get(id).is_none() {
            return Err(ServerError::UnknownSession(id.0));
        }
        if let Some(d) = &mut self.durability {
            d.store.append(&JournalEvent::Unsubscribe {
                relation: self.catalog.tenants()[idx].id().0,
                session: id.0,
            })?;
        }
        self.catalog.tenants_mut()[idx].registry.deregister(id);
        self.maybe_snapshot()?;
        Ok(())
    }

    /// Looks up a session in the named relation for `RESUME`: the live
    /// session plus its most recent answer, if it has been answered at
    /// all.
    pub fn resume_in(
        &self,
        name: &str,
        id: SessionId,
    ) -> Result<(&Session, Option<&Answer>), ServerError> {
        let tenant = self.tenant(name)?;
        let sess = tenant
            .sessions()
            .get(id)
            .ok_or(ServerError::UnknownSession(id.0))?;
        let answer = tenant
            .last_answers
            .iter()
            .find(|(aid, _)| *aid == id)
            .map(|(_, a)| a);
        Ok((sess, answer))
    }

    /// Groups one relation's tick answers by query shape for broadcast
    /// fan-out (see [`SessionRegistry::broadcast_groups`]): the front-end
    /// serializes one payload per group instead of one per session.
    pub fn broadcast_groups_in<'a>(
        &self,
        name: &str,
        answers: &'a [(SessionId, Answer)],
    ) -> Result<Vec<crate::session::Broadcast<'a>>, ServerError> {
        Ok(self.tenant(name)?.sessions().broadcast_groups(answers))
    }

    /// Run-level accounting for one relation: the fold of every processed
    /// tick's stats plus one [`QueryRunRow`] per live session.
    pub fn summary_in(&self, name: &str) -> Result<RunSummary, ServerError> {
        let tenant = self.tenant(name)?;
        let rows: Vec<QueryRunRow> = tenant
            .sessions()
            .sessions()
            .iter()
            .map(|s| QueryRunRow {
                session: s.id.0,
                operator: s.query.operator_name(),
                priority: s.priority,
                finals: s.finals,
                partials: s.partials,
                driven_iterations: s.driven_iterations,
            })
            .collect();
        Ok(RunSummary::from_ticks(&tenant.history).with_per_query(rows))
    }

    /// Queues a tick for the named relation (see [`Server::offer_tick`]).
    pub fn offer_tick_in(&mut self, name: &str, rate: f64) -> Result<(), ServerError> {
        let idx = self.tenant_index(name)?;
        let tenant = &mut self.catalog.tenants_mut()[idx];
        if tenant.queued.replace(rate).is_some() {
            tenant.shed += 1;
        }
        Ok(())
    }

    /// Runs the named relation's queued tick, if any.
    pub fn run_queued_in(&mut self, name: &str) -> Option<Result<TickResult, ServerError>> {
        let idx = self.tenant_index(name).ok()?;
        let rate = self.catalog.tenants_mut()[idx].queued.take()?;
        Some(self.tick_relation(name, rate))
    }

    /// Processes one rate tick for every session of the named relation,
    /// with the full configured budget (a lone tick has no co-tenants to
    /// arbitrate against).
    pub fn tick_relation(&mut self, name: &str, rate: f64) -> Result<TickResult, ServerError> {
        self.tick_relation_with_observer(name, rate, &mut NoopObserver)
    }

    /// Like [`Server::tick_relation`], additionally streaming scheduler
    /// trace events (choices, iterations, budget exhaustion) to `observer`
    /// — this is how the bench harness lands server runs in the JSONL
    /// trace.
    pub fn tick_relation_with_observer<O: ExecObserver>(
        &mut self,
        name: &str,
        rate: f64,
        observer: &mut O,
    ) -> Result<TickResult, ServerError> {
        // Surface the recovery report (once) into the same trace stream the
        // tick lands in, so a JSONL trace of a recovered run shows *why*
        // its first tick starts warm.
        if !self.recovery_emitted {
            self.recovery_emitted = true;
            if let Some(rec) = self.recovery {
                if observer.is_enabled() {
                    observer.on_recovery(&rec);
                }
            }
        }
        // Compactions queued by between-tick snapshot writes land in the
        // next tick's trace; drained unconditionally so an untraced run
        // does not accumulate them forever.
        for c in self.pending_compactions.drain(..) {
            if observer.is_enabled() {
                observer.on_compaction(&c);
            }
        }
        let idx = self.tenant_index(name)?;
        let durable = self.durability.is_some();
        let exec = execute_tenant_tick(
            &self.pricer,
            &self.config,
            &mut self.catalog.tenants_mut()[idx],
            rate,
            self.config.budget,
            self.config.workers,
            durable,
            observer,
        )?;
        let result = self.commit_tick(idx, rate, exec)?;
        self.maybe_snapshot()?;
        Ok(result)
    }

    /// Journals (durable servers) and commits one executed tick into its
    /// tenant. Write-ahead order: the tick record is fsync'd before the
    /// tenant's counters move, matching the single-relation contract.
    fn commit_tick(
        &mut self,
        idx: usize,
        rate: f64,
        exec: TickExec,
    ) -> Result<TickResult, ServerError> {
        let TickExec {
            answers,
            stats,
            budget_exhausted,
            warm_now,
            record,
        } = exec;
        if let Some(d) = &mut self.durability {
            if let Some(record) = record {
                d.store.append(&JournalEvent::Tick(record))?;
            }
        }
        let tenant = &mut self.catalog.tenants_mut()[idx];
        if let Some(warm) = warm_now {
            tenant.warm.insert(rate.to_bits(), warm);
        }
        tenant.history.push(stats);
        tenant.ticks += 1;
        tenant.last_answers = answers.clone();
        Ok(TickResult {
            relation: tenant.id,
            tick: tenant.ticks,
            rate,
            answers,
            stats,
            budget_exhausted,
        })
    }

    /// Processes one tick across several relations under **one** work
    /// budget: [`crate::sched::arbitrate_budget`] splits
    /// [`ServerConfig::budget`] across the listed relations in proportion
    /// to their §5 demand weight (the sum of their sessions' priorities),
    /// and each relation then runs an ordinary tick inside its slice.
    ///
    /// Independent relations are sharded across the scoped worker threads
    /// when `workers > 1`; each shard executes with an inner worker count
    /// of 1 while the batch size stays [`ServerConfig::effective_batch`],
    /// so sharding never changes any relation's schedule — per-relation
    /// results are bit-identical to the sequential path, and to N isolated
    /// single-relation servers given the same per-relation budgets.
    ///
    /// Journal appends happen after execution, in the caller's tick order,
    /// so the journal stays deterministic regardless of sharding.
    pub fn tick_multi(&mut self, ticks: &[(&str, f64)]) -> Result<Vec<TickResult>, ServerError> {
        // Resolve everything up front: an unknown or duplicate relation
        // fails the whole request before any relation executes.
        let mut indices = Vec::with_capacity(ticks.len());
        for (name, _) in ticks {
            let idx = self.tenant_index(name)?;
            if indices.contains(&idx) {
                return Err(ServerError::Internal {
                    detail: "duplicate relation in a multi-relation tick",
                });
            }
            if self.catalog.tenants()[idx].relation().is_empty() {
                return Err(ServerError::EmptyRelation);
            }
            indices.push(idx);
        }
        let weights: Vec<u64> = indices
            .iter()
            .map(|&i| {
                let t = &self.catalog.tenants()[i];
                let base: u64 = t
                    .sessions()
                    .sessions()
                    .iter()
                    .map(|s| u64::from(s.priority))
                    .sum();
                if self.config.calibrate {
                    // Calibrated arbitration: a tenant whose iterations
                    // measure costlier than claimed (gain > 1e6 ppm) draws
                    // a proportionally larger slice, so its slice buys the
                    // same *intended* work as its co-tenants'. Cold models
                    // report exactly 1e6 — identity.
                    let scaled = u128::from(base) * u128::from(t.calibrator.gain_ppm()) / 1_000_000;
                    u64::try_from(scaled).unwrap_or(u64::MAX)
                } else {
                    base
                }
            })
            .collect();
        let budgets = sched::arbitrate_budget(self.config.budget, &weights);
        let durable = self.durability.is_some();
        let workers = self.config.workers.max(1);

        let mut execs: Vec<Option<Result<TickExec, ServerError>>> =
            (0..ticks.len()).map(|_| None).collect();
        if workers <= 1 || indices.len() == 1 {
            for (slot, &idx) in indices.iter().enumerate() {
                execs[slot] = Some(execute_tenant_tick(
                    &self.pricer,
                    &self.config,
                    &mut self.catalog.tenants_mut()[idx],
                    ticks[slot].1,
                    budgets[slot],
                    workers,
                    durable,
                    &mut NoopObserver,
                ));
            }
        } else {
            // Shard independent relations across the scoped worker pool.
            // Each shard executes with workers = 1, which cannot change
            // results: the schedule is fixed by the (unchanged) batch
            // size, and workers only decide who runs an admitted batch.
            let mut slot_of = vec![None; self.catalog.len()];
            for (slot, &idx) in indices.iter().enumerate() {
                slot_of[idx] = Some(slot);
            }
            let pricer = &self.pricer;
            let config = &self.config;
            let budgets = &budgets;
            let mut jobs: Vec<(usize, &mut Tenant, f64)> = self
                .catalog
                .tenants_mut()
                .iter_mut()
                .enumerate()
                .filter_map(|(i, t)| slot_of[i].map(|slot| (slot, t, ticks[slot].1)))
                .collect();
            let threads = workers.min(jobs.len()).max(1);
            let chunk = jobs.len().div_ceil(threads);
            // One sharded tenant tick outcome, tagged with its `ticks` slot.
            type ShardOutcome = (usize, Result<TickExec, ServerError>);
            let joined: Result<Vec<Vec<ShardOutcome>>, _> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                while !jobs.is_empty() {
                    let take = chunk.min(jobs.len());
                    let mine: Vec<_> = jobs.drain(..take).collect();
                    handles.push(scope.spawn(move || {
                        mine.into_iter()
                            .map(|(slot, tenant, rate)| {
                                let exec = execute_tenant_tick(
                                    pricer,
                                    config,
                                    tenant,
                                    rate,
                                    budgets[slot],
                                    1,
                                    durable,
                                    &mut NoopObserver,
                                );
                                (slot, exec)
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                handles.into_iter().map(|h| h.join()).collect()
            });
            let joined = joined.map_err(|_| ServerError::Internal {
                detail: "worker thread panicked during a multi-relation tick",
            })?;
            for shard in joined {
                for (slot, exec) in shard {
                    execs[slot] = Some(exec);
                }
            }
        }

        // Commit in the caller's tick order: journal appends, then tenant
        // state, one relation at a time.
        let mut out = Vec::with_capacity(ticks.len());
        for (slot, &idx) in indices.iter().enumerate() {
            let exec = execs[slot].take().expect("every slot executed")?;
            out.push(self.commit_tick(idx, ticks[slot].1, exec)?);
        }
        self.maybe_snapshot()?;
        Ok(out)
    }

    /// Flushes durable state for a clean shutdown: appends a snapshot
    /// marker and writes a final snapshot covering it, so the next durable
    /// open recovers with zero journal replay. A no-op for in-memory
    /// servers.
    ///
    /// This belongs to *listener* shutdown (SIGTERM/SIGINT, end of the
    /// serve loop) — a `QUIT` from one client is connection-scoped and
    /// does not reach here.
    pub fn shutdown(&mut self) -> Result<(), ServerError> {
        if self.durability.is_some() {
            self.write_snapshot()?;
        }
        Ok(())
    }

    /// Writes a periodic snapshot once enough journal events have
    /// accumulated since the last one. No-op for in-memory servers.
    fn maybe_snapshot(&mut self) -> Result<(), ServerError> {
        let due = match &self.durability {
            Some(d) => d.store.journal_events() - d.events_at_last_snapshot >= d.snapshot_every,
            None => false,
        };
        if due {
            self.write_snapshot()?;
        }
        Ok(())
    }

    /// Appends a snapshot marker, then writes a snapshot covering it (so
    /// recovery from this snapshot replays nothing). The snapshot embeds
    /// every relation's definition, so a snapshot-seeded recovery is as
    /// self-describing as a journal fold.
    fn write_snapshot(&mut self) -> Result<(), ServerError> {
        let seq = match &self.durability {
            Some(d) => d.store.next_snapshot_seq(),
            None => return Ok(()),
        };
        // Marker first: the snapshot's event count then covers the marker
        // itself, and recovery's replay tail is empty after a clean write.
        let snap = {
            let d = self.durability.as_mut().expect("checked durable above");
            d.store.append(&JournalEvent::SnapshotMarker { seq })?;
            SnapshotRecord {
                seq,
                journal_events: d.store.journal_events(),
                // Coverage ends exactly where the journal does right now
                // (the marker just appended is the last covered byte).
                coverage: Some(d.store.journal_position()),
                next_relation_id: self.catalog.next_id().0,
                relations: self
                    .catalog
                    .tenants()
                    .iter()
                    .map(|t| RelationSnapshot {
                        relation: t.id().0,
                        def: t.is_defined().then(|| t.def_record()),
                        next_session_id: t.sessions().next_id(),
                        ticks: t.ticks,
                        shed: t.shed,
                        sessions: t
                            .sessions()
                            .sessions()
                            .iter()
                            .map(|s| SessionSnapshot {
                                session: s.id.0,
                                priority: s.priority,
                                finals: s.finals,
                                partials: s.partials,
                                driven: s.driven_iterations,
                                query: s.query.clone(),
                            })
                            .collect(),
                        history: t.history.iter().map(StatsRecord::from_stats).collect(),
                        warm: t
                            .warm
                            .iter()
                            .map(|(&bits, objects)| WarmRateRecord {
                                rate: f64::from_bits(bits),
                                objects: objects.clone(),
                            })
                            .collect(),
                        answers: t
                            .last_answers
                            .iter()
                            .map(|(id, a)| AnswerEntry {
                                session: id.0,
                                answer: answer_record(a),
                            })
                            .collect(),
                        calibration: calibration_state(t),
                    })
                    .collect(),
            }
        };
        let d = self.durability.as_mut().expect("checked durable above");
        let report = d.store.write_snapshot(&snap)?;
        d.events_at_last_snapshot = snap.journal_events;
        if report.segments_deleted > 0 {
            self.pending_compactions.push(CompactionRecord {
                snapshot_seq: seq,
                segments_deleted: report.segments_deleted,
                bytes_reclaimed: report.bytes_reclaimed,
                live_segments: report.live_segments,
            });
        }
        Ok(())
    }

    // --- single-relation compatibility surface -------------------------
    //
    // Every method below resolves the relation named "default", which the
    // single-relation construction paths always create. They keep PR-1..8
    // callers (bench harness, experiments, tests) source-compatible and
    // bit-identical.

    /// The default relation the server prices.
    ///
    /// # Panics
    /// When the server hosts no relation named `"default"` (catalog-only
    /// servers); use [`Server::catalog`] there.
    #[must_use]
    pub fn relation(&self) -> &BondRelation {
        self.default_tenant().relation()
    }

    /// The default relation's live session registry (panics like
    /// [`Server::relation`] on catalog-only servers).
    #[must_use]
    pub fn sessions(&self) -> &SessionRegistry {
        self.default_tenant().sessions()
    }

    /// Registers a query against the default relation.
    pub fn subscribe(&mut self, query: Query, priority: u32) -> Result<SessionId, ServerError> {
        self.subscribe_to(DEFAULT_RELATION, query, priority)
    }

    /// Removes a session from the default relation.
    pub fn unsubscribe(&mut self, id: SessionId) -> Result<(), ServerError> {
        self.unsubscribe_in(DEFAULT_RELATION, id)
    }

    /// Looks up a session in the default relation for `RESUME`.
    pub fn resume(&self, id: SessionId) -> Result<(&Session, Option<&Answer>), ServerError> {
        self.resume_in(DEFAULT_RELATION, id)
    }

    /// The answer each default-relation session received on the most
    /// recent tick (or, after recovery, on the last journaled tick), in
    /// registration order.
    #[must_use]
    pub fn last_answers(&self) -> &[(SessionId, Answer)] {
        &self.default_tenant().last_answers
    }

    /// Groups the default relation's tick answers by query shape for
    /// broadcast fan-out.
    #[must_use]
    pub fn broadcast_groups<'a>(
        &self,
        answers: &'a [(SessionId, Answer)],
    ) -> Vec<crate::session::Broadcast<'a>> {
        self.default_tenant().sessions().broadcast_groups(answers)
    }

    /// Processes one rate tick for the default relation.
    pub fn tick(&mut self, rate: f64) -> Result<TickResult, ServerError> {
        self.tick_relation(DEFAULT_RELATION, rate)
    }

    /// Like [`Server::tick`], streaming scheduler trace events to
    /// `observer`.
    pub fn tick_with_observer<O: ExecObserver>(
        &mut self,
        rate: f64,
        observer: &mut O,
    ) -> Result<TickResult, ServerError> {
        self.tick_relation_with_observer(DEFAULT_RELATION, rate, observer)
    }

    /// Queues a tick for the default relation, coalescing: when a tick is
    /// already waiting, the stale rate is shed (only the newest matters —
    /// the paper's continuous queries answer against the *current* market)
    /// and the shed counter grows.
    pub fn offer_tick(&mut self, rate: f64) {
        self.offer_tick_in(DEFAULT_RELATION, rate)
            .expect("server has no \"default\" relation");
    }

    /// Runs the default relation's queued tick, if any.
    pub fn run_queued(&mut self) -> Option<Result<TickResult, ServerError>> {
        self.run_queued_in(DEFAULT_RELATION)
    }

    /// Ticks shed by coalescing on the default relation so far.
    #[must_use]
    pub fn shed_ticks(&self) -> u64 {
        self.default_tenant().shed()
    }

    /// Ticks the default relation has processed.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.default_tenant().ticks()
    }

    /// Run-level accounting for the default relation.
    #[must_use]
    pub fn summary(&self) -> RunSummary {
        self.summary_in(DEFAULT_RELATION)
            .expect("server has no \"default\" relation")
    }
}

/// Bootstraps a fresh catalog dir around one `"default"` relation. The
/// initial empty-catalog metadata (when requested) types the dir *before*
/// the first journal byte; the definition is then journaled and the
/// metadata rewritten with its binding. Every crash window in between
/// reopens cleanly: empty-meta + empty journal resumes here, journaled
/// definition + stale meta heals at the next open.
fn bootstrap_default(
    store: &mut Store,
    catalog: &mut Catalog,
    pricer: &BondPricer,
    relation: BondRelation,
    write_initial_meta: bool,
) -> Result<(), ServerError> {
    if write_initial_meta {
        store.write_meta(&Meta::V2 {
            pricer: pricer_fingerprint(pricer),
            relations: Vec::new(),
        })?;
    }
    let def = bootstrap_def(&relation);
    store.append(&JournalEvent::CreateRelation(Box::new(RelationRecord {
        relation: catalog.next_id().0,
        def,
    })))?;
    catalog.create(DEFAULT_RELATION, relation, None)?;
    store.write_meta(&catalog_meta(pricer, catalog))?;
    Ok(())
}

/// Everything [`execute_tenant_tick`] produced, before the commit:
/// answers and stats for the caller, plus (durable servers) the journal
/// record and end-of-tick warm state. Committing — journal append, then
/// tenant counters — is the caller's job, preserving write-ahead order
/// across both the single- and multi-relation tick paths.
struct TickExec {
    answers: Vec<(SessionId, Answer)>,
    stats: TickStats,
    budget_exhausted: bool,
    warm_now: Option<Vec<WarmObjectRecord>>,
    record: Option<Box<TickRecord>>,
}

/// Executes one relation's tick: pool invocation (warm-seeded when the
/// tenant has journaled this rate), floor validation, the budgeted
/// scheduler, and stats/record assembly. Mutates only `tenant` — never
/// the journal or another relation — so independent tenants can execute
/// on separate threads.
#[allow(clippy::too_many_arguments)] // two call sites; the knobs are the API
fn execute_tenant_tick<O: ExecObserver>(
    pricer: &BondPricer,
    config: &ServerConfig,
    tenant: &mut Tenant,
    rate: f64,
    budget: Option<Work>,
    workers: usize,
    durable: bool,
    observer: &mut O,
) -> Result<TickExec, ServerError> {
    if tenant.relation.bonds().is_empty() {
        return Err(ServerError::EmptyRelation);
    }
    let start = Instant::now();
    let mut meter = WorkMeter::new();

    // A durable server that has journaled a tick at this exact rate
    // re-admits every object at its achieved accuracy. The warm cache
    // is a deterministic fold of the journal, so an uninterrupted
    // server and a crashed-and-recovered one seed identical pools —
    // which is what makes their subsequent ticks bit-identical.
    // A prior that is not aligned with the relation (a journal record
    // damaged in a way that still parses) is discarded wholesale, both
    // for seeding and for the per-object accumulation below.
    let warm_prior: Option<Vec<WarmObjectRecord>> = if durable {
        tenant
            .warm
            .get(&rate.to_bits())
            .filter(|p| p.len() == tenant.relation.bonds().len())
            .cloned()
    } else {
        None
    };
    let mut pool = match &warm_prior {
        Some(objs) => {
            let seeds = warm_seeds(objs)?;
            SharedPool::invoke_warm(pricer, &tenant.relation, rate, &seeds, &mut meter)
        }
        None => SharedPool::invoke(pricer, &tenant.relation, rate, &mut meter),
    };
    validate_floor(&tenant.registry, &pool)?;

    let driven_before: Vec<u64> = tenant
        .registry
        .sessions()
        .iter()
        .map(|s| s.driven_iterations)
        .collect();

    let mut tick_obs = TickObserver::new();
    let mut fan = Fanout(&mut tick_obs, observer);
    // Calibration threads the tenant's own model through the scheduler —
    // `None` (the default) leaves every admission decision bit-identical
    // to the uncalibrated server.
    let calibration = if config.calibrate {
        Some(sched::Calibration {
            model: &mut tenant.calibrator,
            predicates: &mut tenant.predicates,
        })
    } else {
        None
    };
    let outcome = sched::run_tick(
        &mut tenant.registry,
        &mut pool,
        &tenant.relation,
        budget,
        config.iteration_limit,
        workers,
        config.effective_batch(),
        config.batch_solver,
        calibration,
        &mut meter,
        &mut fan,
    )?;

    let stats = TickStats {
        rate,
        work: meter.breakdown(),
        wall: start.elapsed(),
        iterations: meter.iterations(),
        operator: OperatorKind::SharedPool.name(),
        objects: tick_obs.objects(),
        iter_histogram: tick_obs.histogram(),
        cpu_est: tick_obs.cpu_estimation(),
    };

    let (warm_now, record) = if durable {
        // End-of-tick object state, with lifetime counters accumulated
        // across warm re-admissions at this rate.
        let warm_now: Vec<WarmObjectRecord> = (0..pool.len())
            .map(|i| {
                let b = pool.bounds(i);
                WarmObjectRecord {
                    lo: b.lo(),
                    hi: b.hi(),
                    converged: pool.converged(i),
                    iters: warm_prior.as_ref().map_or(0, |p| p[i].iters)
                        + outcome.per_object_iterations[i],
                    cost: pool.cumulative_cost(i),
                }
            })
            .collect();
        let sessions: Vec<SessionTickRecord> = tenant
            .registry
            .sessions()
            .iter()
            .zip(&driven_before)
            .zip(&outcome.answers)
            .map(|((s, &before), (_, ans))| SessionTickRecord {
                session: s.id.0,
                is_final: ans.is_final(),
                driven: s.driven_iterations - before,
            })
            .collect();
        let record = TickRecord {
            relation: tenant.id.0,
            tick: tenant.ticks + 1,
            rate,
            shed: tenant.shed,
            budget_exhausted: outcome.budget_exhausted,
            stats: StatsRecord::from_stats(&stats),
            sessions,
            answers: outcome
                .answers
                .iter()
                .map(|(id, a)| AnswerEntry {
                    session: id.0,
                    answer: answer_record(a),
                })
                .collect(),
            warm: warm_now.clone(),
            calibration: calibration_state(tenant),
        };
        (Some(warm_now), Some(Box::new(record)))
    } else {
        (None, None)
    };

    Ok(TickExec {
        answers: outcome.answers,
        stats,
        budget_exhausted: outcome.budget_exhausted,
        warm_now,
        record,
    })
}

/// Structural subscription validation against a relation of `n` bonds.
fn validate_query_structure(query: &Query, n: usize) -> Result<(), ServerError> {
    match query {
        Query::Selection { constant, .. } | Query::Count { constant, .. } => {
            if !constant.is_finite() {
                return Err(VaoError::NonFiniteConstant { value: *constant }.into());
            }
        }
        Query::Sum { weights, epsilon } => {
            PrecisionConstraint::new(*epsilon)?;
            if weights.len() != n {
                return Err(VaoError::WeightCountMismatch {
                    objects: n,
                    weights: weights.len(),
                }
                .into());
            }
            for (index, &weight) in weights.iter().enumerate() {
                if !(weight.is_finite() && weight >= 0.0) {
                    return Err(VaoError::InvalidWeight { index, weight }.into());
                }
            }
        }
        Query::Ave { epsilon } | Query::Max { epsilon } | Query::Min { epsilon } => {
            PrecisionConstraint::new(*epsilon)?;
        }
        Query::TopK { k, epsilon } => {
            PrecisionConstraint::new(*epsilon)?;
            if *k == 0 || *k > n {
                return Err(VaoError::EmptyInput.into());
            }
        }
        Query::Median { epsilon } => {
            PrecisionConstraint::new(*epsilon)?;
        }
        Query::Percentile { phi, epsilon } => {
            PrecisionConstraint::new(*epsilon)?;
            if !phi.is_finite() || !(0.0..=1.0).contains(phi) {
                return Err(VaoError::InvalidQuantile { phi: *phi }.into());
            }
        }
        Query::HeavyHitters { k, epsilon } => {
            // ε is the cell width here, but the same positivity and
            // finiteness rules apply.
            PrecisionConstraint::new(*epsilon)?;
            if *k == 0 {
                return Err(VaoError::EmptyInput.into());
            }
        }
    }
    Ok(())
}

/// Per-tick ε floor checks against the live pool (footnote 10: ε below
/// the achievable `minWidth` floor is an error, not a hang).
fn validate_floor(registry: &SessionRegistry, pool: &SharedPool) -> Result<(), ServerError> {
    for sess in registry.sessions() {
        match &sess.query {
            Query::Selection { .. } | Query::Count { .. } => {}
            Query::Sum { weights, epsilon } => {
                PrecisionConstraint::new(*epsilon)?.validate_weighted(pool.objects(), weights)?;
            }
            Query::Ave { epsilon } => {
                let uniform = vec![1.0 / pool.len() as f64; pool.len()];
                PrecisionConstraint::new(*epsilon)?.validate_weighted(pool.objects(), &uniform)?;
            }
            Query::Max { epsilon }
            | Query::Min { epsilon }
            | Query::TopK { epsilon, .. }
            | Query::Median { epsilon }
            | Query::Percentile { epsilon, .. } => {
                PrecisionConstraint::new(*epsilon)?.validate_single_object(pool.objects())?;
            }
            // HEAVYHITTERS' ε is a cell width, not an output precision:
            // objects converge at the minWidth floor and resolve to
            // their midpoint cell, so no floor check applies.
            Query::HeavyHitters { .. } => {}
        }
    }
    Ok(())
}

/// Converts a delivered [`Answer`] into its persisted form.
fn answer_record(a: &Answer) -> AnswerRecord {
    match a {
        Answer::Final(out) => AnswerRecord::Final(out.clone()),
        Answer::Partial { bounds } => AnswerRecord::Partial {
            lo: bounds.lo(),
            hi: bounds.hi(),
        },
    }
}

/// Rebuilds in-memory answers from their persisted form.
fn restore_answers(entries: &[AnswerEntry]) -> Result<Vec<(SessionId, Answer)>, ServerError> {
    entries
        .iter()
        .map(|e| {
            let answer = match &e.answer {
                AnswerRecord::Final(out) => Answer::Final(out.clone()),
                AnswerRecord::Partial { lo, hi } => Answer::Partial {
                    bounds: Bounds::try_new(*lo, *hi)?,
                },
            };
            Ok((SessionId(e.session), answer))
        })
        .collect()
}

/// Converts journaled per-object records into [`WarmStart`] seeds.
fn warm_seeds(objs: &[WarmObjectRecord]) -> Result<Vec<WarmStart>, ServerError> {
    objs.iter()
        .map(|w| {
            Ok(WarmStart {
                bounds: Bounds::try_new(w.lo, w.hi)?,
                converged: w.converged,
                prior_cost: w.cost,
            })
        })
        .collect()
}
/// Fans trace events out to the server's internal [`TickObserver`] and the
/// caller's observer in one pass.
struct Fanout<'a, A: ExecObserver, B: ExecObserver>(&'a mut A, &'a mut B);

impl<A: ExecObserver, B: ExecObserver> ExecObserver for Fanout<'_, A, B> {
    fn is_enabled(&self) -> bool {
        self.0.is_enabled() || self.1.is_enabled()
    }
    fn on_operator_start(&mut self, kind: OperatorKind, objects: usize) {
        if self.0.is_enabled() {
            self.0.on_operator_start(kind, objects);
        }
        if self.1.is_enabled() {
            self.1.on_operator_start(kind, objects);
        }
    }
    fn on_choice(&mut self, choice: &ChoiceRecord) {
        if self.0.is_enabled() {
            self.0.on_choice(choice);
        }
        if self.1.is_enabled() {
            self.1.on_choice(choice);
        }
    }
    fn on_iteration(&mut self, iteration: &IterationRecord) {
        if self.0.is_enabled() {
            self.0.on_iteration(iteration);
        }
        if self.1.is_enabled() {
            self.1.on_iteration(iteration);
        }
    }
    fn on_hybrid_decision(&mut self, decision: &HybridDecisionRecord) {
        if self.0.is_enabled() {
            self.0.on_hybrid_decision(decision);
        }
        if self.1.is_enabled() {
            self.1.on_hybrid_decision(decision);
        }
    }
    fn on_budget_exhausted(&mut self, record: &BudgetExhaustedRecord) {
        if self.0.is_enabled() {
            self.0.on_budget_exhausted(record);
        }
        if self.1.is_enabled() {
            self.1.on_budget_exhausted(record);
        }
    }
    fn on_recovery(&mut self, record: &RecoveryRecord) {
        if self.0.is_enabled() {
            self.0.on_recovery(record);
        }
        if self.1.is_enabled() {
            self.1.on_recovery(record);
        }
    }
    fn on_compaction(&mut self, record: &CompactionRecord) {
        if self.0.is_enabled() {
            self.0.on_compaction(record);
        }
        if self.1.is_enabled() {
            self.1.on_compaction(record);
        }
    }
    fn on_round(&mut self, round: &RoundRecord) {
        if self.0.is_enabled() {
            self.0.on_round(round);
        }
        if self.1.is_enabled() {
            self.1.on_round(round);
        }
    }
    fn on_operator_end(&mut self, end: &OperatorEndRecord) {
        if self.0.is_enabled() {
            self.0.on_operator_end(end);
        }
        if self.1.is_enabled() {
            self.1.on_operator_end(end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bondlab::{BondUniverse, RateSeries};

    fn small_server(config: ServerConfig) -> Server {
        let universe = BondUniverse::generate(8, 42);
        let relation = BondRelation::from_universe(&universe);
        Server::new(BondPricer::default(), relation, config)
    }

    fn small_relation() -> BondRelation {
        BondRelation::from_universe(&BondUniverse::generate(8, 42))
    }

    fn relation_of(count: usize, seed: u64) -> BondRelation {
        BondRelation::from_universe(&BondUniverse::generate(count, seed))
    }

    /// A unique scratch dir per call; removed by the caller where it
    /// matters, otherwise left to the OS temp cleaner.
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "va-server-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn subscribe_validates_structurally() {
        let mut srv = small_server(ServerConfig::default());
        assert!(srv.subscribe(Query::Max { epsilon: 0.5 }, 1).is_ok());
        assert!(matches!(
            srv.subscribe(Query::Max { epsilon: -1.0 }, 1),
            Err(ServerError::Vao(VaoError::InvalidPrecision { .. }))
        ));
        assert!(matches!(
            srv.subscribe(
                Query::Sum {
                    weights: vec![1.0; 3],
                    epsilon: 0.5
                },
                1
            ),
            Err(ServerError::Vao(VaoError::WeightCountMismatch { .. }))
        ));
        assert!(matches!(
            srv.subscribe(Query::TopK { k: 0, epsilon: 0.5 }, 1),
            Err(ServerError::Vao(VaoError::EmptyInput))
        ));
        assert!(matches!(
            srv.subscribe(
                Query::Selection {
                    op: vao::ops::selection::CmpOp::Gt,
                    constant: f64::NAN
                },
                1
            ),
            Err(ServerError::Vao(VaoError::NonFiniteConstant { .. }))
        ));
    }

    #[test]
    fn unbudgeted_tick_answers_every_session_final() {
        let mut srv = small_server(ServerConfig::default());
        let a = srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap();
        let b = srv
            .subscribe(
                Query::Sum {
                    weights: vec![1.0; 8],
                    epsilon: 1.0,
                },
                2,
            )
            .unwrap();
        let rate = RateSeries::january_1994().opening_rate();
        let res = srv.tick(rate).unwrap();
        assert_eq!(res.tick, 1);
        assert_eq!(res.relation, RelationId(1));
        assert_eq!(res.answers.len(), 2);
        assert!(!res.budget_exhausted);
        assert_eq!(res.stats.operator, "shared_pool");
        for (id, ans) in &res.answers {
            assert!(ans.is_final(), "session {id} should be final");
        }
        assert_eq!(res.answers[0].0, a);
        assert_eq!(res.answers[1].0, b);
        let summary = srv.summary();
        assert_eq!(summary.ticks, 1);
        assert_eq!(summary.per_query.len(), 2);
        assert!(summary.per_query.iter().all(|r| r.finals == 1));
        // Someone must have driven the refinement work.
        assert!(
            summary
                .per_query
                .iter()
                .map(|r| r.driven_iterations)
                .sum::<u64>()
                > 0
        );
    }

    #[test]
    fn poisoned_downward_calibration_never_frees_admission_for_warm_pools() {
        use vao::trace::{Recorder, TraceEvent};

        let dir = scratch_dir("poisoned-cal");
        let rate = RateSeries::january_1994().opening_rate();
        let config = ServerConfig {
            budget: Some(6_000),
            batch: Some(2),
            ..ServerConfig::default()
        }
        .with_calibration(true);

        let mut srv = Server::open_durable(BondPricer::default(), relation_of(8, 42), config, &dir)
            .expect("open durable server");
        srv.subscribe(Query::Max { epsilon: 1.0 }, 1).unwrap();
        srv.subscribe(
            Query::Selection {
                op: vao::ops::selection::CmpOp::Gt,
                constant: 100.0,
            },
            1,
        )
        .unwrap();
        // Repeat the rate until the loose sessions converge: the warm
        // state a restart re-admits for free.
        let mut pre = None;
        for _ in 0..4 {
            pre = Some(srv.tick(rate).expect("pre-crash tick"));
        }
        let pre = pre.expect("at least one tick");
        assert!(
            pre.answers.iter().any(|(_, a)| a.is_final()),
            "warm state must contain at least one converged session"
        );
        drop(srv);

        let mut recovered =
            Server::open_durable(BondPricer::default(), relation_of(8, 42), config, &dir)
                .expect("reopen durable server");
        // Corrupt the recovered model into claiming every iteration is
        // nearly free (`actual ≈ 0` in every warm class). The `.max(1)`
        // clamp in `Calibrator::correct` is the guard under test: a
        // positive raw estimate must never correct to zero, or budget
        // admission would become free and a recovered warm pool could
        // re-admit objects past their achieved accuracy without bound.
        let poisoned = [CalCell {
            observations: 64,
            est_sum: 1 << 16,
            actual_sum: 0,
        }; CAL_CLASSES];
        recovered
            .catalog
            .get_mut(RelationId(1))
            .expect("default tenant")
            .calibrator = Calibrator::from_cells(poisoned);

        let mut rec = Recorder::new();
        let res = recovered
            .tick_with_observer(rate, &mut rec)
            .expect("poisoned tick");
        for e in rec.events() {
            if let TraceEvent::Round(r) = e {
                assert!(
                    r.est_cpu >= r.admitted as u64,
                    "admission went free: {} objects admitted for estCPU {}",
                    r.admitted,
                    r.est_cpu
                );
            }
        }
        // Converged sessions answer from warm state at their achieved
        // accuracy — the poisoned model must not degrade them.
        for ((pid, pa), (rid, ra)) in pre.answers.iter().zip(&res.answers) {
            assert_eq!(pid, rid);
            if pa.is_final() {
                assert_eq!(pa, ra, "session {pid} lost its converged answer");
            }
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tight_budget_degrades_to_partial_answers() {
        let mut srv = small_server(ServerConfig::default());
        srv.subscribe(Query::Max { epsilon: 0.05 }, 1).unwrap();
        let rate = RateSeries::january_1994().opening_rate();
        let full = srv.tick(rate).unwrap();
        let full_work = full.stats.total_work();

        // Re-run with a budget well below the converged cost: the answer
        // must degrade, not error, and its bounds must bracket the final.
        let mut tight = small_server(ServerConfig::budgeted(full_work / 3));
        tight.subscribe(Query::Max { epsilon: 0.05 }, 1).unwrap();
        let partial = tight.tick(rate).unwrap();
        assert!(partial.budget_exhausted);
        let bounds = partial.answers[0].1.partial_bounds().expect("partial");
        let final_bounds = match full.answers[0].1.final_output().unwrap() {
            va_stream::QueryOutput::Extreme { bounds, .. } => *bounds,
            other => panic!("unexpected shape {other:?}"),
        };
        let mid = 0.5 * (final_bounds.lo() + final_bounds.hi());
        assert!(
            bounds.lo() <= mid && mid <= bounds.hi(),
            "partial {bounds} must bracket converged mid {mid}"
        );
        assert!(partial.stats.total_work() <= full_work);
        assert_eq!(tight.summary().per_query[0].partials, 1);
    }

    #[test]
    fn tick_coalescing_sheds_stale_rates() {
        let mut srv = small_server(ServerConfig::default());
        srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap();
        assert!(srv.run_queued().is_none());
        srv.offer_tick(0.0583);
        srv.offer_tick(0.0584);
        srv.offer_tick(0.0585);
        assert_eq!(srv.shed_ticks(), 2);
        let res = srv.run_queued().unwrap().unwrap();
        assert_eq!(res.rate, 0.0585, "only the newest rate is priced");
        assert!(srv.run_queued().is_none(), "queue drained");
        assert_eq!(srv.ticks(), 1);
    }

    #[test]
    fn unknown_relation_is_a_typed_error() {
        let mut srv = small_server(ServerConfig::default());
        assert!(matches!(
            srv.subscribe_to("energy", Query::Max { epsilon: 0.5 }, 1),
            Err(ServerError::UnknownRelation(name)) if name == "energy"
        ));
        assert!(matches!(
            srv.tick_relation("energy", 0.0583),
            Err(ServerError::UnknownRelation(_))
        ));
        assert!(matches!(
            srv.tick_multi(&[("default", 0.0583), ("energy", 0.0583)]),
            Err(ServerError::UnknownRelation(_))
        ));
        assert!(matches!(
            srv.resume_in("energy", SessionId(1)),
            Err(ServerError::UnknownRelation(_))
        ));
        assert!(matches!(
            srv.drop_relation("energy"),
            Err(ServerError::UnknownRelation(_))
        ));
        // A dropped relation is indistinguishable from one never created.
        srv.create_relation("energy", relation_of(4, 7), None)
            .unwrap();
        srv.subscribe_to("energy", Query::Max { epsilon: 0.5 }, 1)
            .unwrap();
        srv.drop_relation("energy").unwrap();
        assert!(matches!(
            srv.subscribe_to("energy", Query::Max { epsilon: 0.5 }, 1),
            Err(ServerError::UnknownRelation(_))
        ));
        // Its id stays burned: re-creating the name issues a fresh id.
        let fresh = srv
            .create_relation("energy", relation_of(4, 7), None)
            .unwrap();
        assert_eq!(fresh, RelationId(3));
        // Duplicate names are refused, and malformed bonds never panic.
        assert!(matches!(
            srv.create_relation("energy", relation_of(4, 7), None),
            Err(ServerError::RelationExists(_))
        ));
        assert!(matches!(
            srv.add_bond("energy", 1.5, 10.0, 100.0),
            Err(ServerError::InvalidBond(_))
        ));
    }

    #[test]
    fn co_hosted_relations_match_isolated_servers() {
        // One host serving two relations under a single arbitrated budget
        // must produce, per relation, exactly the bytes an isolated
        // single-relation server produces when given that relation's slice.
        let rate = RateSeries::january_1994().opening_rate();
        let total: Work = 60_000;
        let specs = [
            (DEFAULT_RELATION, 8_usize, 42_u64, 3_u32),
            ("energy", 6, 7, 1),
        ];

        let mut host = Server::new(
            BondPricer::default(),
            relation_of(specs[0].1, specs[0].2),
            ServerConfig::budgeted(total),
        );
        host.create_relation("energy", relation_of(specs[1].1, specs[1].2), None)
            .unwrap();
        for (name, count, _, prio) in &specs {
            host.subscribe_to(name, Query::Max { epsilon: 0.1 }, *prio)
                .unwrap();
            host.subscribe_to(
                name,
                Query::Sum {
                    weights: vec![1.0; *count],
                    epsilon: 0.1,
                },
                *prio,
            )
            .unwrap();
        }
        let results = host
            .tick_multi(&[(specs[0].0, rate), (specs[1].0, rate)])
            .unwrap();

        let weights: Vec<u64> = specs.iter().map(|s| u64::from(s.3) * 2).collect();
        let slices = sched::arbitrate_budget(Some(total), &weights);
        for (i, (name, count, seed, prio)) in specs.iter().enumerate() {
            let mut iso = Server::new(
                BondPricer::default(),
                relation_of(*count, *seed),
                ServerConfig::budgeted(slices[i].unwrap()),
            );
            iso.subscribe(Query::Max { epsilon: 0.1 }, *prio).unwrap();
            iso.subscribe(
                Query::Sum {
                    weights: vec![1.0; *count],
                    epsilon: 0.1,
                },
                *prio,
            )
            .unwrap();
            let alone = iso.tick(rate).unwrap();
            assert_eq!(
                results[i].answers, alone.answers,
                "co-hosted answers for {name} diverged from an isolated server"
            );
            assert_eq!(results[i].stats.work, alone.stats.work);
            assert_eq!(results[i].stats.iterations, alone.stats.iterations);
            assert_eq!(results[i].budget_exhausted, alone.budget_exhausted);
        }
    }

    #[test]
    fn sharded_multi_tick_is_bit_identical_to_sequential() {
        // Worker threads shard relations but must never change results:
        // the batch size (which *does* shape the schedule) is pinned, so
        // the sequential (workers = 1) and sharded (workers = 4) hosts
        // must agree bit for bit.
        let rate = RateSeries::january_1994().opening_rate();
        let build = |workers: usize| {
            let config = ServerConfig {
                budget: Some(40_000),
                batch: Some(2),
                workers,
                ..ServerConfig::default()
            };
            let mut srv = Server::new(BondPricer::default(), relation_of(8, 42), config);
            for (name, count, seed) in [("energy", 6_usize, 7_u64), ("fx", 5, 9)] {
                srv.create_relation(name, relation_of(count, seed), None)
                    .unwrap();
            }
            for (name, count) in [(DEFAULT_RELATION, 8_usize), ("energy", 6), ("fx", 5)] {
                srv.subscribe_to(name, Query::Max { epsilon: 0.1 }, 2)
                    .unwrap();
                srv.subscribe_to(
                    name,
                    Query::Sum {
                        weights: vec![1.0; count],
                        epsilon: 0.1,
                    },
                    1,
                )
                .unwrap();
            }
            srv
        };
        let ticks = [(DEFAULT_RELATION, rate), ("energy", rate), ("fx", rate)];
        let mut seq = build(1);
        let mut shard = build(4);
        for _ in 0..3 {
            let a = seq.tick_multi(&ticks).unwrap();
            let b = shard.tick_multi(&ticks).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.relation, y.relation);
                assert_eq!(x.answers, y.answers, "sharding changed answers");
                assert_eq!(x.stats.work, y.stats.work, "sharding changed work");
                assert_eq!(x.stats.iterations, y.stats.iterations);
            }
        }
    }

    #[test]
    fn thirty_two_relations_match_isolated_servers() {
        // Acceptance floor: ≥ 32 co-hosted relations, each bit-identical
        // to its own isolated server. Unbudgeted (every relation runs to
        // convergence) with a pinned batch so worker sharding is exercised
        // without perturbing any schedule.
        let rate = RateSeries::january_1994().opening_rate();
        let host_config = ServerConfig {
            batch: Some(1),
            workers: 4,
            ..ServerConfig::default()
        };
        let mut host = Server::new(BondPricer::default(), relation_of(4, 1), host_config);
        let mut names: Vec<String> = vec![DEFAULT_RELATION.to_string()];
        for i in 2..=32_u64 {
            let name = format!("rel{i}");
            host.create_relation(&name, relation_of(4, i), None)
                .unwrap();
            names.push(name);
        }
        for (i, name) in names.iter().enumerate() {
            host.subscribe_to(name, Query::Max { epsilon: 0.05 }, 1 + (i as u32 % 3))
                .unwrap();
        }
        let ticks: Vec<(&str, f64)> = names.iter().map(|n| (n.as_str(), rate)).collect();
        let results = host.tick_multi(&ticks).unwrap();
        assert_eq!(host.catalog().len(), 32);
        for (i, name) in names.iter().enumerate() {
            let iso_config = ServerConfig {
                batch: Some(1),
                ..ServerConfig::default()
            };
            let mut iso = Server::new(
                BondPricer::default(),
                relation_of(4, (i as u64) + 1),
                iso_config,
            );
            iso.subscribe(Query::Max { epsilon: 0.05 }, 1 + (i as u32 % 3))
                .unwrap();
            let alone = iso.tick(rate).unwrap();
            assert_eq!(
                results[i].answers, alone.answers,
                "relation {name} diverged from its isolated server"
            );
            assert_eq!(results[i].stats.work, alone.stats.work);
        }
    }

    #[test]
    fn durable_server_round_trips_through_clean_shutdown() {
        let dir = scratch_dir("clean");
        let rate = RateSeries::january_1994().opening_rate();
        let (id, first) = {
            let mut srv = Server::open_durable(
                BondPricer::default(),
                small_relation(),
                ServerConfig::default(),
                &dir,
            )
            .unwrap();
            assert!(srv.is_durable());
            let rec = srv.last_recovery().unwrap();
            assert_eq!(rec.snapshot_seq, None, "fresh dir recovers nothing");
            assert_eq!(rec.replayed_events, 0);
            let id = srv.subscribe(Query::Max { epsilon: 0.5 }, 2).unwrap();
            let res = srv.tick(rate).unwrap();
            srv.shutdown().unwrap();
            (id, res)
        };

        let mut srv = Server::open_durable(
            BondPricer::default(),
            small_relation(),
            ServerConfig::default(),
            &dir,
        )
        .unwrap();
        let rec = srv.last_recovery().unwrap();
        assert!(rec.snapshot_seq.is_some(), "clean shutdown snapshotted");
        assert_eq!(rec.replayed_events, 0, "clean shutdown replays nothing");
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(srv.ticks(), 1);
        let (sess, answer) = srv.resume(id).unwrap();
        assert_eq!(sess.priority, 2);
        assert_eq!(sess.finals, 1);
        assert_eq!(answer.unwrap(), &first.answers[0].1);
        // The recovered high-water mark never re-issues the id.
        let fresh = srv.subscribe(Query::Min { epsilon: 0.5 }, 1).unwrap();
        assert!(fresh.0 > id.0);
        // A repeat tick at the recovered rate starts from the warm cache:
        // everything already converged, so zero refinement iterations.
        let warm = srv.tick(rate).unwrap();
        assert_eq!(
            warm.answers[0].1, first.answers[0].1,
            "warm re-admission reproduces the answer"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_catalog_round_trips_through_a_crash() {
        // A catalog dir is fully self-describing: relations created over
        // the control plane come back after an unclean stop (no shutdown,
        // no snapshot) with their definitions, sessions, per-relation tick
        // counters, and last answers intact — and with no bootstrap
        // relation or flags supplied at reopen.
        let dir = scratch_dir("catalog");
        let rate = RateSeries::january_1994().opening_rate();
        let pricer = BondPricer::default();
        let (id_a, id_b, first) = {
            let mut srv =
                Server::open_durable_catalog(pricer, ServerConfig::default(), &dir).unwrap();
            assert!(srv.catalog().is_empty(), "fresh catalog dir starts empty");
            srv.create_relation("rates", relation_of(8, 42), None)
                .unwrap();
            srv.create_relation("energy", relation_of(6, 7), None)
                .unwrap();
            srv.create_relation("doomed", relation_of(4, 9), None)
                .unwrap();
            let id_a = srv
                .subscribe_to("rates", Query::Max { epsilon: 0.5 }, 2)
                .unwrap();
            let id_b = srv
                .subscribe_to("energy", Query::Min { epsilon: 0.5 }, 1)
                .unwrap();
            // Session id spaces are per relation, exactly like isolated
            // servers: both tenants issue id 1.
            assert_eq!(id_a, id_b);
            srv.add_bond("energy", 0.05, 10.0, 100.0).unwrap();
            srv.drop_relation("doomed").unwrap();
            let first = srv
                .tick_multi(&[("rates", rate), ("energy", rate)])
                .unwrap();
            (id_a, id_b, first)
            // Dropped without shutdown(): recovery folds the journal.
        };

        let mut srv = Server::open_durable_catalog(pricer, ServerConfig::default(), &dir).unwrap();
        assert_eq!(srv.catalog().len(), 2);
        assert!(srv.catalog().by_name("doomed").is_none());
        let energy = srv.catalog().by_name("energy").unwrap();
        assert_eq!(energy.relation().len(), 7, "ADD BOND survived recovery");
        let (sess, ans) = srv.resume_in("rates", id_a).unwrap();
        assert_eq!(sess.priority, 2);
        assert_eq!(ans.unwrap(), &first[0].answers[0].1);
        let (_, ans_b) = srv.resume_in("energy", id_b).unwrap();
        assert_eq!(ans_b.unwrap(), &first[1].answers[0].1);
        // A repeat tick on the unmodified relation is warm and
        // bit-identical; the grown relation's warm state no longer aligns
        // and falls back to a cold tick without error.
        let again = srv
            .tick_multi(&[("rates", rate), ("energy", rate)])
            .unwrap();
        assert_eq!(again[0].answers[0].1, first[0].answers[0].1);
        assert_eq!(again[0].tick, 2);
        assert!(again[1].answers[0].1.is_final());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mixed_and_mismatched_layouts_are_refused() {
        // open_durable_catalog refuses a legacy (V1) dir outright.
        let dir = scratch_dir("v1-refused");
        let relation = small_relation();
        let pricer = BondPricer::default();
        {
            let fp = durability_fingerprint(&pricer, &relation);
            let (store, _, _) = va_persist::Store::open(&dir).unwrap();
            store.write_meta(&Meta::V1 { fingerprint: fp }).unwrap();
        }
        match Server::open_durable_catalog(pricer, ServerConfig::default(), &dir) {
            Err(ServerError::Persist { detail }) => {
                assert!(detail.contains("ambiguous data dir layout"), "{detail}");
            }
            other => panic!("expected Layout refusal, got {other:?}"),
        }
        // A V1 dir whose journal already carries catalog-generation events
        // is a mixed generation: refused by both open paths.
        {
            let (mut store, _, _) = va_persist::Store::open(&dir).unwrap();
            store
                .append(&JournalEvent::DropRelation { relation: 2 })
                .unwrap();
        }
        match Server::open_durable(pricer, relation.clone(), ServerConfig::default(), &dir) {
            Err(ServerError::Persist { detail }) => {
                assert!(detail.contains("ambiguous data dir layout"), "{detail}");
            }
            other => panic!("expected Layout refusal, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);

        // And a catalog dir with no "default" relation cannot be opened
        // through the single-relation bootstrap path.
        let dir2 = scratch_dir("no-default");
        {
            let mut srv =
                Server::open_durable_catalog(pricer, ServerConfig::default(), &dir2).unwrap();
            srv.create_relation("energy", relation_of(4, 7), None)
                .unwrap();
        }
        match Server::open_durable(pricer, relation, ServerConfig::default(), &dir2) {
            Err(ServerError::Persist { detail }) => {
                assert!(detail.contains("no \"default\" relation"), "{detail}");
            }
            other => panic!("expected Layout refusal, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn legacy_dir_migrates_to_the_catalog_layout() {
        // A PR-4/5 data dir (V1 meta, bare journal) opens through
        // open_durable exactly once with its original flags, after which
        // the dir is self-describing: open_durable_catalog works with no
        // bootstrap relation at all.
        let dir = scratch_dir("migrate");
        let relation = small_relation();
        let pricer = BondPricer::default();
        let rate = RateSeries::january_1994().opening_rate();
        {
            let fp = durability_fingerprint(&pricer, &relation);
            let (store, _, _) = va_persist::Store::open(&dir).unwrap();
            store.write_meta(&Meta::V1 { fingerprint: fp }).unwrap();
        }
        let first = {
            let mut srv =
                Server::open_durable(pricer, relation.clone(), ServerConfig::default(), &dir)
                    .unwrap();
            let t = srv.catalog().by_name(DEFAULT_RELATION).unwrap();
            assert_eq!(t.id(), RelationId(1));
            srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap();
            srv.tick(rate).unwrap()
        };
        let mut srv = Server::open_durable_catalog(pricer, ServerConfig::default(), &dir).unwrap();
        assert_eq!(srv.ticks(), 1);
        let again = srv.tick(rate).unwrap();
        assert_eq!(again.answers, first.answers, "migrated dir stays warm");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_data_dir_means_no_journal_and_resume_still_works() {
        let mut srv = small_server(ServerConfig::default());
        assert!(!srv.is_durable());
        assert!(srv.last_recovery().is_none());
        let id = srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap();
        assert!(matches!(
            srv.resume(SessionId(99)),
            Err(ServerError::UnknownSession(99))
        ));
        let (_, none_yet) = srv.resume(id).unwrap();
        assert!(none_yet.is_none(), "no tick yet, no last answer");
        let res = srv.tick(0.0583).unwrap();
        let (_, ans) = srv.resume(id).unwrap();
        assert_eq!(ans.unwrap(), &res.answers[0].1);
        srv.shutdown().unwrap(); // no-op without a data dir
    }

    #[test]
    fn reopening_with_a_different_universe_is_refused() {
        let dir = scratch_dir("fingerprint");
        let rate = RateSeries::january_1994().opening_rate();
        {
            let mut srv = Server::open_durable(
                BondPricer::default(),
                small_relation(),
                ServerConfig::default(),
                &dir,
            )
            .unwrap();
            srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap();
            srv.tick(rate).unwrap();
        }
        // Same cardinality, different bonds: the recovered warm bounds
        // would overlap this universe's and be served as final answers.
        let same_size = BondRelation::from_universe(&BondUniverse::generate(8, 43));
        match Server::open_durable(
            BondPricer::default(),
            same_size,
            ServerConfig::default(),
            &dir,
        ) {
            Err(ServerError::Persist { detail }) => {
                assert!(detail.contains("fingerprint mismatch"), "{detail}");
            }
            other => panic!("expected Persist mismatch, got {other:?}"),
        }
        // A grown universe (same seed, more bonds) is refused at open
        // instead of panicking on the first tick at a journaled rate.
        let grown = BondRelation::from_universe(&BondUniverse::generate(12, 42));
        assert!(
            Server::open_durable(BondPricer::default(), grown, ServerConfig::default(), &dir)
                .is_err()
        );
        // A different pricer configuration is refused too.
        let pricer = BondPricer {
            model: bondlab::ShortRateModel {
                sigma: 0.03,
                ..bondlab::ShortRateModel::default()
            },
            ..BondPricer::default()
        };
        assert!(
            Server::open_durable(pricer, small_relation(), ServerConfig::default(), &dir).is_err()
        );
        // The original universe still recovers cleanly.
        let srv = Server::open_durable(
            BondPricer::default(),
            small_relation(),
            ServerConfig::default(),
            &dir,
        )
        .unwrap();
        assert_eq!(srv.ticks(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn misaligned_warm_record_falls_back_to_a_cold_tick() {
        // A journal record can be damaged in a way that still parses —
        // e.g. a warm array shorter than the relation. The tick must
        // discard the prior (seeding *and* iteration accumulation), not
        // index past its end.
        let dir = scratch_dir("shortwarm");
        let relation = small_relation();
        let pricer = BondPricer::default();
        let rate = RateSeries::january_1994().opening_rate();
        {
            let fp = durability_fingerprint(&pricer, &relation);
            let (mut store, _, _) = va_persist::Store::open(&dir).unwrap();
            store.write_meta(&Meta::V1 { fingerprint: fp }).unwrap();
            store
                .append(&JournalEvent::Tick(Box::new(TickRecord {
                    relation: 1,
                    tick: 1,
                    rate,
                    shed: 0,
                    budget_exhausted: false,
                    stats: StatsRecord {
                        rate,
                        work: vao::cost::WorkBreakdown::default(),
                        wall_nanos: 1,
                        iterations: 0,
                        operator: "shared_pool".to_string(),
                        objects: 0,
                        hist: [0; va_stream::stats::ITER_BUCKETS],
                        cpu: vao::trace::CpuEstimation::default(),
                    },
                    sessions: Vec::new(),
                    answers: Vec::new(),
                    warm: vec![WarmObjectRecord {
                        lo: 0.0,
                        hi: 1.0,
                        converged: true,
                        iters: 3,
                        cost: 5,
                    }],
                    calibration: None,
                })))
                .unwrap();
        }
        let mut srv =
            Server::open_durable(pricer, relation, ServerConfig::default(), &dir).unwrap();
        assert_eq!(srv.ticks(), 1, "the forged tick replayed");
        srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap();
        let res = srv.tick(rate).unwrap();
        assert!(res.answers[0].1.is_final(), "cold fallback still answers");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsubscribe_stops_answering() {
        let mut srv = small_server(ServerConfig::default());
        let a = srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap();
        let b = srv.subscribe(Query::Min { epsilon: 0.5 }, 1).unwrap();
        srv.unsubscribe(a).unwrap();
        assert!(matches!(
            srv.unsubscribe(a),
            Err(ServerError::UnknownSession(1))
        ));
        let res = srv.tick(0.0583).unwrap();
        assert_eq!(res.answers.len(), 1);
        assert_eq!(res.answers[0].0, b);
    }
}
