//! The in-process server: session registry + shared pool + budgeted
//! scheduler behind one API. The TCP front-end in [`crate::net`] is a thin
//! line-protocol shell over this type, so everything here is testable
//! without sockets.

use std::path::Path;
use std::time::Instant;

use bondlab::BondPricer;
use va_persist::record::{
    AnswerEntry, AnswerRecord, JournalEvent, SessionSnapshot, SessionTickRecord, SnapshotRecord,
    StatsRecord, TickRecord, WarmObjectRecord, WarmRateRecord,
};
use va_persist::{Store, WarmMap};
use va_stream::{BondRelation, Query, QueryRunRow, RunSummary, TickObserver, TickStats};
use vao::adapters::WarmStart;
use vao::cost::{Work, WorkMeter};
use vao::error::VaoError;
use vao::ops::DEFAULT_ITERATION_LIMIT;
use vao::trace::{
    BudgetExhaustedRecord, ChoiceRecord, CompactionRecord, ExecObserver, HybridDecisionRecord,
    IterationRecord, NoopObserver, OperatorEndRecord, OperatorKind, RecoveryRecord, RoundRecord,
};
use vao::{Bounds, PrecisionConstraint};

use crate::answer::Answer;
use crate::error::ServerError;
use crate::pool::SharedPool;
use crate::sched;
use crate::session::{Session, SessionId, SessionRegistry};

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Per-tick work budget in deterministic work units (model invocation
    /// and refinement draw from the same allowance). `None` runs every tick
    /// to full convergence.
    pub budget: Option<Work>,
    /// Defensive cap on scheduler iterations per tick.
    pub iteration_limit: u64,
    /// Worker threads used to execute an admitted batch. Workers never
    /// change *what* the scheduler computes — only how an already-chosen
    /// batch is executed — so any worker count produces bit-identical
    /// answers for a fixed [`ServerConfig::batch`]. Clamped to ≥ 1.
    pub workers: usize,
    /// Objects selected per scheduling round (`None` → 1 when `workers`
    /// is 1, else `2 × workers`: a queue deeper than the worker pool keeps
    /// workers fed and amortizes the per-round demand recomputation
    /// further). This *does* shape the schedule: a batch of B recomputes
    /// demand once per B iterations. `Some(1)` reproduces the historical
    /// serial schedule exactly.
    pub batch: Option<usize>,
    /// Whether an admitted round routes same-grid-shape refinements
    /// through one lane-parallel struct-of-arrays solve instead of
    /// per-object scalar solves (default `true`). Per-lane arithmetic is
    /// bit-identical to the scalar path — same answers, same meter
    /// charges, same traces — so this is purely a throughput knob;
    /// `false` retains the scalar executor as a benchmark baseline.
    pub batch_solver: bool,
    /// Journal events between periodic snapshots on a durable server
    /// (clamped to ≥ 1; ignored without a data dir). This is also the
    /// recovery/disk bound: the journal tail replayed at open and the
    /// segments kept on disk are both O(`snapshot_every`), so lowering it
    /// trades more frequent snapshot writes for faster restarts and a
    /// smaller data dir.
    pub snapshot_every: u64,
}

/// Default for [`ServerConfig::snapshot_every`]: small enough that
/// recovery replay stays trivial, large enough that snapshot writes stay
/// rare.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 64;

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            budget: None,
            iteration_limit: DEFAULT_ITERATION_LIMIT,
            workers: 1,
            batch: None,
            batch_solver: true,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
        }
    }
}

impl ServerConfig {
    /// Config with a per-tick work budget.
    #[must_use]
    pub fn budgeted(budget: Work) -> Self {
        Self {
            budget: Some(budget),
            ..Self::default()
        }
    }

    /// Returns `self` with `workers` worker threads (batch still defaults
    /// to the worker count unless [`ServerConfig::batch`] is set).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The effective per-round batch size: explicit `batch`, else 1 for a
    /// single worker (the serial schedule) and `2 × workers` otherwise,
    /// clamped to ≥ 1.
    #[must_use]
    pub fn effective_batch(&self) -> usize {
        self.batch
            .unwrap_or(if self.workers <= 1 {
                1
            } else {
                self.workers * 2
            })
            .max(1)
    }
}

/// Everything one processed tick produced.
#[derive(Clone, Debug)]
pub struct TickResult {
    /// 1-based tick sequence number.
    pub tick: u64,
    /// The rate the pool was priced at.
    pub rate: f64,
    /// Per-session answers, in registration order.
    pub answers: Vec<(SessionId, Answer)>,
    /// Work/iteration accounting for the tick (operator `"shared_pool"`).
    pub stats: TickStats,
    /// Whether the budget ran out and some answers degraded to `Partial`.
    pub budget_exhausted: bool,
}

/// A multi-query continuous-query server over one bond relation.
///
/// Register queries with [`Server::subscribe`], feed rate ticks with
/// [`Server::tick`], and every registered session gets an answer per tick —
/// exact when the scheduler converged it within budget, anytime bounds
/// otherwise.
#[derive(Debug)]
pub struct Server {
    pricer: BondPricer,
    relation: BondRelation,
    config: ServerConfig,
    registry: SessionRegistry,
    history: Vec<TickStats>,
    ticks: u64,
    queued: Option<f64>,
    shed: u64,
    durability: Option<Durability>,
    last_answers: Vec<(SessionId, Answer)>,
    recovery: Option<RecoveryRecord>,
    recovery_emitted: bool,
    /// Compactions that happened since the last observed tick. Snapshot
    /// writes (and thus compactions) happen between ticks, outside any
    /// observer scope, so they are queued here and emitted into the next
    /// tick's trace stream.
    pending_compactions: Vec<CompactionRecord>,
}

/// The durable half of a server opened with [`Server::open_durable`]: the
/// on-disk store plus the in-memory per-rate warm cache that mirrors what
/// the journal would fold to.
#[derive(Debug)]
struct Durability {
    store: Store,
    warm: WarmMap,
    snapshot_every: u64,
    events_at_last_snapshot: u64,
}

/// FNV-1a accumulator for [`durability_fingerprint`].
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn eat_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn eat_f64(&mut self, v: f64) {
        self.eat_u64(v.to_bits());
    }
}

/// A stable fingerprint of everything that determines what journaled warm
/// bounds *mean*: the bond universe (cardinality and every bond's fields)
/// and the pricer configuration (short-rate model and result-object
/// construction parameters). Persisted in the data dir on first open;
/// recovery refuses a dir whose fingerprint disagrees, because converged
/// bounds from a different universe that happen to overlap this one's
/// would otherwise be served as final answers.
#[must_use]
pub fn durability_fingerprint(pricer: &BondPricer, relation: &BondRelation) -> u64 {
    let mut h = Fnv::new();
    h.eat_u64(relation.bonds().len() as u64);
    for b in relation.bonds() {
        h.eat_u64(u64::from(b.id));
        h.eat_f64(b.coupon);
        h.eat_f64(b.years_to_maturity);
        h.eat_f64(b.face);
    }
    let m = &pricer.model;
    h.eat_f64(m.sigma);
    h.eat_f64(m.kappa);
    h.eat_f64(m.mu);
    h.eat_f64(m.q);
    h.eat_f64(m.x_min);
    h.eat_f64(m.x_max);
    let v = &pricer.vao;
    h.eat_u64(u64::from(v.initial_nx));
    h.eat_u64(u64::from(v.initial_nt));
    h.eat_f64(v.min_width);
    h.eat_f64(v.safety);
    h.eat_u64(v.solver.max_cells);
    h.0
}

impl Server {
    /// A server over `relation`, pricing with `pricer`.
    #[must_use]
    pub fn new(pricer: BondPricer, relation: BondRelation, config: ServerConfig) -> Self {
        Self {
            pricer,
            relation,
            config,
            registry: SessionRegistry::new(),
            history: Vec::new(),
            ticks: 0,
            queued: None,
            shed: 0,
            durability: None,
            last_answers: Vec::new(),
            recovery: None,
            recovery_emitted: false,
            pending_compactions: Vec::new(),
        }
    }

    /// A durable server backed by the data dir at `dir`, recovering any
    /// state a previous incarnation journaled there.
    ///
    /// Recovery loads the newest valid snapshot, replays the journal tail
    /// on top (pure bookkeeping — journal events carry executed *outcomes*,
    /// so replay never re-prices anything), and seeds the per-rate warm
    /// cache so the next tick at a recovered rate re-admits objects at
    /// their achieved accuracy. A torn final journal record is truncated
    /// and reported (see [`Server::last_recovery`]); anything worse is a
    /// hard [`ServerError::Persist`].
    ///
    /// The data dir is bound to the `(pricer, relation)` pair that created
    /// it via a persisted fingerprint: opening it with a different
    /// universe or pricer configuration is refused, since journaled warm
    /// bounds describe *those* bonds and recovering them here would serve
    /// another universe's prices as this one's answers.
    pub fn open_durable(
        pricer: BondPricer,
        relation: BondRelation,
        config: ServerConfig,
        dir: &Path,
    ) -> Result<Self, ServerError> {
        let fingerprint = durability_fingerprint(&pricer, &relation);
        let (store, recovered) = Store::open(dir, fingerprint)?;
        let mut srv = Self::new(pricer, relation, config);

        if let Some(snap) = &recovered.snapshot {
            srv.registry
                .reserve_through(SessionId(snap.next_session_id.saturating_sub(1)));
            for s in &snap.sessions {
                srv.registry.restore(Session {
                    id: SessionId(s.session),
                    query: s.query.clone(),
                    priority: s.priority,
                    finals: s.finals,
                    partials: s.partials,
                    driven_iterations: s.driven,
                });
            }
            srv.ticks = snap.ticks;
            srv.shed = snap.shed;
            srv.history = snap.history.iter().map(StatsRecord::to_stats).collect();
            srv.last_answers = restore_answers(&snap.answers)?;
        }
        for ev in &recovered.tail {
            match ev {
                JournalEvent::Subscribe {
                    session,
                    priority,
                    query,
                } => {
                    srv.registry.restore(Session {
                        id: SessionId(*session),
                        query: query.clone(),
                        priority: *priority,
                        finals: 0,
                        partials: 0,
                        driven_iterations: 0,
                    });
                }
                JournalEvent::Unsubscribe { session } => {
                    // The id stays burned: the Subscribe replay (or the
                    // snapshot's high-water mark) already advanced `next`.
                    srv.registry.deregister(SessionId(*session));
                }
                JournalEvent::Tick(t) => {
                    srv.ticks = t.tick;
                    srv.shed = t.shed;
                    srv.history.push(t.stats.to_stats());
                    for delta in &t.sessions {
                        if let Some(sess) = srv
                            .registry
                            .sessions_mut()
                            .iter_mut()
                            .find(|s| s.id.0 == delta.session)
                        {
                            if delta.is_final {
                                sess.finals += 1;
                            } else {
                                sess.partials += 1;
                            }
                            sess.driven_iterations += delta.driven;
                        }
                    }
                    srv.last_answers = restore_answers(&t.answers)?;
                }
                JournalEvent::SnapshotMarker { .. } => {}
            }
        }

        let events_at_last_snapshot = recovered.snapshot.as_ref().map_or(0, |s| s.journal_events);
        srv.recovery = Some(RecoveryRecord {
            snapshot_seq: recovered.snapshot_seq(),
            replayed_events: recovered.replayed_events(),
            truncated_bytes: recovered.truncated_bytes,
            skipped_snapshots: recovered.skipped_snapshot_count(),
            swept_tmp_files: recovered.swept_tmp_files,
        });
        srv.durability = Some(Durability {
            warm: recovered.warm_map(),
            store,
            snapshot_every: config.snapshot_every.max(1),
            events_at_last_snapshot,
        });
        Ok(srv)
    }

    /// The relation the server prices.
    #[must_use]
    pub fn relation(&self) -> &BondRelation {
        &self.relation
    }

    /// The live session registry.
    #[must_use]
    pub fn sessions(&self) -> &SessionRegistry {
        &self.registry
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Registers a query. Structural validation (ε positive and finite,
    /// weight count, k range, finite constants) happens here so a malformed
    /// subscription fails fast; the `minWidth` floor checks run per tick
    /// against the live pool.
    pub fn subscribe(&mut self, query: Query, priority: u32) -> Result<SessionId, ServerError> {
        let n = self.relation.bonds().len();
        if n == 0 {
            return Err(ServerError::EmptyRelation);
        }
        match &query {
            Query::Selection { constant, .. } | Query::Count { constant, .. } => {
                if !constant.is_finite() {
                    return Err(VaoError::NonFiniteConstant { value: *constant }.into());
                }
            }
            Query::Sum { weights, epsilon } => {
                PrecisionConstraint::new(*epsilon)?;
                if weights.len() != n {
                    return Err(VaoError::WeightCountMismatch {
                        objects: n,
                        weights: weights.len(),
                    }
                    .into());
                }
                for (index, &weight) in weights.iter().enumerate() {
                    if !(weight.is_finite() && weight >= 0.0) {
                        return Err(VaoError::InvalidWeight { index, weight }.into());
                    }
                }
            }
            Query::Ave { epsilon } | Query::Max { epsilon } | Query::Min { epsilon } => {
                PrecisionConstraint::new(*epsilon)?;
            }
            Query::TopK { k, epsilon } => {
                PrecisionConstraint::new(*epsilon)?;
                if *k == 0 || *k > n {
                    return Err(VaoError::EmptyInput.into());
                }
            }
            Query::Median { epsilon } => {
                PrecisionConstraint::new(*epsilon)?;
            }
            Query::Percentile { phi, epsilon } => {
                PrecisionConstraint::new(*epsilon)?;
                if !phi.is_finite() || !(0.0..=1.0).contains(phi) {
                    return Err(VaoError::InvalidQuantile { phi: *phi }.into());
                }
            }
            Query::HeavyHitters { k, epsilon } => {
                // ε is the cell width here, but the same positivity and
                // finiteness rules apply.
                PrecisionConstraint::new(*epsilon)?;
                if *k == 0 {
                    return Err(VaoError::EmptyInput.into());
                }
            }
        }
        // Write-ahead order: the admission is journaled (and fsync'd)
        // before the registry commits it, so a crash can lose an
        // unacknowledged subscription but never acknowledge one it lost.
        if let Some(d) = &mut self.durability {
            d.store.append(&JournalEvent::Subscribe {
                session: self.registry.next_id(),
                priority: priority.max(1),
                query: query.clone(),
            })?;
        }
        let id = self.registry.register(query, priority);
        self.maybe_snapshot()?;
        Ok(id)
    }

    /// Removes a session.
    pub fn unsubscribe(&mut self, id: SessionId) -> Result<(), ServerError> {
        if self.registry.get(id).is_none() {
            return Err(ServerError::UnknownSession(id.0));
        }
        if let Some(d) = &mut self.durability {
            d.store
                .append(&JournalEvent::Unsubscribe { session: id.0 })?;
        }
        self.registry.deregister(id);
        self.maybe_snapshot()?;
        Ok(())
    }

    /// The recovery report from [`Server::open_durable`], if this server
    /// was opened durably: which snapshot seeded it, how many journal
    /// events replayed on top, and whether a torn final record was
    /// truncated. `None` for in-memory servers.
    #[must_use]
    pub fn last_recovery(&self) -> Option<RecoveryRecord> {
        self.recovery
    }

    /// Whether this server journals to a data dir.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The answer each session received on the most recent tick (or, after
    /// recovery, on the last journaled tick), in registration order.
    #[must_use]
    pub fn last_answers(&self) -> &[(SessionId, Answer)] {
        &self.last_answers
    }

    /// Looks up a session for `RESUME`: the live session plus its most
    /// recent answer, if it has been answered at all.
    pub fn resume(&self, id: SessionId) -> Result<(&Session, Option<&Answer>), ServerError> {
        let sess = self
            .registry
            .get(id)
            .ok_or(ServerError::UnknownSession(id.0))?;
        let answer = self
            .last_answers
            .iter()
            .find(|(aid, _)| *aid == id)
            .map(|(_, a)| a);
        Ok((sess, answer))
    }

    /// Groups the answers of one tick by query shape for broadcast
    /// fan-out (see
    /// [`SessionRegistry::broadcast_groups`]): the front-end serializes
    /// one payload per group instead of one per session.
    #[must_use]
    pub fn broadcast_groups<'a>(
        &self,
        answers: &'a [(SessionId, Answer)],
    ) -> Vec<crate::session::Broadcast<'a>> {
        self.registry.broadcast_groups(answers)
    }

    /// Flushes durable state for a clean shutdown: appends a snapshot
    /// marker and writes a final snapshot covering it, so the next
    /// [`Server::open_durable`] recovers with zero journal replay. A no-op
    /// for in-memory servers.
    ///
    /// This belongs to *listener* shutdown (SIGTERM/SIGINT, end of the
    /// serve loop) — a `QUIT` from one client is connection-scoped and
    /// does not reach here.
    pub fn shutdown(&mut self) -> Result<(), ServerError> {
        if self.durability.is_some() {
            self.write_snapshot()?;
        }
        Ok(())
    }

    /// Processes one rate tick for every registered session.
    pub fn tick(&mut self, rate: f64) -> Result<TickResult, ServerError> {
        self.tick_with_observer(rate, &mut NoopObserver)
    }

    /// Like [`Server::tick`], additionally streaming scheduler trace events
    /// (choices, iterations, budget exhaustion) to `observer` — this is how
    /// the bench harness lands server runs in the JSONL trace.
    pub fn tick_with_observer<O: ExecObserver>(
        &mut self,
        rate: f64,
        observer: &mut O,
    ) -> Result<TickResult, ServerError> {
        if self.relation.bonds().is_empty() {
            return Err(ServerError::EmptyRelation);
        }
        // Surface the recovery report (once) into the same trace stream the
        // tick lands in, so a JSONL trace of a recovered run shows *why*
        // its first tick starts warm.
        if !self.recovery_emitted {
            self.recovery_emitted = true;
            if let Some(rec) = self.recovery {
                if observer.is_enabled() {
                    observer.on_recovery(&rec);
                }
            }
        }
        // Compactions queued by between-tick snapshot writes land in the
        // next tick's trace; drained unconditionally so an untraced run
        // does not accumulate them forever.
        for c in self.pending_compactions.drain(..) {
            if observer.is_enabled() {
                observer.on_compaction(&c);
            }
        }
        let start = Instant::now();
        let mut meter = WorkMeter::new();

        // A durable server that has journaled a tick at this exact rate
        // re-admits every object at its achieved accuracy. The warm cache
        // is a deterministic fold of the journal, so an uninterrupted
        // server and a crashed-and-recovered one seed identical pools —
        // which is what makes their subsequent ticks bit-identical.
        // A prior that is not aligned with the relation (a journal record
        // damaged in a way that still parses) is discarded wholesale, both
        // for seeding and for the per-object accumulation below.
        let warm_prior: Option<Vec<WarmObjectRecord>> = self
            .durability
            .as_ref()
            .and_then(|d| d.warm.get(&rate.to_bits()))
            .filter(|p| p.len() == self.relation.bonds().len())
            .cloned();
        let mut pool = match &warm_prior {
            Some(objs) => {
                let seeds = warm_seeds(objs)?;
                SharedPool::invoke_warm(&self.pricer, &self.relation, rate, &seeds, &mut meter)
            }
            None => SharedPool::invoke(&self.pricer, &self.relation, rate, &mut meter),
        };
        self.validate_against(&pool)?;

        let driven_before: Vec<u64> = self
            .registry
            .sessions()
            .iter()
            .map(|s| s.driven_iterations)
            .collect();

        let mut tick_obs = TickObserver::new();
        let mut fan = Fanout(&mut tick_obs, observer);
        let outcome = sched::run_tick(
            &mut self.registry,
            &mut pool,
            &self.relation,
            self.config.budget,
            self.config.iteration_limit,
            self.config.workers,
            self.config.effective_batch(),
            self.config.batch_solver,
            &mut meter,
            &mut fan,
        )?;

        let stats = TickStats {
            rate,
            work: meter.breakdown(),
            wall: start.elapsed(),
            iterations: meter.iterations(),
            operator: OperatorKind::SharedPool.name(),
            objects: tick_obs.objects(),
            iter_histogram: tick_obs.histogram(),
            cpu_est: tick_obs.cpu_estimation(),
        };

        if let Some(d) = &mut self.durability {
            // End-of-tick object state, with lifetime counters accumulated
            // across warm re-admissions at this rate.
            let warm_now: Vec<WarmObjectRecord> = (0..pool.len())
                .map(|i| {
                    let b = pool.bounds(i);
                    WarmObjectRecord {
                        lo: b.lo(),
                        hi: b.hi(),
                        converged: pool.converged(i),
                        iters: warm_prior.as_ref().map_or(0, |p| p[i].iters)
                            + outcome.per_object_iterations[i],
                        cost: pool.cumulative_cost(i),
                    }
                })
                .collect();
            let sessions: Vec<SessionTickRecord> = self
                .registry
                .sessions()
                .iter()
                .zip(&driven_before)
                .zip(&outcome.answers)
                .map(|((s, &before), (_, ans))| SessionTickRecord {
                    session: s.id.0,
                    is_final: ans.is_final(),
                    driven: s.driven_iterations - before,
                })
                .collect();
            let record = TickRecord {
                tick: self.ticks + 1,
                rate,
                shed: self.shed,
                budget_exhausted: outcome.budget_exhausted,
                stats: StatsRecord::from_stats(&stats),
                sessions,
                answers: outcome
                    .answers
                    .iter()
                    .map(|(id, a)| AnswerEntry {
                        session: id.0,
                        answer: answer_record(a),
                    })
                    .collect(),
                warm: warm_now.clone(),
            };
            d.store.append(&JournalEvent::Tick(Box::new(record)))?;
            d.warm.insert(rate.to_bits(), warm_now);
        }

        self.history.push(stats);
        self.ticks += 1;
        self.last_answers = outcome.answers.clone();
        self.maybe_snapshot()?;
        Ok(TickResult {
            tick: self.ticks,
            rate,
            answers: outcome.answers,
            stats,
            budget_exhausted: outcome.budget_exhausted,
        })
    }

    /// Queues a tick for [`Server::run_queued`], coalescing: when a tick is
    /// already waiting, the stale rate is shed (only the newest matters —
    /// the paper's continuous queries answer against the *current* market)
    /// and the shed counter grows.
    pub fn offer_tick(&mut self, rate: f64) {
        if self.queued.replace(rate).is_some() {
            self.shed += 1;
        }
    }

    /// Runs the queued tick, if any.
    pub fn run_queued(&mut self) -> Option<Result<TickResult, ServerError>> {
        let rate = self.queued.take()?;
        Some(self.tick(rate))
    }

    /// Ticks shed by coalescing so far.
    #[must_use]
    pub fn shed_ticks(&self) -> u64 {
        self.shed
    }

    /// Ticks processed so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Run-level accounting: the fold of every processed tick's stats plus
    /// one [`QueryRunRow`] per live session.
    #[must_use]
    pub fn summary(&self) -> RunSummary {
        let rows: Vec<QueryRunRow> = self
            .registry
            .sessions()
            .iter()
            .map(|s| QueryRunRow {
                session: s.id.0,
                operator: s.query.operator_name(),
                priority: s.priority,
                finals: s.finals,
                partials: s.partials,
                driven_iterations: s.driven_iterations,
            })
            .collect();
        RunSummary::from_ticks(&self.history).with_per_query(rows)
    }

    /// Per-tick ε floor checks against the live pool (footnote 10: ε below
    /// the achievable `minWidth` floor is an error, not a hang).
    fn validate_against(&self, pool: &SharedPool) -> Result<(), ServerError> {
        for sess in self.registry.sessions() {
            match &sess.query {
                Query::Selection { .. } | Query::Count { .. } => {}
                Query::Sum { weights, epsilon } => {
                    PrecisionConstraint::new(*epsilon)?
                        .validate_weighted(pool.objects(), weights)?;
                }
                Query::Ave { epsilon } => {
                    let uniform = vec![1.0 / pool.len() as f64; pool.len()];
                    PrecisionConstraint::new(*epsilon)?
                        .validate_weighted(pool.objects(), &uniform)?;
                }
                Query::Max { epsilon }
                | Query::Min { epsilon }
                | Query::TopK { epsilon, .. }
                | Query::Median { epsilon }
                | Query::Percentile { epsilon, .. } => {
                    PrecisionConstraint::new(*epsilon)?.validate_single_object(pool.objects())?;
                }
                // HEAVYHITTERS' ε is a cell width, not an output precision:
                // objects converge at the minWidth floor and resolve to
                // their midpoint cell, so no floor check applies.
                Query::HeavyHitters { .. } => {}
            }
        }
        Ok(())
    }

    /// Writes a periodic snapshot once enough journal events have
    /// accumulated since the last one. No-op for in-memory servers.
    fn maybe_snapshot(&mut self) -> Result<(), ServerError> {
        let due = match &self.durability {
            Some(d) => d.store.journal_events() - d.events_at_last_snapshot >= d.snapshot_every,
            None => false,
        };
        if due {
            self.write_snapshot()?;
        }
        Ok(())
    }

    /// Appends a snapshot marker, then writes a snapshot covering it (so
    /// recovery from this snapshot replays nothing).
    fn write_snapshot(&mut self) -> Result<(), ServerError> {
        let seq = match &self.durability {
            Some(d) => d.store.next_snapshot_seq(),
            None => return Ok(()),
        };
        // Marker first: the snapshot's event count then covers the marker
        // itself, and recovery's replay tail is empty after a clean write.
        let snap = {
            let d = self.durability.as_mut().expect("checked durable above");
            d.store.append(&JournalEvent::SnapshotMarker { seq })?;
            SnapshotRecord {
                seq,
                journal_events: d.store.journal_events(),
                // Coverage ends exactly where the journal does right now
                // (the marker just appended is the last covered byte).
                coverage: Some(d.store.journal_position()),
                next_session_id: self.registry.next_id(),
                ticks: self.ticks,
                shed: self.shed,
                sessions: self
                    .registry
                    .sessions()
                    .iter()
                    .map(|s| SessionSnapshot {
                        session: s.id.0,
                        priority: s.priority,
                        finals: s.finals,
                        partials: s.partials,
                        driven: s.driven_iterations,
                        query: s.query.clone(),
                    })
                    .collect(),
                history: self.history.iter().map(StatsRecord::from_stats).collect(),
                warm: d
                    .warm
                    .iter()
                    .map(|(&bits, objects)| WarmRateRecord {
                        rate: f64::from_bits(bits),
                        objects: objects.clone(),
                    })
                    .collect(),
                answers: self
                    .last_answers
                    .iter()
                    .map(|(id, a)| AnswerEntry {
                        session: id.0,
                        answer: answer_record(a),
                    })
                    .collect(),
            }
        };
        let d = self.durability.as_mut().expect("checked durable above");
        let report = d.store.write_snapshot(&snap)?;
        d.events_at_last_snapshot = snap.journal_events;
        if report.segments_deleted > 0 {
            self.pending_compactions.push(CompactionRecord {
                snapshot_seq: seq,
                segments_deleted: report.segments_deleted,
                bytes_reclaimed: report.bytes_reclaimed,
                live_segments: report.live_segments,
            });
        }
        Ok(())
    }
}

/// Converts a delivered [`Answer`] into its persisted form.
fn answer_record(a: &Answer) -> AnswerRecord {
    match a {
        Answer::Final(out) => AnswerRecord::Final(out.clone()),
        Answer::Partial { bounds } => AnswerRecord::Partial {
            lo: bounds.lo(),
            hi: bounds.hi(),
        },
    }
}

/// Rebuilds in-memory answers from their persisted form.
fn restore_answers(entries: &[AnswerEntry]) -> Result<Vec<(SessionId, Answer)>, ServerError> {
    entries
        .iter()
        .map(|e| {
            let answer = match &e.answer {
                AnswerRecord::Final(out) => Answer::Final(out.clone()),
                AnswerRecord::Partial { lo, hi } => Answer::Partial {
                    bounds: Bounds::try_new(*lo, *hi)?,
                },
            };
            Ok((SessionId(e.session), answer))
        })
        .collect()
}

/// Converts journaled per-object records into [`WarmStart`] seeds.
fn warm_seeds(objs: &[WarmObjectRecord]) -> Result<Vec<WarmStart>, ServerError> {
    objs.iter()
        .map(|w| {
            Ok(WarmStart {
                bounds: Bounds::try_new(w.lo, w.hi)?,
                converged: w.converged,
                prior_cost: w.cost,
            })
        })
        .collect()
}

/// Fans trace events out to the server's internal [`TickObserver`] and the
/// caller's observer in one pass.
struct Fanout<'a, A: ExecObserver, B: ExecObserver>(&'a mut A, &'a mut B);

impl<A: ExecObserver, B: ExecObserver> ExecObserver for Fanout<'_, A, B> {
    fn is_enabled(&self) -> bool {
        self.0.is_enabled() || self.1.is_enabled()
    }
    fn on_operator_start(&mut self, kind: OperatorKind, objects: usize) {
        if self.0.is_enabled() {
            self.0.on_operator_start(kind, objects);
        }
        if self.1.is_enabled() {
            self.1.on_operator_start(kind, objects);
        }
    }
    fn on_choice(&mut self, choice: &ChoiceRecord) {
        if self.0.is_enabled() {
            self.0.on_choice(choice);
        }
        if self.1.is_enabled() {
            self.1.on_choice(choice);
        }
    }
    fn on_iteration(&mut self, iteration: &IterationRecord) {
        if self.0.is_enabled() {
            self.0.on_iteration(iteration);
        }
        if self.1.is_enabled() {
            self.1.on_iteration(iteration);
        }
    }
    fn on_hybrid_decision(&mut self, decision: &HybridDecisionRecord) {
        if self.0.is_enabled() {
            self.0.on_hybrid_decision(decision);
        }
        if self.1.is_enabled() {
            self.1.on_hybrid_decision(decision);
        }
    }
    fn on_budget_exhausted(&mut self, record: &BudgetExhaustedRecord) {
        if self.0.is_enabled() {
            self.0.on_budget_exhausted(record);
        }
        if self.1.is_enabled() {
            self.1.on_budget_exhausted(record);
        }
    }
    fn on_recovery(&mut self, record: &RecoveryRecord) {
        if self.0.is_enabled() {
            self.0.on_recovery(record);
        }
        if self.1.is_enabled() {
            self.1.on_recovery(record);
        }
    }
    fn on_compaction(&mut self, record: &CompactionRecord) {
        if self.0.is_enabled() {
            self.0.on_compaction(record);
        }
        if self.1.is_enabled() {
            self.1.on_compaction(record);
        }
    }
    fn on_round(&mut self, round: &RoundRecord) {
        if self.0.is_enabled() {
            self.0.on_round(round);
        }
        if self.1.is_enabled() {
            self.1.on_round(round);
        }
    }
    fn on_operator_end(&mut self, end: &OperatorEndRecord) {
        if self.0.is_enabled() {
            self.0.on_operator_end(end);
        }
        if self.1.is_enabled() {
            self.1.on_operator_end(end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bondlab::{BondUniverse, RateSeries};

    fn small_server(config: ServerConfig) -> Server {
        let universe = BondUniverse::generate(8, 42);
        let relation = BondRelation::from_universe(&universe);
        Server::new(BondPricer::default(), relation, config)
    }

    fn small_relation() -> BondRelation {
        BondRelation::from_universe(&BondUniverse::generate(8, 42))
    }

    /// A unique scratch dir per call; removed by the caller where it
    /// matters, otherwise left to the OS temp cleaner.
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "va-server-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn subscribe_validates_structurally() {
        let mut srv = small_server(ServerConfig::default());
        assert!(srv.subscribe(Query::Max { epsilon: 0.5 }, 1).is_ok());
        assert!(matches!(
            srv.subscribe(Query::Max { epsilon: -1.0 }, 1),
            Err(ServerError::Vao(VaoError::InvalidPrecision { .. }))
        ));
        assert!(matches!(
            srv.subscribe(
                Query::Sum {
                    weights: vec![1.0; 3],
                    epsilon: 0.5
                },
                1
            ),
            Err(ServerError::Vao(VaoError::WeightCountMismatch { .. }))
        ));
        assert!(matches!(
            srv.subscribe(Query::TopK { k: 0, epsilon: 0.5 }, 1),
            Err(ServerError::Vao(VaoError::EmptyInput))
        ));
        assert!(matches!(
            srv.subscribe(
                Query::Selection {
                    op: vao::ops::selection::CmpOp::Gt,
                    constant: f64::NAN
                },
                1
            ),
            Err(ServerError::Vao(VaoError::NonFiniteConstant { .. }))
        ));
    }

    #[test]
    fn unbudgeted_tick_answers_every_session_final() {
        let mut srv = small_server(ServerConfig::default());
        let a = srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap();
        let b = srv
            .subscribe(
                Query::Sum {
                    weights: vec![1.0; 8],
                    epsilon: 1.0,
                },
                2,
            )
            .unwrap();
        let rate = RateSeries::january_1994().opening_rate();
        let res = srv.tick(rate).unwrap();
        assert_eq!(res.tick, 1);
        assert_eq!(res.answers.len(), 2);
        assert!(!res.budget_exhausted);
        assert_eq!(res.stats.operator, "shared_pool");
        for (id, ans) in &res.answers {
            assert!(ans.is_final(), "session {id} should be final");
        }
        assert_eq!(res.answers[0].0, a);
        assert_eq!(res.answers[1].0, b);
        let summary = srv.summary();
        assert_eq!(summary.ticks, 1);
        assert_eq!(summary.per_query.len(), 2);
        assert!(summary.per_query.iter().all(|r| r.finals == 1));
        // Someone must have driven the refinement work.
        assert!(
            summary
                .per_query
                .iter()
                .map(|r| r.driven_iterations)
                .sum::<u64>()
                > 0
        );
    }

    #[test]
    fn tight_budget_degrades_to_partial_answers() {
        let mut srv = small_server(ServerConfig::default());
        srv.subscribe(Query::Max { epsilon: 0.05 }, 1).unwrap();
        let rate = RateSeries::january_1994().opening_rate();
        let full = srv.tick(rate).unwrap();
        let full_work = full.stats.total_work();

        // Re-run with a budget well below the converged cost: the answer
        // must degrade, not error, and its bounds must bracket the final.
        let mut tight = small_server(ServerConfig::budgeted(full_work / 3));
        tight.subscribe(Query::Max { epsilon: 0.05 }, 1).unwrap();
        let partial = tight.tick(rate).unwrap();
        assert!(partial.budget_exhausted);
        let bounds = partial.answers[0].1.partial_bounds().expect("partial");
        let final_bounds = match full.answers[0].1.final_output().unwrap() {
            va_stream::QueryOutput::Extreme { bounds, .. } => *bounds,
            other => panic!("unexpected shape {other:?}"),
        };
        let mid = 0.5 * (final_bounds.lo() + final_bounds.hi());
        assert!(
            bounds.lo() <= mid && mid <= bounds.hi(),
            "partial {bounds} must bracket converged mid {mid}"
        );
        assert!(partial.stats.total_work() <= full_work);
        assert_eq!(tight.summary().per_query[0].partials, 1);
    }

    #[test]
    fn tick_coalescing_sheds_stale_rates() {
        let mut srv = small_server(ServerConfig::default());
        srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap();
        assert!(srv.run_queued().is_none());
        srv.offer_tick(0.0583);
        srv.offer_tick(0.0584);
        srv.offer_tick(0.0585);
        assert_eq!(srv.shed_ticks(), 2);
        let res = srv.run_queued().unwrap().unwrap();
        assert_eq!(res.rate, 0.0585, "only the newest rate is priced");
        assert!(srv.run_queued().is_none(), "queue drained");
        assert_eq!(srv.ticks(), 1);
    }

    #[test]
    fn durable_server_round_trips_through_clean_shutdown() {
        let dir = scratch_dir("clean");
        let rate = RateSeries::january_1994().opening_rate();
        let (id, first) = {
            let mut srv = Server::open_durable(
                BondPricer::default(),
                small_relation(),
                ServerConfig::default(),
                &dir,
            )
            .unwrap();
            assert!(srv.is_durable());
            let rec = srv.last_recovery().unwrap();
            assert_eq!(rec.snapshot_seq, None, "fresh dir recovers nothing");
            assert_eq!(rec.replayed_events, 0);
            let id = srv.subscribe(Query::Max { epsilon: 0.5 }, 2).unwrap();
            let res = srv.tick(rate).unwrap();
            srv.shutdown().unwrap();
            (id, res)
        };

        let mut srv = Server::open_durable(
            BondPricer::default(),
            small_relation(),
            ServerConfig::default(),
            &dir,
        )
        .unwrap();
        let rec = srv.last_recovery().unwrap();
        assert!(rec.snapshot_seq.is_some(), "clean shutdown snapshotted");
        assert_eq!(rec.replayed_events, 0, "clean shutdown replays nothing");
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(srv.ticks(), 1);
        let (sess, answer) = srv.resume(id).unwrap();
        assert_eq!(sess.priority, 2);
        assert_eq!(sess.finals, 1);
        assert_eq!(answer.unwrap(), &first.answers[0].1);
        // The recovered high-water mark never re-issues the id.
        let fresh = srv.subscribe(Query::Min { epsilon: 0.5 }, 1).unwrap();
        assert!(fresh.0 > id.0);
        // A repeat tick at the recovered rate starts from the warm cache:
        // everything already converged, so zero refinement iterations.
        let warm = srv.tick(rate).unwrap();
        assert_eq!(
            warm.answers[0].1, first.answers[0].1,
            "warm re-admission reproduces the answer"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_data_dir_means_no_journal_and_resume_still_works() {
        let mut srv = small_server(ServerConfig::default());
        assert!(!srv.is_durable());
        assert!(srv.last_recovery().is_none());
        let id = srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap();
        assert!(matches!(
            srv.resume(SessionId(99)),
            Err(ServerError::UnknownSession(99))
        ));
        let (_, none_yet) = srv.resume(id).unwrap();
        assert!(none_yet.is_none(), "no tick yet, no last answer");
        let res = srv.tick(0.0583).unwrap();
        let (_, ans) = srv.resume(id).unwrap();
        assert_eq!(ans.unwrap(), &res.answers[0].1);
        srv.shutdown().unwrap(); // no-op without a data dir
    }

    #[test]
    fn reopening_with_a_different_universe_is_refused() {
        let dir = scratch_dir("fingerprint");
        let rate = RateSeries::january_1994().opening_rate();
        {
            let mut srv = Server::open_durable(
                BondPricer::default(),
                small_relation(),
                ServerConfig::default(),
                &dir,
            )
            .unwrap();
            srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap();
            srv.tick(rate).unwrap();
        }
        // Same cardinality, different bonds: the recovered warm bounds
        // would overlap this universe's and be served as final answers.
        let same_size = BondRelation::from_universe(&BondUniverse::generate(8, 43));
        match Server::open_durable(
            BondPricer::default(),
            same_size,
            ServerConfig::default(),
            &dir,
        ) {
            Err(ServerError::Persist { detail }) => {
                assert!(detail.contains("fingerprint mismatch"), "{detail}");
            }
            other => panic!("expected Persist mismatch, got {other:?}"),
        }
        // A grown universe (same seed, more bonds) is refused at open
        // instead of panicking on the first tick at a journaled rate.
        let grown = BondRelation::from_universe(&BondUniverse::generate(12, 42));
        assert!(
            Server::open_durable(BondPricer::default(), grown, ServerConfig::default(), &dir)
                .is_err()
        );
        // A different pricer configuration is refused too.
        let pricer = BondPricer {
            model: bondlab::ShortRateModel {
                sigma: 0.03,
                ..bondlab::ShortRateModel::default()
            },
            ..BondPricer::default()
        };
        assert!(
            Server::open_durable(pricer, small_relation(), ServerConfig::default(), &dir).is_err()
        );
        // The original universe still recovers cleanly.
        let srv = Server::open_durable(
            BondPricer::default(),
            small_relation(),
            ServerConfig::default(),
            &dir,
        )
        .unwrap();
        assert_eq!(srv.ticks(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn misaligned_warm_record_falls_back_to_a_cold_tick() {
        // A journal record can be damaged in a way that still parses —
        // e.g. a warm array shorter than the relation. The tick must
        // discard the prior (seeding *and* iteration accumulation), not
        // index past its end.
        let dir = scratch_dir("shortwarm");
        let relation = small_relation();
        let pricer = BondPricer::default();
        let rate = RateSeries::january_1994().opening_rate();
        {
            let fp = durability_fingerprint(&pricer, &relation);
            let (mut store, _) = va_persist::Store::open(&dir, fp).unwrap();
            store
                .append(&JournalEvent::Tick(Box::new(TickRecord {
                    tick: 1,
                    rate,
                    shed: 0,
                    budget_exhausted: false,
                    stats: StatsRecord {
                        rate,
                        work: vao::cost::WorkBreakdown::default(),
                        wall_nanos: 1,
                        iterations: 0,
                        operator: "shared_pool".to_string(),
                        objects: 0,
                        hist: [0; va_stream::stats::ITER_BUCKETS],
                        cpu: vao::trace::CpuEstimation::default(),
                    },
                    sessions: Vec::new(),
                    answers: Vec::new(),
                    warm: vec![WarmObjectRecord {
                        lo: 0.0,
                        hi: 1.0,
                        converged: true,
                        iters: 3,
                        cost: 5,
                    }],
                })))
                .unwrap();
        }
        let mut srv =
            Server::open_durable(pricer, relation, ServerConfig::default(), &dir).unwrap();
        assert_eq!(srv.ticks(), 1, "the forged tick replayed");
        srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap();
        let res = srv.tick(rate).unwrap();
        assert!(res.answers[0].1.is_final(), "cold fallback still answers");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsubscribe_stops_answering() {
        let mut srv = small_server(ServerConfig::default());
        let a = srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap();
        let b = srv.subscribe(Query::Min { epsilon: 0.5 }, 1).unwrap();
        srv.unsubscribe(a).unwrap();
        assert!(matches!(
            srv.unsubscribe(a),
            Err(ServerError::UnknownSession(1))
        ));
        let res = srv.tick(0.0583).unwrap();
        assert_eq!(res.answers.len(), 1);
        assert_eq!(res.answers[0].0, b);
    }
}
