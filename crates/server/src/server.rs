//! The in-process server: session registry + shared pool + budgeted
//! scheduler behind one API. The TCP front-end in [`crate::net`] is a thin
//! line-protocol shell over this type, so everything here is testable
//! without sockets.

use std::time::Instant;

use bondlab::BondPricer;
use va_stream::{BondRelation, Query, QueryRunRow, RunSummary, TickObserver, TickStats};
use vao::cost::{Work, WorkMeter};
use vao::error::VaoError;
use vao::ops::DEFAULT_ITERATION_LIMIT;
use vao::trace::{
    BudgetExhaustedRecord, ChoiceRecord, ExecObserver, HybridDecisionRecord, IterationRecord,
    NoopObserver, OperatorEndRecord, OperatorKind, RoundRecord,
};
use vao::PrecisionConstraint;

use crate::answer::Answer;
use crate::error::ServerError;
use crate::pool::SharedPool;
use crate::sched;
use crate::session::{SessionId, SessionRegistry};

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Per-tick work budget in deterministic work units (model invocation
    /// and refinement draw from the same allowance). `None` runs every tick
    /// to full convergence.
    pub budget: Option<Work>,
    /// Defensive cap on scheduler iterations per tick.
    pub iteration_limit: u64,
    /// Worker threads used to execute an admitted batch. Workers never
    /// change *what* the scheduler computes — only how an already-chosen
    /// batch is executed — so any worker count produces bit-identical
    /// answers for a fixed [`ServerConfig::batch`]. Clamped to ≥ 1.
    pub workers: usize,
    /// Objects selected per scheduling round (`None` → 1 when `workers`
    /// is 1, else `2 × workers`: a queue deeper than the worker pool keeps
    /// workers fed and amortizes the per-round demand recomputation
    /// further). This *does* shape the schedule: a batch of B recomputes
    /// demand once per B iterations. `Some(1)` reproduces the historical
    /// serial schedule exactly.
    pub batch: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            budget: None,
            iteration_limit: DEFAULT_ITERATION_LIMIT,
            workers: 1,
            batch: None,
        }
    }
}

impl ServerConfig {
    /// Config with a per-tick work budget.
    #[must_use]
    pub fn budgeted(budget: Work) -> Self {
        Self {
            budget: Some(budget),
            ..Self::default()
        }
    }

    /// Returns `self` with `workers` worker threads (batch still defaults
    /// to the worker count unless [`ServerConfig::batch`] is set).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The effective per-round batch size: explicit `batch`, else 1 for a
    /// single worker (the serial schedule) and `2 × workers` otherwise,
    /// clamped to ≥ 1.
    #[must_use]
    pub fn effective_batch(&self) -> usize {
        self.batch
            .unwrap_or(if self.workers <= 1 {
                1
            } else {
                self.workers * 2
            })
            .max(1)
    }
}

/// Everything one processed tick produced.
#[derive(Clone, Debug)]
pub struct TickResult {
    /// 1-based tick sequence number.
    pub tick: u64,
    /// The rate the pool was priced at.
    pub rate: f64,
    /// Per-session answers, in registration order.
    pub answers: Vec<(SessionId, Answer)>,
    /// Work/iteration accounting for the tick (operator `"shared_pool"`).
    pub stats: TickStats,
    /// Whether the budget ran out and some answers degraded to `Partial`.
    pub budget_exhausted: bool,
}

/// A multi-query continuous-query server over one bond relation.
///
/// Register queries with [`Server::subscribe`], feed rate ticks with
/// [`Server::tick`], and every registered session gets an answer per tick —
/// exact when the scheduler converged it within budget, anytime bounds
/// otherwise.
#[derive(Debug)]
pub struct Server {
    pricer: BondPricer,
    relation: BondRelation,
    config: ServerConfig,
    registry: SessionRegistry,
    history: Vec<TickStats>,
    ticks: u64,
    queued: Option<f64>,
    shed: u64,
}

impl Server {
    /// A server over `relation`, pricing with `pricer`.
    #[must_use]
    pub fn new(pricer: BondPricer, relation: BondRelation, config: ServerConfig) -> Self {
        Self {
            pricer,
            relation,
            config,
            registry: SessionRegistry::new(),
            history: Vec::new(),
            ticks: 0,
            queued: None,
            shed: 0,
        }
    }

    /// The relation the server prices.
    #[must_use]
    pub fn relation(&self) -> &BondRelation {
        &self.relation
    }

    /// The live session registry.
    #[must_use]
    pub fn sessions(&self) -> &SessionRegistry {
        &self.registry
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Registers a query. Structural validation (ε positive and finite,
    /// weight count, k range, finite constants) happens here so a malformed
    /// subscription fails fast; the `minWidth` floor checks run per tick
    /// against the live pool.
    pub fn subscribe(&mut self, query: Query, priority: u32) -> Result<SessionId, ServerError> {
        let n = self.relation.bonds().len();
        if n == 0 {
            return Err(ServerError::EmptyRelation);
        }
        match &query {
            Query::Selection { constant, .. } | Query::Count { constant, .. } => {
                if !constant.is_finite() {
                    return Err(VaoError::NonFiniteConstant { value: *constant }.into());
                }
            }
            Query::Sum { weights, epsilon } => {
                PrecisionConstraint::new(*epsilon)?;
                if weights.len() != n {
                    return Err(VaoError::WeightCountMismatch {
                        objects: n,
                        weights: weights.len(),
                    }
                    .into());
                }
                for (index, &weight) in weights.iter().enumerate() {
                    if !(weight.is_finite() && weight >= 0.0) {
                        return Err(VaoError::InvalidWeight { index, weight }.into());
                    }
                }
            }
            Query::Ave { epsilon } | Query::Max { epsilon } | Query::Min { epsilon } => {
                PrecisionConstraint::new(*epsilon)?;
            }
            Query::TopK { k, epsilon } => {
                PrecisionConstraint::new(*epsilon)?;
                if *k == 0 || *k > n {
                    return Err(VaoError::EmptyInput.into());
                }
            }
        }
        Ok(self.registry.register(query, priority))
    }

    /// Removes a session.
    pub fn unsubscribe(&mut self, id: SessionId) -> Result<(), ServerError> {
        if self.registry.deregister(id) {
            Ok(())
        } else {
            Err(ServerError::UnknownSession(id.0))
        }
    }

    /// Processes one rate tick for every registered session.
    pub fn tick(&mut self, rate: f64) -> Result<TickResult, ServerError> {
        self.tick_with_observer(rate, &mut NoopObserver)
    }

    /// Like [`Server::tick`], additionally streaming scheduler trace events
    /// (choices, iterations, budget exhaustion) to `observer` — this is how
    /// the bench harness lands server runs in the JSONL trace.
    pub fn tick_with_observer<O: ExecObserver>(
        &mut self,
        rate: f64,
        observer: &mut O,
    ) -> Result<TickResult, ServerError> {
        if self.relation.bonds().is_empty() {
            return Err(ServerError::EmptyRelation);
        }
        let start = Instant::now();
        let mut meter = WorkMeter::new();
        let mut pool = SharedPool::invoke(&self.pricer, &self.relation, rate, &mut meter);
        self.validate_against(&pool)?;

        let mut tick_obs = TickObserver::new();
        let mut fan = Fanout(&mut tick_obs, observer);
        let outcome = sched::run_tick(
            &mut self.registry,
            &mut pool,
            &self.relation,
            self.config.budget,
            self.config.iteration_limit,
            self.config.workers,
            self.config.effective_batch(),
            &mut meter,
            &mut fan,
        )?;

        let stats = TickStats {
            rate,
            work: meter.breakdown(),
            wall: start.elapsed(),
            iterations: meter.iterations(),
            operator: OperatorKind::SharedPool.name(),
            objects: tick_obs.objects(),
            iter_histogram: tick_obs.histogram(),
            cpu_est: tick_obs.cpu_estimation(),
        };
        self.history.push(stats);
        self.ticks += 1;
        Ok(TickResult {
            tick: self.ticks,
            rate,
            answers: outcome.answers,
            stats,
            budget_exhausted: outcome.budget_exhausted,
        })
    }

    /// Queues a tick for [`Server::run_queued`], coalescing: when a tick is
    /// already waiting, the stale rate is shed (only the newest matters —
    /// the paper's continuous queries answer against the *current* market)
    /// and the shed counter grows.
    pub fn offer_tick(&mut self, rate: f64) {
        if self.queued.replace(rate).is_some() {
            self.shed += 1;
        }
    }

    /// Runs the queued tick, if any.
    pub fn run_queued(&mut self) -> Option<Result<TickResult, ServerError>> {
        let rate = self.queued.take()?;
        Some(self.tick(rate))
    }

    /// Ticks shed by coalescing so far.
    #[must_use]
    pub fn shed_ticks(&self) -> u64 {
        self.shed
    }

    /// Ticks processed so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Run-level accounting: the fold of every processed tick's stats plus
    /// one [`QueryRunRow`] per live session.
    #[must_use]
    pub fn summary(&self) -> RunSummary {
        let rows: Vec<QueryRunRow> = self
            .registry
            .sessions()
            .iter()
            .map(|s| QueryRunRow {
                session: s.id.0,
                operator: s.query.operator_name(),
                priority: s.priority,
                finals: s.finals,
                partials: s.partials,
                driven_iterations: s.driven_iterations,
            })
            .collect();
        RunSummary::from_ticks(&self.history).with_per_query(rows)
    }

    /// Per-tick ε floor checks against the live pool (footnote 10: ε below
    /// the achievable `minWidth` floor is an error, not a hang).
    fn validate_against(&self, pool: &SharedPool) -> Result<(), ServerError> {
        for sess in self.registry.sessions() {
            match &sess.query {
                Query::Selection { .. } | Query::Count { .. } => {}
                Query::Sum { weights, epsilon } => {
                    PrecisionConstraint::new(*epsilon)?
                        .validate_weighted(pool.objects(), weights)?;
                }
                Query::Ave { epsilon } => {
                    let uniform = vec![1.0 / pool.len() as f64; pool.len()];
                    PrecisionConstraint::new(*epsilon)?
                        .validate_weighted(pool.objects(), &uniform)?;
                }
                Query::Max { epsilon } | Query::Min { epsilon } | Query::TopK { epsilon, .. } => {
                    PrecisionConstraint::new(*epsilon)?.validate_single_object(pool.objects())?;
                }
            }
        }
        Ok(())
    }
}

/// Fans trace events out to the server's internal [`TickObserver`] and the
/// caller's observer in one pass.
struct Fanout<'a, A: ExecObserver, B: ExecObserver>(&'a mut A, &'a mut B);

impl<A: ExecObserver, B: ExecObserver> ExecObserver for Fanout<'_, A, B> {
    fn is_enabled(&self) -> bool {
        self.0.is_enabled() || self.1.is_enabled()
    }
    fn on_operator_start(&mut self, kind: OperatorKind, objects: usize) {
        if self.0.is_enabled() {
            self.0.on_operator_start(kind, objects);
        }
        if self.1.is_enabled() {
            self.1.on_operator_start(kind, objects);
        }
    }
    fn on_choice(&mut self, choice: &ChoiceRecord) {
        if self.0.is_enabled() {
            self.0.on_choice(choice);
        }
        if self.1.is_enabled() {
            self.1.on_choice(choice);
        }
    }
    fn on_iteration(&mut self, iteration: &IterationRecord) {
        if self.0.is_enabled() {
            self.0.on_iteration(iteration);
        }
        if self.1.is_enabled() {
            self.1.on_iteration(iteration);
        }
    }
    fn on_hybrid_decision(&mut self, decision: &HybridDecisionRecord) {
        if self.0.is_enabled() {
            self.0.on_hybrid_decision(decision);
        }
        if self.1.is_enabled() {
            self.1.on_hybrid_decision(decision);
        }
    }
    fn on_budget_exhausted(&mut self, record: &BudgetExhaustedRecord) {
        if self.0.is_enabled() {
            self.0.on_budget_exhausted(record);
        }
        if self.1.is_enabled() {
            self.1.on_budget_exhausted(record);
        }
    }
    fn on_round(&mut self, round: &RoundRecord) {
        if self.0.is_enabled() {
            self.0.on_round(round);
        }
        if self.1.is_enabled() {
            self.1.on_round(round);
        }
    }
    fn on_operator_end(&mut self, end: &OperatorEndRecord) {
        if self.0.is_enabled() {
            self.0.on_operator_end(end);
        }
        if self.1.is_enabled() {
            self.1.on_operator_end(end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bondlab::{BondUniverse, RateSeries};

    fn small_server(config: ServerConfig) -> Server {
        let universe = BondUniverse::generate(8, 42);
        let relation = BondRelation::from_universe(&universe);
        Server::new(BondPricer::default(), relation, config)
    }

    #[test]
    fn subscribe_validates_structurally() {
        let mut srv = small_server(ServerConfig::default());
        assert!(srv.subscribe(Query::Max { epsilon: 0.5 }, 1).is_ok());
        assert!(matches!(
            srv.subscribe(Query::Max { epsilon: -1.0 }, 1),
            Err(ServerError::Vao(VaoError::InvalidPrecision { .. }))
        ));
        assert!(matches!(
            srv.subscribe(
                Query::Sum {
                    weights: vec![1.0; 3],
                    epsilon: 0.5
                },
                1
            ),
            Err(ServerError::Vao(VaoError::WeightCountMismatch { .. }))
        ));
        assert!(matches!(
            srv.subscribe(Query::TopK { k: 0, epsilon: 0.5 }, 1),
            Err(ServerError::Vao(VaoError::EmptyInput))
        ));
        assert!(matches!(
            srv.subscribe(
                Query::Selection {
                    op: vao::ops::selection::CmpOp::Gt,
                    constant: f64::NAN
                },
                1
            ),
            Err(ServerError::Vao(VaoError::NonFiniteConstant { .. }))
        ));
    }

    #[test]
    fn unbudgeted_tick_answers_every_session_final() {
        let mut srv = small_server(ServerConfig::default());
        let a = srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap();
        let b = srv
            .subscribe(
                Query::Sum {
                    weights: vec![1.0; 8],
                    epsilon: 1.0,
                },
                2,
            )
            .unwrap();
        let rate = RateSeries::january_1994().opening_rate();
        let res = srv.tick(rate).unwrap();
        assert_eq!(res.tick, 1);
        assert_eq!(res.answers.len(), 2);
        assert!(!res.budget_exhausted);
        assert_eq!(res.stats.operator, "shared_pool");
        for (id, ans) in &res.answers {
            assert!(ans.is_final(), "session {id} should be final");
        }
        assert_eq!(res.answers[0].0, a);
        assert_eq!(res.answers[1].0, b);
        let summary = srv.summary();
        assert_eq!(summary.ticks, 1);
        assert_eq!(summary.per_query.len(), 2);
        assert!(summary.per_query.iter().all(|r| r.finals == 1));
        // Someone must have driven the refinement work.
        assert!(
            summary
                .per_query
                .iter()
                .map(|r| r.driven_iterations)
                .sum::<u64>()
                > 0
        );
    }

    #[test]
    fn tight_budget_degrades_to_partial_answers() {
        let mut srv = small_server(ServerConfig::default());
        srv.subscribe(Query::Max { epsilon: 0.05 }, 1).unwrap();
        let rate = RateSeries::january_1994().opening_rate();
        let full = srv.tick(rate).unwrap();
        let full_work = full.stats.total_work();

        // Re-run with a budget well below the converged cost: the answer
        // must degrade, not error, and its bounds must bracket the final.
        let mut tight = small_server(ServerConfig::budgeted(full_work / 3));
        tight.subscribe(Query::Max { epsilon: 0.05 }, 1).unwrap();
        let partial = tight.tick(rate).unwrap();
        assert!(partial.budget_exhausted);
        let bounds = partial.answers[0].1.partial_bounds().expect("partial");
        let final_bounds = match full.answers[0].1.final_output().unwrap() {
            va_stream::QueryOutput::Extreme { bounds, .. } => *bounds,
            other => panic!("unexpected shape {other:?}"),
        };
        let mid = 0.5 * (final_bounds.lo() + final_bounds.hi());
        assert!(
            bounds.lo() <= mid && mid <= bounds.hi(),
            "partial {bounds} must bracket converged mid {mid}"
        );
        assert!(partial.stats.total_work() <= full_work);
        assert_eq!(tight.summary().per_query[0].partials, 1);
    }

    #[test]
    fn tick_coalescing_sheds_stale_rates() {
        let mut srv = small_server(ServerConfig::default());
        srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap();
        assert!(srv.run_queued().is_none());
        srv.offer_tick(0.0583);
        srv.offer_tick(0.0584);
        srv.offer_tick(0.0585);
        assert_eq!(srv.shed_ticks(), 2);
        let res = srv.run_queued().unwrap().unwrap();
        assert_eq!(res.rate, 0.0585, "only the newest rate is priced");
        assert!(srv.run_queued().is_none(), "queue drained");
        assert_eq!(srv.ticks(), 1);
    }

    #[test]
    fn unsubscribe_stops_answering() {
        let mut srv = small_server(ServerConfig::default());
        let a = srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap();
        let b = srv.subscribe(Query::Min { epsilon: 0.5 }, 1).unwrap();
        srv.unsubscribe(a).unwrap();
        assert!(matches!(
            srv.unsubscribe(a),
            Err(ServerError::UnknownSession(1))
        ));
        let res = srv.tick(0.0583).unwrap();
        assert_eq!(res.answers.len(), 1);
        assert_eq!(res.answers[0].0, b);
    }
}
