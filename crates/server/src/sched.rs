//! The cross-query budgeted greedy scheduler — the server's core.
//!
//! §5's operators make a *per-operator* greedy choice: iterate the result
//! object with the highest estimated benefit per `estCPU`. This module
//! lifts that choice *across queries*: every registered session recomputes
//! its outstanding [`Demand`]s over the shared pool each round, the demands
//! on the same object are accumulated (priority-weighted), and the globally
//! best iterations run on the shared meter. An iteration that one query
//! pays for tightens the same bounds every other query reads — work sharing
//! falls out of the pooling rather than needing any cross-query
//! bookkeeping.
//!
//! **Batched rounds.** Instead of picking one object per round, the
//! scheduler picks the top-`batch` candidates on *distinct* objects
//! (via [`ChoicePolicy::top_k`]), admits the longest prefix whose summed
//! `estCPU` fits the remaining budget, and runs the admitted `iterate()`
//! calls — on `std::thread::scope` worker threads when `workers > 1`,
//! inline otherwise. Demand is recomputed once per *round* rather than
//! once per *iteration*, which is where the batch speedup comes from even
//! on a single core. With `batch = 1` the loop degenerates to exactly the
//! historical serial schedule (same picks, same meter charges, same
//! trace), and for a fixed batch the results are bit-identical regardless
//! of worker count: workers only change *who* executes an already-chosen
//! batch, never what is chosen, and work counters are additive.
//!
//! The per-tick **work budget** bounds the tick in deterministic work
//! units. The scheduler stops *before* any `iterate()` whose `estCPU`
//! would overrun the budget; sessions still demanding refinement then
//! degrade to anytime [`Answer::Partial`] bounds instead of blocking the
//! tick (§7's graceful degradation, applied to scheduling).

use va_numerics::pde::step_batch;
use va_stream::BondRelation;
use vao::batch::{BatchLane, GridShape};
use vao::cost::{Calibrator, Work, WorkBreakdown, WorkMeter};
use vao::interface::ResultObject;
use vao::strategy::{Candidate, ChoicePolicy};
use vao::trace::{
    BudgetExhaustedRecord, CalibrationRecord, ExecObserver, IterationRecord, OperatorEndRecord,
    OperatorKind, RoundRecord,
};
use vao::Bounds;

use crate::answer::Answer;
use crate::demand::{self, Demand, PredicateStats};
use crate::error::ServerError;
use crate::pool::SharedPool;
use crate::session::{SessionId, SessionRegistry};

/// What one scheduled tick produced.
#[derive(Clone, Debug)]
pub(crate) struct TickOutcome {
    /// Per-session answers, in registration order.
    pub answers: Vec<(SessionId, Answer)>,
    /// Pool `iterate()` calls the scheduler issued this tick (the tick's
    /// meter counts the same number; kept for scheduler-level assertions).
    #[allow(dead_code)]
    pub iterations: u64,
    /// Iterations issued per pool object this tick, aligned with the pool.
    /// The durability layer folds these into its per-rate warm-start
    /// records; sums to `iterations`.
    pub per_object_iterations: Vec<u64>,
    /// Whether the work budget ran out with demand still outstanding.
    pub budget_exhausted: bool,
}

/// Splits one per-tick work budget across relations, proportionally to
/// their demand weights (the §5 priority sums of their live sessions),
/// with largest-remainder rounding so the slices always sum to exactly the
/// total. Ties and the all-zero-weight case degrade deterministically:
/// remainder ties go to the lower-indexed relation, and when no relation
/// carries any weight the budget splits evenly.
///
/// The slices are the cross-tenant arbitration contract: a shared server
/// ticking relation `i` with slice `out[i]` computes bit-identically to an
/// isolated single-relation server configured with budget `out[i]`,
/// because the slice is the *only* channel through which co-hosted
/// relations influence each other. `None` (unbudgeted) passes through as
/// `None` for everyone.
#[must_use]
pub fn arbitrate_budget(total: Option<Work>, weights: &[u64]) -> Vec<Option<Work>> {
    let Some(total) = total else {
        return vec![None; weights.len()];
    };
    if weights.is_empty() {
        return Vec::new();
    }
    let sum: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    let (weights, sum): (Vec<u128>, u128) = if sum == 0 {
        (vec![1; weights.len()], weights.len() as u128)
    } else {
        (weights.iter().map(|&w| u128::from(w)).collect(), sum)
    };
    let total_wide = u128::from(total);
    // u128 intermediates: budget × weight cannot overflow even at u64::MAX
    // each, so the proportional shares are exact.
    let shares: Vec<(u128, u128)> = weights
        .iter()
        .map(|&w| {
            let scaled = total_wide * w;
            (scaled / sum, scaled % sum)
        })
        .collect();
    let assigned: u128 = shares.iter().map(|&(base, _)| base).sum();
    let leftover = usize::try_from(total_wide - assigned).expect("leftover < relation count");
    let mut order: Vec<usize> = (0..shares.len()).collect();
    order.sort_by(|&a, &b| shares[b].1.cmp(&shares[a].1).then(a.cmp(&b)));
    let mut out: Vec<u64> = shares
        .iter()
        .map(|&(base, _)| u64::try_from(base).expect("share <= total"))
        .collect();
    for &i in order.iter().take(leftover) {
        out[i] += 1;
    }
    out.into_iter().map(Some).collect()
}

/// The tenant's mutable calibration state, threaded through a tick when
/// the server runs with calibration enabled (`None` reproduces the
/// uncalibrated schedule bit-identically — no corrected estimates, no
/// observations, no demand reordering).
///
/// `model` corrects `estCPU` before admission and budget accounting and is
/// fed every `(raw estimate, measured cost)` pair the tick executes;
/// `predicates` accumulates SELECT/COUNT pass/fail outcomes and reorders
/// probe demands by the learned correlation.
pub(crate) struct Calibration<'a> {
    pub model: &'a mut Calibrator,
    pub predicates: &'a mut PredicateStats,
}

/// One executed iteration, resolved back into pick order.
struct IterDone {
    before: Bounds,
    after: Bounds,
    work: WorkBreakdown,
}

/// Runs the global greedy loop over an invoked pool until every session
/// reaches its stopping condition or the budget runs out.
///
/// `meter` must be the tick's meter (already charged with the pool
/// invocation); the budget applies to its running total, so model
/// invocation and refinement draw from the same per-tick allowance.
///
/// `batch` is the number of distinct objects selected per round and is
/// what determines the schedule; `workers` is the number of threads used
/// to execute an admitted batch and never affects results. Both are
/// clamped to at least 1. `batch_solver` routes admitted objects whose
/// next refinements share a grid shape through one lane-parallel SoA
/// solve ([`run_batch_lanes`]); per-lane arithmetic is bit-identical to
/// the scalar path, so this too never affects results.
#[allow(clippy::too_many_arguments)] // one call site; the knobs are the API
pub(crate) fn run_tick<O: ExecObserver>(
    registry: &mut SessionRegistry,
    pool: &mut SharedPool,
    relation: &BondRelation,
    budget: Option<Work>,
    iteration_limit: u64,
    workers: usize,
    batch: usize,
    batch_solver: bool,
    calibration: Option<Calibration<'_>>,
    meter: &mut WorkMeter,
    observer: &mut O,
) -> Result<TickOutcome, ServerError> {
    observer.on_operator_start(OperatorKind::SharedPool, pool.len());
    let entry = meter.snapshot();
    let workers = workers.max(1);
    let batch = batch.max(1);
    let (mut cal_model, cal_preds) = match calibration {
        Some(c) => (Some(c.model), Some(c.predicates)),
        None => (None, None),
    };
    let mut policy = ChoicePolicy::greedy();
    let mut demands_buf: Vec<Vec<Demand>> =
        registry.sessions().iter().map(|_| Vec::new()).collect();
    // Per-session sketch summaries (PERCENTILE/HEAVYHITTERS). Derived state:
    // rebuilt from the pool every round, kept only to reuse allocations.
    let mut sketch_states: Vec<demand::SketchState> = registry
        .sessions()
        .iter()
        .map(|_| demand::SketchState::default())
        .collect();
    let mut iterations = 0u64;
    let mut per_object_iterations = vec![0u64; pool.len()];
    let mut seq = 0u64;
    let mut round = 0u64;
    let mut budget_exhausted = false;

    loop {
        // Recompute every session's demand against the pool's current
        // bounds — the stateless analogue of the per-operator loops
        // re-deriving their guess/unresolved sets after each iteration.
        // In a batched round this runs once per *batch*, not once per
        // iteration, which is the main saving over the serial schedule.
        let mut outstanding = 0usize;
        for (s_idx, sess) in registry.sessions().iter().enumerate() {
            demand::demands_stateful(
                &sess.query,
                pool,
                &mut sketch_states[s_idx],
                &mut demands_buf[s_idx],
            );
            if !demands_buf[s_idx].is_empty() {
                outstanding += 1;
            }
        }
        if outstanding == 0 {
            break; // every session can answer Final
        }
        if iterations >= iteration_limit {
            return Err(ServerError::Stalled {
                limit: iteration_limit,
            });
        }
        // Learned-correlation reordering (calibrated servers only): boost
        // the probe demands whose estimated bounds lean the way the
        // predicate historically decides.
        if let Some(preds) = cal_preds.as_deref() {
            for (s_idx, sess) in registry.sessions().iter().enumerate() {
                preds.boost(&sess.query, pool, &mut demands_buf[s_idx]);
            }
        }
        let round_snap = meter.snapshot();

        // Accumulate priority-weighted benefits per object: the global
        // benefit of iterating an object is the sum of what every demanding
        // query expects from it.
        let n = pool.len();
        let mut weighted = vec![0.0f64; n];
        let mut demanded = vec![false; n];
        for (s_idx, sess) in registry.sessions().iter().enumerate() {
            let w = f64::from(sess.priority);
            for d in &demands_buf[s_idx] {
                weighted[d.object] += w * d.benefit;
                demanded[d.object] = true;
            }
        }
        // Candidates carry the *calibrated* cost when a model is threaded
        // in: admission, budget accounting and the greedy benefit/cost
        // ranking all see `corrected = model(estCPU)`. The raw estimates
        // stay alongside (by candidate position) because the model must be
        // trained on what the object *claimed*, not on its own correction.
        let mut raw_ests: Vec<Work> = Vec::new();
        let candidates: Vec<Candidate> = (0..n)
            .filter(|&i| demanded[i])
            .map(|i| {
                let raw = pool.est_cpu(i);
                raw_ests.push(raw);
                Candidate {
                    index: i,
                    benefit: weighted[i],
                    est_cpu: match cal_model.as_deref() {
                        Some(m) => m.correct(raw),
                        None => raw,
                    },
                    width: pool.bounds(i).width(),
                }
            })
            .collect();
        meter.charge_choose(candidates.len() as Work);
        if candidates.is_empty() {
            // Outstanding demand names objects, so candidates cannot be
            // empty; if the invariant breaks anyway, fail this tick with a
            // typed error instead of killing the process.
            return Err(ServerError::Internal {
                detail: "outstanding demand produced no candidates",
            });
        }

        // Select up to `batch` distinct objects, best first (never past the
        // defensive iteration cap).
        let room = (iteration_limit - iterations).min(batch as u64) as usize;
        let selected = policy.top_k_traced(&candidates, room, observer);

        // Budget admission, up front for the whole batch: admit the
        // longest prefix (in pick order) whose cumulative estCPU fits.
        // Graceful degradation: if not even the best pick fits, stop the
        // tick; demands_buf stays fresh for Partial answers.
        let spent = meter.total();
        let mut admitted: Vec<usize> = Vec::with_capacity(selected.len());
        let mut admitted_est: Work = 0;
        for &p in &selected {
            let est = candidates[p].est_cpu;
            if let Some(b) = budget {
                if spent + admitted_est + est > b {
                    break;
                }
            }
            admitted_est += est;
            admitted.push(p);
        }
        if admitted.is_empty() {
            if observer.is_enabled() {
                observer.on_budget_exhausted(&BudgetExhaustedRecord {
                    budget: budget.unwrap_or(0),
                    spent,
                    deferred: outstanding,
                });
            }
            budget_exhausted = true;
            break;
        }
        let objs: Vec<usize> = admitted.iter().map(|&p| candidates[p].index).collect();

        // Credit each admitted iteration to the session that wanted it
        // most (highest priority-weighted benefit on that object;
        // registration order breaks ties, and a zero-benefit fallback pick
        // goes to its first demander).
        for &chosen in &objs {
            let mut claimant: Option<usize> = None;
            let mut claim_w = -1.0f64;
            for (s_idx, sess) in registry.sessions().iter().enumerate() {
                if let Some(d) = demands_buf[s_idx].iter().find(|d| d.object == chosen) {
                    let w = f64::from(sess.priority) * d.benefit;
                    if claimant.is_none() || w > claim_w {
                        claimant = Some(s_idx);
                        claim_w = w;
                    }
                }
            }
            if let Some(s_idx) = claimant {
                registry.sessions_mut()[s_idx].driven_iterations += 1;
            }
        }

        // Execute the batch. With the batched solver on, group the
        // admitted objects by the grid shape of their next refinement and
        // run each group as lanes of one SoA sweep (bit-identical to the
        // scalar iterates, so this is purely a throughput choice).
        // Otherwise: inline when there is nothing to fan out, scoped
        // worker threads over disjoint `&mut` borrows when there is.
        let done: Vec<IterDone> = if batch_solver && objs.len() > 1 {
            run_batch_lanes(pool, &objs, workers, meter)?
        } else if workers <= 1 || objs.len() == 1 {
            let mut done = Vec::with_capacity(objs.len());
            for &chosen in &objs {
                let before = pool.bounds(chosen);
                let snap = meter.snapshot();
                let after = pool.iterate(chosen, meter);
                done.push(IterDone {
                    before,
                    after,
                    work: meter.since(&snap),
                });
            }
            done
        } else {
            run_batch_threaded(pool, &objs, workers, meter)?
        };

        // Emit records and check the progress contract in pick order, so
        // the trace is independent of which thread ran which object.
        for (slot, &chosen) in objs.iter().enumerate() {
            let d = &done[slot];
            iterations += 1;
            per_object_iterations[chosen] += 1;
            seq += 1;
            if observer.is_enabled() {
                observer.on_iteration(&IterationRecord {
                    object: chosen,
                    seq,
                    before: d.before,
                    after: d.after,
                    est_cpu: candidates[admitted[slot]].est_cpu,
                    actual_cpu: d.work.total(),
                });
            }
            // An iterate() that moves nothing on a non-converged object
            // would loop forever: the object broke its progress contract.
            if d.after == d.before && !pool.converged(chosen) {
                return Err(ServerError::Stalled {
                    limit: iteration_limit,
                });
            }
        }
        // Train the model on this round's (claimed, measured) pairs in
        // pick order — deterministic, and already effective for the next
        // round of the same tick — surfacing each observation to the trace.
        if let Some(m) = cal_model.as_deref_mut() {
            for (slot, &p) in admitted.iter().enumerate() {
                let raw = raw_ests[p];
                let actual = done[slot].work.total();
                m.observe(raw, actual);
                if observer.is_enabled() {
                    observer.on_calibration(&CalibrationRecord {
                        observations: m.observations(),
                        gain_ppm: m.gain_ppm(),
                        raw_est: raw,
                        corrected_est: candidates[p].est_cpu,
                        actual,
                    });
                }
            }
        }
        round += 1;
        if observer.is_enabled() {
            observer.on_round(&RoundRecord {
                round,
                candidates: candidates.len(),
                selected: selected.len(),
                admitted: objs.len(),
                est_cpu: admitted_est,
                work: meter.since(&round_snap).total(),
            });
        }
    }

    // Tally every SELECT/COUNT predicate's decided outcomes against the
    // tick's final bounds — the pass/fail frequencies that order probe
    // demands on later ticks.
    if let Some(preds) = cal_preds {
        for sess in registry.sessions() {
            preds.record_query(&sess.query, pool);
        }
    }

    let mut answers = Vec::with_capacity(registry.len());
    for (s_idx, sess) in registry.sessions_mut().iter_mut().enumerate() {
        let done = demands_buf[s_idx].is_empty();
        if done {
            sess.finals += 1;
        } else {
            sess.partials += 1;
        }
        answers.push((sess.id, demand::answer(&sess.query, pool, relation, done)?));
    }

    observer.on_operator_end(&OperatorEndRecord {
        kind: OperatorKind::SharedPool,
        iterations,
        work: meter.since(&entry),
    });

    Ok(TickOutcome {
        answers,
        iterations,
        per_object_iterations,
        budget_exhausted,
    })
}

/// Iterates the (distinct) objects `objs` concurrently on up to `workers`
/// scoped threads, merging each thread's scratch meter into `meter` and
/// returning per-object results in the same order as `objs`.
///
/// Determinism: each object's `iterate()` is a pure function of that
/// object's own state, the per-object work charges are exact integers
/// merged by addition, and results are re-sorted into pick order before
/// use — so the outcome is bit-identical to inline execution of the same
/// batch.
fn run_batch_threaded(
    pool: &mut SharedPool,
    objs: &[usize],
    workers: usize,
    meter: &mut WorkMeter,
) -> Result<Vec<IterDone>, ServerError> {
    // disjoint_mut wants strictly ascending indices; remember each sorted
    // position's slot in pick order so results can be mapped back.
    let mut order: Vec<usize> = (0..objs.len()).collect();
    order.sort_by_key(|&slot| objs[slot]);
    let sorted_objs: Vec<usize> = order.iter().map(|&slot| objs[slot]).collect();
    let parts = pool.disjoint_mut(&sorted_objs);
    let mut tagged: Vec<(usize, &mut (dyn ResultObject + Send))> =
        order.iter().copied().zip(parts).collect();

    let threads = workers.min(tagged.len());
    let chunk = tagged.len().div_ceil(threads);
    let joined: Vec<_> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        while !tagged.is_empty() {
            let take = chunk.min(tagged.len());
            let mine: Vec<_> = tagged.drain(..take).collect();
            handles.push(s.spawn(move || {
                let mut scratch = WorkMeter::new();
                let mut out = Vec::with_capacity(mine.len());
                for (slot, obj) in mine {
                    let before = obj.bounds();
                    let snap = scratch.snapshot();
                    let after = obj.iterate(&mut scratch);
                    out.push((
                        slot,
                        IterDone {
                            before,
                            after,
                            work: scratch.since(&snap),
                        },
                    ));
                }
                (out, scratch)
            }));
        }
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut done: Vec<Option<IterDone>> = (0..objs.len()).map(|_| None).collect();
    for j in joined {
        let (out, scratch) = j.map_err(|_| ServerError::Internal {
            detail: "worker thread panicked during iterate",
        })?;
        meter.absorb(&scratch);
        for (slot, d) in out {
            done[slot] = Some(d);
        }
    }
    done.into_iter()
        .map(|d| {
            d.ok_or(ServerError::Internal {
                detail: "worker batch lost an object result",
            })
        })
        .collect()
}

/// One schedulable piece of an admitted round under the batched solver:
/// either a group of same-shape objects advanced as lanes of one SoA
/// sweep, or a single object stepped through plain `iterate()`.
///
/// `slots` / `slot` index back into the round's pick order.
enum ExecUnit<'p> {
    Lanes {
        shape: GridShape,
        slots: Vec<usize>,
        objs: Vec<&'p mut (dyn ResultObject + Send)>,
    },
    Scalar {
        slot: usize,
        obj: &'p mut (dyn ResultObject + Send),
    },
}

/// Executes one unit, charging `scratch`, and returns per-object results
/// tagged with their pick-order slots.
///
/// For a lane group, each lane commits on its own fresh meter (so the
/// per-object `IterDone::work` is exactly what the scalar path would have
/// charged) and the lane meters are then absorbed into `scratch`. The
/// post-iteration bounds are re-read through the pool object — not taken
/// from the lane commit — because adapters (negation, shifts) transform
/// bounds *outside* the lane protocol's inner frame.
fn exec_unit(unit: ExecUnit<'_>, scratch: &mut WorkMeter) -> Vec<(usize, IterDone)> {
    match unit {
        ExecUnit::Scalar { slot, obj } => {
            let before = obj.bounds();
            let snap = scratch.snapshot();
            let after = obj.iterate(scratch);
            vec![(
                slot,
                IterDone {
                    before,
                    after,
                    work: scratch.since(&snap),
                },
            )]
        }
        ExecUnit::Lanes {
            shape,
            slots,
            mut objs,
        } => {
            let befores: Vec<Bounds> = objs.iter().map(|o| o.bounds()).collect();
            let mut meters: Vec<WorkMeter> = objs.iter().map(|_| WorkMeter::new()).collect();
            {
                let mut lanes: Vec<&mut dyn BatchLane> = objs
                    .iter_mut()
                    .map(|o| {
                        o.as_batch_lane()
                            .expect("batch_shape() == Some promises a lane")
                    })
                    .collect();
                step_batch(shape, &mut lanes, &mut meters);
            }
            slots
                .into_iter()
                .zip(&objs)
                .zip(befores)
                .zip(meters)
                .map(|(((slot, obj), before), m)| {
                    scratch.absorb(&m);
                    (
                        slot,
                        IterDone {
                            before,
                            after: obj.bounds(),
                            work: m.breakdown(),
                        },
                    )
                })
                .collect()
        }
    }
}

/// Executes an admitted round with the batched SoA solver: objects whose
/// next refinements share a [`GridShape`] advance in lockstep as lanes of
/// one lane-parallel Thomas sweep per time step; everything else (shapeless
/// objects, singleton groups) falls back to scalar `iterate()`.
///
/// Returns per-object results in pick order, exactly like the scalar
/// paths: per-lane arithmetic, meter charges and failure handling are
/// bit-identical to K independent iterations, so callers cannot observe
/// which route ran beyond wall-clock time. A lane that goes singular is
/// committed failed (capped) without touching its siblings — the same
/// degradation the scalar solver produces.
fn run_batch_lanes(
    pool: &mut SharedPool,
    objs: &[usize],
    workers: usize,
    meter: &mut WorkMeter,
) -> Result<Vec<IterDone>, ServerError> {
    // Probe shapes through the shared-borrow API *before* splitting the
    // pool into disjoint `&mut` borrows (disjoint_mut wants strictly
    // ascending indices; remember pick-order slots to map results back).
    let mut order: Vec<usize> = (0..objs.len()).collect();
    order.sort_by_key(|&slot| objs[slot]);
    let sorted_objs: Vec<usize> = order.iter().map(|&slot| objs[slot]).collect();
    let shapes: Vec<Option<GridShape>> = sorted_objs.iter().map(|&i| pool.batch_shape(i)).collect();
    let parts = pool.disjoint_mut(&sorted_objs);

    // Group same-shape objects; shapeless ones go scalar immediately.
    let mut groups: Vec<(GridShape, Vec<usize>, Vec<&mut (dyn ResultObject + Send)>)> = Vec::new();
    let mut scalars: Vec<(usize, &mut (dyn ResultObject + Send))> = Vec::new();
    for ((slot, obj), shape) in order.iter().copied().zip(parts).zip(&shapes) {
        match shape {
            Some(s) => match groups.iter_mut().find(|(g, _, _)| g == s) {
                Some((_, slots, members)) => {
                    slots.push(slot);
                    members.push(obj);
                }
                None => groups.push((*s, vec![slot], vec![obj])),
            },
            None => scalars.push((slot, obj)),
        }
    }
    // A singleton group gains nothing from the SoA layout — demote it.
    let mut units: Vec<ExecUnit<'_>> = Vec::new();
    for (shape, slots, members) in groups {
        if slots.len() >= 2 {
            units.push(ExecUnit::Lanes {
                shape,
                slots,
                objs: members,
            });
        } else {
            for (slot, obj) in slots.into_iter().zip(members) {
                scalars.push((slot, obj));
            }
        }
    }
    units.extend(
        scalars
            .into_iter()
            .map(|(slot, obj)| ExecUnit::Scalar { slot, obj }),
    );

    let mut done: Vec<Option<IterDone>> = (0..objs.len()).map(|_| None).collect();
    if workers <= 1 || units.len() == 1 {
        for unit in units {
            for (slot, d) in exec_unit(unit, meter) {
                done[slot] = Some(d);
            }
        }
    } else {
        // Fan the units out over scoped threads, run_batch_threaded-style:
        // scratch meters merge by addition, results re-sort by slot, so
        // the outcome is bit-identical to inline execution.
        let threads = workers.min(units.len());
        let chunk = units.len().div_ceil(threads);
        let mut units = units;
        let joined: Vec<_> = std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(threads);
            while !units.is_empty() {
                let take = chunk.min(units.len());
                let mine: Vec<_> = units.drain(..take).collect();
                handles.push(s.spawn(move || {
                    let mut scratch = WorkMeter::new();
                    let mut out = Vec::new();
                    for unit in mine {
                        out.extend(exec_unit(unit, &mut scratch));
                    }
                    (out, scratch)
                }));
            }
            handles.into_iter().map(|h| h.join()).collect()
        });
        for j in joined {
            let (out, scratch) = j.map_err(|_| ServerError::Internal {
                detail: "worker thread panicked during batched solve",
            })?;
            meter.absorb(&scratch);
            for (slot, d) in out {
                done[slot] = Some(d);
            }
        }
    }
    done.into_iter()
        .map(|d| {
            d.ok_or(ServerError::Internal {
                detail: "batched round lost an object result",
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::arbitrate_budget;

    #[test]
    fn slices_are_proportional_and_sum_exactly() {
        let out = arbitrate_budget(Some(100), &[1, 1, 2]);
        assert_eq!(out, vec![Some(25), Some(25), Some(50)]);
        let out = arbitrate_budget(Some(10), &[1, 1, 1]);
        assert_eq!(out.iter().map(|b| b.unwrap()).sum::<u64>(), 10);
        // Largest remainder first; the tie between equal remainders goes
        // to the lower-indexed relation.
        assert_eq!(out, vec![Some(4), Some(3), Some(3)]);
    }

    #[test]
    fn zero_weight_relations_get_nothing_while_others_carry_weight() {
        let out = arbitrate_budget(Some(90), &[0, 2, 1]);
        assert_eq!(out, vec![Some(0), Some(60), Some(30)]);
    }

    #[test]
    fn all_zero_weights_split_evenly() {
        let out = arbitrate_budget(Some(7), &[0, 0, 0]);
        assert_eq!(out, vec![Some(3), Some(2), Some(2)]);
    }

    #[test]
    fn unbudgeted_passes_none_through() {
        assert_eq!(arbitrate_budget(None, &[3, 4]), vec![None, None]);
        assert!(arbitrate_budget(Some(5), &[]).is_empty());
    }

    #[test]
    fn extreme_weights_do_not_overflow() {
        let out = arbitrate_budget(Some(u64::MAX), &[u64::MAX, u64::MAX, 1]);
        let total: u64 = out.iter().map(|b| b.unwrap()).sum();
        assert_eq!(total, u64::MAX);
        assert!(out[0] >= out[2]);
    }
}
