//! The cross-query budgeted greedy scheduler — the server's core.
//!
//! §5's operators make a *per-operator* greedy choice: iterate the result
//! object with the highest estimated benefit per `estCPU`. This module
//! lifts that choice *across queries*: every registered session recomputes
//! its outstanding [`Demand`]s over the shared pool each round, the demands
//! on the same object are accumulated (priority-weighted), and the single
//! globally best iteration runs on the shared meter. An iteration that one
//! query pays for tightens the same bounds every other query reads — work
//! sharing falls out of the pooling rather than needing any cross-query
//! bookkeeping.
//!
//! The per-tick **work budget** bounds the tick in deterministic work
//! units. The scheduler stops *before* any `iterate()` whose `estCPU`
//! would overrun the budget; sessions still demanding refinement then
//! degrade to anytime [`Answer::Partial`] bounds instead of blocking the
//! tick (§7's graceful degradation, applied to scheduling).

use va_stream::BondRelation;
use vao::cost::{Work, WorkMeter};
use vao::strategy::{Candidate, ChoicePolicy};
use vao::trace::{
    BudgetExhaustedRecord, ExecObserver, IterationRecord, OperatorEndRecord, OperatorKind,
};

use crate::answer::Answer;
use crate::demand::{self, Demand};
use crate::error::ServerError;
use crate::pool::SharedPool;
use crate::session::{SessionId, SessionRegistry};

/// What one scheduled tick produced.
#[derive(Clone, Debug)]
pub(crate) struct TickOutcome {
    /// Per-session answers, in registration order.
    pub answers: Vec<(SessionId, Answer)>,
    /// Pool `iterate()` calls the scheduler issued this tick (the tick's
    /// meter counts the same number; kept for scheduler-level assertions).
    #[allow(dead_code)]
    pub iterations: u64,
    /// Whether the work budget ran out with demand still outstanding.
    pub budget_exhausted: bool,
}

/// Runs the global greedy loop over an invoked pool until every session
/// reaches its stopping condition or the budget runs out.
///
/// `meter` must be the tick's meter (already charged with the pool
/// invocation); the budget applies to its running total, so model
/// invocation and refinement draw from the same per-tick allowance.
pub(crate) fn run_tick<O: ExecObserver>(
    registry: &mut SessionRegistry,
    pool: &mut SharedPool,
    relation: &BondRelation,
    budget: Option<Work>,
    iteration_limit: u64,
    meter: &mut WorkMeter,
    observer: &mut O,
) -> Result<TickOutcome, ServerError> {
    observer.on_operator_start(OperatorKind::SharedPool, pool.len());
    let entry = meter.snapshot();
    let mut policy = ChoicePolicy::greedy();
    let mut demands_buf: Vec<Vec<Demand>> =
        registry.sessions().iter().map(|_| Vec::new()).collect();
    let mut iterations = 0u64;
    let mut seq = 0u64;
    let mut budget_exhausted = false;

    loop {
        // Recompute every session's demand against the pool's current
        // bounds — the stateless analogue of the per-operator loops
        // re-deriving their guess/unresolved sets after each iteration.
        let mut outstanding = 0usize;
        for (s_idx, sess) in registry.sessions().iter().enumerate() {
            demand::demands(&sess.query, pool, &mut demands_buf[s_idx]);
            if !demands_buf[s_idx].is_empty() {
                outstanding += 1;
            }
        }
        if outstanding == 0 {
            break; // every session can answer Final
        }
        if iterations >= iteration_limit {
            return Err(ServerError::Stalled {
                limit: iteration_limit,
            });
        }

        // Accumulate priority-weighted benefits per object: the global
        // benefit of iterating an object is the sum of what every demanding
        // query expects from it.
        let n = pool.len();
        let mut weighted = vec![0.0f64; n];
        let mut demanded = vec![false; n];
        for (s_idx, sess) in registry.sessions().iter().enumerate() {
            let w = f64::from(sess.priority);
            for d in &demands_buf[s_idx] {
                weighted[d.object] += w * d.benefit;
                demanded[d.object] = true;
            }
        }
        let candidates: Vec<Candidate> = (0..n)
            .filter(|&i| demanded[i])
            .map(|i| Candidate {
                index: i,
                benefit: weighted[i],
                est_cpu: pool.est_cpu(i),
                width: pool.bounds(i).width(),
            })
            .collect();
        meter.charge_choose(candidates.len() as Work);

        let pick = policy
            .pick_traced(&candidates, observer)
            .expect("outstanding demand implies candidates");
        let chosen = candidates[pick].index;
        let est = pool.est_cpu(chosen);

        // Graceful degradation: stop before an iterate() that would
        // overrun the budget; demands_buf stays fresh for Partial answers.
        if let Some(b) = budget {
            let spent = meter.total();
            if spent + est > b {
                if observer.is_enabled() {
                    observer.on_budget_exhausted(&BudgetExhaustedRecord {
                        budget: b,
                        spent,
                        deferred: outstanding,
                    });
                }
                budget_exhausted = true;
                break;
            }
        }

        // Credit the iteration to the session that wanted it most (highest
        // priority-weighted benefit on the chosen object; registration
        // order breaks ties, and a zero-benefit fallback pick goes to its
        // first demander).
        let mut claimant: Option<usize> = None;
        let mut claim_w = -1.0f64;
        for (s_idx, sess) in registry.sessions().iter().enumerate() {
            if let Some(d) = demands_buf[s_idx].iter().find(|d| d.object == chosen) {
                let w = f64::from(sess.priority) * d.benefit;
                if claimant.is_none() || w > claim_w {
                    claimant = Some(s_idx);
                    claim_w = w;
                }
            }
        }
        if let Some(s_idx) = claimant {
            registry.sessions_mut()[s_idx].driven_iterations += 1;
        }

        let before = pool.bounds(chosen);
        let snap = meter.snapshot();
        let after = pool.iterate(chosen, meter);
        iterations += 1;
        seq += 1;
        if observer.is_enabled() {
            observer.on_iteration(&IterationRecord {
                object: chosen,
                seq,
                before,
                after,
                est_cpu: est,
                actual_cpu: meter.since(&snap).total(),
            });
        }
        // An iterate() that moves nothing on a non-converged object would
        // loop forever: the object broke its progress contract.
        if after == before && !pool.converged(chosen) {
            return Err(ServerError::Stalled {
                limit: iteration_limit,
            });
        }
    }

    let mut answers = Vec::with_capacity(registry.len());
    for (s_idx, sess) in registry.sessions_mut().iter_mut().enumerate() {
        let done = demands_buf[s_idx].is_empty();
        if done {
            sess.finals += 1;
        } else {
            sess.partials += 1;
        }
        answers.push((sess.id, demand::answer(&sess.query, pool, relation, done)));
    }

    observer.on_operator_end(&OperatorEndRecord {
        kind: OperatorKind::SharedPool,
        iterations,
        work: meter.since(&entry),
    });

    Ok(TickOutcome {
        answers,
        iterations,
        budget_exhausted,
    })
}
