//! The relation catalog: first-class multi-relation tenancy.
//!
//! A [`Catalog`] holds one [`Tenant`] per relation the server hosts. Every
//! piece of state that used to be implicitly global on the single-relation
//! server — the session registry, tick/shed counters, stats history, last
//! answers, and the per-rate warm-start cache — lives *inside* its tenant,
//! so two relations can never observe each other through shared state.
//! That containment is what makes the tenancy bit-identity guarantee hold:
//! a tenant ticked with budget `B` inside a shared server computes exactly
//! what an isolated single-relation server with budget `B` would.
//!
//! Relation *definitions* are control-plane events (`CREATE RELATION`,
//! `ADD BOND`, `DROP RELATION`) journaled by the server before the catalog
//! commits them, which is what makes a catalog data dir self-describing on
//! recovery: the journal fold rebuilds every tenant, definitions included,
//! with zero flag-based reconstruction. During that fold, events may
//! reference a relation whose `CREATE` lives in an earlier, already-folded
//! span — `Catalog::shell` materializes an *undefined* tenant that the
//! definition attaches to later, keeping the fold idempotent across crash
//! windows.

use bondlab::Bond;
use va_persist::record::{BondRecord, RelationDefRecord};
use va_persist::WarmMap;
use va_stream::{BondRelation, TickStats};
use vao::cost::Calibrator;

use crate::answer::Answer;
use crate::demand::PredicateStats;
use crate::error::ServerError;
use crate::session::{SessionId, SessionRegistry};

/// The name every single-relation compatibility path resolves: servers
/// built with [`crate::Server::new`] or bootstrapped from `--bonds/--seed`
/// flags host exactly one relation with this name.
pub const DEFAULT_RELATION: &str = "default";

/// A catalog-assigned relation identifier. Ids are allocated monotonically
/// and never reused — a dropped relation's id stays burned, so journaled
/// events can never attach to a later relation that recycled the id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationId(pub u64);

impl std::fmt::Display for RelationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One hosted relation and all of its formerly-global server state.
///
/// Session ids are per-tenant: each registry issues from 1, exactly as an
/// isolated single-relation server would, so a tenant's journaled session
/// ids are bit-identical to the isolated run's. The wire protocol
/// disambiguates with the `(relation, session)` pair.
#[derive(Debug)]
pub struct Tenant {
    pub(crate) id: RelationId,
    pub(crate) name: String,
    pub(crate) relation: BondRelation,
    pub(crate) seed: Option<u64>,
    /// Whether a definition (`CREATE RELATION` or a snapshot `def`) has
    /// attached. Recovery shells start undefined; serving an undefined
    /// tenant would price an empty phantom universe, so the server refuses
    /// to finish an open that leaves one behind.
    pub(crate) defined: bool,
    pub(crate) registry: SessionRegistry,
    pub(crate) history: Vec<TickStats>,
    pub(crate) ticks: u64,
    pub(crate) queued: Option<f64>,
    pub(crate) shed: u64,
    pub(crate) last_answers: Vec<(SessionId, Answer)>,
    /// Per-rate warm-start state journaled by this tenant's ticks. Keyed
    /// inside the tenant (not globally) so relations never warm-start from
    /// each other's bounds.
    pub(crate) warm: WarmMap,
    /// The online predicted-vs-actual iteration-cost model (PR 10). Per
    /// tenant — one relation's cost bias never leaks into another's
    /// admission. Mutated only when the server runs with calibration
    /// enabled; stays cold (identity) otherwise.
    pub(crate) calibrator: Calibrator,
    /// Learned SELECT/COUNT pass/fail frequencies — the predicate half of
    /// the calibration state, same enablement rules as `calibrator`.
    pub(crate) predicates: PredicateStats,
}

impl Tenant {
    fn empty(id: RelationId, name: String, relation: BondRelation, seed: Option<u64>) -> Self {
        Self {
            id,
            name,
            relation,
            seed,
            defined: false,
            registry: SessionRegistry::new(),
            history: Vec::new(),
            ticks: 0,
            queued: None,
            shed: 0,
            last_answers: Vec::new(),
            warm: WarmMap::new(),
            calibrator: Calibrator::new(),
            predicates: PredicateStats::new(),
        }
    }

    /// The catalog id.
    #[must_use]
    pub fn id(&self) -> RelationId {
        self.id
    }

    /// The relation's name (empty on a recovery shell that has not seen
    /// its definition yet).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bond relation this tenant prices.
    #[must_use]
    pub fn relation(&self) -> &BondRelation {
        &self.relation
    }

    /// The universe seed, when the relation was generated rather than
    /// defined bond-by-bond.
    #[must_use]
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// Total `(claimed, measured)` cost pairs the tenant's calibrator has
    /// absorbed (0 on an uncalibrated or fresh tenant).
    #[must_use]
    pub fn calibration_observations(&self) -> u64 {
        self.calibrator.observations()
    }

    /// The calibrator's pooled measured/claimed cost ratio in parts per
    /// million (`1_000_000` = identity, i.e. cold or perfectly estimated).
    #[must_use]
    pub fn calibration_gain_ppm(&self) -> u64 {
        self.calibrator.gain_ppm()
    }

    /// The tenant's live session registry.
    #[must_use]
    pub fn sessions(&self) -> &SessionRegistry {
        &self.registry
    }

    /// Ticks this tenant has processed.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Ticks shed by coalescing for this tenant.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Whether a definition has attached (recovery shells start without
    /// one).
    #[must_use]
    pub fn is_defined(&self) -> bool {
        self.defined
    }

    /// The persisted definition record for this tenant: name, seed, and
    /// every bond, in relation order. Journaled by `CREATE RELATION` and
    /// embedded in snapshots so the data dir stays self-describing.
    #[must_use]
    pub fn def_record(&self) -> RelationDefRecord {
        RelationDefRecord {
            name: self.name.clone(),
            seed: self.seed,
            bonds: self
                .relation
                .bonds()
                .iter()
                .map(|b| BondRecord {
                    id: b.id,
                    coupon: b.coupon,
                    maturity: b.years_to_maturity,
                    face: b.face,
                })
                .collect(),
        }
    }

    /// Attaches a definition to this tenant (a replayed `CREATE RELATION`
    /// or a snapshot's embedded `def`). Bonds are revalidated on the way
    /// in: a journal record damaged in a way that still parses must fail
    /// the open, not panic in [`Bond::new`].
    pub(crate) fn define(&mut self, def: &RelationDefRecord) -> Result<(), ServerError> {
        let mut bonds = Vec::with_capacity(def.bonds.len());
        for b in &def.bonds {
            bonds.push(
                try_bond(b.id, b.coupon, b.maturity, b.face).map_err(|detail| {
                    ServerError::Persist {
                        detail: format!(
                            "corrupt relation definition \"{}\": bond {}: {detail}",
                            def.name, b.id
                        ),
                    }
                })?,
            );
        }
        self.name.clone_from(&def.name);
        self.seed = def.seed;
        self.relation = BondRelation::from_bonds(bonds);
        self.defined = true;
        Ok(())
    }
}

/// The set of relations one server hosts, addressed by name (protocol) or
/// id (journal).
#[derive(Debug, Default)]
pub struct Catalog {
    /// Next relation id to allocate; monotone, never reused.
    next: u64,
    /// Live tenants in id order (ids are allocated monotonically and the
    /// recovery fold inserts in sorted order, so a `Vec` stays ordered).
    tenants: Vec<Tenant>,
}

impl Catalog {
    /// An empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self {
            next: 1,
            tenants: Vec::new(),
        }
    }

    /// The id the next [`Catalog::create`] will assign.
    #[must_use]
    pub fn next_id(&self) -> RelationId {
        RelationId(self.next)
    }

    /// Raises the allocation high-water mark (recovery: snapshots persist
    /// `next_relation_id` so dropped relations stay burned).
    pub(crate) fn reserve_through(&mut self, next: u64) {
        self.next = self.next.max(next);
    }

    /// Creates a defined relation, refusing duplicate live names — names
    /// are the protocol's addressing scheme, so a duplicate would shadow
    /// an existing tenant's sessions.
    pub fn create(
        &mut self,
        name: &str,
        relation: BondRelation,
        seed: Option<u64>,
    ) -> Result<RelationId, ServerError> {
        if self.by_name(name).is_some() {
            return Err(ServerError::RelationExists(name.to_string()));
        }
        let id = RelationId(self.next);
        self.next += 1;
        let mut t = Tenant::empty(id, name.to_string(), relation, seed);
        t.defined = true;
        self.tenants.push(t);
        Ok(id)
    }

    /// Removes a tenant by id, returning it. The id stays burned.
    pub(crate) fn remove(&mut self, id: RelationId) -> Option<Tenant> {
        let at = self.tenants.iter().position(|t| t.id == id)?;
        Some(self.tenants.remove(at))
    }

    /// The tenant with catalog id `id`.
    #[must_use]
    pub fn get(&self, id: RelationId) -> Option<&Tenant> {
        self.tenants.iter().find(|t| t.id == id)
    }

    /// Mutable access by id.
    pub(crate) fn get_mut(&mut self, id: RelationId) -> Option<&mut Tenant> {
        self.tenants.iter_mut().find(|t| t.id == id)
    }

    /// The *defined* tenant named `name`. Recovery shells (no definition
    /// yet) have no name and are never addressable from the protocol.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<&Tenant> {
        self.tenants.iter().find(|t| t.defined && t.name == name)
    }

    /// The index of the defined tenant named `name` in [`Catalog::tenants`].
    pub(crate) fn index_of_name(&self, name: &str) -> Option<usize> {
        self.tenants
            .iter()
            .position(|t| t.defined && t.name == name)
    }

    /// Gets or creates the tenant for `relation`, materializing an
    /// *undefined* shell when the id is new. Recovery only: journal events
    /// may reference a relation whose `CREATE` was folded into an earlier
    /// snapshot span, and the shell gives their state somewhere to land
    /// until the definition attaches.
    pub(crate) fn shell(&mut self, relation: u64) -> &mut Tenant {
        self.reserve_through(relation + 1);
        let at = match self.tenants.iter().position(|t| t.id.0 >= relation) {
            Some(i) if self.tenants[i].id.0 == relation => i,
            Some(i) => {
                self.tenants.insert(
                    i,
                    Tenant::empty(
                        RelationId(relation),
                        String::new(),
                        BondRelation::from_bonds(Vec::new()),
                        None,
                    ),
                );
                i
            }
            None => {
                self.tenants.push(Tenant::empty(
                    RelationId(relation),
                    String::new(),
                    BondRelation::from_bonds(Vec::new()),
                    None,
                ));
                self.tenants.len() - 1
            }
        };
        &mut self.tenants[at]
    }

    /// The hosted tenants, in relation-id order.
    #[must_use]
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Mutable access to every tenant (the multi-relation tick path shards
    /// disjoint `&mut Tenant` borrows across worker threads from this).
    pub(crate) fn tenants_mut(&mut self) -> &mut [Tenant] {
        &mut self.tenants
    }

    /// Number of hosted relations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the catalog hosts no relations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }
}

/// Validates bond economics without panicking: [`Bond::new`] asserts on
/// nonsense (its callers are generators and tests), but catalog bonds
/// arrive over the wire or from a journal, where bad data must surface as
/// a protocol `ERROR` or a [`ServerError::Persist`], never a server abort.
pub fn try_bond(id: u32, coupon: f64, maturity: f64, face: f64) -> Result<Bond, String> {
    if !(coupon.is_finite() && coupon > 0.0 && coupon < 1.0) {
        return Err(format!("coupon must be a rate in (0, 1), got {coupon}"));
    }
    if !(maturity.is_finite() && maturity > 0.0) {
        return Err(format!("maturity must be positive, got {maturity}"));
    }
    if !(face.is_finite() && face > 0.0) {
        return Err(format!("face must be positive, got {face}"));
    }
    Ok(Bond::new(id, coupon, maturity, face))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bondlab::BondUniverse;

    fn rel(seed: u64) -> BondRelation {
        BondRelation::from_universe(&BondUniverse::generate(4, seed))
    }

    #[test]
    fn create_assigns_monotone_ids_and_refuses_duplicates() {
        let mut c = Catalog::new();
        let a = c.create("rates", rel(1), Some(1)).unwrap();
        let b = c.create("credit", rel(2), Some(2)).unwrap();
        assert_eq!(a, RelationId(1));
        assert_eq!(b, RelationId(2));
        assert!(matches!(
            c.create("rates", rel(3), None),
            Err(ServerError::RelationExists(n)) if n == "rates"
        ));
        assert_eq!(c.len(), 2);
        assert_eq!(c.by_name("rates").unwrap().id(), a);
        assert_eq!(c.get(b).unwrap().name(), "credit");
        assert!(c.by_name("missing").is_none());
    }

    #[test]
    fn dropped_ids_stay_burned() {
        let mut c = Catalog::new();
        let a = c.create("rates", rel(1), None).unwrap();
        c.remove(a).unwrap();
        assert!(c.by_name("rates").is_none());
        // Re-creating the name allocates a fresh id.
        let b = c.create("rates", rel(1), None).unwrap();
        assert_eq!(b, RelationId(2));
        assert!(c.get(a).is_none());
    }

    #[test]
    fn shells_materialize_undefined_and_accept_a_late_definition() {
        let mut c = Catalog::new();
        let t = c.shell(5);
        assert!(!t.is_defined());
        assert_eq!(t.id(), RelationId(5));
        t.ticks = 7;
        // Idempotent: the same id returns the same tenant.
        assert_eq!(c.shell(5).ticks, 7);
        // Shell ids raise the allocation floor.
        assert_eq!(c.next_id(), RelationId(6));
        // Shells are not addressable by (empty) name.
        assert!(c.by_name("").is_none());
        // Attaching the definition makes the tenant live.
        let def = {
            let mut probe = Tenant::empty(RelationId(9), "x".into(), rel(3), Some(3));
            probe.defined = true;
            probe.def_record()
        };
        c.shell(5).define(&def).unwrap();
        let t = c.by_name("x").unwrap();
        assert!(t.is_defined());
        assert_eq!(t.relation().len(), 4);
        assert_eq!(t.seed(), Some(3));
        assert_eq!(t.ticks(), 7, "shell state survives the definition");
        // Shells insert in id order even out of order.
        c.shell(2);
        let ids: Vec<u64> = c.tenants().iter().map(|t| t.id().0).collect();
        assert_eq!(ids, vec![2, 5]);
    }

    #[test]
    fn def_records_round_trip_through_define() {
        let mut c = Catalog::new();
        let id = c.create("rates", rel(7), Some(7)).unwrap();
        let def = c.get(id).unwrap().def_record();
        assert_eq!(def.name, "rates");
        assert_eq!(def.seed, Some(7));
        assert_eq!(def.bonds.len(), 4);
        let mut other = Catalog::new();
        other.shell(id.0).define(&def).unwrap();
        let t = other.by_name("rates").unwrap();
        assert_eq!(t.relation().bonds(), c.get(id).unwrap().relation().bonds());
    }

    #[test]
    fn define_refuses_corrupt_bond_economics() {
        let mut def = {
            let mut c = Catalog::new();
            let id = c.create("r", rel(1), None).unwrap();
            c.get(id).unwrap().def_record()
        };
        def.bonds[0].coupon = f64::NAN;
        let mut c = Catalog::new();
        match c.shell(1).define(&def) {
            Err(ServerError::Persist { detail }) => {
                assert!(detail.contains("corrupt relation definition"), "{detail}");
            }
            other => panic!("expected Persist, got {other:?}"),
        }
    }

    #[test]
    fn try_bond_mirrors_the_constructor_contract() {
        assert!(try_bond(0, 0.07, 10.0, 100.0).is_ok());
        assert!(try_bond(0, 0.0, 10.0, 100.0).is_err());
        assert!(try_bond(0, 1.0, 10.0, 100.0).is_err());
        assert!(try_bond(0, f64::NAN, 10.0, 100.0).is_err());
        assert!(try_bond(0, 0.07, 0.0, 100.0).is_err());
        assert!(try_bond(0, 0.07, f64::INFINITY, 100.0).is_err());
        assert!(try_bond(0, 0.07, 10.0, 0.0).is_err());
        assert!(try_bond(0, 0.07, 10.0, -5.0).is_err());
    }
}
