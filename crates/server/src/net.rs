//! The TCP front-end: the line protocol over `std::net`, one connection at
//! a time (the scheduler itself is single-threaded and deterministic; see
//! ROADMAP for the multi-threaded pool-iteration follow-up).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use crate::proto::{self, Request};
use crate::server::Server;

/// Serves connections from `listener` forever (each to completion, in
/// accept order). Server state — sessions, tick counter, statistics —
/// persists across connections.
pub fn serve(listener: &TcpListener, server: &mut Server) -> std::io::Result<()> {
    for stream in listener.incoming() {
        serve_connection(stream?, server)?;
    }
    Ok(())
}

/// Serves one client connection until `QUIT` or EOF.
pub fn serve_connection(stream: TcpStream, server: &mut Server) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match proto::parse_request(&line) {
            Err(msg) => writeln!(writer, "{}", proto::error(&msg))?,
            Ok(Request::Quit) => {
                // Flush durable state first so a clean shutdown recovers
                // with zero journal replay; a flush failure is reported but
                // still ends the connection.
                if let Err(e) = server.shutdown() {
                    writeln!(writer, "{}", proto::error(&e.to_string()))?;
                }
                writeln!(writer, "{}", proto::bye())?;
                return Ok(());
            }
            Ok(req) => handle(req, server, &mut writer)?,
        }
    }
    Ok(())
}

fn handle(req: Request, server: &mut Server, writer: &mut TcpStream) -> std::io::Result<()> {
    match req {
        Request::Subscribe { query, priority } => {
            let query = query.into_query(server.relation().bonds().len());
            match server.subscribe(query, priority) {
                Ok(id) => writeln!(writer, "{}", proto::subscribed(id)),
                Err(e) => writeln!(writer, "{}", proto::error(&e.to_string())),
            }
        }
        Request::Unsubscribe { session } => {
            match server.unsubscribe(crate::session::SessionId(session)) {
                Ok(()) => writeln!(writer, "{}", proto::unsubscribed(session)),
                Err(e) => writeln!(writer, "{}", proto::error(&e.to_string())),
            }
        }
        Request::Resume { session } => match server.resume(crate::session::SessionId(session)) {
            Ok((sess, answer)) => {
                writeln!(writer, "{}", proto::resumed(sess, server.ticks(), answer))
            }
            Err(e) => writeln!(writer, "{}", proto::error(&e.to_string())),
        },
        Request::Tick { rate } => run_tick(server, rate, writer),
        Request::Ticks { rates } => {
            // Load shedding: a burst of ticks coalesces to the newest rate
            // (stale markets are never priced).
            for rate in rates {
                server.offer_tick(rate);
            }
            match server.run_queued() {
                None => writeln!(writer, "{}", proto::error("no ticks offered")),
                Some(Ok(res)) => write_tick(server, &res, writer),
                Some(Err(e)) => writeln!(writer, "{}", proto::error(&e.to_string())),
            }
        }
        Request::Stats => writeln!(writer, "{}", proto::stats(server)),
        Request::Quit => unreachable!("handled by the caller"),
    }
}

fn run_tick(server: &mut Server, rate: f64, writer: &mut TcpStream) -> std::io::Result<()> {
    match server.tick(rate) {
        Ok(res) => write_tick(server, &res, writer),
        Err(e) => writeln!(writer, "{}", proto::error(&e.to_string())),
    }
}

fn write_tick(
    server: &Server,
    res: &crate::server::TickResult,
    writer: &mut TcpStream,
) -> std::io::Result<()> {
    for (id, answer) in &res.answers {
        writeln!(writer, "{}", proto::result(res.tick, res.rate, *id, answer))?;
    }
    writeln!(writer, "{}", proto::tick_done(res, server.shed_ticks()))
}
