//! The TCP front-end: a nonblocking multi-client readiness loop over the
//! newline-JSON protocol.
//!
//! One [`FrontEnd`] serves any number of concurrent connections against
//! the single deterministic [`Server`]: every socket is nonblocking, a
//! [`PollSet`] wait picks the ready ones each turn,
//! and per-connection read/write buffers reassemble lines and absorb
//! backpressure. The scheduler itself stays single-threaded — concurrency
//! lives entirely at the socket layer, so answers are bit-identical to a
//! serial run.
//!
//! Three properties the loop guarantees:
//!
//! * **Connection errors are connection-local.** A client that dies
//!   mid-write (or mid-read) is logged, dropped and forgotten; the accept
//!   loop and every other connection keep going.
//! * **Slow clients never stall the tick loop.** Results are queued to a
//!   bounded per-connection write buffer and flushed as the socket
//!   drains; a connection whose buffer overflows
//!   ([`FrontEndConfig::max_write_buffer`]) is evicted, not waited on.
//! * **Fan-out is batched per query shape.** A tick's answers are grouped
//!   by [`broadcast_groups`](crate::session::SessionRegistry::broadcast_groups):
//!   sessions sharing a query shape share one serialized payload, and the
//!   per-session `RESULT` line is a cheap prefix wrap around it.
//!
//! `QUIT` is connection-scoped: it closes that connection (after its
//! replies flush) and leaves the server — and every other client —
//! running. The durable final snapshot now belongs to listener shutdown
//! (see [`Server::shutdown`] and the `va-server` binary's SIGTERM
//! handling), not to whichever client happens to hang up first.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};

use bondlab::BondUniverse;
use va_stream::BondRelation;

use crate::catalog::{try_bond, DEFAULT_RELATION};
use crate::poll::{self, PollSet};
use crate::proto::{self, RelationSpec, Request};
use crate::server::{Server, TickResult};
use crate::session::SessionId;

/// Front-end tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct FrontEndConfig {
    /// Eviction threshold for a connection's pending write bytes. A
    /// client that stops reading while results accumulate past this is
    /// dropped rather than allowed to wedge the loop or grow the heap.
    pub max_write_buffer: usize,
    /// Maximum bytes of one request line; a connection exceeding it gets
    /// an `ERROR` and is closed (a stream that never sends `\n` would
    /// otherwise grow the read buffer forever).
    pub max_line_bytes: usize,
    /// Poll timeout per loop turn. Bounds how stale the stop-flag check
    /// can get when no socket is active.
    pub poll_timeout_ms: i32,
}

impl Default for FrontEndConfig {
    fn default() -> Self {
        Self {
            max_write_buffer: 1 << 20,
            max_line_bytes: 1 << 20,
            poll_timeout_ms: 50,
        }
    }
}

/// Lifetime counters for one front-end, exposed for tests and the
/// `frontend-scaling` harness target.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontEndStats {
    /// Connections accepted (or adopted).
    pub accepted: u64,
    /// Connections fully closed and reaped, for any reason.
    pub closed: u64,
    /// Connections evicted because their write buffer overflowed.
    pub evicted_slow: u64,
    /// Connections dropped on a read/write IO error.
    pub dropped_io: u64,
    /// `RESULT` lines queued to connections.
    pub results_delivered: u64,
    /// Result payloads serialized — one per (tick, query shape) group,
    /// however many sessions and connections received it.
    pub payloads_serialized: u64,
}

/// One live client connection.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    peer: String,
    /// Unparsed request bytes (a partial trailing line between turns).
    rbuf: Vec<u8>,
    /// Reply bytes not yet accepted by the socket.
    wbuf: VecDeque<u8>,
    /// The relation selected by `USE`, applied to data-plane requests that
    /// omit an explicit `"relation"` field (`None` → `"default"`).
    use_relation: Option<String>,
    /// Sessions attached to this connection (subscribed or resumed here),
    /// keyed `(relation id, session id)` — session id spaces are
    /// per-relation, so the pair is the global identity. Front-end state
    /// only — sessions themselves outlive the connection (a client that
    /// hangs up and later `RESUME`s is the recovery story ci.sh
    /// exercises).
    sessions: Vec<(u64, SessionId)>,
    /// No more requests will arrive (EOF, `QUIT`, or an oversize line);
    /// the connection closes once `wbuf` drains.
    read_closed: bool,
    /// Drop without further IO at the next reap.
    dead: bool,
}

/// The nonblocking multi-client readiness loop.
#[derive(Debug, Default)]
pub struct FrontEnd {
    config: FrontEndConfig,
    conns: Vec<Conn>,
    stats: FrontEndStats,
}

impl FrontEnd {
    /// A front-end with explicit tuning knobs.
    #[must_use]
    pub fn new(config: FrontEndConfig) -> Self {
        Self {
            config,
            conns: Vec::new(),
            stats: FrontEndStats::default(),
        }
    }

    /// Lifetime counters so far.
    #[must_use]
    pub fn stats(&self) -> FrontEndStats {
        self.stats
    }

    /// Live connections right now.
    #[must_use]
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Serves `listener` until `stop` is set, multiplexing every accepted
    /// connection through the readiness loop. Returns only on a fatal
    /// poll-layer error or a set stop flag — per-connection IO errors are
    /// handled connection-locally and never propagate here. The caller
    /// owns the clean-shutdown snapshot ([`Server::shutdown`]) after this
    /// returns.
    pub fn run(
        &mut self,
        listener: &TcpListener,
        server: &mut Server,
        stop: &AtomicBool,
    ) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        while !stop.load(Ordering::SeqCst) {
            self.turn(Some(listener), server)?;
        }
        Ok(())
    }

    /// Takes ownership of an already-connected stream, as if it had been
    /// accepted from the listener.
    pub fn adopt(&mut self, stream: TcpStream) -> std::io::Result<()> {
        let peer = stream
            .peer_addr()
            .map_or_else(|_| "unknown".to_string(), |a| a.to_string());
        self.adopt_from(stream, peer)
    }

    fn adopt_from(&mut self, stream: TcpStream, peer: String) -> std::io::Result<()> {
        stream.set_nonblocking(true)?;
        self.stats.accepted += 1;
        self.conns.push(Conn {
            stream,
            peer,
            rbuf: Vec::new(),
            wbuf: VecDeque::new(),
            use_relation: None,
            sessions: Vec::new(),
            read_closed: false,
            dead: false,
        });
        Ok(())
    }

    /// One readiness turn: wait for socket events, accept, read and
    /// dispatch ready requests, flush pending replies, reap finished
    /// connections. Public so embedders (the bench harness, the compat
    /// wrappers below) can drive the loop under their own control flow.
    pub fn turn(
        &mut self,
        listener: Option<&TcpListener>,
        server: &mut Server,
    ) -> std::io::Result<()> {
        let mut set = PollSet::new();
        let listener_slot = listener.map(|l| set.push(l, poll::READABLE));
        let conn_slots: Vec<usize> = self
            .conns
            .iter()
            .map(|c| {
                let mut interest = 0;
                if !c.read_closed {
                    interest |= poll::READABLE;
                }
                if !c.wbuf.is_empty() {
                    interest |= poll::WRITABLE;
                }
                set.push(&c.stream, interest)
            })
            .collect();
        set.wait(self.config.poll_timeout_ms)?;

        if let (Some(l), Some(slot)) = (listener, listener_slot) {
            if set.readable(slot) {
                self.accept_ready(l);
            }
        }
        // `accept_ready` only appends, so slot i still maps to conn i.
        for (i, &slot) in conn_slots.iter().enumerate() {
            if set.readable(slot) && !self.conns[i].dead && !self.conns[i].read_closed {
                self.read_ready(i, server);
            }
        }
        // Flush everything with pending output, not just conns whose slot
        // reported writable: replies queued by this turn's dispatches
        // postdate the poll, and a spurious write attempt is a cheap
        // `WouldBlock`.
        for i in 0..self.conns.len() {
            if !self.conns[i].dead && !self.conns[i].wbuf.is_empty() {
                self.flush(i);
            }
        }
        self.reap();
        Ok(())
    }

    /// Drains the accept queue. Transient accept errors (a connection
    /// aborted between poll and accept, fd pressure) are logged and
    /// skipped — the listener must survive any client's behavior.
    fn accept_ready(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    if let Err(e) = self.adopt_from(stream, peer.to_string()) {
                        eprintln!("va-server: setup {peer}: {e}");
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    eprintln!("va-server: accept: {e}");
                    break;
                }
            }
        }
    }

    /// Reads everything the socket has, then dispatches each complete
    /// line. IO errors kill only this connection.
    fn read_ready(&mut self, i: usize, server: &mut Server) {
        let mut buf = [0u8; 8192];
        loop {
            match self.conns[i].stream.read(&mut buf) {
                Ok(0) => {
                    // Half-close: lines already buffered still dispatch
                    // below and their replies still flush — the `--client`
                    // driver shuts down its write side and reads to EOF.
                    self.conns[i].read_closed = true;
                    break;
                }
                Ok(n) => self.conns[i].rbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    eprintln!("va-server: read {}: {e}", self.conns[i].peer);
                    self.conns[i].dead = true;
                    self.stats.dropped_io += 1;
                    return;
                }
            }
        }
        while let Some(pos) = self.conns[i].rbuf.iter().position(|&b| b == b'\n') {
            let rest = self.conns[i].rbuf.split_off(pos + 1);
            let mut raw = std::mem::replace(&mut self.conns[i].rbuf, rest);
            raw.pop();
            if raw.last() == Some(&b'\r') {
                raw.pop();
            }
            let line = String::from_utf8_lossy(&raw).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            if self.conns[i].dead || !self.dispatch(i, &line, server) {
                // `QUIT` (or an eviction mid-dispatch): pipelined input
                // after it is discarded, matching the old front-end.
                self.conns[i].rbuf.clear();
                break;
            }
        }
        if !self.conns[i].read_closed && self.conns[i].rbuf.len() > self.config.max_line_bytes {
            let msg = format!("request line exceeds {} bytes", self.config.max_line_bytes);
            self.queue(i, &proto::error(&msg));
            self.conns[i].rbuf.clear();
            self.conns[i].read_closed = true;
        }
    }

    /// Handles one parsed request on connection `i`. Returns `false` when
    /// the connection accepts no further input (`QUIT`).
    fn dispatch(&mut self, i: usize, line: &str, server: &mut Server) -> bool {
        let req = match proto::parse_request(line) {
            Ok(req) => req,
            Err(msg) => {
                self.queue(i, &proto::error(&msg));
                return true;
            }
        };
        match req {
            Request::Quit => {
                // Connection-scoped: say goodbye and stop reading. The
                // server — and every other client — keeps running; the
                // durable final snapshot belongs to listener shutdown.
                self.queue(i, &proto::bye());
                self.conns[i].read_closed = true;
                return false;
            }
            Request::Subscribe {
                relation,
                query,
                priority,
            } => {
                let name = self.resolve(i, relation);
                let Some(tenant) = server.catalog().by_name(&name) else {
                    self.unknown(i, &name);
                    return true;
                };
                let (rel_id, n) = (tenant.id().0, tenant.relation().len());
                let query = query.into_query(n);
                match server.subscribe_to(&name, query, priority) {
                    Ok(id) => {
                        self.conns[i].sessions.push((rel_id, id));
                        self.queue(i, &proto::subscribed(&name, id));
                    }
                    Err(e) => self.queue(i, &proto::error(&e.to_string())),
                }
            }
            Request::Unsubscribe { relation, session } => {
                let name = self.resolve(i, relation);
                let id = SessionId(session);
                let rel_id = server.catalog().by_name(&name).map(|t| t.id().0);
                match server.unsubscribe_in(&name, id) {
                    Ok(()) => {
                        let key = (rel_id.expect("unsubscribe resolved"), id);
                        for conn in &mut self.conns {
                            conn.sessions.retain(|&s| s != key);
                        }
                        self.queue(i, &proto::unsubscribed(&name, session));
                    }
                    Err(e) => self.queue(i, &proto::error(&e.to_string())),
                }
            }
            Request::Resume { relation, session } => {
                let name = self.resolve(i, relation);
                let id = SessionId(session);
                let ticks = server
                    .catalog()
                    .by_name(&name)
                    .map(|t| (t.id().0, t.ticks()));
                match server.resume_in(&name, id) {
                    Ok((sess, answer)) => {
                        let (rel_id, ticks) = ticks.expect("resume resolved");
                        let line = proto::resumed(&name, sess, ticks, answer);
                        // Re-attach: future RESULTs for the session are
                        // delivered here.
                        if !self.conns[i].sessions.contains(&(rel_id, id)) {
                            self.conns[i].sessions.push((rel_id, id));
                        }
                        self.queue(i, &line);
                    }
                    Err(e) => self.queue(i, &proto::error(&e.to_string())),
                }
            }
            Request::Tick { relation, rate } => {
                let name = self.resolve(i, relation);
                match server.tick_relation(&name, rate) {
                    Ok(res) => self.broadcast(server, &name, &res, i),
                    Err(e) => self.queue(i, &proto::error(&e.to_string())),
                }
            }
            Request::Ticks { relation, rates } => {
                let name = self.resolve(i, relation);
                // The parser rejects an empty rates array, so the queue is
                // guaranteed nonempty here.
                for &rate in &rates {
                    if let Err(e) = server.offer_tick_in(&name, rate) {
                        self.queue(i, &proto::error(&e.to_string()));
                        return true;
                    }
                }
                match server.run_queued_in(&name) {
                    Some(Ok(res)) => self.broadcast(server, &name, &res, i),
                    Some(Err(e)) => self.queue(i, &proto::error(&e.to_string())),
                    None => self.queue(i, &proto::error("no ticks offered")),
                }
            }
            Request::TickMulti { ticks } => {
                let pairs: Vec<(&str, f64)> = ticks.iter().map(|(n, r)| (n.as_str(), *r)).collect();
                match server.tick_multi(&pairs) {
                    Ok(results) => {
                        for (res, (name, _)) in results.iter().zip(&ticks) {
                            self.broadcast(server, name, res, i);
                        }
                    }
                    Err(e) => self.queue(i, &proto::error(&e.to_string())),
                }
            }
            Request::Stats { relation } => {
                let name = self.resolve(i, relation);
                if server.catalog().by_name(&name).is_none() {
                    self.unknown(i, &name);
                    return true;
                }
                let line = proto::stats(server, &name);
                self.queue(i, &line);
            }
            Request::CreateRelation { name, spec } => {
                let (relation, seed) = match build_relation(&spec) {
                    Ok(pair) => pair,
                    Err(msg) => {
                        self.queue(i, &proto::error(&msg));
                        return true;
                    }
                };
                let bonds = relation.len();
                match server.create_relation(&name, relation, seed) {
                    Ok(id) => self.queue(i, &proto::created(&name, id.0, bonds)),
                    Err(e) => self.queue(i, &proto::error(&e.to_string())),
                }
            }
            Request::DropRelation { name } => match server.drop_relation(&name) {
                Ok(id) => {
                    // Sessions under the dropped relation are gone; stop
                    // tracking them on every connection.
                    for conn in &mut self.conns {
                        conn.sessions.retain(|&(rel, _)| rel != id.0);
                    }
                    self.queue(i, &proto::dropped(&name, id.0));
                }
                Err(e) => self.queue(i, &proto::error(&e.to_string())),
            },
            Request::AddBond { relation, bond } => {
                let name = self.resolve(i, relation);
                match server.add_bond(&name, bond.coupon, bond.maturity, bond.face) {
                    Ok(bond_id) => {
                        let bonds = server
                            .catalog()
                            .by_name(&name)
                            .map_or(0, |t| t.relation().len());
                        self.queue(i, &proto::bond_added(&name, bond_id, bonds));
                    }
                    Err(e) => self.queue(i, &proto::error(&e.to_string())),
                }
            }
            Request::Use { name } => {
                if server.catalog().by_name(&name).is_none() {
                    self.unknown(i, &name);
                    return true;
                }
                self.conns[i].use_relation = Some(name.clone());
                self.queue(i, &proto::using(&name));
            }
            Request::Relations => {
                let line = proto::relations(server);
                self.queue(i, &line);
            }
        }
        true
    }

    /// Resolves the relation a data-plane request addresses: its explicit
    /// `"relation"` field, else the connection's `USE` selection, else
    /// `"default"`.
    fn resolve(&self, i: usize, explicit: Option<String>) -> String {
        explicit.unwrap_or_else(|| {
            self.conns[i]
                .use_relation
                .clone()
                .unwrap_or_else(|| DEFAULT_RELATION.to_string())
        })
    }

    /// Queues the typed unknown-relation `ERROR` line.
    fn unknown(&mut self, i: usize, name: &str) {
        let e = crate::error::ServerError::UnknownRelation(name.to_string());
        self.queue(i, &proto::error(&e.to_string()));
    }

    /// Fans one relation's tick answers out to every attached connection,
    /// one serialized payload per query shape, and the `TICK_DONE` trailer
    /// to the connection that drove the tick.
    fn broadcast(&mut self, server: &Server, name: &str, res: &TickResult, origin: usize) {
        let rel_id = res.relation.0;
        let groups = server
            .broadcast_groups_in(name, &res.answers)
            .unwrap_or_default();
        for group in groups {
            let payload = proto::result_payload(name, res.tick, res.rate, group.answer);
            self.stats.payloads_serialized += 1;
            for &sid in &group.sessions {
                let line = proto::result_line(sid, &payload);
                let receivers: Vec<usize> = self
                    .conns
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !c.dead && c.sessions.contains(&(rel_id, sid)))
                    .map(|(ci, _)| ci)
                    .collect();
                for ci in receivers {
                    self.queue(ci, &line);
                    self.stats.results_delivered += 1;
                }
            }
        }
        let shed = server.catalog().by_name(name).map_or(0, |t| t.shed());
        let done = proto::tick_done(name, res, shed);
        self.queue(origin, &done);
    }

    /// Appends one reply line to a connection's write buffer, evicting
    /// the connection instead of growing past the configured bound.
    fn queue(&mut self, i: usize, line: &str) {
        let conn = &mut self.conns[i];
        if conn.dead {
            return;
        }
        conn.wbuf.extend(line.as_bytes());
        conn.wbuf.push_back(b'\n');
        if conn.wbuf.len() > self.config.max_write_buffer {
            eprintln!(
                "va-server: evicting slow client {} ({} bytes pending)",
                conn.peer,
                conn.wbuf.len()
            );
            conn.dead = true;
            self.stats.evicted_slow += 1;
        }
    }

    /// Writes as much pending output as the socket accepts right now.
    fn flush(&mut self, i: usize) {
        loop {
            let conn = &mut self.conns[i];
            let (head, _) = conn.wbuf.as_slices();
            if head.is_empty() {
                break;
            }
            match conn.stream.write(head) {
                Ok(0) => {
                    conn.dead = true;
                    self.stats.dropped_io += 1;
                    break;
                }
                Ok(n) => {
                    conn.wbuf.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    eprintln!("va-server: write {}: {e}", conn.peer);
                    conn.dead = true;
                    self.stats.dropped_io += 1;
                    break;
                }
            }
        }
    }

    /// Drops finished connections: dead ones immediately, half-closed
    /// ones once their replies have flushed.
    fn reap(&mut self) {
        let before = self.conns.len();
        self.conns
            .retain(|c| !(c.dead || (c.read_closed && c.wbuf.is_empty())));
        self.stats.closed += (before - self.conns.len()) as u64;
    }
}

/// Materializes a `CREATE_RELATION` spec into a relation, validating
/// wire bonds so a malformed bond is a protocol `ERROR`, never a panic
/// inside `Bond::new`. Returns the provenance seed for seeded specs.
fn build_relation(spec: &RelationSpec) -> Result<(BondRelation, Option<u64>), String> {
    match spec {
        RelationSpec::Seeded { seed, count } => {
            let count = usize::try_from(*count).map_err(|_| "\"count\" out of range")?;
            Ok((
                BondRelation::from_universe(&BondUniverse::generate(count, *seed)),
                Some(*seed),
            ))
        }
        RelationSpec::Bonds(bonds) => {
            let mut out = Vec::with_capacity(bonds.len());
            for (idx, b) in bonds.iter().enumerate() {
                let id = u32::try_from(idx).map_err(|_| "too many bonds".to_string())?;
                out.push(
                    try_bond(id, b.coupon, b.maturity, b.face)
                        .map_err(|detail| format!("invalid bond: {detail}"))?,
                );
            }
            Ok((BondRelation::from_bonds(out), None))
        }
    }
}

/// Serves connections from `listener` until the process ends, with
/// default tuning. Connection errors are connection-local; this only
/// returns on a poll-layer failure. See [`FrontEnd::run`] for a
/// stoppable loop.
pub fn serve(listener: &TcpListener, server: &mut Server) -> std::io::Result<()> {
    FrontEnd::default().run(listener, server, &AtomicBool::new(false))
}

/// Serves one already-accepted connection to completion (`QUIT` or EOF,
/// plus reply flush) — the single-client entry the loopback tests and the
/// `--smoke` exchange use.
pub fn serve_connection(stream: TcpStream, server: &mut Server) -> std::io::Result<()> {
    let mut front = FrontEnd::default();
    front.adopt(stream)?;
    while front.connections() > 0 {
        front.turn(None, server)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bondlab::{BondPricer, BondUniverse};
    use va_stream::BondRelation;

    fn tiny_server() -> Server {
        let universe = BondUniverse::generate(4, 7);
        let relation = BondRelation::from_universe(&universe);
        Server::new(
            BondPricer::default(),
            relation,
            crate::ServerConfig::default(),
        )
    }

    /// A loopback pair with the server side adopted by a front-end.
    fn adopted(front: &mut FrontEnd) -> TcpStream {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        front.adopt(server_side).expect("adopt");
        client
    }

    #[test]
    fn overflowing_the_write_buffer_evicts_the_connection() {
        let mut front = FrontEnd::new(FrontEndConfig {
            max_write_buffer: 64,
            ..FrontEndConfig::default()
        });
        let _client = adopted(&mut front);
        front.queue(0, &"x".repeat(100));
        assert_eq!(front.stats().evicted_slow, 1);
        assert!(front.conns[0].dead);
        // Queueing to an evicted connection is a no-op, not a panic.
        front.queue(0, "more");
        front.reap();
        assert_eq!(front.connections(), 0);
        assert_eq!(front.stats().closed, 1);
    }

    #[test]
    fn oversize_request_line_errors_and_closes() {
        let mut front = FrontEnd::new(FrontEndConfig {
            max_line_bytes: 32,
            ..FrontEndConfig::default()
        });
        let mut client = adopted(&mut front);
        let mut server = tiny_server();
        client
            .write_all(&[b'a'; 100])
            .expect("write oversize prefix");
        // The guard closes the connection once the replies flush, so the
        // loop drains on its own.
        for _ in 0..200 {
            if front.connections() == 0 {
                break;
            }
            front.turn(None, &mut server).expect("turn");
        }
        assert_eq!(front.connections(), 0, "oversize line closes the conn");
        let mut reply = String::new();
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .expect("timeout");
        std::io::BufRead::read_line(
            &mut std::io::BufReader::new(client.try_clone().expect("clone")),
            &mut reply,
        )
        .expect("read error line");
        assert!(reply.contains("\"type\":\"ERROR\""), "{reply}");
        assert!(reply.contains("exceeds 32 bytes"), "{reply}");
    }

    #[test]
    fn catalog_commands_round_trip_over_loopback() {
        let mut front = FrontEnd::default();
        let mut client = adopted(&mut front);
        let mut server = tiny_server();
        client
            .write_all(
                concat!(
                    "{\"type\":\"CREATE_RELATION\",\"name\":\"energy\",\"seed\":7,\"count\":4}\n",
                    "{\"type\":\"USE\",\"name\":\"energy\"}\n",
                    "{\"type\":\"SUBSCRIBE\",\"query\":{\"kind\":\"max\",\"epsilon\":0.5}}\n",
                    "{\"type\":\"TICK\",\"rate\":0.0583}\n",
                    "{\"type\":\"RELATIONS\"}\n",
                    "{\"type\":\"SUBSCRIBE\",\"relation\":\"nope\",\"query\":{\"kind\":\"max\",\"epsilon\":0.5}}\n",
                    "{\"type\":\"ADD_BOND\",\"bond\":{\"coupon\":1.5,\"maturity\":10,\"face\":100}}\n",
                    "{\"type\":\"DROP_RELATION\",\"name\":\"energy\"}\n",
                    "{\"type\":\"STATS\"}\n",
                )
                .as_bytes(),
            )
            .expect("write");
        client
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        for _ in 0..400 {
            if front.connections() == 0 {
                break;
            }
            front.turn(None, &mut server).expect("turn");
        }
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .expect("timeout");
        let mut reader = std::io::BufReader::new(client);
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            if std::io::BufRead::read_line(&mut reader, &mut line).expect("read") == 0 {
                break;
            }
            lines.push(line);
        }
        assert!(
            lines[0].contains("\"type\":\"CREATED\"") && lines[0].contains("\"bonds\":4"),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains("\"type\":\"USING\""), "{}", lines[1]);
        assert!(
            lines[2].contains("\"type\":\"SUBSCRIBED\"")
                && lines[2].contains("\"relation\":\"energy\""),
            "{}",
            lines[2]
        );
        // The USE-selected tick answers against "energy", not "default".
        assert!(
            lines[3].contains("\"type\":\"RESULT\"")
                && lines[3].contains("\"relation\":\"energy\""),
            "{}",
            lines[3]
        );
        assert!(lines[4].contains("\"type\":\"TICK_DONE\""), "{}", lines[4]);
        assert!(
            lines[5].contains("\"type\":\"RELATIONS\"")
                && lines[5].contains("\"name\":\"default\"")
                && lines[5].contains("\"name\":\"energy\""),
            "{}",
            lines[5]
        );
        assert!(
            lines[6].contains("\"type\":\"ERROR\"")
                && lines[6].contains("unknown relation \\\"nope\\\""),
            "{}",
            lines[6]
        );
        assert!(
            lines[7].contains("\"type\":\"ERROR\"") && lines[7].contains("invalid bond"),
            "{}",
            lines[7]
        );
        assert!(lines[8].contains("\"type\":\"DROPPED\""), "{}", lines[8]);
        // STATS falls back to "default" once the USE'd relation is gone?
        // No — the USE selection still names "energy", which is now
        // unknown: a typed ERROR, never a panic or a silent fallback.
        assert!(
            lines[9].contains("\"type\":\"ERROR\"")
                && lines[9].contains("unknown relation \\\"energy\\\""),
            "{}",
            lines[9]
        );
        assert_eq!(lines.len(), 10, "{lines:?}");
    }

    #[test]
    fn crlf_and_blank_lines_are_tolerated() {
        let mut front = FrontEnd::default();
        let mut client = adopted(&mut front);
        let mut server = tiny_server();
        client
            .write_all(b"\r\n{\"type\":\"STATS\"}\r\n\n")
            .expect("write");
        // Half-close like the `--client` driver: the front-end must still
        // dispatch the buffered line and flush its reply before closing.
        client
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        for _ in 0..200 {
            if front.connections() == 0 {
                break;
            }
            front.turn(None, &mut server).expect("turn");
        }
        assert_eq!(front.connections(), 0);
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .expect("timeout");
        let mut reply = String::new();
        std::io::BufRead::read_line(
            &mut std::io::BufReader::new(client.try_clone().expect("clone")),
            &mut reply,
        )
        .expect("read stats line");
        assert!(reply.contains("\"type\":\"STATS\""), "{reply}");
    }
}
