//! Per-query refinement demand over the shared pool.
//!
//! Each registered query contributes a stateless *demand function*: given
//! the pool's current bounds, which objects does it still want refined and
//! what output-bound-width reduction does it expect from each. The benefit
//! formulas are the §5 per-operator scores, reused unchanged — a MAX query
//! scores overlap reduction against its educated guess, a SUM query scores
//! weighted width reduction, COUNT/SELECT score expected classification
//! progress. Demands are recomputed every scheduler round, mirroring the
//! per-operator loops (which re-derive their guess/unresolved sets after
//! every iteration), so the shared scheduler inherits their guess-revision
//! behavior for free.
//!
//! The invariant the scheduler builds on: **a query's demand list is empty
//! exactly when the pool's current bounds let it emit a
//! [`Answer::Final`]** — the same stopping conditions as the dedicated
//! operators, including MAX/TOP-K stopping case 2 (everything overlapping
//! the winner converged ⇒ ties).

use std::cmp::Ordering;

use va_stream::{BondRelation, Query, QueryOutput};
use vao::ops::minmax::{max_envelope, min_envelope};
use vao::ops::selection::CmpOp;
use vao::Bounds;

use crate::answer::Answer;
use crate::error::ServerError;
use crate::pool::SharedPool;

/// Descending total order on `f64` keys.
///
/// [`Bounds`] rejects non-finite endpoints at construction, so bound
/// comparisons only ever see finite values — but ordering through
/// `f64::total_cmp` instead of `partial_cmp(..).expect(..)` means that even
/// a future pricer bug that smuggles a NaN through produces a deterministic
/// (if arbitrary) order instead of aborting the whole server mid-tick.
pub(crate) fn cmp_desc(a: f64, b: f64) -> Ordering {
    b.total_cmp(&a)
}

/// Ascending total order on `f64` keys (see [`cmp_desc`]).
pub(crate) fn cmp_asc(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// One query's appetite for refining one pool object.
#[derive(Clone, Copy, Debug)]
pub struct Demand {
    /// Pool object index.
    pub object: usize,
    /// Expected output-bound-width reduction, in the query's output units
    /// (§5's benefit estimate). May be zero when the object's own estimate
    /// predicts no progress; the scheduler's widest-first fallback still
    /// guarantees progress then.
    pub benefit: f64,
}

/// Fills `out` with the query's outstanding demands. Empty ⇔ the query can
/// answer [`Answer::Final`] from the pool's current bounds.
pub fn demands(query: &Query, pool: &SharedPool, out: &mut Vec<Demand>) {
    out.clear();
    if pool.is_empty() {
        // Nothing to refine; the answer path reports the empty relation as
        // a typed error for the shapes that have no answer over ∅.
        return;
    }
    match query {
        Query::Selection { op, constant } => demands_classify(pool, *op, *constant, 0, out),
        Query::Count {
            op,
            constant,
            slack,
        } => demands_classify(pool, *op, *constant, *slack, out),
        Query::Sum { weights, epsilon } => {
            demands_sum(pool, Weights::Per(weights), *epsilon, out);
        }
        Query::Ave { epsilon } => {
            demands_sum(pool, uniform(pool.len()), *epsilon, out);
        }
        Query::Max { epsilon } => demands_extreme(pool, *epsilon, false, out),
        Query::Min { epsilon } => demands_extreme(pool, *epsilon, true, out),
        Query::TopK { k, epsilon } => demands_topk(pool, *k, *epsilon, out),
    }
}

/// The exact output the query converged to (call only when [`demands`] is
/// empty — the pool has reached the query's stopping condition).
pub fn final_output(query: &Query, pool: &SharedPool, relation: &BondRelation) -> QueryOutput {
    let id = |i: usize| relation.bonds()[i].id;
    match query {
        Query::Selection { op, constant } => {
            let mut ids = Vec::new();
            for i in 0..pool.len() {
                if satisfied(pool, i, *op, *constant) == Some(true) {
                    ids.push(id(i));
                }
            }
            QueryOutput::Selected(ids)
        }
        Query::Count { op, constant, .. } => {
            let (count_lo, unresolved) = classify(pool, *op, *constant);
            QueryOutput::Count {
                lo: count_lo,
                hi: count_lo + unresolved.len(),
            }
        }
        Query::Sum { weights, .. } => QueryOutput::Aggregate {
            bounds: weighted_interval(pool, Weights::Per(weights)),
        },
        Query::Ave { .. } => QueryOutput::Aggregate {
            bounds: weighted_interval(pool, uniform(pool.len())),
        },
        Query::Max { .. } => extreme_output(pool, relation, false),
        Query::Min { .. } => extreme_output(pool, relation, true),
        Query::TopK { k, .. } => {
            let members = guess_members(pool, *k);
            let theta_holder = boundary_member(pool, &members);
            let theta = pool.bounds(theta_holder).lo();
            let ties: Vec<u32> = (0..pool.len())
                .filter(|&i| !members.contains(&i) && pool.bounds(i).hi() >= theta)
                .map(id)
                .collect();
            let mut ordered = members;
            ordered.sort_by(|&a, &b| cmp_desc(pool.bounds(a).hi(), pool.bounds(b).hi()));
            QueryOutput::Ranked {
                members: ordered.iter().map(|&i| (id(i), pool.bounds(i))).collect(),
                ties,
            }
        }
    }
}

/// Sound anytime bounds on the query's converged answer value, from the
/// pool's *current* bounds (the budget-exhausted degradation path).
///
/// * SUM/AVE — the current weighted interval `[Σ wL, Σ wH]`.
/// * MAX/MIN — the footnote-9 envelope `[max L, max H]` / `[min L, min H]`.
/// * TOP-K — the k-th order statistic of the L's and of the H's (at most
///   k−1 true values can exceed the k-th largest H).
/// * SELECT/COUNT — the result *cardinality* interval
///   `[proven, proven + unresolved]`.
///
/// Every case brackets the value a budget-free run converges to, because
/// per-object bounds are sound and shrink monotonically.
///
/// # Errors
///
/// [`ServerError::EmptyRelation`] for the extreme-family queries
/// (MAX/MIN/TOP-K) over an empty pool: there is no value to bound. The
/// set/aggregate shapes answer `[0, 0]` over ∅ instead.
pub fn partial_bounds(query: &Query, pool: &SharedPool) -> Result<Bounds, ServerError> {
    match query {
        Query::Selection { op, constant } => {
            let (count_lo, unresolved) = classify(pool, *op, *constant);
            Ok(Bounds::new(
                count_lo as f64,
                (count_lo + unresolved.len()) as f64,
            ))
        }
        Query::Count { op, constant, .. } => {
            let (count_lo, unresolved) = classify(pool, *op, *constant);
            Ok(Bounds::new(
                count_lo as f64,
                (count_lo + unresolved.len()) as f64,
            ))
        }
        Query::Sum { weights, .. } => Ok(weighted_interval(pool, Weights::Per(weights))),
        Query::Ave { .. } => Ok(weighted_interval(pool, uniform(pool.len()))),
        Query::Max { .. } => max_envelope(pool.objects()).map_err(|_| ServerError::EmptyRelation),
        Query::Min { .. } => min_envelope(pool.objects()).map_err(|_| ServerError::EmptyRelation),
        Query::TopK { k, .. } => {
            if pool.is_empty() {
                return Err(ServerError::EmptyRelation);
            }
            let lo = kth_largest(pool, *k, |b| b.lo());
            let hi = kth_largest(pool, *k, |b| b.hi());
            Ok(Bounds::new(lo, hi))
        }
    }
}

/// Builds the session's answer for the tick: `Final` when the query reached
/// its stopping condition, the anytime `Partial` otherwise.
///
/// # Errors
///
/// [`ServerError::EmptyRelation`] when an extreme-family query
/// (MAX/MIN/TOP-K) is answered over an empty pool — a typed error where
/// the pre-batched server panicked.
pub fn answer(
    query: &Query,
    pool: &SharedPool,
    relation: &BondRelation,
    done: bool,
) -> Result<Answer, ServerError> {
    if pool.is_empty()
        && matches!(
            query,
            Query::Max { .. } | Query::Min { .. } | Query::TopK { .. }
        )
    {
        return Err(ServerError::EmptyRelation);
    }
    if done {
        Ok(Answer::Final(final_output(query, pool, relation)))
    } else {
        Ok(Answer::Partial {
            bounds: partial_bounds(query, pool)?,
        })
    }
}

// ---------------------------------------------------------------- weights

/// Weight source for SUM-family demands, without materializing a vector
/// per scheduler round.
#[derive(Clone, Copy)]
enum Weights<'a> {
    Uniform(f64),
    Per(&'a [f64]),
}

impl Weights<'_> {
    fn get(&self, i: usize) -> f64 {
        match self {
            Weights::Uniform(w) => *w,
            Weights::Per(ws) => ws[i],
        }
    }
}

fn uniform(n: usize) -> Weights<'static> {
    Weights::Uniform(1.0 / n.max(1) as f64)
}

fn weighted_interval(pool: &SharedPool, w: Weights<'_>) -> Bounds {
    let (mut lo, mut hi) = (0.0f64, 0.0f64);
    for i in 0..pool.len() {
        let b = pool.bounds(i);
        let wi = w.get(i);
        lo += wi * b.lo();
        hi += wi * b.hi();
    }
    Bounds::new(lo, hi)
}

fn demands_sum(pool: &SharedPool, w: Weights<'_>, epsilon: f64, out: &mut Vec<Demand>) {
    if weighted_interval(pool, w).width() <= epsilon {
        return;
    }
    for i in 0..pool.len() {
        let wi = w.get(i);
        if wi == 0.0 || pool.converged(i) {
            continue;
        }
        let b = pool.bounds(i);
        let eb = pool.est_bounds(i);
        let benefit = wi * ((eb.lo() - b.lo()).max(0.0) + (b.hi() - eb.hi()).max(0.0));
        out.push(Demand { object: i, benefit });
    }
}

// ---------------------------------------------------- selection and count

/// Per-object predicate outcome under the selection VAO's semantics:
/// decided from bounds, or resolved as equality at `minWidth` convergence,
/// or still unknown (`None`).
fn satisfied(pool: &SharedPool, i: usize, op: CmpOp, constant: f64) -> Option<bool> {
    match op.decide(&pool.bounds(i), constant) {
        Some(v) => Some(v),
        None if pool.converged(i) => Some(op.outcome_at_equality()),
        None => None,
    }
}

/// `(proven count, unresolved non-converged objects)` — the COUNT VAO's
/// classification pass.
fn classify(pool: &SharedPool, op: CmpOp, constant: f64) -> (usize, Vec<usize>) {
    let mut count_lo = 0usize;
    let mut unresolved = Vec::new();
    for i in 0..pool.len() {
        match satisfied(pool, i, op, constant) {
            Some(true) => count_lo += 1,
            Some(false) => {}
            None => unresolved.push(i),
        }
    }
    (count_lo, unresolved)
}

fn demands_classify(
    pool: &SharedPool,
    op: CmpOp,
    constant: f64,
    slack: usize,
    out: &mut Vec<Demand>,
) {
    let (_, unresolved) = classify(pool, op, constant);
    if unresolved.len() <= slack {
        return;
    }
    for &i in &unresolved {
        let b = pool.bounds(i);
        let eb = pool.est_bounds(i);
        let mut benefit = (eb.lo() - b.lo()).max(0.0) + (b.hi() - eb.hi()).max(0.0);
        if op.decide(&eb, constant).is_some() {
            benefit += b.width();
        }
        out.push(Demand { object: i, benefit });
    }
}

// ------------------------------------------------------------ max and min

/// Bounds accessor that optionally negates, so MIN shares the MAX logic
/// exactly like the core operator's `Negated` views (tie-breaks included).
#[derive(Clone, Copy)]
struct View<'a> {
    pool: &'a SharedPool,
    flip: bool,
}

impl View<'_> {
    fn lo(&self, i: usize) -> f64 {
        let b = self.pool.bounds(i);
        if self.flip {
            -b.hi()
        } else {
            b.lo()
        }
    }
    fn hi(&self, i: usize) -> f64 {
        let b = self.pool.bounds(i);
        if self.flip {
            -b.lo()
        } else {
            b.hi()
        }
    }
    fn est_lo(&self, i: usize) -> f64 {
        let b = self.pool.est_bounds(i);
        if self.flip {
            -b.hi()
        } else {
            b.lo()
        }
    }
    fn est_hi(&self, i: usize) -> f64 {
        let b = self.pool.est_bounds(i);
        if self.flip {
            -b.lo()
        } else {
            b.hi()
        }
    }
}

/// The educated guess: highest upper bound, ties to higher lower bound,
/// then lower index (the MAX VAO's deterministic rule, §5.1).
fn guess_extreme(v: View<'_>) -> usize {
    let mut best = 0;
    for i in 1..v.pool.len() {
        if v.hi(i) > v.hi(best) || (v.hi(i) == v.hi(best) && v.lo(i) > v.lo(best)) {
            best = i;
        }
    }
    best
}

fn unresolved_against(v: View<'_>, guess: usize) -> Vec<usize> {
    let guess_lo = v.lo(guess);
    (0..v.pool.len())
        .filter(|&i| i != guess && v.hi(i) >= guess_lo)
        .collect()
}

fn demands_extreme(pool: &SharedPool, epsilon: f64, flip: bool, out: &mut Vec<Demand>) {
    let v = View { pool, flip };
    let guess = guess_extreme(v);
    let unresolved = unresolved_against(v, guess);
    let phase1_done = unresolved.is_empty()
        || (pool.converged(guess) && unresolved.iter().all(|&i| pool.converged(i)));

    if phase1_done {
        // Phase 2 of the MAX VAO: refine the identified winner to ε.
        let b = pool.bounds(guess);
        if b.width() > epsilon && !pool.converged(guess) {
            let eb = pool.est_bounds(guess);
            let benefit = (eb.lo() - b.lo()).max(0.0) + (b.hi() - eb.hi()).max(0.0);
            out.push(Demand {
                object: guess,
                benefit,
            });
        }
        return;
    }

    let guess_lo = v.lo(guess);
    if !pool.converged(guess) {
        // Raising the guess's lower bound clears overlap with every
        // unresolved object at once.
        let est_raise = (v.est_lo(guess) - guess_lo).max(0.0);
        let benefit: f64 = unresolved
            .iter()
            .map(|&j| (v.hi(j) - guess_lo).max(0.0).min(est_raise))
            .sum();
        out.push(Demand {
            object: guess,
            benefit,
        });
    }
    for &i in &unresolved {
        if pool.converged(i) {
            continue;
        }
        let overlap = (v.hi(i) - guess_lo).max(0.0);
        let est_drop = (v.hi(i) - v.est_hi(i)).max(0.0);
        out.push(Demand {
            object: i,
            benefit: overlap.min(est_drop),
        });
    }
}

fn extreme_output(pool: &SharedPool, relation: &BondRelation, flip: bool) -> QueryOutput {
    let v = View { pool, flip };
    let guess = guess_extreme(v);
    let unresolved = unresolved_against(v, guess);
    QueryOutput::Extreme {
        bond_id: relation.bonds()[guess].id,
        bounds: pool.bounds(guess),
        ties: unresolved.iter().map(|&i| relation.bonds()[i].id).collect(),
    }
}

// ------------------------------------------------------------------ top-k

/// The K objects with the highest upper bounds (ties to higher lower bound,
/// then lower index) — the Top-K VAO's member guess.
fn guess_members(pool: &SharedPool, k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    idx.sort_by(|&a, &b| {
        let (ba, bb) = (pool.bounds(a), pool.bounds(b));
        cmp_desc(ba.hi(), bb.hi())
            .then(cmp_desc(ba.lo(), bb.lo()))
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// The member holding the boundary θ (lowest lower bound; first on ties,
/// matching the core operator's `min_by`).
fn boundary_member(pool: &SharedPool, members: &[usize]) -> usize {
    *members
        .iter()
        .min_by(|&&a, &&b| cmp_asc(pool.bounds(a).lo(), pool.bounds(b).lo()))
        .expect("k >= 1")
}

fn demands_topk(pool: &SharedPool, k: usize, epsilon: f64, out: &mut Vec<Demand>) {
    let members = guess_members(pool, k);
    if members.is_empty() {
        return; // k == 0 (rejected at subscribe; guarded for direct callers)
    }
    let theta_holder = boundary_member(pool, &members);
    let theta = pool.bounds(theta_holder).lo();
    let unresolved: Vec<usize> = (0..pool.len())
        .filter(|&i| !members.contains(&i) && pool.bounds(i).hi() >= theta)
        .collect();
    let phase1_done = unresolved.is_empty()
        || (pool.converged(theta_holder) && unresolved.iter().all(|&i| pool.converged(i)));

    if phase1_done {
        for &m in &members {
            let b = pool.bounds(m);
            if b.width() > epsilon && !pool.converged(m) {
                let eb = pool.est_bounds(m);
                let benefit = (eb.lo() - b.lo()).max(0.0) + (b.hi() - eb.hi()).max(0.0);
                out.push(Demand { object: m, benefit });
            }
        }
        return;
    }

    if !pool.converged(theta_holder) {
        let est_raise = (pool.est_bounds(theta_holder).lo() - theta).max(0.0);
        let benefit: f64 = unresolved
            .iter()
            .map(|&j| (pool.bounds(j).hi() - theta).max(0.0).min(est_raise))
            .sum();
        out.push(Demand {
            object: theta_holder,
            benefit,
        });
    }
    for &i in &unresolved {
        if pool.converged(i) {
            continue;
        }
        let b = pool.bounds(i);
        let overlap = (b.hi() - theta).max(0.0);
        let est_drop = (b.hi() - pool.est_bounds(i).hi()).max(0.0);
        out.push(Demand {
            object: i,
            benefit: overlap.min(est_drop),
        });
    }
}

/// The k-th largest of `f(bounds)` over the (non-empty) pool.
fn kth_largest(pool: &SharedPool, k: usize, f: impl Fn(&Bounds) -> f64) -> f64 {
    let mut vals: Vec<f64> = (0..pool.len()).map(|i| f(&pool.bounds(i))).collect();
    vals.sort_by(|a, b| cmp_desc(*a, *b));
    vals[k.clamp(1, vals.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vao::testkit::ScriptedObject;

    /// The paper's Table 2 objects (see `vao::ops::minmax` tests), boxed
    /// into a pool.
    fn table2_pool() -> SharedPool {
        let objs: Vec<Box<dyn vao::interface::ResultObject + Send>> = vec![
            Box::new(ScriptedObject::converging(
                &[(97.0, 101.0), (98.0, 99.0), (98.4, 98.405)],
                4,
                0.01,
            )),
            Box::new(ScriptedObject::converging(
                &[(95.0, 103.0), (96.0, 101.0), (98.0, 98.005)],
                4,
                0.01,
            )),
            Box::new(ScriptedObject::converging(
                &[(100.0, 106.0), (102.0, 104.0), (103.0, 103.005)],
                4,
                0.01,
            )),
        ];
        SharedPool::from_objects(objs, 0.05)
    }

    #[test]
    fn max_demand_mirrors_table2_scores() {
        let pool = table2_pool();
        let mut out = Vec::new();
        demands(&Query::Max { epsilon: 0.5 }, &pool, &mut out);
        // §5.1's worked example: o1 benefit 1, o2 benefit 2, o3 (the guess)
        // benefit 3 — here with the scripted est bounds.
        let find = |i: usize| out.iter().find(|d| d.object == i).map(|d| d.benefit);
        assert_eq!(find(2), Some(2.0 + 3.0 - 2.0)); // min(1,2)+min(3,2) = 3
        assert!(find(0).is_some() && find(1).is_some());
    }

    #[test]
    fn min_demand_flips_the_view() {
        let pool = table2_pool();
        let mut out = Vec::new();
        demands(&Query::Min { epsilon: 0.5 }, &pool, &mut out);
        // The MIN guess is the object with the lowest lower bound: o2 at 95.
        assert!(
            out.iter().any(|d| d.object == 1),
            "min contends around the lowest-lo object"
        );
    }

    #[test]
    fn sum_demand_is_weighted() {
        let pool = table2_pool();
        let mut out = Vec::new();
        let q = Query::Sum {
            weights: vec![0.0, 2.0, 1.0],
            epsilon: 0.1,
        };
        demands(&q, &pool, &mut out);
        assert!(
            !out.iter().any(|d| d.object == 0),
            "zero-weight objects are never demanded"
        );
        let b1 = out.iter().find(|d| d.object == 1).unwrap().benefit;
        // o2: est shrink (96-95)+(103-101) = 3, weight 2 -> 6.
        assert!((b1 - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_demands_mean_final_answers() {
        let pool = table2_pool();
        let mut out = Vec::new();
        // ε = 8 is wider than every initial width: sum is immediately done.
        let q = Query::Sum {
            weights: vec![0.0, 0.0, 1.0],
            epsilon: 8.0,
        };
        demands(&q, &pool, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn selection_demand_carries_decision_bonus() {
        let pool = table2_pool();
        let mut out = Vec::new();
        let q = Query::Selection {
            op: CmpOp::Gt,
            constant: 100.0,
        };
        demands(&q, &pool, &mut out);
        // o3 ([100,106], est [102,104]) straddles 100 but its estimate
        // decides; o1/o2 straddle too.
        let d3 = out.iter().find(|d| d.object == 2).unwrap();
        // width shrink (102-100)+(106-104)=4, bonus width 6 -> 10.
        assert!((d3.benefit - 10.0).abs() < 1e-12);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn partial_bounds_bracket_every_query_shape() {
        let pool = table2_pool();
        let rel_check = |b: Bounds, lo: f64, hi: f64| {
            assert!(
                (b.lo() - lo).abs() < 1e-9 && (b.hi() - hi).abs() < 1e-9,
                "{b}"
            );
        };
        rel_check(
            partial_bounds(&Query::Max { epsilon: 0.01 }, &pool).unwrap(),
            100.0,
            106.0,
        );
        rel_check(
            partial_bounds(&Query::Min { epsilon: 0.01 }, &pool).unwrap(),
            95.0,
            101.0,
        );
        // Top-2: 2nd largest lo = 97, 2nd largest hi = 103.
        rel_check(
            partial_bounds(
                &Query::TopK {
                    k: 2,
                    epsilon: 0.01,
                },
                &pool,
            )
            .unwrap(),
            97.0,
            103.0,
        );
        // Selection > 100: none proven, all three unresolved.
        rel_check(
            partial_bounds(
                &Query::Selection {
                    op: CmpOp::Gt,
                    constant: 100.0,
                },
                &pool,
            )
            .unwrap(),
            0.0,
            3.0,
        );
        rel_check(
            partial_bounds(
                &Query::Sum {
                    weights: vec![1.0; 3],
                    epsilon: 0.1,
                },
                &pool,
            )
            .unwrap(),
            97.0 + 95.0 + 100.0,
            101.0 + 103.0 + 106.0,
        );
    }

    #[test]
    fn empty_pool_yields_typed_errors_not_panics() {
        let pool = SharedPool::from_objects(Vec::new(), 0.05);
        let rel = va_stream::BondRelation::from_universe(&bondlab::BondUniverse::generate(0, 1));
        for q in [
            Query::Max { epsilon: 0.1 },
            Query::Min { epsilon: 0.1 },
            Query::TopK { k: 1, epsilon: 0.1 },
        ] {
            assert_eq!(
                partial_bounds(&q, &pool).unwrap_err(),
                ServerError::EmptyRelation,
                "{q:?}"
            );
            assert_eq!(
                answer(&q, &pool, &rel, true).unwrap_err(),
                ServerError::EmptyRelation,
                "{q:?}"
            );
            let mut out = vec![Demand {
                object: 0,
                benefit: 1.0,
            }];
            demands(&q, &pool, &mut out);
            assert!(out.is_empty(), "empty pool demands nothing");
        }
        // Set/aggregate shapes legitimately answer over ∅.
        let sel = Query::Selection {
            op: CmpOp::Gt,
            constant: 100.0,
        };
        assert_eq!(partial_bounds(&sel, &pool).unwrap(), Bounds::new(0.0, 0.0));
        assert!(answer(&sel, &pool, &rel, true).unwrap().is_final());
    }

    mod nan_safe_orderings {
        use super::super::{cmp_asc, cmp_desc};
        use proptest::prelude::*;

        /// Any-bits floats: includes NaNs (every payload), ±∞, subnormals
        /// and negative zero — the values a buggy pricer could smuggle
        /// into an ordering.
        fn any_f64() -> impl Strategy<Value = f64> {
            any::<u64>().prop_map(f64::from_bits)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn comparators_are_total_even_on_non_finite(a in any_f64(), b in any_f64()) {
                // Totality: never panics, and the two orders are exact
                // mirrors, so min_by/sort_by see a consistent ordering.
                prop_assert_eq!(cmp_asc(a, b), cmp_desc(b, a));
                prop_assert_eq!(cmp_asc(a, b), cmp_asc(b, a).reverse());
                prop_assert_eq!(cmp_asc(a, a), std::cmp::Ordering::Equal);
            }

            #[test]
            fn sorting_non_finite_keys_never_aborts(mut vals in prop::collection::vec(any_f64(), 0..32)) {
                // The exact property the old partial_cmp().expect() lacked:
                // a sort over arbitrary bit patterns completes and is
                // totally ordered under the same comparator.
                vals.sort_by(|x, y| cmp_desc(*x, *y));
                for w in vals.windows(2) {
                    prop_assert!(cmp_desc(w[0], w[1]) != std::cmp::Ordering::Greater);
                }
            }
        }
    }
}
