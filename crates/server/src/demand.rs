//! Per-query refinement demand over the shared pool.
//!
//! Each registered query contributes a stateless *demand function*: given
//! the pool's current bounds, which objects does it still want refined and
//! what output-bound-width reduction does it expect from each. The benefit
//! formulas are the §5 per-operator scores, reused unchanged — a MAX query
//! scores overlap reduction against its educated guess, a SUM query scores
//! weighted width reduction, COUNT/SELECT score expected classification
//! progress. Demands are recomputed every scheduler round, mirroring the
//! per-operator loops (which re-derive their guess/unresolved sets after
//! every iteration), so the shared scheduler inherits their guess-revision
//! behavior for free.
//!
//! The invariant the scheduler builds on: **a query's demand list is empty
//! exactly when the pool's current bounds let it emit a
//! [`Answer::Final`]** — the same stopping conditions as the dedicated
//! operators, including MAX/TOP-K stopping case 2 (everything overlapping
//! the winner converged ⇒ ties).

use std::cmp::Ordering;
use std::collections::BTreeMap;

use va_sketch::{CountMin, IntervalQuantileSketch, SpaceSaving};
use va_stream::{BondRelation, Query, QueryOutput};
use vao::ops::heavy::{cell_of, HeavyCell, COUNTMIN_DEPTH, COUNTMIN_WIDTH, SPAN_PROBE_CAP};
use vao::ops::minmax::{max_envelope, min_envelope};
use vao::ops::percentile::{rank_from_top, SKETCH_ALPHA, SKETCH_BUDGET};
use vao::ops::selection::CmpOp;
use vao::Bounds;

use crate::answer::Answer;
use crate::error::ServerError;
use crate::pool::SharedPool;

/// Descending total order on `f64` keys.
///
/// [`Bounds`] rejects non-finite endpoints at construction, so bound
/// comparisons only ever see finite values — but ordering through
/// `f64::total_cmp` instead of `partial_cmp(..).expect(..)` means that even
/// a future pricer bug that smuggles a NaN through produces a deterministic
/// (if arbitrary) order instead of aborting the whole server mid-tick.
pub(crate) fn cmp_desc(a: f64, b: f64) -> Ordering {
    b.total_cmp(&a)
}

/// Ascending total order on `f64` keys (see [`cmp_desc`]).
pub(crate) fn cmp_asc(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// One query's appetite for refining one pool object.
#[derive(Clone, Copy, Debug)]
pub struct Demand {
    /// Pool object index.
    pub object: usize,
    /// Expected output-bound-width reduction, in the query's output units
    /// (§5's benefit estimate). May be zero when the object's own estimate
    /// predicts no progress; the scheduler's widest-first fallback still
    /// guarantees progress then.
    pub benefit: f64,
}

/// Reusable sketch summaries for the sketch-guided demand functions
/// (PERCENTILE, HEAVYHITTERS). One per session; the scheduler keeps them
/// across rounds so the rebuild each round reuses allocations. The
/// summaries are *derived* state — rebuilt from the pool's live bounds on
/// every call — so they are never journaled: a recovered session simply
/// rebuilds them on its first tick.
#[derive(Clone, Debug, Default)]
pub struct SketchState {
    quantile: Option<IntervalQuantileSketch>,
    heavy: Option<HeavySummaries>,
}

/// The HEAVYHITTERS frequency summaries over price cells.
#[derive(Clone, Debug)]
struct HeavySummaries {
    resolved: SpaceSaving,
    cm_resolved: CountMin,
    cm_pending: CountMin,
}

impl HeavySummaries {
    fn new(k: usize) -> Self {
        Self {
            resolved: SpaceSaving::new((4 * k).max(64)),
            cm_resolved: CountMin::new(COUNTMIN_WIDTH, COUNTMIN_DEPTH),
            cm_pending: CountMin::new(COUNTMIN_WIDTH, COUNTMIN_DEPTH),
        }
    }
}

/// Fills `out` with the query's outstanding demands. Empty ⇔ the query can
/// answer [`Answer::Final`] from the pool's current bounds.
///
/// Stateless convenience over [`demands_stateful`]: sketch-guided queries
/// build fresh summaries per call. The scheduler uses the stateful entry
/// point to reuse per-session summary allocations across rounds; both
/// produce identical demands.
pub fn demands(query: &Query, pool: &SharedPool, out: &mut Vec<Demand>) {
    demands_stateful(query, pool, &mut SketchState::default(), out);
}

/// [`demands`] with caller-owned sketch state (one [`SketchState`] per
/// session; only PERCENTILE/HEAVYHITTERS touch it).
pub fn demands_stateful(
    query: &Query,
    pool: &SharedPool,
    state: &mut SketchState,
    out: &mut Vec<Demand>,
) {
    out.clear();
    if pool.is_empty() {
        // Nothing to refine; the answer path reports the empty relation as
        // a typed error for the shapes that have no answer over ∅.
        return;
    }
    match query {
        Query::Selection { op, constant } => demands_classify(pool, *op, *constant, 0, out),
        Query::Count {
            op,
            constant,
            slack,
        } => demands_classify(pool, *op, *constant, *slack, out),
        Query::Sum { weights, epsilon } => {
            demands_sum(pool, Weights::Per(weights), *epsilon, out);
        }
        Query::Ave { epsilon } => {
            demands_sum(pool, uniform(pool.len()), *epsilon, out);
        }
        Query::Max { epsilon } => demands_rank(pool, 1, *epsilon, false, out),
        Query::Min { epsilon } => demands_rank(pool, 1, *epsilon, true, out),
        Query::TopK { k, epsilon } => demands_rank(pool, *k, *epsilon, false, out),
        Query::Median { epsilon } => demands_median(pool, *epsilon, out),
        Query::Percentile { phi, epsilon } => {
            demands_percentile(pool, *phi, *epsilon, state, out);
        }
        Query::HeavyHitters { k, epsilon } => demands_heavy(pool, *k, *epsilon, state, out),
    }
}

/// The exact output the query converged to (call only when [`demands`] is
/// empty — the pool has reached the query's stopping condition).
pub fn final_output(query: &Query, pool: &SharedPool, relation: &BondRelation) -> QueryOutput {
    let id = |i: usize| relation.bonds()[i].id;
    match query {
        Query::Selection { op, constant } => {
            let mut ids = Vec::new();
            for i in 0..pool.len() {
                if satisfied(pool, i, *op, *constant) == Some(true) {
                    ids.push(id(i));
                }
            }
            QueryOutput::Selected(ids)
        }
        Query::Count { op, constant, .. } => {
            let (count_lo, unresolved) = classify(pool, *op, *constant);
            QueryOutput::Count {
                lo: count_lo,
                hi: count_lo + unresolved.len(),
            }
        }
        Query::Sum { weights, .. } => QueryOutput::Aggregate {
            bounds: weighted_interval(pool, Weights::Per(weights)),
        },
        Query::Ave { .. } => QueryOutput::Aggregate {
            bounds: weighted_interval(pool, uniform(pool.len())),
        },
        Query::Max { .. } => extreme_output(pool, relation, false),
        Query::Min { .. } => extreme_output(pool, relation, true),
        Query::TopK { k, .. } => {
            let v = View { pool, flip: false };
            let members = member_guess(v, *k);
            let theta_holder = boundary_member(v, &members);
            let theta = pool.bounds(theta_holder).lo();
            let ties: Vec<u32> = (0..pool.len())
                .filter(|&i| !members.contains(&i) && pool.bounds(i).hi() >= theta)
                .map(id)
                .collect();
            let mut ordered = members;
            ordered.sort_by(|&a, &b| cmp_desc(pool.bounds(a).hi(), pool.bounds(b).hi()));
            QueryOutput::Ranked {
                members: ordered.iter().map(|&i| (id(i), pool.bounds(i))).collect(),
                ties,
            }
        }
        Query::Median { .. } => {
            // Mirror the core quantile operator's two separations: the
            // winner is the boundary member; ties are the converged outer
            // straddlers plus the members still overlapping the winner.
            let v = View { pool, flip: false };
            let members = member_guess(v, pool.len().div_ceil(2));
            let winner = boundary_member(v, &members);
            let theta = pool.bounds(winner).lo();
            let winner_hi = pool.bounds(winner).hi();
            let mut ties: Vec<u32> = (0..pool.len())
                .filter(|&i| !members.contains(&i) && pool.bounds(i).hi() >= theta)
                .map(id)
                .collect();
            ties.extend(
                members
                    .iter()
                    .filter(|&&i| i != winner && pool.bounds(i).lo() <= winner_hi)
                    .map(|&i| id(i)),
            );
            ties.sort_unstable();
            ties.dedup();
            QueryOutput::Extreme {
                bond_id: id(winner),
                bounds: pool.bounds(winner),
                ties,
            }
        }
        Query::Percentile { phi, .. } => {
            let k = rank_from_top(*phi, pool.len());
            QueryOutput::Aggregate {
                bounds: Bounds::new(
                    kth_largest(pool, k, |b| b.lo()),
                    kth_largest(pool, k, |b| b.hi()),
                ),
            }
        }
        Query::HeavyHitters { k, epsilon } => {
            let (cells, ties) = heavy_cells(pool, *k, *epsilon);
            QueryOutput::Heavy { cells, ties }
        }
    }
}

/// Exact top-`k` ε-cell ranking over the pool's *resolved* objects — the
/// final counting pass the sketches only ever steer towards, never decide.
fn heavy_cells(pool: &SharedPool, k: usize, width: f64) -> (Vec<HeavyCell>, Vec<i64>) {
    let mut counts: BTreeMap<i64, u64> = BTreeMap::new();
    for i in 0..pool.len() {
        if let Some(c) = resolved_cell(pool, i, width) {
            *counts.entry(c).or_default() += 1;
        }
    }
    let mut ranked: Vec<HeavyCell> = counts
        .into_iter()
        .map(|(cell, count)| HeavyCell { cell, count })
        .collect();
    ranked.sort_by(|a, b| b.count.cmp(&a.count).then(a.cell.cmp(&b.cell)));
    let take = k.min(ranked.len());
    if take == 0 {
        return (Vec::new(), Vec::new());
    }
    let boundary = ranked[take - 1].count;
    let ties: Vec<i64> = ranked[take..]
        .iter()
        .take_while(|c| c.count == boundary)
        .map(|c| c.cell)
        .collect();
    ranked.truncate(take);
    (ranked, ties)
}

/// The ε-cell an object definitively occupies: whole bounds inside one
/// cell, or converged (deterministic midpoint assignment at the `minWidth`
/// floor — the caveat shared with the core operator).
fn resolved_cell(pool: &SharedPool, i: usize, width: f64) -> Option<i64> {
    let b = pool.bounds(i);
    let (c_lo, c_hi) = (cell_of(b.lo(), width), cell_of(b.hi(), width));
    if c_lo == c_hi {
        Some(c_lo)
    } else if pool.converged(i) {
        Some(cell_of(b.mid(), width))
    } else {
        None
    }
}

/// Sound anytime bounds on the query's converged answer value, from the
/// pool's *current* bounds (the budget-exhausted degradation path).
///
/// * SUM/AVE — the current weighted interval `[Σ wL, Σ wH]`.
/// * MAX/MIN — the footnote-9 envelope `[max L, max H]` / `[min L, min H]`.
/// * TOP-K — the k-th order statistic of the L's and of the H's (at most
///   k−1 true values can exceed the k-th largest H).
/// * SELECT/COUNT — the result *cardinality* interval
///   `[proven, proven + unresolved]`.
///
/// Every case brackets the value a budget-free run converges to, because
/// per-object bounds are sound and shrink monotonically.
///
/// # Errors
///
/// [`ServerError::EmptyRelation`] for the extreme-family queries
/// (MAX/MIN/TOP-K) over an empty pool: there is no value to bound. The
/// set/aggregate shapes answer `[0, 0]` over ∅ instead.
pub fn partial_bounds(query: &Query, pool: &SharedPool) -> Result<Bounds, ServerError> {
    match query {
        Query::Selection { op, constant } => {
            let (count_lo, unresolved) = classify(pool, *op, *constant);
            Ok(Bounds::new(
                count_lo as f64,
                (count_lo + unresolved.len()) as f64,
            ))
        }
        Query::Count { op, constant, .. } => {
            let (count_lo, unresolved) = classify(pool, *op, *constant);
            Ok(Bounds::new(
                count_lo as f64,
                (count_lo + unresolved.len()) as f64,
            ))
        }
        Query::Sum { weights, .. } => Ok(weighted_interval(pool, Weights::Per(weights))),
        Query::Ave { .. } => Ok(weighted_interval(pool, uniform(pool.len()))),
        Query::Max { .. } => max_envelope(pool.objects()).map_err(|_| ServerError::EmptyRelation),
        Query::Min { .. } => min_envelope(pool.objects()).map_err(|_| ServerError::EmptyRelation),
        Query::TopK { k, .. } => rank_bounds(pool, *k),
        Query::Median { .. } => rank_bounds(pool, pool.len().div_ceil(2)),
        Query::Percentile { phi, .. } => rank_bounds(pool, rank_from_top(*phi, pool.len())),
        Query::HeavyHitters { k, epsilon } => {
            // The k-th resolved count can only grow; `u` still-unresolved
            // objects can raise it by at most `u`.
            let mut counts: BTreeMap<i64, u64> = BTreeMap::new();
            let mut unresolved = 0u64;
            for i in 0..pool.len() {
                match resolved_cell(pool, i, *epsilon) {
                    Some(c) => *counts.entry(c).or_default() += 1,
                    None => unresolved += 1,
                }
            }
            let mut ranked: Vec<u64> = counts.into_values().collect();
            ranked.sort_unstable_by(|a, b| b.cmp(a));
            let kth = k
                .checked_sub(1)
                .and_then(|i| ranked.get(i).copied())
                .unwrap_or(0);
            Ok(Bounds::new(kth as f64, (kth + unresolved) as f64))
        }
    }
}

/// The rank-`k` order-statistic bracket `[k-th largest L, k-th largest H]`
/// shared by TOP-K, MEDIAN and PERCENTILE partial answers: at most `k − 1`
/// true values can exceed the `k`-th largest `H`, and at least `k` reach
/// the `k`-th largest `L`.
fn rank_bounds(pool: &SharedPool, k: usize) -> Result<Bounds, ServerError> {
    if pool.is_empty() {
        return Err(ServerError::EmptyRelation);
    }
    Ok(Bounds::new(
        kth_largest(pool, k, |b| b.lo()),
        kth_largest(pool, k, |b| b.hi()),
    ))
}

/// Builds the session's answer for the tick: `Final` when the query reached
/// its stopping condition, the anytime `Partial` otherwise.
///
/// # Errors
///
/// [`ServerError::EmptyRelation`] when an extreme-family query
/// (MAX/MIN/TOP-K) is answered over an empty pool — a typed error where
/// the pre-batched server panicked.
pub fn answer(
    query: &Query,
    pool: &SharedPool,
    relation: &BondRelation,
    done: bool,
) -> Result<Answer, ServerError> {
    if pool.is_empty()
        && matches!(
            query,
            Query::Max { .. }
                | Query::Min { .. }
                | Query::TopK { .. }
                | Query::Median { .. }
                | Query::Percentile { .. }
        )
    {
        return Err(ServerError::EmptyRelation);
    }
    if done {
        Ok(Answer::Final(final_output(query, pool, relation)))
    } else {
        Ok(Answer::Partial {
            bounds: partial_bounds(query, pool)?,
        })
    }
}

// ---------------------------------------------------------------- weights

/// Weight source for SUM-family demands, without materializing a vector
/// per scheduler round.
#[derive(Clone, Copy)]
enum Weights<'a> {
    Uniform(f64),
    Per(&'a [f64]),
}

impl Weights<'_> {
    fn get(&self, i: usize) -> f64 {
        match self {
            Weights::Uniform(w) => *w,
            Weights::Per(ws) => ws[i],
        }
    }
}

fn uniform(n: usize) -> Weights<'static> {
    Weights::Uniform(1.0 / n.max(1) as f64)
}

fn weighted_interval(pool: &SharedPool, w: Weights<'_>) -> Bounds {
    let (mut lo, mut hi) = (0.0f64, 0.0f64);
    for i in 0..pool.len() {
        let b = pool.bounds(i);
        let wi = w.get(i);
        lo += wi * b.lo();
        hi += wi * b.hi();
    }
    Bounds::new(lo, hi)
}

fn demands_sum(pool: &SharedPool, w: Weights<'_>, epsilon: f64, out: &mut Vec<Demand>) {
    if weighted_interval(pool, w).width() <= epsilon {
        return;
    }
    for i in 0..pool.len() {
        let wi = w.get(i);
        if wi == 0.0 || pool.converged(i) {
            continue;
        }
        let b = pool.bounds(i);
        let eb = pool.est_bounds(i);
        let benefit = wi * ((eb.lo() - b.lo()).max(0.0) + (b.hi() - eb.hi()).max(0.0));
        out.push(Demand { object: i, benefit });
    }
}

// ---------------------------------------------------- selection and count

/// Per-object predicate outcome under the selection VAO's semantics:
/// decided from bounds, or resolved as equality at `minWidth` convergence,
/// or still unknown (`None`).
fn satisfied(pool: &SharedPool, i: usize, op: CmpOp, constant: f64) -> Option<bool> {
    match op.decide(&pool.bounds(i), constant) {
        Some(v) => Some(v),
        None if pool.converged(i) => Some(op.outcome_at_equality()),
        None => None,
    }
}

/// `(proven count, unresolved non-converged objects)` — the COUNT VAO's
/// classification pass.
fn classify(pool: &SharedPool, op: CmpOp, constant: f64) -> (usize, Vec<usize>) {
    let mut count_lo = 0usize;
    let mut unresolved = Vec::new();
    for i in 0..pool.len() {
        match satisfied(pool, i, op, constant) {
            Some(true) => count_lo += 1,
            Some(false) => {}
            None => unresolved.push(i),
        }
    }
    (count_lo, unresolved)
}

fn demands_classify(
    pool: &SharedPool,
    op: CmpOp,
    constant: f64,
    slack: usize,
    out: &mut Vec<Demand>,
) {
    let (_, unresolved) = classify(pool, op, constant);
    if unresolved.len() <= slack {
        return;
    }
    for &i in &unresolved {
        let b = pool.bounds(i);
        let eb = pool.est_bounds(i);
        let mut benefit = (eb.lo() - b.lo()).max(0.0) + (b.hi() - eb.hi()).max(0.0);
        if op.decide(&eb, constant).is_some() {
            benefit += b.width();
        }
        out.push(Demand { object: i, benefit });
    }
}

// ------------------------------------------------------------ max and min

/// Bounds accessor that optionally negates, so MIN shares the MAX logic
/// exactly like the core operator's `Negated` views (tie-breaks included).
#[derive(Clone, Copy)]
struct View<'a> {
    pool: &'a SharedPool,
    flip: bool,
}

impl View<'_> {
    fn lo(&self, i: usize) -> f64 {
        let b = self.pool.bounds(i);
        if self.flip {
            -b.hi()
        } else {
            b.lo()
        }
    }
    fn hi(&self, i: usize) -> f64 {
        let b = self.pool.bounds(i);
        if self.flip {
            -b.lo()
        } else {
            b.hi()
        }
    }
    fn est_lo(&self, i: usize) -> f64 {
        let b = self.pool.est_bounds(i);
        if self.flip {
            -b.hi()
        } else {
            b.lo()
        }
    }
    fn est_hi(&self, i: usize) -> f64 {
        let b = self.pool.est_bounds(i);
        if self.flip {
            -b.lo()
        } else {
            b.hi()
        }
    }
}

/// The K objects with the highest (view) upper bounds — ties to higher
/// lower bound, then lower index, the extreme-family VAOs' deterministic
/// member-guess rule (§5.1). `k = 1` is exactly the MAX/MIN educated guess.
fn member_guess(v: View<'_>, k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..v.pool.len()).collect();
    idx.sort_by(|&a, &b| {
        cmp_desc(v.hi(a), v.hi(b))
            .then(cmp_desc(v.lo(a), v.lo(b)))
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// The member holding the boundary θ (lowest lower bound; first on ties,
/// matching the core operator's `min_by`).
fn boundary_member(v: View<'_>, members: &[usize]) -> usize {
    *members
        .iter()
        .min_by(|&&a, &&b| cmp_asc(v.lo(a), v.lo(b)))
        .expect("k >= 1")
}

/// Non-members whose upper bound still reaches past θ — the objects that
/// could yet displace a guessed member.
fn straddlers(v: View<'_>, members: &[usize], theta_holder: usize) -> Vec<usize> {
    let theta = v.lo(theta_holder);
    (0..v.pool.len())
        .filter(|&i| !members.contains(&i) && v.hi(i) >= theta)
        .collect()
}

/// Stopping case for the separation phase: nothing straddles θ, or all the
/// contenders (and θ's holder) are converged — the ties outcome.
fn separation_done(pool: &SharedPool, theta_holder: usize, straddlers: &[usize]) -> bool {
    straddlers.is_empty()
        || (pool.converged(theta_holder) && straddlers.iter().all(|&i| pool.converged(i)))
}

/// §5.1's separation-phase scores: raising θ clears overlap with every
/// straddler at once; dropping a straddler's upper bound clears its own.
fn score_separation(v: View<'_>, theta_holder: usize, straddlers: &[usize], out: &mut Vec<Demand>) {
    let pool = v.pool;
    let theta = v.lo(theta_holder);
    if !pool.converged(theta_holder) {
        let est_raise = (v.est_lo(theta_holder) - theta).max(0.0);
        let benefit: f64 = straddlers
            .iter()
            .map(|&j| (v.hi(j) - theta).max(0.0).min(est_raise))
            .sum();
        out.push(Demand {
            object: theta_holder,
            benefit,
        });
    }
    for &i in straddlers {
        if pool.converged(i) {
            continue;
        }
        let overlap = (v.hi(i) - theta).max(0.0);
        let est_drop = (v.hi(i) - v.est_hi(i)).max(0.0);
        out.push(Demand {
            object: i,
            benefit: overlap.min(est_drop),
        });
    }
}

/// ε-refinement of an identified member (phase 2 of the extreme VAOs):
/// demand while wider than ε, scored by the estimated two-sided shrink.
/// Benefit is computed on pool bounds — it is flip-invariant.
fn refine_to_epsilon(pool: &SharedPool, i: usize, epsilon: f64, out: &mut Vec<Demand>) {
    let b = pool.bounds(i);
    if b.width() > epsilon && !pool.converged(i) {
        let eb = pool.est_bounds(i);
        let benefit = (eb.lo() - b.lo()).max(0.0) + (b.hi() - eb.hi()).max(0.0);
        out.push(Demand { object: i, benefit });
    }
}

/// The unified extreme-family demand function: MAX (`k=1`), MIN (`k=1`,
/// flipped view) and TOP-K are one separation + refinement pipeline over
/// the same boundary-candidate selection.
fn demands_rank(pool: &SharedPool, k: usize, epsilon: f64, flip: bool, out: &mut Vec<Demand>) {
    let v = View { pool, flip };
    let members = member_guess(v, k);
    if members.is_empty() {
        return; // k == 0 (rejected at subscribe; guarded for direct callers)
    }
    let theta_holder = boundary_member(v, &members);
    let unresolved = straddlers(v, &members, theta_holder);
    if separation_done(pool, theta_holder, &unresolved) {
        for &m in &members {
            refine_to_epsilon(pool, m, epsilon, out);
        }
        return;
    }
    score_separation(v, theta_holder, &unresolved, out);
}

fn extreme_output(pool: &SharedPool, relation: &BondRelation, flip: bool) -> QueryOutput {
    let v = View { pool, flip };
    let members = member_guess(v, 1);
    let guess = members[0];
    let unresolved = straddlers(v, &members, guess);
    QueryOutput::Extreme {
        bond_id: relation.bonds()[guess].id,
        bounds: pool.bounds(guess),
        ties: unresolved.iter().map(|&i| relation.bonds()[i].id).collect(),
    }
}

// ----------------------------------------------------------------- median

/// MEDIAN's three phases, mirroring the core quantile operator: separate
/// the top ⌈N/2⌉, then find their minimum (the median holder) through the
/// flipped view, then refine it to ε.
fn demands_median(pool: &SharedPool, epsilon: f64, out: &mut Vec<Demand>) {
    let v = View { pool, flip: false };
    let members = member_guess(v, pool.len().div_ceil(2));
    let theta_holder = boundary_member(v, &members);
    let outer = straddlers(v, &members, theta_holder);
    if !separation_done(pool, theta_holder, &outer) {
        score_separation(v, theta_holder, &outer, out);
        return;
    }
    // Inner MIN among the members. The min-lo member is exactly the flipped
    // view's educated guess, i.e. θ's holder from the outer phase.
    let vmin = View { pool, flip: true };
    let winner = theta_holder;
    let inner: Vec<usize> = members
        .iter()
        .copied()
        .filter(|&j| j != winner && vmin.hi(j) >= vmin.lo(winner))
        .collect();
    if !separation_done(pool, winner, &inner) {
        score_separation(vmin, winner, &inner, out);
        return;
    }
    refine_to_epsilon(pool, winner, epsilon, out);
}

// ------------------------------------------------- percentile (sketch-led)

/// PERCENTILE's sketch-guided demand: the output bounds are the rank-k
/// order statistics of the pool's lower and upper bounds; only objects
/// straddling the sketch's rank-k band can move them, so everything else
/// is pruned from the demand set without touching its bounds.
fn demands_percentile(
    pool: &SharedPool,
    phi: f64,
    epsilon: f64,
    state: &mut SketchState,
    out: &mut Vec<Demand>,
) {
    let k = rank_from_top(phi, pool.len());
    let out_lo = kth_largest(pool, k, |b| b.lo());
    let out_hi = kth_largest(pool, k, |b| b.hi());
    if out_hi - out_lo <= epsilon {
        return;
    }
    let sketch = state
        .quantile
        .get_or_insert_with(|| IntervalQuantileSketch::new(SKETCH_ALPHA, SKETCH_BUDGET));
    sketch.clear();
    for i in 0..pool.len() {
        let b = pool.bounds(i);
        sketch.insert(b.lo(), b.hi());
    }
    // The band contains the exact [k-th largest lo, k-th largest hi], so
    // the straddler set below is a superset of the objects that determine
    // the output bounds — pruning by it is sound. A `None` band cannot
    // happen for 1 ≤ k ≤ N; fall back to no pruning if it ever did.
    let (band_lo, band_hi) = sketch
        .rank_band_from_top(k as u64)
        .unwrap_or((f64::MIN, f64::MAX));
    for i in 0..pool.len() {
        if pool.converged(i) {
            continue;
        }
        let b = pool.bounds(i);
        if b.hi() < band_lo || b.lo() > band_hi {
            continue; // sketch-pruned: cannot move the rank-k band
        }
        let eb = pool.est_bounds(i);
        let shrink = (eb.lo() - b.lo()).max(0.0) + (b.hi() - eb.hi()).max(0.0);
        let overlap = b.hi().min(band_hi) - b.lo().max(band_lo);
        out.push(Demand {
            object: i,
            benefit: overlap.max(0.0).min(shrink),
        });
    }
}

// ---------------------------------------------- heavy hitters (sketch-led)

/// HEAVYHITTERS' sketch-guided demand. Resolved objects feed a SpaceSaving
/// summary (for the admission threshold) and a count-min of settled cells;
/// unresolved objects charge every cell they might land in into a second
/// count-min. An object is *contended* — and demanded — only if some cell
/// it overlaps could still reach the k-th heaviest count. Both sketches
/// only ever overestimate, so pruning errs toward keeping objects.
fn demands_heavy(
    pool: &SharedPool,
    k: usize,
    width: f64,
    state: &mut SketchState,
    out: &mut Vec<Demand>,
) {
    let s = state.heavy.get_or_insert_with(|| HeavySummaries::new(k));
    s.resolved.clear();
    s.cm_resolved.clear();
    s.cm_pending.clear();
    let mut unresolved: Vec<usize> = Vec::new();
    for i in 0..pool.len() {
        match resolved_cell(pool, i, width) {
            Some(c) => {
                s.resolved.offer(c, 1);
                s.cm_resolved.add(c, 1);
            }
            None => {
                unresolved.push(i);
                let b = pool.bounds(i);
                let (c_lo, c_hi) = (cell_of(b.lo(), width), cell_of(b.hi(), width));
                if c_hi.saturating_sub(c_lo) <= SPAN_PROBE_CAP {
                    for c in c_lo..=c_hi {
                        s.cm_pending.add(c, 1);
                    }
                }
            }
        }
    }
    if unresolved.is_empty() {
        return;
    }
    // Counts only grow as objects resolve, so the SpaceSaving guarantee on
    // the current k-th count lower-bounds the final one.
    let threshold = s.resolved.kth_guaranteed(k).max(1);
    for &i in &unresolved {
        let b = pool.bounds(i);
        let (c_lo, c_hi) = (cell_of(b.lo(), width), cell_of(b.hi(), width));
        let contended = c_hi.saturating_sub(c_lo) > SPAN_PROBE_CAP
            || (c_lo..=c_hi)
                .any(|c| s.cm_resolved.estimate(c) + s.cm_pending.estimate(c) >= threshold);
        if !contended {
            continue; // sketch-pruned: cannot join or displace a top-k cell
        }
        let eb = pool.est_bounds(i);
        let shrink = (eb.lo() - b.lo()).max(0.0) + (b.hi() - eb.hi()).max(0.0);
        let resolve_bonus = if cell_of(eb.lo(), width) == cell_of(eb.hi(), width) {
            b.width()
        } else {
            0.0
        };
        out.push(Demand {
            object: i,
            benefit: shrink + resolve_bonus,
        });
    }
}

// ------------------------------------------- predicate outcome learning

/// Decided predicate outcomes required before the learned frequencies are
/// trusted to reorder probe demands. Below this the boost is inert, so a
/// couple of early coin-flip outcomes cannot skew the schedule.
pub const PRED_MIN_OUTCOMES: u64 = 16;

/// Pass/fail tallies for one `(op, constant)` predicate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassFail {
    /// Objects whose bounds decided the predicate *true*.
    pub pass: u64,
    /// Objects whose bounds decided the predicate *false*.
    pub fail: u64,
}

/// Per-predicate pass/fail frequencies accumulated across ticks, keyed by
/// the exact `(op, constant)` pair — the constant by bit pattern, so two
/// predicates that merely compare equal never share a counter.
///
/// This is the selection-VAO half of the tenant's calibration state (the
/// cost half is [`vao::cost::Calibrator`]): each tick the scheduler tallies
/// how every registered SELECT/COUNT predicate decided over the pool, and
/// on later ticks [`PredicateStats::boost`] multiplies the probe demand of
/// an unresolved object whose *estimated* bounds agree with the learned
/// majority direction — ordering probes by learned selectivity correlation
/// rather than treating every undecided object alike (after Joglekar et
/// al.'s correlated-predicate ordering). The counters are journaled with
/// the cost model, so a recovered server resumes with the same ordering.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PredicateStats {
    counters: BTreeMap<(u8, u64), PassFail>,
}

/// Stable per-op code used only as a map key / persistence tag.
fn op_code(op: CmpOp) -> u8 {
    match op {
        CmpOp::Gt => 0,
        CmpOp::Ge => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
    }
}

impl PredicateStats {
    /// Empty (untrained) state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether no outcome has ever been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Tallies the query's predicate outcomes over the pool's current
    /// bounds (SELECT/COUNT only; every other shape is a no-op). Each tick
    /// re-counts the decided objects — the counters are frequencies, not a
    /// census, and only their *ratio* steers the boost.
    pub fn record_query(&mut self, query: &Query, pool: &SharedPool) {
        let (op, constant) = match query {
            Query::Selection { op, constant } | Query::Count { op, constant, .. } => {
                (*op, *constant)
            }
            _ => return,
        };
        let entry = self
            .counters
            .entry((op_code(op), constant.to_bits()))
            .or_default();
        for i in 0..pool.len() {
            match satisfied(pool, i, op, constant) {
                Some(true) => entry.pass += 1,
                Some(false) => entry.fail += 1,
                None => {}
            }
        }
    }

    /// The learned counters for one predicate, if any.
    #[must_use]
    pub fn counter(&self, op: CmpOp, constant: f64) -> Option<PassFail> {
        self.counters
            .get(&(op_code(op), constant.to_bits()))
            .copied()
    }

    /// Restores one counter verbatim (recovery path). Later recoveries of
    /// the same predicate overwrite — journal replay is last-wins.
    pub fn restore_counter(&mut self, op: CmpOp, constant: f64, pf: PassFail) {
        self.counters.insert((op_code(op), constant.to_bits()), pf);
    }

    /// Iterates `(op, constant, counters)` in deterministic key order —
    /// the persistence layer serializes exactly this sequence.
    pub fn entries(&self) -> impl Iterator<Item = (CmpOp, f64, PassFail)> + '_ {
        self.counters.iter().map(|(&(code, bits), &pf)| {
            let op = match code {
                0 => CmpOp::Gt,
                1 => CmpOp::Ge,
                2 => CmpOp::Lt,
                _ => CmpOp::Le,
            };
            (op, f64::from_bits(bits), pf)
        })
    }

    /// `(majority outcome, correlation strength in ppm)` for a predicate,
    /// or `None` while under [`PRED_MIN_OUTCOMES`] or perfectly balanced.
    /// Strength is `|pass − fail| / (pass + fail)` scaled to 1e6 —
    /// all-integer, so recovered state replays to identical boosts.
    #[must_use]
    pub fn majority(&self, op: CmpOp, constant: f64) -> Option<(bool, u64)> {
        let pf = self.counter(op, constant)?;
        let total = pf.pass + pf.fail;
        if total < PRED_MIN_OUTCOMES || pf.pass == pf.fail {
            return None;
        }
        let diff = pf.pass.abs_diff(pf.fail);
        let ppm = (u128::from(diff) * 1_000_000 / u128::from(total)) as u64;
        Some((pf.pass > pf.fail, ppm))
    }

    /// Reorders a SELECT/COUNT demand list by learned correlation: an
    /// unresolved object whose *estimated* bounds would decide in the
    /// majority direction gets its benefit scaled by `1 + strength`, so
    /// the greedy scheduler probes the objects most likely to resolve the
    /// way the data historically leans first. Non-predicate queries and
    /// untrained predicates pass through untouched.
    pub fn boost(&self, query: &Query, pool: &SharedPool, out: &mut [Demand]) {
        let (op, constant) = match query {
            Query::Selection { op, constant } | Query::Count { op, constant, .. } => {
                (*op, *constant)
            }
            _ => return,
        };
        let Some((majority, ppm)) = self.majority(op, constant) else {
            return;
        };
        let factor = 1.0 + ppm as f64 / 1e6;
        for d in out {
            if op.decide(&pool.est_bounds(d.object), constant) == Some(majority) {
                d.benefit *= factor;
            }
        }
    }
}

/// The k-th largest of `f(bounds)` over the (non-empty) pool.
fn kth_largest(pool: &SharedPool, k: usize, f: impl Fn(&Bounds) -> f64) -> f64 {
    let mut vals: Vec<f64> = (0..pool.len()).map(|i| f(&pool.bounds(i))).collect();
    vals.sort_by(|a, b| cmp_desc(*a, *b));
    vals[k.clamp(1, vals.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vao::testkit::ScriptedObject;

    /// The paper's Table 2 objects (see `vao::ops::minmax` tests), boxed
    /// into a pool.
    fn table2_pool() -> SharedPool {
        let objs: Vec<Box<dyn vao::interface::ResultObject + Send>> = vec![
            Box::new(ScriptedObject::converging(
                &[(97.0, 101.0), (98.0, 99.0), (98.4, 98.405)],
                4,
                0.01,
            )),
            Box::new(ScriptedObject::converging(
                &[(95.0, 103.0), (96.0, 101.0), (98.0, 98.005)],
                4,
                0.01,
            )),
            Box::new(ScriptedObject::converging(
                &[(100.0, 106.0), (102.0, 104.0), (103.0, 103.005)],
                4,
                0.01,
            )),
        ];
        SharedPool::from_objects(objs, 0.05)
    }

    #[test]
    fn max_demand_mirrors_table2_scores() {
        let pool = table2_pool();
        let mut out = Vec::new();
        demands(&Query::Max { epsilon: 0.5 }, &pool, &mut out);
        // §5.1's worked example: o1 benefit 1, o2 benefit 2, o3 (the guess)
        // benefit 3 — here with the scripted est bounds.
        let find = |i: usize| out.iter().find(|d| d.object == i).map(|d| d.benefit);
        assert_eq!(find(2), Some(2.0 + 3.0 - 2.0)); // min(1,2)+min(3,2) = 3
        assert!(find(0).is_some() && find(1).is_some());
    }

    #[test]
    fn min_demand_flips_the_view() {
        let pool = table2_pool();
        let mut out = Vec::new();
        demands(&Query::Min { epsilon: 0.5 }, &pool, &mut out);
        // The MIN guess is the object with the lowest lower bound: o2 at 95.
        assert!(
            out.iter().any(|d| d.object == 1),
            "min contends around the lowest-lo object"
        );
    }

    #[test]
    fn sum_demand_is_weighted() {
        let pool = table2_pool();
        let mut out = Vec::new();
        let q = Query::Sum {
            weights: vec![0.0, 2.0, 1.0],
            epsilon: 0.1,
        };
        demands(&q, &pool, &mut out);
        assert!(
            !out.iter().any(|d| d.object == 0),
            "zero-weight objects are never demanded"
        );
        let b1 = out.iter().find(|d| d.object == 1).unwrap().benefit;
        // o2: est shrink (96-95)+(103-101) = 3, weight 2 -> 6.
        assert!((b1 - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_demands_mean_final_answers() {
        let pool = table2_pool();
        let mut out = Vec::new();
        // ε = 8 is wider than every initial width: sum is immediately done.
        let q = Query::Sum {
            weights: vec![0.0, 0.0, 1.0],
            epsilon: 8.0,
        };
        demands(&q, &pool, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn selection_demand_carries_decision_bonus() {
        let pool = table2_pool();
        let mut out = Vec::new();
        let q = Query::Selection {
            op: CmpOp::Gt,
            constant: 100.0,
        };
        demands(&q, &pool, &mut out);
        // o3 ([100,106], est [102,104]) straddles 100 but its estimate
        // decides; o1/o2 straddle too.
        let d3 = out.iter().find(|d| d.object == 2).unwrap();
        // width shrink (102-100)+(106-104)=4, bonus width 6 -> 10.
        assert!((d3.benefit - 10.0).abs() < 1e-12);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn partial_bounds_bracket_every_query_shape() {
        let pool = table2_pool();
        let rel_check = |b: Bounds, lo: f64, hi: f64| {
            assert!(
                (b.lo() - lo).abs() < 1e-9 && (b.hi() - hi).abs() < 1e-9,
                "{b}"
            );
        };
        rel_check(
            partial_bounds(&Query::Max { epsilon: 0.01 }, &pool).unwrap(),
            100.0,
            106.0,
        );
        rel_check(
            partial_bounds(&Query::Min { epsilon: 0.01 }, &pool).unwrap(),
            95.0,
            101.0,
        );
        // Top-2: 2nd largest lo = 97, 2nd largest hi = 103.
        rel_check(
            partial_bounds(
                &Query::TopK {
                    k: 2,
                    epsilon: 0.01,
                },
                &pool,
            )
            .unwrap(),
            97.0,
            103.0,
        );
        // Selection > 100: none proven, all three unresolved.
        rel_check(
            partial_bounds(
                &Query::Selection {
                    op: CmpOp::Gt,
                    constant: 100.0,
                },
                &pool,
            )
            .unwrap(),
            0.0,
            3.0,
        );
        rel_check(
            partial_bounds(
                &Query::Sum {
                    weights: vec![1.0; 3],
                    epsilon: 0.1,
                },
                &pool,
            )
            .unwrap(),
            97.0 + 95.0 + 100.0,
            101.0 + 103.0 + 106.0,
        );
    }

    #[test]
    fn empty_pool_yields_typed_errors_not_panics() {
        let pool = SharedPool::from_objects(Vec::new(), 0.05);
        let rel = va_stream::BondRelation::from_universe(&bondlab::BondUniverse::generate(0, 1));
        for q in [
            Query::Max { epsilon: 0.1 },
            Query::Min { epsilon: 0.1 },
            Query::TopK { k: 1, epsilon: 0.1 },
        ] {
            assert_eq!(
                partial_bounds(&q, &pool).unwrap_err(),
                ServerError::EmptyRelation,
                "{q:?}"
            );
            assert_eq!(
                answer(&q, &pool, &rel, true).unwrap_err(),
                ServerError::EmptyRelation,
                "{q:?}"
            );
            let mut out = vec![Demand {
                object: 0,
                benefit: 1.0,
            }];
            demands(&q, &pool, &mut out);
            assert!(out.is_empty(), "empty pool demands nothing");
        }
        // Set/aggregate shapes legitimately answer over ∅.
        let sel = Query::Selection {
            op: CmpOp::Gt,
            constant: 100.0,
        };
        assert_eq!(partial_bounds(&sel, &pool).unwrap(), Bounds::new(0.0, 0.0));
        assert!(answer(&sel, &pool, &rel, true).unwrap().is_final());
    }

    #[test]
    fn median_demand_walks_the_outer_separation_first() {
        let pool = table2_pool();
        let mut out = Vec::new();
        demands(&Query::Median { epsilon: 0.5 }, &pool, &mut out);
        // n = 3 ⇒ members are the top-2 by hi: o3 (106) and o1 (101);
        // θ's holder is o1 (lo 97) and o2 (hi 103 ≥ 97) straddles. The
        // median demand must target exactly that separation pair.
        let objs: Vec<usize> = out.iter().map(|d| d.object).collect();
        assert!(objs.contains(&0), "θ's holder is demanded");
        assert!(objs.contains(&1), "the straddler is demanded");
        assert!(!objs.contains(&2), "o3 is clear of the boundary");
    }

    #[test]
    fn percentile_demand_prunes_objects_outside_the_sketch_band() {
        let objs: Vec<Box<dyn vao::interface::ResultObject + Send>> =
            [10.0, 20.0, 30.0, 40.0, 50.0]
                .iter()
                .map(|&v| {
                    Box::new(ScriptedObject::converging(
                        &[(v - 1.0, v + 1.0), (v - 0.005, v + 0.005)],
                        4,
                        0.01,
                    )) as Box<dyn vao::interface::ResultObject + Send>
                })
                .collect();
        let pool = SharedPool::from_objects(objs, 0.05);
        let mut out = Vec::new();
        let q = Query::Percentile {
            phi: 0.5,
            epsilon: 0.5,
        };
        demands(&q, &pool, &mut out);
        // Rank 3-from-top sits at ~30; the rank band is [29, 31] plus at
        // most one sketch bucket each side — far from every other object.
        assert_eq!(out.len(), 1, "only the band straddler is demanded: {out:?}");
        assert_eq!(out[0].object, 2);
        // And the answer path brackets the median-of-values.
        let b = partial_bounds(&q, &pool).unwrap();
        assert!(b.lo() <= 30.0 && 30.0 <= b.hi(), "{b}");
    }

    #[test]
    fn heavy_demand_prunes_uncontended_objects_to_an_exact_final() {
        let mut objs: Vec<Box<dyn vao::interface::ResultObject + Send>> = (0..4)
            .map(|_| {
                Box::new(ScriptedObject::converging(&[(100.1, 100.2)], 4, 0.01))
                    as Box<dyn vao::interface::ResultObject + Send>
            })
            .collect();
        // A wide straggler far from the heavy cell: its possible cells can
        // never reach the guaranteed top-1 count of 4.
        objs.push(Box::new(ScriptedObject::converging(
            &[(200.0, 203.0), (201.0, 201.005)],
            4,
            0.01,
        )));
        let pool = SharedPool::from_objects(objs, 0.05);
        let q = Query::HeavyHitters { k: 1, epsilon: 1.0 };
        let mut out = Vec::new();
        demands(&q, &pool, &mut out);
        assert!(
            out.is_empty(),
            "the straggler cannot contend with the resolved cell: {out:?}"
        );
        let rel = va_stream::BondRelation::from_universe(&bondlab::BondUniverse::generate(5, 1));
        match final_output(&q, &pool, &rel) {
            QueryOutput::Heavy { cells, ties } => {
                assert_eq!(cells.len(), 1);
                assert_eq!(cells[0].cell, 100);
                assert_eq!(cells[0].count, 4);
                assert!(ties.is_empty());
            }
            other => panic!("expected Heavy, got {other:?}"),
        }
        // Partial bounds on the k-th cell count: 4 resolved now, at most
        // one more from the straggler.
        let b = partial_bounds(&q, &pool).unwrap();
        assert_eq!((b.lo(), b.hi()), (4.0, 5.0));
    }

    mod nan_safe_orderings {
        use super::super::{cmp_asc, cmp_desc};
        use proptest::prelude::*;

        /// Any-bits floats: includes NaNs (every payload), ±∞, subnormals
        /// and negative zero — the values a buggy pricer could smuggle
        /// into an ordering.
        fn any_f64() -> impl Strategy<Value = f64> {
            any::<u64>().prop_map(f64::from_bits)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn comparators_are_total_even_on_non_finite(a in any_f64(), b in any_f64()) {
                // Totality: never panics, and the two orders are exact
                // mirrors, so min_by/sort_by see a consistent ordering.
                prop_assert_eq!(cmp_asc(a, b), cmp_desc(b, a));
                prop_assert_eq!(cmp_asc(a, b), cmp_asc(b, a).reverse());
                prop_assert_eq!(cmp_asc(a, a), std::cmp::Ordering::Equal);
            }

            #[test]
            fn sorting_non_finite_keys_never_aborts(mut vals in prop::collection::vec(any_f64(), 0..32)) {
                // The exact property the old partial_cmp().expect() lacked:
                // a sort over arbitrary bit patterns completes and is
                // totally ordered under the same comparator.
                vals.sort_by(|x, y| cmp_desc(*x, *y));
                for w in vals.windows(2) {
                    prop_assert!(cmp_desc(w[0], w[1]) != std::cmp::Ordering::Greater);
                }
            }
        }
    }
}
