//! Server-level errors.

use vao::error::VaoError;

/// Errors raised by the server front-end and scheduler.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerError {
    /// An operator-level failure (invalid ε, weight mismatch, …), surfaced
    /// at subscription validation or during a tick.
    Vao(VaoError),
    /// A request referenced a session id that is not registered.
    UnknownSession(u64),
    /// A request named a relation the catalog does not hold (never
    /// created, or already dropped). Surfaced as a protocol `ERROR`
    /// instead of panicking or silently falling back to another relation.
    UnknownRelation(String),
    /// `CREATE RELATION` named a relation that already exists. Relation
    /// names are the protocol's addressing scheme, so duplicates are
    /// refused rather than shadowed.
    RelationExists(String),
    /// `ADD BOND` (or an inline `CREATE RELATION` bond list) carried a
    /// field the pricing model rejects — non-finite, coupon outside
    /// (0, 1), or a non-positive maturity/face. Refused at the protocol
    /// boundary so `Bond::new`'s assertions can never fire on wire input.
    InvalidBond(String),
    /// The server's relation (or the shared pool derived from it) has no
    /// bonds, so extreme/top-k queries have no answer to bound. Raised at
    /// subscribe and tick time instead of panicking deep in the
    /// demand/answer path.
    EmptyRelation,
    /// The scheduler hit its defensive iteration cap without every query
    /// reaching its stopping condition — only possible when a result object
    /// violates its progress contract.
    Stalled {
        /// The iteration cap that was in force.
        limit: u64,
    },
    /// An internal scheduler invariant did not hold (e.g. outstanding
    /// demand produced no candidates). The tick fails with this error and
    /// the server lives on to process the next tick — invariant violations
    /// degrade one tick instead of aborting the process.
    Internal {
        /// Which invariant was violated.
        detail: &'static str,
    },
    /// The durability layer failed (journal append, snapshot write, or a
    /// corrupt store at recovery). Durable servers refuse to acknowledge
    /// state changes they could not journal, so the failed operation is
    /// rolled back rather than silently kept in memory only.
    Persist {
        /// The underlying [`va_persist::PersistError`] rendered to text.
        detail: String,
    },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Vao(e) => write!(f, "operator error: {e}"),
            ServerError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServerError::UnknownRelation(name) => write!(f, "unknown relation \"{name}\""),
            ServerError::RelationExists(name) => {
                write!(f, "relation \"{name}\" already exists")
            }
            ServerError::InvalidBond(detail) => write!(f, "invalid bond: {detail}"),
            ServerError::EmptyRelation => {
                write!(f, "empty relation: no bonds to price or bound")
            }
            ServerError::Stalled { limit } => {
                write!(f, "scheduler stalled: iteration limit {limit} exceeded")
            }
            ServerError::Internal { detail } => {
                write!(f, "internal scheduler invariant violated: {detail}")
            }
            ServerError::Persist { detail } => {
                write!(f, "persistence error: {detail}")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<VaoError> for ServerError {
    fn from(e: VaoError) -> Self {
        ServerError::Vao(e)
    }
}

impl From<va_persist::PersistError> for ServerError {
    fn from(e: va_persist::PersistError) -> Self {
        ServerError::Persist {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ServerError::UnknownSession(7).to_string().contains('7'));
        assert!(ServerError::UnknownRelation("energy".into())
            .to_string()
            .contains("unknown relation \"energy\""));
        assert!(ServerError::RelationExists("energy".into())
            .to_string()
            .contains("already exists"));
        assert!(ServerError::InvalidBond("coupon must be in (0, 1)".into())
            .to_string()
            .contains("invalid bond: coupon"));
        assert!(ServerError::Stalled { limit: 10 }
            .to_string()
            .contains("10"));
        let e: ServerError = VaoError::EmptyInput.into();
        assert!(matches!(e, ServerError::Vao(VaoError::EmptyInput)));
        assert!(e.to_string().contains("operator error"));
        assert!(ServerError::EmptyRelation.to_string().contains("empty"));
        assert!(ServerError::Internal {
            detail: "demand/candidate mismatch"
        }
        .to_string()
        .contains("demand/candidate mismatch"));
        let p: ServerError = va_persist::PersistError::Corrupt {
            path: "j".into(),
            detail: "bad line".into(),
        }
        .into();
        assert!(p.to_string().contains("persistence error"));
        assert!(p.to_string().contains("bad line"));
    }
}
