//! Server-level errors.

use vao::error::VaoError;

/// Errors raised by the server front-end and scheduler.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerError {
    /// An operator-level failure (invalid ε, weight mismatch, …), surfaced
    /// at subscription validation or during a tick.
    Vao(VaoError),
    /// A request referenced a session id that is not registered.
    UnknownSession(u64),
    /// The scheduler hit its defensive iteration cap without every query
    /// reaching its stopping condition — only possible when a result object
    /// violates its progress contract.
    Stalled {
        /// The iteration cap that was in force.
        limit: u64,
    },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Vao(e) => write!(f, "operator error: {e}"),
            ServerError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServerError::Stalled { limit } => {
                write!(f, "scheduler stalled: iteration limit {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<VaoError> for ServerError {
    fn from(e: VaoError) -> Self {
        ServerError::Vao(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ServerError::UnknownSession(7).to_string().contains('7'));
        assert!(ServerError::Stalled { limit: 10 }
            .to_string()
            .contains("10"));
        let e: ServerError = VaoError::EmptyInput.into();
        assert!(matches!(e, ServerError::Vao(VaoError::EmptyInput)));
        assert!(e.to_string().contains("operator error"));
    }
}
