//! Anytime answers: the server's graceful-degradation output type.

use va_stream::QueryOutput;
use vao::Bounds;

/// What a session receives for one tick.
///
/// When the scheduler converges a query to its ε within the tick's work
/// budget, the session gets the same [`QueryOutput`] a dedicated engine
/// would produce. When the budget runs out first, the session gets a sound
/// interval instead of blocking — the *anytime* answer.
#[derive(Clone, Debug, PartialEq)]
pub enum Answer {
    /// The query reached its stopping condition within budget.
    Final(QueryOutput),
    /// The work budget was exhausted first.
    Partial {
        /// Sound bounds on the converged answer *value*: the aggregate for
        /// SUM/AVE, the extreme value for MAX/MIN (the footnote-9
        /// envelope), the k-th price for TOP-K, and the result cardinality
        /// for the set-valued SELECT/COUNT queries. Guaranteed to contain
        /// the value a budget-free evaluation would converge to.
        bounds: Bounds,
    },
}

impl Answer {
    /// Whether the answer is exact.
    #[must_use]
    pub fn is_final(&self) -> bool {
        matches!(self, Answer::Final(_))
    }

    /// The final output, when the answer is exact.
    #[must_use]
    pub fn final_output(&self) -> Option<&QueryOutput> {
        match self {
            Answer::Final(out) => Some(out),
            Answer::Partial { .. } => None,
        }
    }

    /// The anytime bounds, when the answer is partial.
    #[must_use]
    pub fn partial_bounds(&self) -> Option<Bounds> {
        match self {
            Answer::Partial { bounds } => Some(*bounds),
            Answer::Final(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_distinguish_variants() {
        let f = Answer::Final(QueryOutput::Aggregate {
            bounds: Bounds::new(1.0, 2.0),
        });
        assert!(f.is_final());
        assert!(f.final_output().is_some());
        assert_eq!(f.partial_bounds(), None);

        let p = Answer::Partial {
            bounds: Bounds::new(0.0, 4.0),
        };
        assert!(!p.is_final());
        assert_eq!(p.partial_bounds(), Some(Bounds::new(0.0, 4.0)));
        assert!(p.final_output().is_none());
    }
}
