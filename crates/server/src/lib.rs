//! `va-server`: a multi-query shared-execution server with budgeted
//! scheduling and anytime answers.
//!
//! The paper's engine (`va-stream`) runs **one** continuous query per
//! engine: every query re-invokes the pricing model over the whole bond
//! relation on every tick. The motivating workload (§1.2), though, is many
//! traders asking *different* questions about the *same* relation at the
//! *same* tick. This crate serves that workload:
//!
//! * **Session registry** ([`SessionRegistry`]) — register any number of
//!   selection / aggregate / extreme / top-k / count queries, each with its
//!   own ε and priority.
//! * **Shared result-object pool** ([`SharedPool`]) — one
//!   [`vao::interface::ResultObject`] per bond per tick. The model is
//!   invoked once, and each object is refined only as far as the tightest
//!   demand any live query places on it.
//! * **Cross-query greedy scheduler** — §5's per-operator greedy choice
//!   ("most estimated benefit per `estCPU`") lifted across queries:
//!   priority-weighted benefits accumulate per object and the single
//!   globally best iteration runs next.
//! * **Per-tick work budget with anytime answers** — when the budget
//!   (deterministic work units) runs out mid-tick, sessions still refining
//!   get [`Answer::Partial`] bounds guaranteed to bracket the converged
//!   answer, and bursty tick arrivals coalesce to the newest rate.
//!
//! The front-end is a newline-delimited JSON protocol over
//! `std::net::TcpListener`, served by a nonblocking multi-client
//! readiness loop (see [`net::FrontEnd`], [`poll`], [`proto`] and
//! `docs/SERVER.md`); the in-process [`Server`] API underneath is what
//! the tests and the bench harness drive directly.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod answer;
pub mod catalog;
pub mod demand;
pub mod error;
pub mod json;
pub mod net;
pub mod poll;
pub mod pool;
pub mod proto;
mod sched;
pub mod server;
pub mod session;

pub use answer::Answer;
pub use catalog::{try_bond, Catalog, RelationId, Tenant, DEFAULT_RELATION};
pub use error::ServerError;
pub use net::{FrontEnd, FrontEndConfig, FrontEndStats};
pub use pool::SharedPool;
pub use sched::arbitrate_budget;
pub use server::{
    durability_fingerprint, pricer_fingerprint, Server, ServerConfig, TickResult,
    DEFAULT_SNAPSHOT_EVERY,
};
pub use session::{Broadcast, Session, SessionId, SessionRegistry};
