//! The `va-server` binary: the line-protocol server over TCP.
//!
//! ```text
//! va-server [--addr HOST:PORT] [--bonds N] [--seed S] [--budget W]
//!           [--workers N] [--data-dir PATH] [--snapshot-every N]
//!           [--calibrate on|off] [--catalog] [--smoke]
//!           [--client HOST:PORT]
//! ```
//!
//! `--budget` sets the per-tick work budget in deterministic work units
//! (omit for unbudgeted ticks). `--workers` sets the scheduler's worker
//! thread count *and* its per-round batch size (batched rounds recompute
//! cross-query demand once per batch; `--workers 1` is the serial
//! schedule). `--data-dir` makes the server durable: control-plane events
//! are journaled (fsync'd) to the dir, snapshots are written periodically,
//! and a restart with the same dir recovers sessions, counters and
//! warm-start state (without the flag the server is bit-identical to the
//! in-memory one). `--snapshot-every` sets how many journaled ticks elapse
//! between snapshots (default 64); smaller values bound recovery replay —
//! and, with segmented journal compaction, on-disk journal size — more
//! tightly at the cost of more frequent snapshot writes. `--calibrate on`
//! enables the online cost calibrator: admission and budget accounting use
//! model-corrected `estCPU`, SELECT/COUNT probes are ordered by learned
//! pass/fail correlation, and on a durable server the learned state is
//! journaled so recovery resumes it bit-identically (default `off`, which
//! is bit-identical to the pre-calibration server).
//!
//! A data dir already in the catalog layout (version-2 metadata) is
//! self-describing: every relation definition is replayed from the
//! journal and `--bonds`/`--seed` are ignored on reopen. `--catalog`
//! bootstraps a *fresh* data dir that way — it starts empty and
//! relations are created over the protocol (`CREATE_RELATION`) instead
//! of from flags. Without `--catalog`, a fresh or legacy dir opens with
//! the flag-built `"default"` relation (legacy single-relation dirs are
//! migrated to the catalog layout in place). `--smoke` runs a
//! self-contained loopback exchange —
//! subscribe, tick, stats, quit against an ephemeral port — and exits
//! nonzero on any protocol failure; CI uses it as a two-second end-to-end
//! check. `--client` flips the binary into a line-pipe client: stdin lines
//! go to the server, reply lines to stdout — which is how the CI
//! kill-and-recover smoke drives a server across a SIGKILL.
//!
//! The server multiplexes any number of concurrent clients through one
//! nonblocking readiness loop (`va_server::net::FrontEnd`); `QUIT` closes
//! only the issuing connection. SIGTERM/SIGINT stop the loop cleanly and
//! write the final snapshot, so a signal-terminated durable server
//! restarts with zero journal replay.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use bondlab::{BondPricer, BondUniverse};
use va_server::{net, poll, Server, ServerConfig};
use va_stream::BondRelation;

struct Args {
    addr: String,
    bonds: usize,
    seed: u64,
    budget: Option<u64>,
    workers: usize,
    data_dir: Option<String>,
    snapshot_every: u64,
    calibrate: bool,
    catalog: bool,
    smoke: bool,
    client: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:5083".to_string(),
        bonds: 500,
        seed: 42,
        budget: None,
        workers: 1,
        data_dir: None,
        snapshot_every: va_server::DEFAULT_SNAPSHOT_EVERY,
        calibrate: false,
        catalog: false,
        smoke: false,
        client: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--bonds" => {
                args.bonds = value("--bonds")?
                    .parse()
                    .map_err(|e| format!("--bonds: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--budget" => {
                args.budget = Some(
                    value("--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?,
                );
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if args.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--data-dir" => args.data_dir = Some(value("--data-dir")?),
            "--snapshot-every" => {
                args.snapshot_every = value("--snapshot-every")?
                    .parse()
                    .map_err(|e| format!("--snapshot-every: {e}"))?;
                if args.snapshot_every == 0 {
                    return Err("--snapshot-every must be at least 1".to_string());
                }
            }
            "--calibrate" => {
                args.calibrate = match value("--calibrate")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--calibrate expects on|off, got {other}")),
                };
            }
            "--catalog" => args.catalog = true,
            "--smoke" => args.smoke = true,
            "--client" => args.client = Some(value("--client")?),
            "--help" | "-h" => {
                println!(
                    "usage: va-server [--addr HOST:PORT] [--bonds N] [--seed S] [--budget W] [--workers N] [--data-dir PATH] [--snapshot-every N] [--calibrate on|off] [--catalog] [--smoke] [--client HOST:PORT]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn build_server(args: &Args) -> Result<Server, String> {
    let config = ServerConfig {
        budget: args.budget,
        workers: args.workers,
        snapshot_every: args.snapshot_every,
        calibrate: args.calibrate,
        ..ServerConfig::default()
    };
    let Some(dir) = &args.data_dir else {
        if args.catalog {
            return Err("--catalog requires --data-dir (the catalog lives in the journal)".into());
        }
        let universe = BondUniverse::generate(args.bonds, args.seed);
        let relation = BondRelation::from_universe(&universe);
        return Ok(Server::new(BondPricer::default(), relation, config));
    };
    let path = std::path::Path::new(dir);
    // Route on the dir's own metadata before opening it: a catalog dir
    // (version-2 metadata) is self-describing, so the relation flags must
    // not reimpose a universe on it. Fresh dirs follow `--catalog`;
    // legacy version-1 dirs take the migration path through
    // `open_durable` with the flag-built bootstrap relation.
    let self_describing =
        match va_persist::peek_meta(path).map_err(|e| format!("probe {dir}: {e}"))? {
            Some(va_persist::Meta::V2 { .. }) => true,
            Some(va_persist::Meta::V1 { .. }) => false,
            None => args.catalog,
        };
    let srv = if self_describing {
        Server::open_durable_catalog(BondPricer::default(), config, path)
            .map_err(|e| format!("open {dir}: {e}"))?
    } else {
        let universe = BondUniverse::generate(args.bonds, args.seed);
        let relation = BondRelation::from_universe(&universe);
        Server::open_durable(BondPricer::default(), relation, config, path)
            .map_err(|e| format!("open {dir}: {e}"))?
    };
    if let Some(rec) = srv.last_recovery() {
        eprintln!(
            "va-server: recovered from {dir} ({} relations, snapshot {:?}, {} events replayed, {} torn bytes truncated, {} corrupt snapshots skipped, {} tmp files swept)",
            srv.catalog().len(),
            rec.snapshot_seq,
            rec.replayed_events,
            rec.truncated_bytes,
            rec.skipped_snapshots,
            rec.swept_tmp_files
        );
    }
    Ok(srv)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("va-server: {e}");
            std::process::exit(2);
        }
    };
    if let Some(addr) = &args.client {
        client(addr);
        return;
    }
    let mut server = match build_server(&args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("va-server: {e}");
            std::process::exit(1);
        }
    };
    if args.smoke {
        smoke(&mut server);
        return;
    }
    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("va-server: bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    // The resolved address matters with `--addr 127.0.0.1:0` (scripted
    // callers parse the chosen port from this line).
    let bound = listener
        .local_addr()
        .map_or_else(|_| args.addr.clone(), |a| a.to_string());
    println!(
        "va-server listening on {bound} ({} bonds, budget {:?}, workers {}, data dir {})",
        args.bonds,
        args.budget,
        args.workers,
        args.data_dir.as_deref().unwrap_or("none")
    );
    // SIGTERM/SIGINT arm the stop flag; the readiness loop notices and
    // returns so the final snapshot below runs as part of a clean exit.
    let stop = poll::stop_on_terminate();
    let mut front = net::FrontEnd::default();
    if let Err(e) = front.run(&listener, &mut server, stop) {
        eprintln!("va-server: {e}");
        std::process::exit(1);
    }
    // Listener shutdown owns the zero-replay final snapshot (client QUITs
    // are connection-scoped and never flush shared durable state).
    if let Err(e) = server.shutdown() {
        eprintln!("va-server: shutdown flush: {e}");
        std::process::exit(1);
    }
    let stats = front.stats();
    eprintln!(
        "va-server: stopped after {} ticks ({} connections served, {} slow evictions, {} io drops)",
        server.ticks(),
        stats.accepted,
        stats.evicted_slow,
        stats.dropped_io
    );
}

/// Line-pipe client mode: forwards stdin lines to the server at `addr` and
/// prints every reply line. The reader thread drains replies until the
/// server closes the connection or goes quiet, so scripted callers can
/// `printf ... | va-server --client ADDR` without a protocol-aware tool.
fn client(addr: &str) {
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("va-server: connect {addr}: {e}");
            std::process::exit(1);
        }
    };
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .expect("set read timeout");
    let mut writer = stream.try_clone().expect("clone stream");
    let reader = std::thread::spawn(move || {
        let mut reader = BufReader::new(stream);
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break, // EOF, server death, or quiet
                Ok(_) => print!("{line}"),
            }
        }
    });
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.expect("read stdin");
        if writeln!(writer, "{line}").is_err() {
            break; // server gone mid-script (e.g. the kill-recover smoke)
        }
    }
    let _ = writer.shutdown(std::net::Shutdown::Write);
    let _ = reader.join();
}

/// Self-contained loopback exchange: a client thread drives the full
/// protocol against this process and every expectation is asserted.
fn smoke(server: &mut Server) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral loopback port");
    let addr = listener.local_addr().expect("local addr");

    let client = std::thread::spawn(move || -> Vec<String> {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let mut replies = Vec::new();
        let mut ask = |line: &str, expect_lines: usize| {
            writeln!(writer, "{line}").expect("write");
            for _ in 0..expect_lines {
                let mut reply = String::new();
                reader.read_line(&mut reply).expect("read");
                replies.push(reply.trim_end().to_string());
            }
        };
        ask(
            r#"{"type":"SUBSCRIBE","query":{"kind":"max","epsilon":0.05},"priority":2}"#,
            1,
        );
        ask(
            r#"{"type":"SUBSCRIBE","query":{"kind":"ave","epsilon":0.1}}"#,
            1,
        );
        // One tick: a RESULT per session plus the TICK_DONE trailer.
        ask(r#"{"type":"TICK","rate":0.0583}"#, 3);
        // A burst coalesces to the newest rate.
        ask(r#"{"type":"TICKS","rates":[0.0584,0.0585,0.0586]}"#, 3);
        ask(r#"{"type":"STATS"}"#, 1);
        // Catalog control plane: create a second relation, subscribe to
        // it, then tick both tenants in one request.
        ask(
            r#"{"type":"CREATE_RELATION","name":"alt","seed":7,"count":16}"#,
            1,
        );
        ask(
            r#"{"type":"SUBSCRIBE","relation":"alt","query":{"kind":"min","epsilon":0.1}}"#,
            1,
        );
        // Two RESULTs + TICK_DONE for "default", one RESULT + TICK_DONE
        // for "alt", in caller order.
        ask(
            r#"{"type":"TICK_MULTI","ticks":[{"relation":"default","rate":0.0587},{"relation":"alt","rate":0.05}]}"#,
            5,
        );
        ask(r#"{"type":"RELATIONS"}"#, 1);
        ask(r#"{"type":"QUIT"}"#, 1);
        replies
    });

    let (stream, _) = listener.accept().expect("accept");
    net::serve_connection(stream, server).expect("serve");
    let replies = client.join().expect("client thread");

    let expect = |i: usize, needle: &str| {
        assert!(
            replies[i].contains(needle),
            "reply {i} missing {needle:?}: {}",
            replies[i]
        );
    };
    expect(0, "\"type\":\"SUBSCRIBED\"");
    expect(1, "\"type\":\"SUBSCRIBED\"");
    expect(2, "\"type\":\"RESULT\"");
    expect(3, "\"type\":\"RESULT\"");
    expect(4, "\"type\":\"TICK_DONE\"");
    expect(5, "\"type\":\"RESULT\"");
    expect(6, "\"type\":\"RESULT\"");
    expect(7, "\"type\":\"TICK_DONE\"");
    expect(7, "\"shed\":2");
    expect(8, "\"type\":\"STATS\"");
    expect(8, "\"ticks\":2");
    expect(9, "\"type\":\"CREATED\"");
    expect(9, "\"relation\":\"alt\"");
    expect(10, "\"type\":\"SUBSCRIBED\"");
    expect(10, "\"relation\":\"alt\"");
    expect(11, "\"type\":\"RESULT\"");
    expect(11, "\"relation\":\"default\"");
    expect(12, "\"type\":\"RESULT\"");
    expect(13, "\"type\":\"TICK_DONE\"");
    expect(13, "\"relation\":\"default\"");
    expect(14, "\"type\":\"RESULT\"");
    expect(14, "\"relation\":\"alt\"");
    expect(15, "\"type\":\"TICK_DONE\"");
    expect(15, "\"relation\":\"alt\"");
    expect(16, "\"type\":\"RELATIONS\"");
    expect(16, "\"name\":\"alt\"");
    expect(17, "\"type\":\"BYE\"");
    assert_eq!(server.ticks(), 3);
    println!("va-server smoke: {} replies ok over {addr}", replies.len());
}
