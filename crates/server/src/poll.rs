//! Readiness primitives for the nonblocking front-end: a thin `poll(2)`
//! shim over raw FFI on unix (no external crates — the workspace builds
//! offline), a portable sleep-and-scan fallback elsewhere, and the
//! process-wide stop flag the `va-server` binary arms on SIGTERM/SIGINT.
//!
//! This is the only module in the crate that needs `unsafe` (the
//! `poll`/`signal` FFI calls); everything above it speaks the safe
//! [`PollSet`] API. The shim is deliberately level-triggered and
//! allocation-light: the front-end rebuilds the set every loop turn from
//! its live connections, waits once, and reads per-slot readiness back.
#![allow(unsafe_code)]

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(unix)]
use std::os::fd::{AsRawFd, RawFd};
#[cfg(not(unix))]
use std::os::raw::c_int as RawFd;

/// Interest/readiness bit: the fd has bytes to read (or hit EOF/error —
/// reads observe both, so hangups surface as a zero-byte read).
pub const READABLE: u8 = 0b01;
/// Interest/readiness bit: the fd can accept writes without blocking.
pub const WRITABLE: u8 = 0b10;

/// A set of file descriptors to wait on, rebuilt each loop turn.
///
/// Push every fd with the events you care about, [`PollSet::wait`] once,
/// then query per-slot readiness. Error/hangup conditions are folded into
/// both readiness bits so the caller's next nonblocking read/write
/// observes them directly.
#[derive(Debug, Default)]
pub struct PollSet {
    fds: Vec<RawFd>,
    interests: Vec<u8>,
    readiness: Vec<u8>,
}

impl PollSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `fd` with an interest mask (`READABLE` / `WRITABLE` bits;
    /// zero is allowed — hangup and error conditions are still reported).
    /// Returns the slot to query after [`PollSet::wait`].
    #[cfg(unix)]
    pub fn push(&mut self, fd: &impl AsRawFd, interest: u8) -> usize {
        self.push_raw(fd.as_raw_fd(), interest)
    }

    /// Non-unix variant of [`PollSet::push`]: readiness is simulated, so
    /// only the interest mask matters and the handle itself is unused.
    #[cfg(not(unix))]
    pub fn push<T>(&mut self, _fd: &T, interest: u8) -> usize {
        self.push_raw(0, interest)
    }

    fn push_raw(&mut self, fd: RawFd, interest: u8) -> usize {
        self.fds.push(fd);
        self.interests.push(interest);
        self.readiness.push(0);
        self.fds.len() - 1
    }

    /// Number of registered fds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses, or a signal interrupts the wait (reported as success with
    /// no readiness — the caller's loop re-checks its stop flag and waits
    /// again). `timeout_ms < 0` waits indefinitely on unix and is clamped
    /// to a short sleep on the fallback.
    pub fn wait(&mut self, timeout_ms: i32) -> io::Result<()> {
        for r in &mut self.readiness {
            *r = 0;
        }
        sys::wait(self, timeout_ms)
    }

    /// Whether the fd at `slot` reported read readiness (data, EOF, error
    /// or hangup) on the last [`PollSet::wait`].
    #[must_use]
    pub fn readable(&self, slot: usize) -> bool {
        self.readiness[slot] & READABLE != 0
    }

    /// Whether the fd at `slot` reported write readiness (or an
    /// error/hangup a write would observe) on the last [`PollSet::wait`].
    #[must_use]
    pub fn writable(&self, slot: usize) -> bool {
        self.readiness[slot] & WRITABLE != 0
    }
}

/// The process-wide stop flag [`stop_on_terminate`] arms.
static STOP: AtomicBool = AtomicBool::new(false);

/// Installs SIGTERM/SIGINT handlers that arm the returned stop flag, so
/// the serve loop can exit cleanly (flushing a final snapshot) instead of
/// dying mid-write. The handlers only store to an atomic —
/// async-signal-safe by construction. `poll(2)` is never restarted after
/// a signal (see `signal(7)`), so the wait returns immediately with
/// `EINTR` (mapped to an empty readiness set) and the loop observes the
/// flag on its next turn.
///
/// On non-unix targets this returns the same flag without installing any
/// handler; the loop then only stops when the embedding code sets it.
#[cfg(unix)]
pub fn stop_on_terminate() -> &'static AtomicBool {
    use std::os::raw::c_int;

    extern "C" fn arm_stop(_signum: c_int) {
        STOP.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }
    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;
    unsafe {
        signal(SIGTERM, arm_stop);
        signal(SIGINT, arm_stop);
    }
    &STOP
}

/// Non-unix fallback: the flag exists but no signal handler is installed.
#[cfg(not(unix))]
pub fn stop_on_terminate() -> &'static AtomicBool {
    let _ = Ordering::SeqCst; // keep the import shape identical across cfgs
    &STOP
}

#[cfg(unix)]
mod sys {
    use super::{PollSet, READABLE, WRITABLE};
    use std::io;
    use std::os::raw::{c_int, c_short};

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const POLLNVAL: c_short = 0x020;

    #[cfg(target_os = "linux")]
    type NFds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
    }

    pub fn wait(set: &mut PollSet, timeout_ms: i32) -> io::Result<()> {
        let mut fds: Vec<PollFd> = set
            .fds
            .iter()
            .zip(&set.interests)
            .map(|(&fd, &interest)| PollFd {
                fd,
                events: (if interest & READABLE != 0 { POLLIN } else { 0 })
                    | (if interest & WRITABLE != 0 { POLLOUT } else { 0 }),
                revents: 0,
            })
            .collect();
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                // Signal during the wait: report no readiness so the serve
                // loop re-checks its stop flag.
                return Ok(());
            }
            return Err(err);
        }
        for (slot, f) in fds.iter().enumerate() {
            let mut ready = 0u8;
            // Errors and hangups wake both directions: the next read sees
            // EOF/ECONNRESET, the next write sees EPIPE — either way the
            // connection is handled (and dropped) connection-locally.
            if f.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0 {
                ready |= READABLE;
            }
            if f.revents & (POLLOUT | POLLHUP | POLLERR | POLLNVAL) != 0 {
                ready |= WRITABLE;
            }
            set.readiness[slot] = ready;
        }
        Ok(())
    }
}

#[cfg(not(unix))]
mod sys {
    use super::PollSet;
    use std::io;
    use std::time::Duration;

    /// Portable fallback: no readiness syscall, so after a short sleep
    /// every registered interest is reported ready. The front-end's
    /// nonblocking reads/writes treat spurious readiness as `WouldBlock`
    /// no-ops, so this degrades to a throttled scan loop, not a bug.
    pub fn wait(set: &mut PollSet, timeout_ms: i32) -> io::Result<()> {
        let ms = if timeout_ms < 0 {
            10
        } else {
            timeout_ms.min(10)
        };
        std::thread::sleep(Duration::from_millis(ms as u64));
        set.readiness.copy_from_slice(&set.interests);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn reports_read_readiness_when_bytes_arrive() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");

        // Nothing sent yet: the wait times out with no read readiness.
        let mut set = PollSet::new();
        let slot = set.push(&server_side, READABLE);
        set.wait(20).expect("wait");
        #[cfg(unix)]
        assert!(!set.readable(slot), "no bytes yet");

        client.write_all(b"ping\n").expect("write");
        let mut set = PollSet::new();
        let slot = set.push(&server_side, READABLE);
        set.wait(1000).expect("wait");
        assert!(set.readable(slot), "bytes arrived");
    }

    #[test]
    fn reports_write_readiness_on_an_idle_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        let mut set = PollSet::new();
        let slot = set.push(&server_side, WRITABLE);
        set.wait(1000).expect("wait");
        assert!(set.writable(slot), "fresh socket has buffer space");
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
    }

    #[test]
    fn stop_flag_is_a_stable_singleton() {
        let a = stop_on_terminate();
        let b = stop_on_terminate();
        assert!(std::ptr::eq(a, b));
        assert!(!a.load(Ordering::SeqCst));
    }
}
