//! The session registry: which continuous queries are live, each with its
//! own precision constraint ε (carried inside the [`Query`]) and a
//! scheduling priority.

use va_stream::Query;

use crate::answer::Answer;

/// Identifies one registered query for its lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One registered continuous query plus its execution counters.
#[derive(Clone, Debug)]
pub struct Session {
    /// Server-assigned id (monotone, never reused).
    pub id: SessionId,
    /// The registered query; its ε rides inside the variant.
    pub query: Query,
    /// Scheduling priority (≥ 1). A session's estimated benefits are
    /// multiplied by this in the global greedy score, so a priority-2 query
    /// wins contended iterations over an equal-benefit priority-1 query.
    pub priority: u32,
    /// Ticks this session answered exactly (converged to its ε).
    pub finals: u64,
    /// Ticks the work budget degraded to anytime `Partial` answers.
    pub partials: u64,
    /// Pool iterations this session's demand drove: it was the
    /// highest-weighted-benefit claimant when the scheduler iterated the
    /// object.
    pub driven_iterations: u64,
}

/// Registry of live sessions, in deterministic registration order.
#[derive(Clone, Debug)]
pub struct SessionRegistry {
    next: u64,
    sessions: Vec<Session>,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionRegistry {
    /// An empty registry; ids start at 1.
    #[must_use]
    pub fn new() -> Self {
        Self {
            next: 1,
            sessions: Vec::new(),
        }
    }

    /// Registers a query, returning its new session id. Priority is
    /// clamped to ≥ 1 (a zero priority would erase the query's benefits
    /// from the global score entirely).
    pub fn register(&mut self, query: Query, priority: u32) -> SessionId {
        let id = SessionId(self.next);
        self.next += 1;
        self.sessions.push(Session {
            id,
            query,
            priority: priority.max(1),
            finals: 0,
            partials: 0,
            driven_iterations: 0,
        });
        id
    }

    /// Re-installs a session restored from a snapshot or journal, keeping
    /// its original id and counters. The id high-water mark advances past
    /// the restored id so the recovered server never re-issues it — even
    /// when the session itself was unsubscribed before the crash and only
    /// its id survives (see [`SessionRegistry::reserve_through`]).
    pub fn restore(&mut self, session: Session) {
        self.next = self.next.max(session.id.0 + 1);
        self.sessions.push(session);
    }

    /// Advances the id high-water mark so no id `<= id` is ever issued
    /// again. Recovery calls this for journaled subscriptions whose
    /// sessions are already gone (unsubscribed before the crash): the
    /// session has no state to restore, but its id must stay burned.
    pub fn reserve_through(&mut self, id: SessionId) {
        self.next = self.next.max(id.0 + 1);
    }

    /// The next id this registry would issue (the persisted high-water
    /// mark).
    #[must_use]
    pub fn next_id(&self) -> u64 {
        self.next
    }

    /// Removes a session. Returns `false` when the id was not registered.
    pub fn deregister(&mut self, id: SessionId) -> bool {
        let before = self.sessions.len();
        self.sessions.retain(|s| s.id != id);
        self.sessions.len() != before
    }

    /// Looks up a session by id.
    #[must_use]
    pub fn get(&self, id: SessionId) -> Option<&Session> {
        self.sessions.iter().find(|s| s.id == id)
    }

    /// Live sessions in registration order.
    #[must_use]
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Mutable access for the scheduler's counters.
    pub(crate) fn sessions_mut(&mut self) -> &mut [Session] {
        &mut self.sessions
    }

    /// Number of live sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no sessions are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Groups a tick's answers for broadcast fan-out: sessions whose
    /// queries have the same shape share one group — and, because the
    /// shared pool executes deterministically, the same answer — so the
    /// front-end serializes each group's payload exactly once however
    /// many sessions (and connections) receive it. Groups and the
    /// sessions within them keep first-occurrence (registration) order.
    #[must_use]
    pub fn broadcast_groups<'a>(&self, answers: &'a [(SessionId, Answer)]) -> Vec<Broadcast<'a>> {
        let mut groups: Vec<(Option<&Query>, Broadcast<'a>)> = Vec::new();
        for (id, answer) in answers {
            let query = self.get(*id).map(|s| &s.query);
            let existing =
                query.and_then(|q| groups.iter_mut().find(|(gq, _)| gq.is_some_and(|g| g == q)));
            match existing {
                Some((_, group)) => {
                    debug_assert_eq!(
                        group.answer, answer,
                        "same query shape must share one deterministic answer"
                    );
                    group.sessions.push(*id);
                }
                // An answer for a session the registry no longer knows
                // (or a unique shape) gets its own group.
                None => groups.push((
                    query,
                    Broadcast {
                        sessions: vec![*id],
                        answer,
                    },
                )),
            }
        }
        groups.into_iter().map(|(_, g)| g).collect()
    }
}

/// One broadcast fan-out group from
/// [`SessionRegistry::broadcast_groups`]: every session that shares this
/// answer, so the serialized payload can be rendered once for all of
/// them.
#[derive(Debug)]
pub struct Broadcast<'a> {
    /// Sessions receiving this payload, in registration order.
    pub sessions: Vec<SessionId>,
    /// The answer they share.
    pub answer: &'a Answer,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotone_and_never_reused() {
        let mut reg = SessionRegistry::new();
        let a = reg.register(Query::Max { epsilon: 0.1 }, 1);
        let b = reg.register(Query::Min { epsilon: 0.1 }, 2);
        assert_eq!(a, SessionId(1));
        assert_eq!(b, SessionId(2));
        assert!(reg.deregister(a));
        assert!(!reg.deregister(a), "double deregister is a no-op");
        let c = reg.register(Query::Max { epsilon: 0.1 }, 1);
        assert_eq!(c, SessionId(3), "ids are never reused");
        assert_eq!(reg.len(), 2);
        assert!(reg.get(b).is_some());
        assert!(reg.get(a).is_none());
    }

    #[test]
    fn restore_advances_the_id_high_water_mark() {
        let mut reg = SessionRegistry::new();
        reg.restore(Session {
            id: SessionId(5),
            query: Query::Max { epsilon: 0.1 },
            priority: 2,
            finals: 3,
            partials: 1,
            driven_iterations: 40,
        });
        assert_eq!(reg.next_id(), 6);
        assert_eq!(reg.get(SessionId(5)).unwrap().finals, 3);
        let fresh = reg.register(Query::Min { epsilon: 0.1 }, 1);
        assert_eq!(fresh, SessionId(6), "restored ids are never re-issued");
        // A burned id with no surviving session also stays burned.
        reg.reserve_through(SessionId(9));
        assert_eq!(reg.register(Query::Max { epsilon: 0.1 }, 1), SessionId(10));
    }

    #[test]
    fn zero_priority_is_clamped() {
        let mut reg = SessionRegistry::new();
        let id = reg.register(Query::Max { epsilon: 0.1 }, 0);
        assert_eq!(reg.get(id).unwrap().priority, 1);
    }

    #[test]
    fn broadcast_groups_share_payloads_by_query_shape() {
        use vao::Bounds;

        let mut reg = SessionRegistry::new();
        let a = reg.register(Query::Max { epsilon: 0.1 }, 1);
        let b = reg.register(Query::Min { epsilon: 0.1 }, 1);
        let c = reg.register(Query::Max { epsilon: 0.1 }, 3);
        let shared = Answer::Partial {
            bounds: Bounds::new(1.0, 2.0),
        };
        let other = Answer::Partial {
            bounds: Bounds::new(0.0, 1.0),
        };
        let answers = vec![(a, shared.clone()), (b, other.clone()), (c, shared.clone())];
        let groups = reg.broadcast_groups(&answers);
        assert_eq!(groups.len(), 2, "two distinct shapes, two groups");
        assert_eq!(groups[0].sessions, vec![a, c], "same shape coalesces");
        assert_eq!(groups[0].answer, &shared);
        assert_eq!(groups[1].sessions, vec![b]);
        assert_eq!(groups[1].answer, &other);

        // An answer for a session the registry no longer tracks still gets
        // delivered — as its own group.
        reg.deregister(c);
        let groups = reg.broadcast_groups(&answers);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[2].sessions, vec![c]);
    }
}
