//! Re-export of the minimal JSON value, parser and escaper.
//!
//! The implementation moved to [`va_persist::json`] so the journal and
//! snapshot codecs can share it without a dependency cycle (`va-persist`
//! cannot depend on this crate). The module path `va_server::json` is kept
//! for source compatibility; see the re-exported items for the API.

pub use va_persist::json::{escape, Json};
