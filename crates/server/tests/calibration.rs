//! Cost-calibration integration contracts:
//!
//! 1. A calibrated server that crashes mid-stream recovers its cost model
//!    bit-identically — the post-crash ticks and the calibrator's
//!    observation counters match an uninterrupted golden run exactly.
//! 2. Calibration is off by default, and an explicit `--calibrate off`
//!    produces the same ticks as the default configuration (the golden
//!    contract the persisted-record encoding relies on: disabled servers
//!    write byte-identical journals to pre-calibration builds).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bondlab::{BondPricer, BondUniverse};
use va_server::{Server, ServerConfig, TickResult, DEFAULT_RELATION};
use va_stream::{BondRelation, Query, TickStats};
use vao::ops::selection::CmpOp;

const SEED: u64 = 1994;
const RATE: f64 = 0.0583;

/// Repeats are deliberate: repeated rates exercise the warm-start path,
/// where a recovered-but-miscalibrated model would be most visible.
const RATES: [f64; 6] = [RATE, 0.0601, RATE, 0.0601, RATE, 0.0592];
const CRASH_AFTER: usize = 3;

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("va-calibration-{tag}-{}-{n}", std::process::id()))
}

/// Aggregates plus a selection/count pair, so the predicate pass/fail
/// counters participate in recovery alongside the cost cells.
fn workload(n: usize) -> Vec<Query> {
    vec![
        Query::Max { epsilon: 0.0101 },
        Query::Max { epsilon: 1.0 },
        Query::Sum {
            weights: vec![1.0; n],
            epsilon: 50.0,
        },
        Query::Selection {
            op: CmpOp::Gt,
            constant: 100.0,
        },
        Query::Count {
            op: CmpOp::Gt,
            constant: 100.0,
            slack: 25,
        },
    ]
}

fn relation() -> BondRelation {
    BondRelation::from_universe(&BondUniverse::generate(16, SEED))
}

/// Budgeted and calibrated: the budget makes admission decisions (and so
/// the corrected estimates) observable in the tick stream.
fn config() -> ServerConfig {
    ServerConfig {
        budget: Some(9_000),
        batch: Some(2),
        ..ServerConfig::default()
    }
    .with_calibration(true)
}

fn open(dir: &Path) -> Server {
    Server::open_durable(BondPricer::default(), relation(), config(), dir)
        .expect("open durable server")
}

fn subscribe_workload(srv: &mut Server) {
    for q in workload(srv.relation().bonds().len()) {
        srv.subscribe(q, 1).expect("subscribe");
    }
}

/// Everything observable about a tick except wall time.
fn tick_key(res: &TickResult) -> String {
    let TickStats {
        rate,
        work,
        wall: _,
        iterations,
        operator,
        objects,
        iter_histogram,
        cpu_est,
    } = &res.stats;
    format!(
        "tick={} rate={:?} answers={:?} exhausted={} stats=({rate:?} {work:?} {iterations} \
         {operator} {objects} {iter_histogram:?} {cpu_est:?})",
        res.tick, res.rate, res.answers, res.budget_exhausted
    )
}

fn calibration_counters(srv: &Server) -> (u64, u64) {
    let tenant = srv
        .catalog()
        .by_name(DEFAULT_RELATION)
        .expect("default relation");
    (
        tenant.calibration_observations(),
        tenant.calibration_gain_ppm(),
    )
}

#[test]
fn calibrated_recovery_restores_the_model_bit_identically() {
    let golden_dir = scratch_dir("golden");
    let crash_dir = scratch_dir("crash");

    let mut golden = open(&golden_dir);
    subscribe_workload(&mut golden);
    let golden_ticks: Vec<String> = RATES
        .iter()
        .map(|&r| tick_key(&golden.tick(r).expect("golden tick")))
        .collect();

    let mut crashed = open(&crash_dir);
    subscribe_workload(&mut crashed);
    for (i, &r) in RATES.iter().take(CRASH_AFTER).enumerate() {
        let key = tick_key(&crashed.tick(r).expect("pre-crash tick"));
        assert_eq!(key, golden_ticks[i], "pre-crash tick {i} diverged");
    }
    // The process "dies": no shutdown, only the journal survives.
    drop(crashed);

    let mut recovered = open(&crash_dir);
    let (obs_at_crash, _) = calibration_counters(&recovered);
    assert!(
        obs_at_crash > 0,
        "recovery must restore a warmed model, not a cold one"
    );
    for (i, &r) in RATES.iter().enumerate().skip(CRASH_AFTER) {
        let key = tick_key(&recovered.tick(r).expect("post-crash tick"));
        assert_eq!(
            key, golden_ticks[i],
            "post-crash tick {i} must match the golden run bit-for-bit"
        );
    }

    // The model itself ends identical, not just the answers it shaped.
    assert_eq!(
        calibration_counters(&golden),
        calibration_counters(&recovered),
        "recovered calibrator diverged from the uninterrupted one"
    );

    std::fs::remove_dir_all(&golden_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

#[test]
fn calibration_is_off_by_default_and_matches_an_explicit_off() {
    assert!(
        !ServerConfig::default().calibrate,
        "calibration must be opt-in: the default config is the golden path"
    );

    let base = ServerConfig {
        budget: Some(9_000),
        batch: Some(2),
        ..ServerConfig::default()
    };
    let mut default_srv = Server::new(BondPricer::default(), relation(), base);
    let mut off_srv = Server::new(
        BondPricer::default(),
        relation(),
        base.with_calibration(false),
    );
    subscribe_workload(&mut default_srv);
    subscribe_workload(&mut off_srv);

    for &r in &RATES {
        let d = default_srv.tick(r).expect("default tick");
        let o = off_srv.tick(r).expect("explicit-off tick");
        assert_eq!(
            tick_key(&d),
            tick_key(&o),
            "--calibrate off must be the default behavior, bit for bit"
        );
        let (obs, gain) = calibration_counters(&off_srv);
        assert_eq!((obs, gain), (0, 1_000_000), "off mode must not learn");
    }
}
