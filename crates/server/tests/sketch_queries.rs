//! End-to-end behavior of the sketch-guided query family (MEDIAN,
//! PERCENTILE, HEAVYHITTERS) on the shared-execution server.
//!
//! The cross-check the satellite pins down: PERCENTILE at φ = 0.5 and
//! MEDIAN address the *same* order statistic (rank ⌈N/2⌉ from the top), so
//! at equal ε their converged answers must bracket the same value — one
//! arrives through sketch-guided band pruning, the other through exact
//! two-sided separation, and disagreement means one of them is unsound.

use bondlab::{BondPricer, BondUniverse};
use va_server::{Server, ServerConfig};
use va_stream::{BondRelation, Query, QueryOutput};

const SEED: u64 = 1994;
const RATE: f64 = 0.0583;

fn server(bonds: usize) -> Server {
    let universe = BondUniverse::generate(bonds, SEED);
    let relation = BondRelation::from_universe(&universe);
    Server::new(BondPricer::default(), relation, ServerConfig::default())
}

#[test]
fn percentile_at_phi_half_agrees_with_median_at_equal_epsilon() {
    let eps = 0.25;
    let mut srv = server(48);
    let median = srv.subscribe(Query::Median { epsilon: eps }, 1).unwrap();
    let pctl = srv
        .subscribe(
            Query::Percentile {
                phi: 0.5,
                epsilon: eps,
            },
            1,
        )
        .unwrap();
    let res = srv.tick(RATE).expect("tick");

    let output = |id| {
        res.answers
            .iter()
            .find(|(s, _)| *s == id)
            .and_then(|(_, a)| a.final_output())
            .expect("final answer")
    };
    let QueryOutput::Extreme { bounds: mb, .. } = output(median) else {
        panic!("median answers Extreme");
    };
    let QueryOutput::Aggregate { bounds: pb } = output(pctl) else {
        panic!("percentile answers Aggregate");
    };
    // Equal rank ⇒ both intervals bracket the rank-⌈N/2⌉ value: they meet
    // the same ε and must overlap.
    assert!(mb.width() <= eps + 1e-9, "median width {}", mb.width());
    assert!(pb.width() <= eps + 1e-9, "percentile width {}", pb.width());
    assert!(
        mb.lo() <= pb.hi() && pb.lo() <= mb.hi(),
        "median {mb} and percentile {pb} must bracket the same order statistic"
    );
}

#[test]
fn percentile_extremes_meet_max_and_min() {
    // φ = 1 is the maximum, φ = 0 the minimum: the sketch-guided operator
    // must agree with the dedicated extreme operators at the rank ends.
    let eps = 0.5;
    let mut srv = server(24);
    let hi = srv
        .subscribe(
            Query::Percentile {
                phi: 1.0,
                epsilon: eps,
            },
            1,
        )
        .unwrap();
    let max = srv.subscribe(Query::Max { epsilon: eps }, 1).unwrap();
    let res = srv.tick(RATE).expect("tick");
    let find = |id| {
        res.answers
            .iter()
            .find(|(s, _)| *s == id)
            .and_then(|(_, a)| a.final_output())
            .expect("final")
    };
    let QueryOutput::Aggregate { bounds: pb } = find(hi) else {
        panic!("percentile answers Aggregate");
    };
    let QueryOutput::Extreme { bounds: xb, .. } = find(max) else {
        panic!("max answers Extreme");
    };
    assert!(
        pb.lo() <= xb.hi() && xb.lo() <= pb.hi(),
        "P100 {pb} and MAX {xb} must bracket the same value"
    );
}

#[test]
fn heavyhitters_reports_descending_exact_cell_counts() {
    let mut srv = server(48);
    let k = 3;
    let id = srv
        .subscribe(Query::HeavyHitters { k, epsilon: 2.0 }, 1)
        .unwrap();
    let res = srv.tick(RATE).expect("tick");
    let out = res
        .answers
        .iter()
        .find(|(s, _)| *s == id)
        .and_then(|(_, a)| a.final_output())
        .expect("final answer");
    let QueryOutput::Heavy { cells, ties } = out else {
        panic!("heavyhitters answers Heavy, got {out:?}");
    };
    assert!(!cells.is_empty() && cells.len() <= k);
    for w in cells.windows(2) {
        assert!(
            w[0].count > w[1].count || (w[0].count == w[1].count && w[0].cell < w[1].cell),
            "cells must rank by descending count, ties by cell: {cells:?}"
        );
    }
    let total: u64 = cells.iter().map(|c| c.count).sum();
    assert!(
        total <= 48,
        "counts are object counts, at most the relation"
    );
    // Ties, if any, run at exactly the boundary count.
    if let Some(last) = cells.last() {
        assert!(ties.iter().all(|t| !cells.iter().any(|c| c.cell == *t)));
        let _ = last;
    }
}

#[test]
fn invalid_sketch_subscriptions_are_rejected_up_front() {
    let mut srv = server(8);
    assert!(srv
        .subscribe(
            Query::Percentile {
                phi: 1.5,
                epsilon: 0.5
            },
            1
        )
        .is_err());
    assert!(srv
        .subscribe(
            Query::Percentile {
                phi: f64::NAN,
                epsilon: 0.5
            },
            1
        )
        .is_err());
    assert!(srv
        .subscribe(Query::HeavyHitters { k: 0, epsilon: 0.5 }, 1)
        .is_err());
    assert!(srv
        .subscribe(
            Query::Median {
                epsilon: f64::INFINITY
            },
            1
        )
        .is_err());
}
