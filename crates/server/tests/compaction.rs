//! Segmented-journal compaction under crashes: the bounded-recovery
//! guarantees of PR 5, pinned with the same golden-run bit-identity
//! harness as `recovery.rs`.
//!
//! 1. **Compaction preserves bit-identity.** A frequently-snapshotting
//!    server (`snapshot_every = 2`) crashes mid-stream; recovery from the
//!    compacted dir replays only the post-snapshot tail yet every
//!    post-crash tick matches the uninterrupted golden run bit-for-bit —
//!    and the data dir really is bounded (old segments gone, two
//!    snapshots kept).
//! 2. **Crash between snapshot durability and segment deletion.** The one
//!    new ordering window compaction introduces: the snapshot is durable
//!    but a covered segment survives the crash. Recovery must ignore the
//!    leftover (it is strictly below the snapshot's coverage) and the
//!    next snapshot must finish the interrupted deletion.
//! 3. **Mid-rotation crash shapes.** A crash can leave the freshly
//!    rotated active segment empty on disk, or not yet created at all.
//!    Both shapes recover bit-identically.
//! 4. **Legacy migration.** A PR-4-era dir (single `journal.jsonl`)
//!    opens, migrates to `journal-1.jsonl`, and finishes the stream
//!    bit-identically.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bondlab::{BondPricer, BondUniverse};
use va_server::{Server, ServerConfig, TickResult};
use va_stream::{BondRelation, Query, TickStats};
use vao::ops::selection::CmpOp;

const SEED: u64 = 1994;
const RATES: [f64; 6] = [0.0583, 0.0601, 0.0583, 0.0601, 0.0583, 0.0592];
const CRASH_AFTER: usize = 3;

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("va-compaction-{tag}-{}-{n}", std::process::id()))
}

fn workload(n: usize) -> Vec<Query> {
    let k = 5.min(n).max(1);
    vec![
        Query::Max { epsilon: 0.0101 },
        Query::Max { epsilon: 1.0 },
        Query::Sum {
            weights: vec![1.0; n],
            epsilon: 50.0,
        },
        Query::Selection {
            op: CmpOp::Gt,
            constant: 100.0,
        },
        Query::Min { epsilon: 1.0 },
        Query::TopK { k, epsilon: 1.0 },
        Query::Count {
            op: CmpOp::Gt,
            constant: 100.0,
            slack: 25,
        },
    ]
}

fn open_every(dir: &Path, snapshot_every: u64) -> Server {
    let relation = BondRelation::from_universe(&BondUniverse::generate(24, SEED));
    let config = ServerConfig {
        snapshot_every,
        ..ServerConfig::default()
    };
    Server::open_durable(BondPricer::default(), relation, config, dir).expect("open durable server")
}

fn subscribe_workload(srv: &mut Server) {
    for q in workload(srv.relation().bonds().len()) {
        srv.subscribe(q, 1).expect("subscribe");
    }
}

/// Everything observable about a tick except wall time (measured, not
/// derived, so excluded from bit-identity claims).
fn tick_key(res: &TickResult) -> String {
    let TickStats {
        rate,
        work,
        wall: _,
        iterations,
        operator,
        objects,
        iter_histogram,
        cpu_est,
    } = &res.stats;
    format!(
        "tick={} rate={:?} answers={:?} exhausted={} stats=({rate:?} {work:?} {iterations} \
         {operator} {objects} {iter_histogram:?} {cpu_est:?})",
        res.tick, res.rate, res.answers, res.budget_exhausted
    )
}

/// Ascending `(segment_number, byte_len)` of the `journal-*.jsonl`
/// segments in `dir`.
fn segments(dir: &Path) -> Vec<(u64, u64)> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir).expect("read dir").flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(n) = name
            .strip_prefix("journal-")
            .and_then(|rest| rest.strip_suffix(".jsonl"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            found.push((n, entry.metadata().map_or(0, |m| m.len())));
        }
    }
    found.sort_unstable();
    found
}

fn snapshot_count(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .expect("read dir")
        .flatten()
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("snapshot-") && n.ends_with(".json"))
        })
        .count()
}

/// The uninterrupted golden run under `snapshot_every`: its per-tick keys.
fn golden_keys(snapshot_every: u64) -> Vec<String> {
    let dir = scratch_dir("golden");
    let mut golden = open_every(&dir, snapshot_every);
    subscribe_workload(&mut golden);
    let keys = RATES
        .iter()
        .map(|&r| tick_key(&golden.tick(r).expect("golden tick")))
        .collect();
    std::fs::remove_dir_all(&dir).ok();
    keys
}

/// Runs the crash prefix: subscribe, `CRASH_AFTER` ticks checked against
/// the golden keys, then the drop-without-shutdown "SIGKILL".
fn crash_prefix(dir: &Path, snapshot_every: u64, golden: &[String]) {
    let mut crashed = open_every(dir, snapshot_every);
    subscribe_workload(&mut crashed);
    for (i, &r) in RATES.iter().take(CRASH_AFTER).enumerate() {
        let key = tick_key(&crashed.tick(r).expect("pre-crash tick"));
        assert_eq!(key, golden[i], "pre-crash tick {i} diverged");
    }
    drop(crashed);
}

/// Recovers from `dir` and checks the remaining ticks against the golden
/// keys, bit-for-bit.
fn recover_and_finish(dir: &Path, snapshot_every: u64, golden: &[String]) -> Server {
    let mut recovered = open_every(dir, snapshot_every);
    for (i, &r) in RATES.iter().enumerate().skip(CRASH_AFTER) {
        let key = tick_key(&recovered.tick(r).expect("post-crash tick"));
        assert_eq!(
            key, golden[i],
            "post-crash tick {i} must match the golden run bit-for-bit"
        );
    }
    recovered
}

#[test]
fn compacted_recovery_is_bit_identical_and_the_dir_is_bounded() {
    let golden = golden_keys(2);
    let dir = scratch_dir("bounded");
    crash_prefix(&dir, 2, &golden);

    // Compaction really ran: the earliest segments are gone, and only the
    // bounded live window survives — at most two retained snapshot
    // intervals plus the active segment, and at most two snapshots.
    let segs = segments(&dir);
    assert!(
        segs.first().expect("live segments").0 >= 2,
        "segment 1 must have been compacted away, live: {segs:?}"
    );
    assert!(segs.len() <= 3, "live window exceeded: {segs:?}");
    assert!(snapshot_count(&dir) <= 2);
    assert!(
        !dir.join("journal.jsonl").exists(),
        "a segmented dir never contains the legacy single journal"
    );

    // Recovery replays only the tail, yet nothing observable changes.
    let recovered = recover_and_finish(&dir, 2, &golden);
    let rec = recovered.last_recovery().expect("recovery record");
    assert!(
        rec.replayed_events < 2 * 2,
        "replay must be bounded by the snapshot cadence, got {}",
        rec.replayed_events
    );
    assert_eq!(rec.skipped_snapshots, 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn leftover_covered_segment_is_ignored_and_deleted_by_the_next_snapshot() {
    let golden = golden_keys(2);
    let dir = scratch_dir("leftover");
    crash_prefix(&dir, 2, &golden);

    // Fabricate the crash-between-snapshot-durable-and-segment-delete
    // window: resurrect a segment below the live window, as if the crash
    // hit after the snapshot rename but before compaction unlinked it.
    let min_live = segments(&dir).first().expect("live segments").0;
    assert!(
        min_live >= 2,
        "precondition: compaction must already have deleted segment {}",
        min_live - 1
    );
    let leftover = dir.join(format!("journal-{}.jsonl", min_live - 1));
    std::fs::write(&leftover, b"{\"type\":\"Unsubscribe\",\"session\":9}\n").expect("resurrect");

    // The leftover sits strictly below the snapshot's coverage, so
    // recovery never opens it and the stream finishes bit-identically.
    let _recovered = recover_and_finish(&dir, 2, &golden);

    // The three post-crash ticks journal enough events to force another
    // snapshot, whose compaction finishes the interrupted deletion.
    assert!(
        !leftover.exists(),
        "the next snapshot must delete the resurrected covered segment"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_with_an_empty_freshly_rotated_segment_recovers_bit_identically() {
    let golden = golden_keys(2);
    let dir = scratch_dir("rotated");
    crash_prefix(&dir, 2, &golden);

    // Crash-after-rotate shape: the new active segment was created but
    // nothing was appended yet.
    let max_live = segments(&dir).last().expect("live segments").0;
    std::fs::write(dir.join(format!("journal-{}.jsonl", max_live + 1)), b"").expect("empty active");

    let _recovered = recover_and_finish(&dir, 2, &golden);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_before_the_rotated_segment_was_created_recovers_bit_identically() {
    let golden = golden_keys(2);
    let dir = scratch_dir("uncreated");
    crash_prefix(&dir, 2, &golden);

    // Crash-before-create shape: the snapshot is durable but `rotate`
    // never created its segment. If the crash happened to land right
    // after a snapshot, the active segment is the empty rotation target —
    // removing it reproduces the crash-before-create dir exactly;
    // otherwise the dir already has that shape for the *previous*
    // snapshot and removing nothing is faithful too.
    let (max_live, len) = *segments(&dir).last().expect("live segments");
    if len == 0 {
        std::fs::remove_file(dir.join(format!("journal-{max_live}.jsonl"))).expect("remove");
    }

    let _recovered = recover_and_finish(&dir, 2, &golden);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn legacy_single_journal_dir_migrates_and_recovers_bit_identically() {
    // No snapshots: with the cadence effectively disabled the whole
    // history lives in one segment, exactly like a PR-4-era mid-run dir.
    let golden = golden_keys(u64::MAX);
    let dir = scratch_dir("legacy");
    crash_prefix(&dir, u64::MAX, &golden);
    assert_eq!(snapshot_count(&dir), 0, "no snapshot must have been due");
    assert_eq!(segments(&dir).len(), 1);

    // Rewind the layout to PR 4: one un-numbered `journal.jsonl`.
    std::fs::rename(dir.join("journal-1.jsonl"), dir.join("journal.jsonl")).expect("rename");

    let recovered = recover_and_finish(&dir, u64::MAX, &golden);
    let rec = recovered.last_recovery().expect("recovery record");
    assert!(rec.replayed_events > 0, "the whole history replays");
    assert!(
        dir.join("journal-1.jsonl").exists() && !dir.join("journal.jsonl").exists(),
        "migration renames the legacy journal to segment 1"
    );

    std::fs::remove_dir_all(&dir).ok();
}
