//! Crash recovery: the journaled server survives a mid-stream kill.
//!
//! The headline guarantee of the persistence layer, pinned here four ways:
//!
//! 1. **Golden equivalence.** Run a durable server uninterrupted (the
//!    golden run), then run an identical workload that *crashes* mid-stream
//!    (the server is dropped without `shutdown()`, so only the fsync'd
//!    journal survives) and recovers into the same data dir. Every
//!    post-crash tick — answers, work breakdown, iteration counts,
//!    histograms — must be bit-identical to the golden run's corresponding
//!    tick. Wall-clock time is the one field excluded: it is measured, not
//!    derived.
//! 2. **Warm restart beats cold restart.** The recovered server re-admits
//!    pool objects at their achieved accuracy, so a post-recovery tick at a
//!    previously-seen rate does strictly fewer iterations than a cold
//!    server answering the same workload from scratch.
//! 3. **Durability is free of semantic drift.** A *fresh* durable server's
//!    first tick reproduces the in-memory scheduler's golden numbers from
//!    `parallel_determinism.rs` exactly — `--data-dir` changes where state
//!    lives, never what is computed.
//! 4. **Ids, torn tails, clean shutdowns.** Recovered servers never
//!    re-issue a session id (even for sessions unsubscribed before the
//!    crash), a torn final journal record is truncated and reported rather
//!    than fatal, and a clean shutdown recovers with zero replay.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use bondlab::{BondPricer, BondUniverse};
use va_server::{Server, ServerConfig, SessionId, TickResult};
use va_stream::{BondRelation, Query, QueryOutput, TickStats};
use vao::ops::selection::CmpOp;

const SEED: u64 = 1994;
const RATE: f64 = 0.0583;

/// A fresh scratch directory under the system temp dir; unique per call so
/// parallel tests never share a journal.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("va-recovery-{tag}-{}-{n}", std::process::id()))
}

/// The determinism-test workload plus one *tight* query (ε just above the
/// pricer's minimum refinable width) so every run converges at least one
/// object fully — the state a warm restart re-admits for free.
fn workload(n: usize) -> Vec<Query> {
    let k = 5.min(n).max(1);
    vec![
        Query::Max { epsilon: 0.0101 },
        Query::Max { epsilon: 1.0 },
        Query::Sum {
            weights: vec![1.0; n],
            epsilon: 50.0,
        },
        Query::Selection {
            op: CmpOp::Gt,
            constant: 100.0,
        },
        Query::Min { epsilon: 1.0 },
        Query::TopK { k, epsilon: 1.0 },
        Query::Count {
            op: CmpOp::Gt,
            constant: 100.0,
            slack: 25,
        },
        // The sketch-guided family: their summaries are derived state
        // (rebuilt from the pool each round, never journaled), so recovery
        // must reproduce their ticks bit-for-bit with no sketch records.
        Query::Median { epsilon: 1.0 },
        Query::Percentile {
            phi: 0.9,
            epsilon: 1.0,
        },
        Query::HeavyHitters { k: 3, epsilon: 0.5 },
    ]
}

fn relation(bonds: usize) -> BondRelation {
    BondRelation::from_universe(&BondUniverse::generate(bonds, SEED))
}

fn open(dir: &std::path::Path) -> Server {
    Server::open_durable(
        BondPricer::default(),
        relation(24),
        ServerConfig::default(),
        dir,
    )
    .expect("open durable server")
}

fn subscribe_workload(srv: &mut Server) {
    for q in workload(srv.relation().bonds().len()) {
        srv.subscribe(q, 1).expect("subscribe");
    }
}

/// Everything observable about a tick except wall time (measured, not
/// derived, so excluded from bit-identity claims).
fn tick_key(res: &TickResult) -> String {
    let TickStats {
        rate,
        work,
        wall: _,
        iterations,
        operator,
        objects,
        iter_histogram,
        cpu_est,
    } = &res.stats;
    format!(
        "tick={} rate={:?} answers={:?} exhausted={} stats=({rate:?} {work:?} {iterations} \
         {operator} {objects} {iter_histogram:?} {cpu_est:?})",
        res.tick, res.rate, res.answers, res.budget_exhausted
    )
}

/// The tick sequence: repeats are deliberate (market rates quantize to
/// basis points), because repeats are where warm state pays.
const RATES: [f64; 6] = [RATE, 0.0601, RATE, 0.0601, RATE, 0.0592];
const CRASH_AFTER: usize = 3;

#[test]
fn recovered_ticks_are_bit_identical_to_the_uninterrupted_golden_run() {
    let golden_dir = scratch_dir("golden");
    let crash_dir = scratch_dir("crash");

    // Golden: one durable server, never interrupted.
    let mut golden = open(&golden_dir);
    subscribe_workload(&mut golden);
    let golden_ticks: Vec<String> = RATES
        .iter()
        .map(|&r| tick_key(&golden.tick(r).expect("golden tick")))
        .collect();

    // Crash run: same workload, same prefix, then the process "dies" — the
    // server is dropped with no shutdown, so only the journal survives.
    let mut crashed = open(&crash_dir);
    subscribe_workload(&mut crashed);
    for (i, &r) in RATES.iter().take(CRASH_AFTER).enumerate() {
        let key = tick_key(&crashed.tick(r).expect("pre-crash tick"));
        assert_eq!(key, golden_ticks[i], "pre-crash tick {i} diverged");
    }
    drop(crashed);

    // Recover and finish the stream. Replay is real: no snapshot was due
    // (SNAPSHOT_EVERY events had not accumulated), so every event folds
    // back out of the journal tail.
    let mut recovered = open(&crash_dir);
    let rec = recovered.last_recovery().expect("recovery record");
    assert!(
        rec.replayed_events > 0,
        "a mid-stream crash must leave journal events to replay"
    );
    for (i, &r) in RATES.iter().enumerate().skip(CRASH_AFTER) {
        let key = tick_key(&recovered.tick(r).expect("post-crash tick"));
        assert_eq!(
            key, golden_ticks[i],
            "post-crash tick {i} must match the golden run bit-for-bit"
        );
    }

    // Recovered accounting matches too: same session counters, and RESUME
    // serves the same last answer the golden server would.
    assert_eq!(recovered.ticks(), golden.ticks());
    for (g, r) in golden
        .sessions()
        .sessions()
        .iter()
        .zip(recovered.sessions().sessions())
    {
        assert_eq!(g.id, r.id);
        assert_eq!(g.finals, r.finals, "session {} finals", g.id);
        assert_eq!(g.partials, r.partials, "session {} partials", g.id);
        assert_eq!(g.driven_iterations, r.driven_iterations);
    }
    for ((gid, ga), (rid, ra)) in golden.last_answers().iter().zip(recovered.last_answers()) {
        assert_eq!(gid, rid);
        assert_eq!(ga, ra, "session {gid} last answer");
    }
    let (sess, answer) = recovered.resume(SessionId(1)).expect("resume");
    assert_eq!(sess.finals + sess.partials, RATES.len() as u64);
    assert_eq!(answer, golden.last_answers().first().map(|(_, a)| a));

    std::fs::remove_dir_all(&golden_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

#[test]
fn warm_restart_does_strictly_fewer_iterations_than_cold_restart() {
    let dir = scratch_dir("warm");

    // Tick once at RATE, then crash.
    let mut first = open(&dir);
    subscribe_workload(&mut first);
    let cold = first.tick(RATE).expect("cold tick");
    assert!(cold.stats.iterations > 0);
    drop(first);

    // Warm restart: recovery re-admits each object at its achieved
    // accuracy, so the repeat tick skips every already-converged object.
    let mut recovered = open(&dir);
    let warm = recovered.tick(RATE).expect("warm tick");
    assert!(
        warm.stats.iterations < cold.stats.iterations,
        "warm restart must do strictly fewer iterations: warm {} vs cold {}",
        warm.stats.iterations,
        cold.stats.iterations
    );
    assert!(warm.stats.total_work() < cold.stats.total_work());

    // A cold restart (fresh dir, no prior state) pays the full price again.
    let cold_dir = scratch_dir("cold");
    let mut cold_restart = open(&cold_dir);
    subscribe_workload(&mut cold_restart);
    let recomputed = cold_restart.tick(RATE).expect("cold restart tick");
    assert_eq!(
        recomputed.stats.iterations, cold.stats.iterations,
        "a cold restart recomputes everything"
    );

    // Warm answers are ε-equivalent to cold ones, not bit-identical: a warm
    // tick refines onward from the achieved bounds, a cold tick from
    // scratch, and both stop anywhere inside the precision constraint.
    // (Bit-identity is claimed golden-vs-recovered only — see the golden
    // test above.) Here: both converge, and their intervals intersect, so
    // they bracket the same true answer.
    for ((wid, wa), (cid, ca)) in warm.answers.iter().zip(&recomputed.answers) {
        assert_eq!(wid, cid);
        let (w, c) = (
            wa.final_output().expect("warm final"),
            ca.final_output().expect("cold final"),
        );
        if let (QueryOutput::Aggregate { bounds: wb }, QueryOutput::Aggregate { bounds: cb }) =
            (w, c)
        {
            assert!(
                wb.lo() <= cb.hi() && cb.lo() <= wb.hi(),
                "session {wid}: warm {wb} and cold {cb} must bracket the same sum"
            );
        } else {
            assert_eq!(w, c, "non-aggregate answers are exact and must agree");
        }
    }

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&cold_dir).ok();
}

/// `--data-dir` on a fresh dir changes where state lives, never what is
/// computed: the first tick reproduces the in-memory scheduler's golden
/// numbers from `parallel_determinism.rs` exactly (same 8-query workload,
/// 48 bonds, seed 1994).
#[test]
fn fresh_durable_server_reproduces_the_in_memory_golden_numbers() {
    let dir = scratch_dir("fresh-golden");
    let mut srv = Server::open_durable(
        BondPricer::default(),
        relation(48),
        ServerConfig::default(),
        &dir,
    )
    .expect("open durable server");
    let n = 48;
    let k = 5;
    let queries = vec![
        Query::Max { epsilon: 1.0 },
        Query::Sum {
            weights: vec![1.0; n],
            epsilon: 50.0,
        },
        Query::Selection {
            op: CmpOp::Gt,
            constant: 100.0,
        },
        Query::Min { epsilon: 1.0 },
        Query::TopK { k, epsilon: 1.0 },
        Query::Count {
            op: CmpOp::Gt,
            constant: 100.0,
            slack: 25,
        },
        Query::Max { epsilon: 0.5 },
        Query::Sum {
            weights: vec![1.0; n],
            epsilon: 60.0,
        },
    ];
    for q in queries {
        srv.subscribe(q, 1).expect("subscribe");
    }
    let res = srv.tick(RATE).expect("tick");

    assert_eq!(res.stats.iterations, 319);
    assert_eq!(res.stats.work.exec_iter, 921_088);
    assert_eq!(res.stats.work.get_state, 48);
    assert_eq!(res.stats.work.store_state, 415);
    assert_eq!(res.stats.work.choose_iter, 13_937);
    assert_eq!(res.stats.total_work(), 935_488);
    let digests: Vec<String> = res
        .answers
        .iter()
        .map(|(_, a)| digest(a.final_output().expect("final")))
        .collect();
    assert_eq!(
        digests,
        [
            "ext 45 [1.23318127050003099e2,1.23566607748983657e2]",
            "agg [5.13253865431830673e3,5.17484783090893052e3]",
            "selected n=37 sum=801",
            "ext 9 [8.88010145651998641e1,8.88567968443305318e1]",
            "ranked n=5 first=45 ties=0",
            "count [37,37]",
            "ext 45 [1.23318127050003099e2,1.23566607748983657e2]",
            "agg [5.13253865431830673e3,5.17484783090893052e3]",
        ]
    );

    std::fs::remove_dir_all(&dir).ok();
}

fn digest(out: &QueryOutput) -> String {
    match out {
        QueryOutput::Selected(ids) => {
            format!("selected n={} sum={}", ids.len(), ids.iter().sum::<u32>())
        }
        QueryOutput::Count { lo, hi } => format!("count [{lo},{hi}]"),
        QueryOutput::Aggregate { bounds } => {
            format!("agg [{:.17e},{:.17e}]", bounds.lo(), bounds.hi())
        }
        QueryOutput::Extreme {
            bond_id, bounds, ..
        } => format!("ext {bond_id} [{:.17e},{:.17e}]", bounds.lo(), bounds.hi()),
        QueryOutput::Ranked { members, ties } => format!(
            "ranked n={} first={} ties={}",
            members.len(),
            members.first().map(|m| m.0).unwrap_or(0),
            ties.len()
        ),
        QueryOutput::Heavy { cells, ties } => format!(
            "heavy n={} first={} ties={}",
            cells.len(),
            cells.first().map(|c| c.cell).unwrap_or(0),
            ties.len()
        ),
    }
}

#[test]
fn session_ids_are_never_reissued_across_a_crash() {
    let dir = scratch_dir("ids");
    let mut srv = open(&dir);
    let a = srv.subscribe(Query::Max { epsilon: 0.5 }, 1).expect("a");
    let b = srv.subscribe(Query::Min { epsilon: 0.5 }, 1).expect("b");
    assert_eq!((a, b), (SessionId(1), SessionId(2)));
    // The session dies *before* the crash — its id must stay burned anyway.
    srv.unsubscribe(b).expect("unsubscribe");
    drop(srv); // crash: no shutdown, no snapshot

    let mut recovered = open(&dir);
    assert_eq!(recovered.sessions().len(), 1, "only session 1 survives");
    let c = recovered
        .subscribe(Query::Max { epsilon: 1.0 }, 1)
        .expect("c");
    assert_eq!(
        c,
        SessionId(3),
        "id 2 was issued before the crash and is never reused"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_final_journal_record_is_truncated_and_reported() {
    use std::io::Write;

    let dir = scratch_dir("torn");
    let mut srv = open(&dir);
    subscribe_workload(&mut srv);
    srv.tick(RATE).expect("tick");
    drop(srv); // crash

    // Simulate the torn write: a half-flushed record with no newline,
    // appended to the active (highest-numbered) journal segment.
    let journal = dir.join("journal-1.jsonl");
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&journal)
        .expect("open journal");
    f.write_all(br#"{"type":"Tick","tick":99,"ra"#)
        .expect("tear");
    drop(f);

    let mut recovered = open(&dir);
    let rec = recovered.last_recovery().expect("recovery record");
    assert!(
        rec.truncated_bytes > 0,
        "the torn tail must be reported, not silently dropped"
    );
    assert!(rec.replayed_events > 0, "intact records still replay");

    // The journal is whole again: the server keeps accepting state changes
    // and a second recovery sees nothing torn.
    recovered.tick(0.0601).expect("tick after truncation");
    recovered.shutdown().expect("clean shutdown");
    drop(recovered);
    let reopened = open(&dir);
    let rec2 = reopened.last_recovery().expect("recovery record");
    assert_eq!(rec2.truncated_bytes, 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_shutdown_recovers_with_zero_journal_replay() {
    let dir = scratch_dir("clean");
    let mut srv = open(&dir);
    subscribe_workload(&mut srv);
    let live = srv.tick(RATE).expect("tick");
    srv.shutdown().expect("shutdown");
    drop(srv);

    let mut recovered = open(&dir);
    let rec = recovered.last_recovery().expect("recovery record");
    assert_eq!(
        rec.replayed_events, 0,
        "a clean shutdown leaves nothing to replay: the final snapshot \
         covers every journal event"
    );
    assert!(rec.snapshot_seq.is_some(), "recovered from a snapshot");
    assert_eq!(rec.truncated_bytes, 0);

    // The snapshot alone carries the whole state: repeat the tick and it is
    // warm, and the last answers survived byte-for-byte.
    for ((lid, la), (sid, sa)) in recovered.last_answers().iter().zip(&live.answers) {
        assert_eq!(lid, sid);
        assert_eq!(la, sa);
    }
    let warm = recovered.tick(RATE).expect("warm tick");
    assert!(warm.stats.iterations < live.stats.iterations);

    std::fs::remove_dir_all(&dir).ok();
}

/// Multi-relation catalog dirs are fully self-describing: after a crash,
/// every tenant — relation definitions, per-relation sessions, tick
/// counters, warm state — recovers from the journal alone (no
/// `--bonds`/`--seed` reconstruction), dropped relations stay dropped,
/// and every post-crash tick is bit-identical to an uninterrupted golden
/// run of the same interleaved workload.
#[test]
fn multi_relation_catalog_recovers_every_tenant_bit_identically() {
    use va_server::ServerError;

    let golden_dir = scratch_dir("cat-golden");
    let crash_dir = scratch_dir("cat-crash");

    let open_catalog = |dir: &std::path::Path| {
        Server::open_durable_catalog(BondPricer::default(), ServerConfig::default(), dir)
            .expect("open catalog server")
    };
    let populate = |srv: &mut Server| {
        srv.create_relation("alpha", relation(24), Some(SEED))
            .expect("create alpha");
        srv.create_relation(
            "beta",
            BondRelation::from_universe(&BondUniverse::generate(16, 7)),
            Some(7),
        )
        .expect("create beta");
        // A relation created and dropped before the crash: the journal
        // must keep it dead across recovery.
        srv.create_relation(
            "gamma",
            BondRelation::from_universe(&BondUniverse::generate(8, 11)),
            Some(11),
        )
        .expect("create gamma");
        srv.drop_relation("gamma").expect("drop gamma");
        for q in workload(24) {
            srv.subscribe_to("alpha", q, 1).expect("subscribe alpha");
        }
        srv.subscribe_to("beta", Query::Max { epsilon: 0.5 }, 2)
            .expect("subscribe beta");
        srv.subscribe_to("beta", Query::Min { epsilon: 0.5 }, 1)
            .expect("subscribe beta");
    };

    // Golden: one catalog server, never interrupted, ticks interleaved
    // across both tenants.
    let mut golden = open_catalog(&golden_dir);
    populate(&mut golden);
    let mut golden_keys = Vec::new();
    for &r in &RATES {
        golden_keys.push(tick_key(
            &golden.tick_relation("alpha", r).expect("golden alpha"),
        ));
        golden_keys.push(tick_key(
            &golden
                .tick_relation("beta", r + 0.001)
                .expect("golden beta"),
        ));
    }

    // Crash run: same interleaving, then the process "dies" mid-stream.
    let mut crashed = open_catalog(&crash_dir);
    populate(&mut crashed);
    for (i, &r) in RATES.iter().take(CRASH_AFTER).enumerate() {
        assert_eq!(
            tick_key(&crashed.tick_relation("alpha", r).expect("pre-crash")),
            golden_keys[2 * i]
        );
        assert_eq!(
            tick_key(&crashed.tick_relation("beta", r + 0.001).expect("pre-crash")),
            golden_keys[2 * i + 1]
        );
    }
    drop(crashed); // crash: no shutdown, no snapshot

    // Recovery reads *only* the dir: no relation definitions are supplied.
    let mut recovered = open_catalog(&crash_dir);
    let rec = recovered.last_recovery().expect("recovery record");
    assert!(rec.replayed_events > 0, "a crash leaves journal replay");
    assert_eq!(recovered.catalog().len(), 2, "alpha and beta recovered");
    assert!(
        matches!(
            recovered.tick_relation("gamma", RATE),
            Err(ServerError::UnknownRelation(_))
        ),
        "a relation dropped before the crash stays dropped"
    );
    for (i, &r) in RATES.iter().enumerate().skip(CRASH_AFTER) {
        assert_eq!(
            tick_key(&recovered.tick_relation("alpha", r).expect("post-crash")),
            golden_keys[2 * i],
            "alpha tick {i} must match the golden run bit-for-bit"
        );
        assert_eq!(
            tick_key(
                &recovered
                    .tick_relation("beta", r + 0.001)
                    .expect("post-crash")
            ),
            golden_keys[2 * i + 1],
            "beta tick {i} must match the golden run bit-for-bit"
        );
    }

    // Per-relation accounting survives: session-id spaces are namespaced
    // (both tenants issued ids from 1), and RESUME serves the same last
    // answer in each tenant that the golden server would.
    for name in ["alpha", "beta"] {
        let (gs, ga) = golden.resume_in(name, SessionId(1)).expect("golden resume");
        let (rs, ra) = recovered
            .resume_in(name, SessionId(1))
            .expect("recovered resume");
        assert_eq!(gs.finals, rs.finals, "{name} finals");
        assert_eq!(gs.partials, rs.partials, "{name} partials");
        assert_eq!(ga, ra, "{name} last answer");
    }

    std::fs::remove_dir_all(&golden_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}
