//! In-process loopback TCP integration test: the full line protocol over a
//! real `std::net` socket, server on a background thread, client here.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use bondlab::{BondPricer, BondUniverse};
use va_server::json::Json;
use va_server::{net, Server, ServerConfig};
use va_stream::BondRelation;

fn spawn_server(
    bonds: usize,
    config: ServerConfig,
) -> (std::net::SocketAddr, std::thread::JoinHandle<Server>) {
    let universe = BondUniverse::generate(bonds, 1994);
    let relation = BondRelation::from_universe(&universe);
    let mut server = Server::new(BondPricer::default(), relation, config);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        net::serve_connection(stream, &mut server).expect("serve");
        server
    });
    (addr, handle)
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        Self {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("write");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        Json::parse(line.trim_end()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
    }

    fn recv_type(&mut self, expected: &str) -> Json {
        let doc = self.recv();
        assert_eq!(
            doc.get("type").and_then(Json::as_str),
            Some(expected),
            "{doc:?}"
        );
        doc
    }
}

#[test]
fn full_protocol_exchange_over_loopback() {
    let (addr, handle) = spawn_server(12, ServerConfig::default());
    let mut c = Client::connect(addr);

    // Subscribe three queries; ids are monotone.
    c.send(r#"{"type":"SUBSCRIBE","query":{"kind":"max","epsilon":0.05},"priority":2}"#);
    let s1 = c.recv_type("SUBSCRIBED");
    assert_eq!(s1.get("session").and_then(Json::as_u64), Some(1));
    c.send(r#"{"type":"SUBSCRIBE","query":{"kind":"sum","epsilon":2.0}}"#);
    assert_eq!(
        c.recv_type("SUBSCRIBED")
            .get("session")
            .and_then(Json::as_u64),
        Some(2)
    );
    c.send(r#"{"type":"SUBSCRIBE","query":{"kind":"selection","op":">","constant":95.0}}"#);
    assert_eq!(
        c.recv_type("SUBSCRIBED")
            .get("session")
            .and_then(Json::as_u64),
        Some(3)
    );

    // A malformed request errors without killing the connection.
    c.send(r#"{"type":"SUBSCRIBE","query":{"kind":"max","epsilon":-2}}"#);
    let err = c.recv_type("ERROR");
    assert!(err
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("precision"));

    // One tick: three RESULT lines (session order) then TICK_DONE.
    c.send(r#"{"type":"TICK","rate":0.0583}"#);
    for want in 1..=3u64 {
        let res = c.recv_type("RESULT");
        assert_eq!(res.get("session").and_then(Json::as_u64), Some(want));
        assert_eq!(res.get("tick").and_then(Json::as_u64), Some(1));
        assert_eq!(
            res.get("status").and_then(Json::as_str),
            Some("final"),
            "unbudgeted ticks converge: {res:?}"
        );
        let output = res.get("output").expect("final answers carry output");
        assert!(output.get("shape").is_some());
    }
    let done = c.recv_type("TICK_DONE");
    assert_eq!(done.get("tick").and_then(Json::as_u64), Some(1));
    assert_eq!(
        done.get("budget_exhausted").and_then(Json::as_bool),
        Some(false)
    );
    assert!(done.get("work_units").and_then(Json::as_u64).unwrap() > 0);

    // Unsubscribe the selection; the next tick answers two sessions.
    c.send(r#"{"type":"UNSUBSCRIBE","session":3}"#);
    c.recv_type("UNSUBSCRIBED");
    c.send(r#"{"type":"UNSUBSCRIBE","session":3}"#);
    c.recv_type("ERROR");
    c.send(r#"{"type":"TICK","rate":0.0585}"#);
    assert_eq!(
        c.recv_type("RESULT").get("session").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(
        c.recv_type("RESULT").get("session").and_then(Json::as_u64),
        Some(2)
    );
    c.recv_type("TICK_DONE");

    // STATS reflects both ticks and the per-session rows.
    c.send(r#"{"type":"STATS"}"#);
    let stats = c.recv_type("STATS");
    assert_eq!(stats.get("ticks").and_then(Json::as_u64), Some(2));
    let sessions = stats.get("sessions").and_then(Json::as_array).unwrap();
    assert_eq!(sessions.len(), 2);
    assert_eq!(
        sessions[0].get("operator").and_then(Json::as_str),
        Some("max")
    );
    assert_eq!(sessions[0].get("finals").and_then(Json::as_u64), Some(2));

    c.send(r#"{"type":"QUIT"}"#);
    c.recv_type("BYE");

    let server = handle.join().expect("server thread");
    assert_eq!(server.ticks(), 2);
    assert_eq!(server.sessions().len(), 2);
}

#[test]
fn budgeted_server_reports_partial_results_on_the_wire() {
    // A budget of one work unit is spent by the model invocations alone,
    // so no refinement runs: the tick must degrade rather than error,
    // tagging results partial with sound bounds.
    let (addr, handle) = spawn_server(12, ServerConfig::budgeted(1));
    let mut c = Client::connect(addr);
    c.send(r#"{"type":"SUBSCRIBE","query":{"kind":"max","epsilon":0.02}}"#);
    c.recv_type("SUBSCRIBED");
    c.send(r#"{"type":"TICK","rate":0.0583}"#);
    let res = c.recv_type("RESULT");
    assert_eq!(res.get("status").and_then(Json::as_str), Some("partial"));
    let bounds = res.get("bounds").expect("partial answers carry bounds");
    let lo = bounds.get("lo").and_then(Json::as_f64).unwrap();
    let hi = bounds.get("hi").and_then(Json::as_f64).unwrap();
    assert!(lo <= hi);
    let done = c.recv_type("TICK_DONE");
    assert_eq!(
        done.get("budget_exhausted").and_then(Json::as_bool),
        Some(true)
    );
    c.send(r#"{"type":"QUIT"}"#);
    c.recv_type("BYE");
    handle.join().expect("server thread");
}
