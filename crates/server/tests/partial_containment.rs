//! Property: anytime `Partial { bounds }` answers always contain the
//! fully-converged answer value.
//!
//! For random relations, rates and budget fractions, run the same query
//! twice — once under a budget B (taken as a fraction of the converged
//! cost) and once with no budget — and check the partial interval brackets
//! the value the unbudgeted run converged to. Exercised for SUM (aggregate
//! value) and MAX (extreme value), per the two §5 benefit families, plus
//! PERCENTILE (rank-k order statistic) from the sketch-guided family.

use proptest::prelude::*;

use bondlab::{BondPricer, BondUniverse};
use va_server::{Answer, Server, ServerConfig};
use va_stream::{BondRelation, Query, QueryOutput};

fn server(bonds: usize, seed: u64, config: ServerConfig) -> Server {
    let universe = BondUniverse::generate(bonds, seed);
    let relation = BondRelation::from_universe(&universe);
    Server::new(BondPricer::default(), relation, config)
}

/// Runs `query` unbudgeted and under `frac` of the converged work; returns
/// `(converged bounds, partial bounds)` when the budgeted run degraded.
fn run_pair(
    bonds: usize,
    seed: u64,
    rate: f64,
    frac: f64,
    query: Query,
) -> Option<(vao::Bounds, vao::Bounds)> {
    let mut full = server(bonds, seed, ServerConfig::default());
    full.subscribe(query.clone(), 1).expect("subscribe");
    let full_res = full.tick(rate).expect("unbudgeted tick");
    let converged = match full_res.answers[0].1.final_output().expect("final") {
        QueryOutput::Aggregate { bounds } | QueryOutput::Extreme { bounds, .. } => *bounds,
        other => panic!("unexpected output shape {other:?}"),
    };

    let budget = ((full_res.stats.total_work() as f64) * frac) as u64;
    let mut capped = server(bonds, seed, ServerConfig::budgeted(budget.max(1)));
    capped.subscribe(query, 1).expect("subscribe");
    let capped_res = capped.tick(rate).expect("budgeted tick");
    match &capped_res.answers[0].1 {
        Answer::Partial { bounds } => Some((converged, *bounds)),
        // A generous fraction can still converge; nothing to check then.
        Answer::Final(_) => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn partial_sum_bounds_contain_the_converged_sum(
        bonds in 3usize..10,
        seed in 0u64..1000,
        rate_off in 0usize..40,
        frac in 0.05f64..0.9,
        eps in 0.05f64..2.0,
    ) {
        let rate = 0.045 + rate_off as f64 * 0.001;
        let query = Query::Sum { weights: vec![1.0; bonds], epsilon: eps };
        if let Some((converged, partial)) = run_pair(bonds, seed, rate, frac, query) {
            // Both intervals contain the true sum (per-bound soundness),
            // and the converged midpoint sits within half the converged
            // width of it — so the partial interval inflated by that half
            // width must contain the midpoint. Nothing here assumes the
            // budgeted and unbudgeted runs iterated the same objects.
            let mid = 0.5 * (converged.lo() + converged.hi());
            let slack = 0.5 * converged.width() + 1e-9;
            prop_assert!(
                partial.lo() - slack <= mid && mid <= partial.hi() + slack,
                "partial {} must bracket converged sum {} (± {})",
                partial, mid, slack
            );
        }
    }

    #[test]
    fn partial_max_envelope_contains_the_converged_max(
        bonds in 3usize..10,
        seed in 0u64..1000,
        rate_off in 0usize..40,
        frac in 0.05f64..0.9,
        eps in 0.02f64..1.0,
    ) {
        let rate = 0.045 + rate_off as f64 * 0.001;
        let query = Query::Max { epsilon: eps };
        if let Some((converged, partial)) = run_pair(bonds, seed, rate, frac, query) {
            // The footnote-9 envelope [max L, max H] always contains the
            // true maximum, and the converged winner's midpoint is within
            // half its width of that true maximum.
            let mid = 0.5 * (converged.lo() + converged.hi());
            let slack = 0.5 * converged.width() + 1e-9;
            prop_assert!(
                partial.lo() - slack <= mid && mid <= partial.hi() + slack,
                "envelope {} must bracket the converged max {} (± {})",
                partial, mid, slack
            );
        }
    }

    #[test]
    fn partial_percentile_bounds_contain_the_converged_quantile(
        bonds in 3usize..10,
        seed in 0u64..1000,
        rate_off in 0usize..40,
        frac in 0.05f64..0.9,
        eps in 0.02f64..1.0,
        phi in 0.05f64..0.95,
    ) {
        let rate = 0.045 + rate_off as f64 * 0.001;
        let query = Query::Percentile { phi, epsilon: eps };
        if let Some((converged, partial)) = run_pair(bonds, seed, rate, frac, query) {
            // The rank-k bracket [k-th largest L, k-th largest H] always
            // contains the true rank-k value; the converged interval's
            // midpoint is within half its width of that value.
            let mid = 0.5 * (converged.lo() + converged.hi());
            let slack = 0.5 * converged.width() + 1e-9;
            prop_assert!(
                partial.lo() - slack <= mid && mid <= partial.hi() + slack,
                "rank bracket {} must contain the converged quantile {} (± {})",
                partial, mid, slack
            );
        }
    }
}
