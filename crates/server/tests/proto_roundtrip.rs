//! Protocol round-trip properties.
//!
//! Two contracts pinned over random inputs:
//!
//! 1. **Requests.** [`proto::render_request`] composed with
//!    [`proto::parse_request`] is the identity on every [`Request`] variant
//!    — including the `RESUME` request the persistence layer added — for
//!    every query kind, every comparison operator, present and omitted SUM
//!    weights, and arbitrary finite numeric payloads. The wire format is
//!    `f64::Display`, whose shortest-round-trip guarantee makes the
//!    composition exact (bit-identical floats), not merely approximate.
//! 2. **Responses.** Every response builder in `proto` emits one line of
//!    valid protocol JSON whose tagged fields parse back to the values that
//!    went in — `SUBSCRIBED`, `UNSUBSCRIBED`, `RESUMED` (with and without a
//!    final/partial answer), `RESULT` in both statuses over every output
//!    shape, `TICK_DONE`, `ERROR` (with escaping), and `BYE`.

use std::time::Duration;

use proptest::prelude::*;

use va_server::json::Json;
use va_server::proto::{self, RelationSpec, Request, WireBond, WireQuery};
use va_server::{
    Answer, RelationId, Server, ServerConfig, Session, SessionId, TickResult, DEFAULT_RELATION,
};
use va_stream::{BondRelation, IterHistogram, Query, QueryOutput, TickStats};
use vao::cost::WorkBreakdown;
use vao::ops::selection::CmpOp;
use vao::Bounds;

fn cmp_op(sel: u32) -> CmpOp {
    match sel % 4 {
        0 => CmpOp::Gt,
        1 => CmpOp::Ge,
        2 => CmpOp::Lt,
        _ => CmpOp::Le,
    }
}

#[allow(clippy::too_many_arguments)]
fn wire_query(
    kind: u32,
    op: u32,
    constant: f64,
    slack: u32,
    epsilon: f64,
    k: u32,
    weights: &[f64],
) -> WireQuery {
    match kind % 7 {
        0 => WireQuery::Selection {
            op: cmp_op(op),
            constant,
        },
        1 => WireQuery::Count {
            op: cmp_op(op),
            constant,
            slack: slack as usize,
        },
        2 => WireQuery::Sum {
            weights: None,
            epsilon,
        },
        3 => WireQuery::Sum {
            weights: Some(weights.to_vec()),
            epsilon,
        },
        4 => WireQuery::Ave { epsilon },
        5 => WireQuery::Max { epsilon },
        _ => WireQuery::TopK {
            k: k as usize,
            epsilon,
        },
    }
}

fn output(shape: u32, lo: f64, hi: f64, ids: &[u32]) -> QueryOutput {
    let bounds = Bounds::new(lo.min(hi), lo.max(hi));
    match shape % 5 {
        0 => QueryOutput::Selected(ids.to_vec()),
        1 => QueryOutput::Extreme {
            bond_id: ids.first().copied().unwrap_or(7),
            bounds,
            ties: ids.to_vec(),
        },
        2 => QueryOutput::Aggregate { bounds },
        3 => QueryOutput::Ranked {
            members: ids.iter().map(|&i| (i, bounds)).collect(),
            ties: ids.to_vec(),
        },
        _ => QueryOutput::Count {
            lo: ids.len(),
            hi: ids.len() + ids.first().copied().unwrap_or(0) as usize,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// render ∘ parse = id over every request variant and query kind.
    #[test]
    fn every_request_variant_round_trips(
        (variant, kind, op) in (any::<u32>(), any::<u32>(), any::<u32>()),
        (constant, epsilon) in (-500.0f64..500.0, 0.001f64..100.0),
        (slack, k, priority) in (0u32..100, 1u32..50, any::<u32>()),
        // JSON numbers ride as f64, which is exact only up to 2^53 — the
        // protocol never issues ids anywhere near that, and the parser
        // would rightly reject an unrepresentable one.
        session in 0u64..1_000_000_000_000,
        weights in prop::collection::vec(-2.0f64..2.0, 0..6),
        rates in prop::collection::vec(0.0f64..0.2, 1..5),
    ) {
        // Exercise all three relation-addressing modes: omitted (connection
        // `USE` selection), the bootstrap default, and an arbitrary tenant.
        let relation = match op % 3 {
            0 => None,
            1 => Some(DEFAULT_RELATION.to_string()),
            _ => Some(format!("tenant-{}", op % 97)),
        };
        let bond = WireBond {
            coupon: epsilon / 100.0,
            maturity: 1.0 + constant.abs(),
            face: 100.0 + constant.abs(),
        };
        let req = match variant % 13 {
            0 => Request::Subscribe {
                relation: relation.clone(),
                query: wire_query(kind, op, constant, slack, epsilon, k, &weights),
                priority,
            },
            1 => Request::Unsubscribe { relation, session },
            2 => Request::Resume { relation, session },
            3 => Request::Tick { relation, rate: rates[0] },
            4 => Request::Ticks { relation, rates: rates.clone() },
            5 => Request::TickMulti {
                ticks: rates
                    .iter()
                    .enumerate()
                    .map(|(i, &r)| (format!("t{i}"), r))
                    .collect(),
            },
            6 => Request::Stats { relation },
            7 => Request::CreateRelation {
                name: format!("seeded-{}", kind % 9),
                spec: RelationSpec::Seeded { seed: session, count: k as u64 },
            },
            8 => Request::CreateRelation {
                name: format!("explicit-{}", kind % 9),
                spec: RelationSpec::Bonds(vec![bond; 1 + (slack as usize % 4)]),
            },
            9 => Request::DropRelation { name: format!("doomed-{}", kind % 9) },
            10 => Request::AddBond { relation, bond },
            11 => Request::Use { name: format!("tenant-{}", kind % 9) },
            _ => match variant % 2 {
                0 => Request::Relations,
                _ => Request::Quit,
            },
        };
        let line = proto::render_request(&req);
        prop_assert!(!line.contains('\n'), "one request, one line: {}", line);
        let parsed = proto::parse_request(&line);
        prop_assert!(parsed.is_ok(), "{}: {:?}", line, parsed);
        prop_assert_eq!(parsed.unwrap(), req, "round trip drifted: {}", line);
    }

    /// Every response builder emits one parseable JSON line whose tagged
    /// fields carry the input values back out.
    #[test]
    fn every_response_variant_is_faithful_protocol_json(
        (session, tick) in (0u64..1_000_000_000_000, 0u64..1_000_000_000_000),
        (rate, lo, hi) in (0.0f64..0.2, -300.0f64..300.0, -300.0f64..300.0),
        (shape, priority, answer_sel) in (any::<u32>(), 1u32..9, any::<u32>()),
        (finals, partials) in (0u64..1000, 0u64..1000),
        ids in prop::collection::vec(0u32..500, 0..6),
        message_salt in any::<u64>(),
    ) {
        let field = |line: &str, name: &str| -> Json {
            let doc = Json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            doc.get(name).unwrap_or_else(|| panic!("{line}: no {name}")).clone()
        };
        let typed = |line: &str, expect: &str| {
            let t = field(line, "type");
            assert_eq!(t.as_str(), Some(expect), "{line}");
        };

        // Every response echoes the resolved relation; use a name that
        // needs escaping to pin the escape path too.
        let relation = format!("rel-{}-\"q\"", message_salt % 7);
        let echoes_relation = |line: &str| {
            assert_eq!(
                field(line, "relation").as_str(),
                Some(relation.as_str()),
                "{line}"
            );
        };

        // SUBSCRIBED / UNSUBSCRIBED / BYE.
        let line = proto::subscribed(&relation, SessionId(session));
        typed(&line, "SUBSCRIBED");
        echoes_relation(&line);
        prop_assert_eq!(field(&line, "session").as_u64(), Some(session));
        let line = proto::unsubscribed(&relation, session);
        typed(&line, "UNSUBSCRIBED");
        echoes_relation(&line);
        prop_assert_eq!(field(&line, "session").as_u64(), Some(session));
        typed(&proto::bye(), "BYE");

        // Catalog responses: CREATED / DROPPED / BOND_ADDED / USING.
        let line = proto::created(&relation, session % 1000, ids.len());
        typed(&line, "CREATED");
        echoes_relation(&line);
        prop_assert_eq!(field(&line, "id").as_u64(), Some(session % 1000));
        prop_assert_eq!(field(&line, "bonds").as_u64(), Some(ids.len() as u64));
        let line = proto::dropped(&relation, session % 1000);
        typed(&line, "DROPPED");
        echoes_relation(&line);
        let line = proto::bond_added(&relation, ids.first().copied().unwrap_or(3), ids.len());
        typed(&line, "BOND_ADDED");
        echoes_relation(&line);
        let line = proto::using(&relation);
        typed(&line, "USING");
        echoes_relation(&line);

        // ERROR escapes quotes, backslashes and newlines losslessly.
        let message = format!("fail {message_salt} \"quoted\\path\"\nsecond line");
        let line = proto::error(&message);
        typed(&line, "ERROR");
        prop_assert!(!line.contains('\n'));
        let echoed = field(&line, "message");
        prop_assert_eq!(echoed.as_str(), Some(message.as_str()));

        // RESULT, both statuses, over a random output shape.
        let out = output(shape, lo, hi, &ids);
        let line = proto::result(
            &relation,
            tick,
            rate,
            SessionId(session),
            &Answer::Final(out.clone()),
        );
        typed(&line, "RESULT");
        echoes_relation(&line);
        let status = field(&line, "status");
        prop_assert_eq!(status.as_str(), Some("final"));
        prop_assert_eq!(field(&line, "tick").as_u64(), Some(tick));
        prop_assert_eq!(field(&line, "rate").as_f64(), Some(rate));
        let shape_name = field(&line, "output").get("shape").and_then(|s| s.as_str().map(String::from));
        prop_assert_eq!(shape_name.as_deref(), Some(out.shape_name()));
        let bounds = Bounds::new(lo.min(hi), lo.max(hi));
        let line = proto::result(
            &relation,
            tick,
            rate,
            SessionId(session),
            &Answer::Partial { bounds },
        );
        let status = field(&line, "status");
        prop_assert_eq!(status.as_str(), Some("partial"));
        prop_assert_eq!(
            field(&line, "bounds").get("lo").and_then(|v| v.as_f64()),
            Some(bounds.lo()),
            "partial bounds survive the wire bit-for-bit"
        );

        // RESUMED: registration + counters, with and without an answer.
        let sess = Session {
            id: SessionId(session),
            query: Query::Max { epsilon: 0.5 },
            priority,
            finals,
            partials,
            driven_iterations: finals + partials,
        };
        let line = proto::resumed(&relation, &sess, tick, None);
        typed(&line, "RESUMED");
        echoes_relation(&line);
        prop_assert_eq!(field(&line, "finals").as_u64(), Some(finals));
        prop_assert_eq!(field(&line, "partials").as_u64(), Some(partials));
        let operator = field(&line, "operator");
        prop_assert_eq!(operator.as_str(), Some("max"));
        let answer = match answer_sel % 2 {
            0 => Answer::Final(out),
            _ => Answer::Partial { bounds },
        };
        let line = proto::resumed(&relation, &sess, tick, Some(&answer));
        let status = field(&line, "answer").get("status").and_then(|s| s.as_str().map(String::from));
        prop_assert_eq!(
            status.as_deref(),
            Some(if matches!(answer, Answer::Final(_)) { "final" } else { "partial" })
        );

        // TICK_DONE totals the work breakdown that went in.
        let work = WorkBreakdown {
            exec_iter: finals,
            get_state: partials,
            store_state: session % 97,
            choose_iter: tick % 89,
        };
        let res = TickResult {
            relation: RelationId(1 + session % 31),
            tick,
            rate,
            answers: Vec::new(),
            stats: TickStats {
                rate,
                work,
                wall: Duration::ZERO,
                iterations: finals + partials,
                operator: "shared_pool",
                objects: ids.len() as u64,
                iter_histogram: IterHistogram::default(),
                cpu_est: Default::default(),
            },
            budget_exhausted: answer_sel % 2 == 0,
        };
        let line = proto::tick_done(&relation, &res, session % 11);
        typed(&line, "TICK_DONE");
        echoes_relation(&line);
        prop_assert_eq!(field(&line, "work_units").as_u64(), Some(work.total()));
        prop_assert_eq!(field(&line, "iterations").as_u64(), Some(finals + partials));
        prop_assert_eq!(field(&line, "shed").as_u64(), Some(session % 11));
    }
}

/// `STATS` needs a live server: drive one tick and check the line reports
/// the real counters.
#[test]
fn stats_line_reports_live_counters() {
    use bondlab::{BondPricer, BondUniverse};
    let relation = BondRelation::from_universe(&BondUniverse::generate(8, 7));
    let mut srv = Server::new(BondPricer::default(), relation, ServerConfig::default());
    srv.subscribe(Query::Max { epsilon: 1.0 }, 2)
        .expect("subscribe");
    let res = srv.tick(0.0583).expect("tick");

    let line = proto::stats(&srv, DEFAULT_RELATION);
    let doc = Json::parse(&line).expect("stats is valid JSON");
    assert_eq!(doc.get("type").and_then(Json::as_str), Some("STATS"));
    assert_eq!(
        doc.get("relation").and_then(Json::as_str),
        Some(DEFAULT_RELATION)
    );
    assert_eq!(doc.get("ticks").and_then(Json::as_u64), Some(1));
    assert_eq!(
        doc.get("work_units").and_then(Json::as_u64),
        Some(res.stats.total_work())
    );
    let sessions = doc.get("sessions").and_then(Json::as_array).expect("rows");
    assert_eq!(sessions.len(), 1);
    assert_eq!(sessions[0].get("session").and_then(Json::as_u64), Some(1));
    assert_eq!(
        sessions[0].get("operator").and_then(Json::as_str),
        Some("max")
    );
}
