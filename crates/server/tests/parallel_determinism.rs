//! Batched-scheduler determinism and budget accounting.
//!
//! Three guarantees pinned here:
//!
//! 1. **Serial equivalence.** `workers = 1` (the default config) must
//!    reproduce the historical single-choice greedy schedule *exactly* —
//!    asserted against golden iteration counts, per-component work units
//!    and answer digests captured from the pre-batching scheduler on the
//!    8-query workload.
//! 2. **Worker invariance.** For a fixed batch size, the worker count must
//!    not change anything observable: answers, work breakdown, iteration
//!    count and the round trace are bit-identical between `workers = 1`
//!    and `workers = 4`. Threads only execute an already-chosen batch.
//! 3. **Budget accounting.** The tick meter's post-invocation total equals
//!    the sum of per-round `RoundRecord::work` charges, and the admitted
//!    counts sum to the scheduler's iteration count — every unit the
//!    batched rounds charge is visible in the round trace.

use bondlab::{BondPricer, BondUniverse};
use va_server::{Answer, Server, ServerConfig, ServerError};
use va_stream::{BondRelation, Query, QueryOutput};
use vao::ops::selection::CmpOp;
use vao::trace::{Recorder, TraceEvent};

const SEED: u64 = 1994;
const RATE: f64 = 0.0583;

/// The bench harness's 8-query server workload (two sessions per §5
/// benefit family), inlined so this test doesn't depend on va-bench.
fn workload(n: usize) -> Vec<Query> {
    let k = 5.min(n).max(1);
    vec![
        Query::Max { epsilon: 1.0 },
        Query::Sum {
            weights: vec![1.0; n],
            epsilon: 50.0,
        },
        Query::Selection {
            op: CmpOp::Gt,
            constant: 100.0,
        },
        Query::Min { epsilon: 1.0 },
        Query::TopK { k, epsilon: 1.0 },
        Query::Count {
            op: CmpOp::Gt,
            constant: 100.0,
            slack: 25,
        },
        Query::Max { epsilon: 0.5 },
        Query::Sum {
            weights: vec![1.0; n],
            epsilon: 60.0,
        },
    ]
}

fn server(bonds: usize, config: ServerConfig) -> Server {
    let relation = BondRelation::from_universe(&BondUniverse::generate(bonds, SEED));
    let mut srv = Server::new(BondPricer::default(), relation, config);
    for q in workload(bonds) {
        srv.subscribe(q, 1).expect("subscribe");
    }
    srv
}

fn digest(out: &QueryOutput) -> String {
    match out {
        QueryOutput::Selected(ids) => {
            format!("selected n={} sum={}", ids.len(), ids.iter().sum::<u32>())
        }
        QueryOutput::Count { lo, hi } => format!("count [{lo},{hi}]"),
        QueryOutput::Aggregate { bounds } => {
            format!("agg [{:.17e},{:.17e}]", bounds.lo(), bounds.hi())
        }
        QueryOutput::Extreme {
            bond_id, bounds, ..
        } => format!("ext {bond_id} [{:.17e},{:.17e}]", bounds.lo(), bounds.hi()),
        QueryOutput::Ranked { members, ties } => format!(
            "ranked n={} first={} ties={}",
            members.len(),
            members.first().map(|m| m.0).unwrap_or(0),
            ties.len()
        ),
        QueryOutput::Heavy { cells, ties } => format!(
            "heavy n={} first={} ties={}",
            cells.len(),
            cells.first().map(|c| c.cell).unwrap_or(0),
            ties.len()
        ),
    }
}

/// Golden regression: the batched scheduler at `workers = 1` is the serial
/// scheduler. Every number here was captured from the pre-batching
/// implementation on the same workload (48 bonds, seed 1994, rate 0.0583).
#[test]
fn workers_one_reproduces_the_serial_schedule_exactly() {
    let mut srv = server(48, ServerConfig::default());
    assert_eq!(srv.config().workers, 1, "serial is the default");
    let res = srv.tick(RATE).expect("tick");

    assert_eq!(res.stats.iterations, 319);
    assert_eq!(res.stats.work.exec_iter, 921_088);
    assert_eq!(res.stats.work.get_state, 48);
    assert_eq!(res.stats.work.store_state, 415);
    assert_eq!(res.stats.work.choose_iter, 13_937);
    assert_eq!(res.stats.total_work(), 935_488);

    let digests: Vec<String> = res
        .answers
        .iter()
        .map(|(_, a)| digest(a.final_output().expect("final")))
        .collect();
    assert_eq!(
        digests,
        [
            "ext 45 [1.23318127050003099e2,1.23566607748983657e2]",
            "agg [5.13253865431830673e3,5.17484783090893052e3]",
            "selected n=37 sum=801",
            "ext 9 [8.88010145651998641e1,8.88567968443305318e1]",
            "ranked n=5 first=45 ties=0",
            "count [37,37]",
            "ext 45 [1.23318127050003099e2,1.23566607748983657e2]",
            "agg [5.13253865431830673e3,5.17484783090893052e3]",
        ]
    );

    // Budgeted at half the converged cost: same golden degradation.
    let mut capped = server(48, ServerConfig::budgeted(935_488 / 2));
    let capped_res = capped.tick(RATE).expect("budgeted tick");
    assert!(capped_res.budget_exhausted);
    assert_eq!(capped_res.stats.iterations, 307);
    assert_eq!(capped_res.stats.total_work(), 466_168);
}

/// For a fixed batch, the worker count changes *who executes* the batch,
/// never what was chosen: answers, accounting and the round trace are
/// bit-identical between one worker and four.
#[test]
fn worker_count_never_changes_results() {
    let batched = |workers: usize| ServerConfig {
        workers,
        batch: Some(4),
        ..ServerConfig::default()
    };
    let mut serial = server(48, batched(1));
    let mut fanned = server(48, batched(4));
    let mut rec1 = Recorder::new();
    let mut rec4 = Recorder::new();
    let res1 = serial.tick_with_observer(RATE, &mut rec1).expect("tick");
    let res4 = fanned.tick_with_observer(RATE, &mut rec4).expect("tick");

    assert_eq!(res1.answers, res4.answers, "answers are worker-invariant");
    assert_eq!(res1.stats.work, res4.stats.work);
    assert_eq!(res1.stats.iterations, res4.stats.iterations);
    assert_eq!(res1.budget_exhausted, res4.budget_exhausted);
    assert_eq!(rec1.rounds(), rec4.rounds(), "round traces match");
    // The full event streams (choices, iterations, rounds) line up too.
    assert_eq!(rec1.events().len(), rec4.events().len());
    for (a, b) in rec1.events().iter().zip(rec4.events()) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

/// The SoA lane solver is purely a throughput choice: with the same round
/// batch, `batch_solver: true` (shape-grouped lockstep sweeps) and
/// `batch_solver: false` (per-object scalar solves) produce bit-identical
/// answers, work accounting, and event traces.
#[test]
fn batched_solver_matches_scalar_answers() {
    let cfg = |batch_solver: bool| ServerConfig {
        batch: Some(8),
        batch_solver,
        ..ServerConfig::default()
    };
    let mut lanes = server(24, cfg(true));
    let mut scalar = server(24, cfg(false));
    let mut rec_l = Recorder::new();
    let mut rec_s = Recorder::new();
    let res_l = lanes.tick_with_observer(RATE, &mut rec_l).expect("tick");
    let res_s = scalar.tick_with_observer(RATE, &mut rec_s).expect("tick");

    assert_eq!(res_l.answers, res_s.answers, "answers are solver-invariant");
    assert_eq!(res_l.stats.work, res_s.stats.work);
    assert_eq!(res_l.stats.iterations, res_s.stats.iterations);
    assert_eq!(res_l.budget_exhausted, res_s.budget_exhausted);
    assert_eq!(rec_l.events().len(), rec_s.events().len());
    for (a, b) in rec_l.events().iter().zip(rec_s.events()) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    // And the lane solver composes with threaded execution: a 4-worker
    // batched run matches the single-worker batched run exactly.
    let mut fanned = server(
        24,
        ServerConfig {
            workers: 4,
            ..cfg(true)
        },
    );
    let res_f = fanned.tick(RATE).expect("tick");
    assert_eq!(res_l.answers, res_f.answers);
    assert_eq!(res_l.stats.work, res_f.stats.work);
}

/// Budgeted parallel ticks degrade soundly: every Partial interval from a
/// `workers = 4` run brackets the Final value the unbudgeted run (any
/// worker count — they agree) converged to.
#[test]
fn parallel_partials_bracket_serial_finals() {
    let mut full = server(48, ServerConfig::default());
    let full_res = full.tick(RATE).expect("tick");

    let capped_cfg = ServerConfig {
        workers: 4,
        batch: Some(4),
        ..ServerConfig::budgeted(full_res.stats.total_work() / 2)
    };
    let mut capped = server(48, capped_cfg);
    let capped_res = capped.tick(RATE).expect("budgeted tick");
    assert!(capped_res.budget_exhausted);

    let mut partials = 0;
    for ((_, full_ans), (_, capped_ans)) in full_res.answers.iter().zip(&capped_res.answers) {
        let Answer::Partial { bounds } = capped_ans else {
            continue;
        };
        partials += 1;
        let converged = match full_ans.final_output().expect("final") {
            QueryOutput::Aggregate { bounds } | QueryOutput::Extreme { bounds, .. } => *bounds,
            QueryOutput::Count { lo, hi } => vao::Bounds::new(*lo as f64, *hi as f64),
            // A Selection partial is a resolved-membership count interval;
            // it must bracket the converged member count.
            QueryOutput::Selected(ids) => vao::Bounds::new(ids.len() as f64, ids.len() as f64),
            // A TopK partial bounds the k-th value, which the Ranked output
            // doesn't expose directly — nothing to compare against here;
            // likewise a Heavy partial bounds the k-th cell count.
            QueryOutput::Ranked { .. } | QueryOutput::Heavy { .. } => continue,
        };
        let mid = 0.5 * (converged.lo() + converged.hi());
        let slack = 0.5 * converged.width() + 1e-9;
        assert!(
            bounds.lo() - slack <= mid && mid <= bounds.hi() + slack,
            "partial {bounds} must bracket converged {mid}"
        );
    }
    assert!(partials > 0, "half budget must degrade someone");
}

/// Every work unit the scheduler spends is accounted to exactly one round:
/// the sum of per-round charges equals the post-invocation meter total,
/// and admitted counts sum to the iteration count.
#[test]
fn meter_total_is_the_sum_of_round_charges() {
    for (workers, batch) in [(1, None), (4, Some(4)), (2, Some(8))] {
        let cfg = ServerConfig {
            workers,
            batch,
            ..ServerConfig::default()
        };
        let mut srv = server(48, cfg);
        let mut rec = Recorder::new();
        let res = srv.tick_with_observer(RATE, &mut rec).expect("tick");

        let rounds = rec.rounds();
        assert!(!rounds.is_empty());
        let round_work: u64 = rounds.iter().map(|r| r.work).sum();
        let admitted: u64 = rounds.iter().map(|r| r.admitted as u64).sum();
        let sched_work = rec
            .events()
            .iter()
            .find_map(|e| match e {
                TraceEvent::OperatorEnd(end) => Some(end.work.total()),
                _ => None,
            })
            .expect("operator_end event");

        assert_eq!(
            round_work, sched_work,
            "workers={workers} batch={batch:?}: rounds account for all scheduler work"
        );
        assert_eq!(admitted, res.stats.iterations);
        for r in &rounds {
            assert!(r.admitted <= r.selected && r.selected <= r.candidates);
            assert!(r.admitted >= 1, "an executed round admitted something");
        }
        // Rounds are numbered 1..=N in order.
        for (i, r) in rounds.iter().enumerate() {
            assert_eq!(r.round, i as u64 + 1);
        }
    }
}

/// A zero-bond relation yields typed errors on the SUBSCRIBE-then-TICK
/// path — never a panic out of the demand/answer code.
#[test]
fn empty_relation_subscribe_then_tick_is_a_typed_error() {
    let relation = BondRelation::from_universe(&BondUniverse::generate(0, SEED));
    let mut srv = Server::new(BondPricer::default(), relation, ServerConfig::default());
    assert!(srv.relation().bonds().is_empty());
    assert_eq!(
        srv.subscribe(Query::Max { epsilon: 0.5 }, 1).unwrap_err(),
        ServerError::EmptyRelation
    );
    // Even with the subscribe rejected, a TICK must fail cleanly too.
    assert_eq!(srv.tick(RATE).unwrap_err(), ServerError::EmptyRelation);
    assert_eq!(srv.ticks(), 0, "failed tick is not counted");
}
