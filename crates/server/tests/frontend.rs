//! Multi-client integration tests for the nonblocking front-end: many
//! concurrent subscribers over real loopback sockets against one
//! deterministic server, compared byte-for-byte to a serial golden run.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bondlab::{BondPricer, BondUniverse, RateSeries};
use va_server::{net::FrontEnd, proto, FrontEndStats, Server, ServerConfig, SessionId};
use va_stream::{BondRelation, Query};

const BONDS: usize = 12;
const SEED: u64 = 1994;

fn fresh_server() -> Server {
    let universe = BondUniverse::generate(BONDS, SEED);
    let relation = BondRelation::from_universe(&universe);
    Server::new(BondPricer::default(), relation, ServerConfig::default())
}

/// A front-end serving a fresh server on an ephemeral port, on its own
/// thread, until [`Harness::stop`].
struct Harness {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<(Server, FrontEndStats)>,
}

impl Harness {
    fn spawn() -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut server = fresh_server();
            let mut front = FrontEnd::default();
            front
                .run(&listener, &mut server, &flag)
                .expect("readiness loop");
            (server, front.stats())
        });
        Self { addr, stop, handle }
    }

    fn stop(self) -> (Server, FrontEndStats) {
        self.stop.store(true, Ordering::SeqCst);
        self.handle.join().expect("front-end thread")
    }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        Self {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("write request");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read reply");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    fn subscribe_max(&mut self) -> u64 {
        self.send(r#"{"type":"SUBSCRIBE","query":{"kind":"max","epsilon":0.05}}"#);
        let reply = self.recv();
        assert!(reply.contains("\"type\":\"SUBSCRIBED\""), "{reply}");
        let tail = reply.split("\"session\":").nth(1).expect("session field");
        tail.trim_end_matches('}').parse().expect("session id")
    }
}

/// The serial golden run: the same subscription/tick sequence as the wire
/// test, driven in-process, rendered to protocol lines with the same
/// serializers the front-end composes from.
struct Golden {
    server: Server,
}

impl Golden {
    fn new() -> Self {
        Self {
            server: fresh_server(),
        }
    }

    fn subscribe_max(&mut self) -> SessionId {
        self.server
            .subscribe(Query::Max { epsilon: 0.05 }, 1)
            .expect("golden subscribe")
    }

    /// Ticks once and returns (per-session RESULT lines, TICK_DONE line).
    fn tick(&mut self, rate: f64) -> (Vec<(SessionId, String)>, String) {
        let res = self.server.tick(rate).expect("golden tick");
        let lines = res
            .answers
            .iter()
            .map(|(id, a)| {
                let line = proto::result(va_server::DEFAULT_RELATION, res.tick, res.rate, *id, a);
                (*id, line)
            })
            .collect();
        let done = proto::tick_done(va_server::DEFAULT_RELATION, &res, self.server.shed_ticks());
        (lines, done)
    }
}

#[test]
fn many_subscribers_get_bit_identical_broadcasts() {
    let harness = Harness::spawn();
    let rates: Vec<f64> = RateSeries::january_1994().daily_opens()[..8].to_vec();

    // Five clients subscribe the same query shape, in a fixed order so the
    // golden run can mirror the session ids.
    let mut clients: Vec<Client> = Vec::new();
    let mut sessions: Vec<u64> = Vec::new();
    for _ in 0..5 {
        let mut c = Client::connect(harness.addr);
        sessions.push(c.subscribe_max());
        clients.push(c);
    }
    assert_eq!(sessions, vec![1, 2, 3, 4, 5]);

    let mut golden = Golden::new();
    for _ in 0..5 {
        golden.subscribe_max();
    }

    // First half of the stream: client 0 drives, everyone receives.
    for &rate in &rates[..4] {
        let (expected, expected_done) = golden.tick(rate);
        clients[0].send(&format!("{{\"type\":\"TICK\",\"rate\":{rate}}}"));
        for (ci, client) in clients.iter_mut().enumerate() {
            let line = client.recv();
            let want = &expected[ci].1;
            assert_eq!(&line, want, "client {ci} diverged from the golden run");
        }
        assert_eq!(clients[0].recv(), expected_done, "driver's trailer");
    }

    // One client hangs up mid-stream (no QUIT — the rude way), and a new
    // one connects between ticks and subscribes the same shape.
    let dropped = clients.remove(2);
    drop(dropped);
    let mut late = Client::connect(harness.addr);
    assert_eq!(late.subscribe_max(), 6);
    golden.subscribe_max();
    clients.push(late);

    for &rate in &rates[4..] {
        let (expected, expected_done) = golden.tick(rate);
        clients[0].send(&format!("{{\"type\":\"TICK\",\"rate\":{rate}}}"));
        // Clients 0,1 hold sessions 1,2; the survivors after the removal
        // hold 4,5; the late joiner holds 6. Session 3's answers still
        // exist in the golden run but have no attached connection.
        let held = [0usize, 1, 3, 4, 5];
        for (client, &gi) in clients.iter_mut().zip(&held) {
            let line = client.recv();
            let want = &expected[gi].1;
            assert_eq!(&line, want, "post-churn divergence (golden row {gi})");
        }
        assert_eq!(clients[0].recv(), expected_done);
    }

    let (server, stats) = harness.stop();
    assert_eq!(server.ticks(), rates.len() as u64);
    assert_eq!(server.sessions().len(), 6, "sessions survive disconnects");
    // The whole point of shape-grouped fan-out: one serialized payload per
    // tick served every subscriber on the shape.
    assert!(
        stats.payloads_serialized < stats.results_delivered,
        "expected payload sharing: {stats:?}"
    );
    assert_eq!(stats.accepted, 6);
}

#[test]
fn dead_client_mid_tick_keeps_the_listener_serving() {
    let harness = Harness::spawn();
    let mut driver = Client::connect(harness.addr);
    driver.subscribe_max();

    // A second subscriber vanishes without ceremony.
    let mut doomed = Client::connect(harness.addr);
    doomed.subscribe_max();
    drop(doomed);

    // The tick still completes for the surviving client...
    driver.send(r#"{"type":"TICK","rate":0.0583}"#);
    let result = driver.recv();
    assert!(result.contains("\"type\":\"RESULT\""), "{result}");
    assert!(driver.recv().contains("\"type\":\"TICK_DONE\""));

    // ...and the accept loop is still alive for new clients.
    let mut fresh = Client::connect(harness.addr);
    assert_eq!(fresh.subscribe_max(), 3);

    let (server, stats) = harness.stop();
    assert_eq!(server.ticks(), 1);
    assert_eq!(stats.accepted, 3);
}

#[test]
fn wedged_client_neither_stalls_ticks_nor_kills_accepts() {
    let harness = Harness::spawn();
    let mut driver = Client::connect(harness.addr);
    driver.subscribe_max();

    // The wedge: subscribed to the same shape, sends half a request line,
    // then never reads and never finishes writing.
    let mut wedge = Client::connect(harness.addr);
    wedge.subscribe_max();
    wedge
        .writer
        .write_all(b"{\"type\":\"TICK\",")
        .expect("partial write");

    // The driver's ticks keep flowing while the wedge sits there.
    for i in 1..=3u64 {
        driver.send(r#"{"type":"TICK","rate":0.0583}"#);
        assert!(driver.recv().contains("\"type\":\"RESULT\""));
        let done = driver.recv();
        assert!(done.contains(&format!("\"tick\":{i}")), "{done}");
    }

    // And new clients still get in past it.
    let mut fresh = Client::connect(harness.addr);
    assert_eq!(fresh.subscribe_max(), 3);

    let (server, _) = harness.stop();
    assert_eq!(server.ticks(), 3);
}

#[test]
fn quit_is_scoped_to_the_issuing_connection() {
    let harness = Harness::spawn();
    let mut stayer = Client::connect(harness.addr);
    stayer.subscribe_max();

    let mut quitter = Client::connect(harness.addr);
    let quit_session = quitter.subscribe_max();
    quitter.send(r#"{"type":"QUIT"}"#);
    assert!(quitter.recv().contains("\"type\":\"BYE\""));

    // The server — and the other client — are unaffected.
    stayer.send(r#"{"type":"TICK","rate":0.0583}"#);
    assert!(stayer.recv().contains("\"type\":\"RESULT\""));
    assert!(stayer.recv().contains("\"type\":\"TICK_DONE\""));

    // The quitter's session outlives its connection and can be resumed
    // elsewhere (the reconnect story QUIT used to break by flushing and
    // shutting down shared durable state).
    stayer.send(&format!(
        "{{\"type\":\"RESUME\",\"session\":{quit_session}}}"
    ));
    let resumed = stayer.recv();
    assert!(resumed.contains("\"type\":\"RESUMED\""), "{resumed}");
    assert!(resumed.contains("\"status\":\"final\""), "{resumed}");

    let (server, stats) = harness.stop();
    assert_eq!(server.ticks(), 1);
    assert_eq!(server.sessions().len(), 2);
    assert!(stats.closed >= 1);
}
