//! Experiment harness: regenerates every table and figure of §6.
//!
//! ```text
//! harness [--bonds N] [--seed S] [--out DIR] [--trace PATH] \
//!         [fig8|fig9|fig10|fig11|fig12|max-table|ablations|all]
//! ```
//!
//! Prints each artifact as an aligned table and writes a CSV per artifact
//! into the output directory (default `results/`). With `--trace PATH`, the
//! Figure-8/9 sweeps and the §6.2 MAX table additionally dump their full
//! execution-event streams (strategy choices, per-iteration bound
//! trajectories, est-vs-actual CPU) as JSON Lines to `PATH` — schema in
//! `docs/OBSERVABILITY.md`.

use std::path::PathBuf;
use std::time::Instant;

use va_bench::experiments::{
    ablation_choose_cost, ablation_choose_index, ablation_strategies, batch_scaling,
    calibration_scaling, compaction_growth, fig10_selection_stress, fig11_max_stress,
    fig12_sum_hotcold, frontend_scaling, max_table_traced, parallel_scaling, recovery_comparison,
    selection_sweep_traced, server_scaling, sketch_scaling, tenant_scaling, tick_amortization,
    CALIBRATION_TICKS, CONNECTION_COUNTS, HOT_SHARES, QUERY_COUNTS, ROUND_BATCHES, SELECTIVITIES,
    STD_DEVS, TENANT_COUNTS, TENANT_SUBSCRIPTIONS, WORKER_COUNTS,
};
use va_bench::report::{fmt_speedup, fmt_work, Table, TraceWriter};
use va_bench::Lab;
use vao::ops::hybrid::HybridChoice;
use vao::ops::selection::CmpOp;

struct Args {
    bonds: usize,
    seed: u64,
    out: PathBuf,
    trace: Option<PathBuf>,
    targets: Vec<String>,
}

fn parse_args() -> Args {
    let mut bonds = 500;
    let mut seed = 1994;
    let mut out = PathBuf::from("results");
    let mut trace = None;
    let mut targets = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bonds" => {
                bonds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--bonds needs a number");
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--out" => {
                out = PathBuf::from(it.next().expect("--out needs a path"));
            }
            "--trace" => {
                trace = Some(PathBuf::from(it.next().expect("--trace needs a path")));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: harness [--bonds N] [--seed S] [--out DIR] [--trace PATH] \
                     [fig8|fig9|fig10|fig11|fig12|max-table|ablations|ticks|server-scaling|frontend-scaling|parallel-scaling|batch-scaling|sketch-scaling|tenant-scaling|calibration-scaling|recovery|compaction|all]..."
                );
                std::process::exit(0);
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    Args {
        bonds,
        seed,
        out,
        trace,
        targets,
    }
}

fn wants(args: &Args, name: &str) -> bool {
    args.targets.iter().any(|t| t == name || t == "all")
}

fn selection_table(rows: &[va_bench::experiments::SelectivityRow]) -> Table {
    let mut t = Table::new(&[
        "selectivity",
        "constant",
        "selected",
        "vao_work",
        "trad_work",
        "speedup",
        "vao_wall_ms",
        "iterations",
        "iters_per_obj",
        "cpu_mae",
        "cpu_mape_pct",
    ]);
    for r in rows {
        t.row(vec![
            format!("{:.2}", r.selectivity),
            format!("{:.2}", r.constant),
            r.selected.to_string(),
            fmt_work(r.vao_work),
            fmt_work(r.trad_work),
            fmt_speedup(r.speedup()),
            format!("{:.1}", r.vao_wall.as_secs_f64() * 1e3),
            r.iterations().to_string(),
            format!("{:.2}", r.mean_iterations_per_object()),
            format!("{:.1}", r.cpu_est.mean_abs_error),
            format!("{:.2}", r.cpu_est.mean_abs_pct_error * 100.0),
        ]);
    }
    t
}

fn stress_table(rows: &[va_bench::experiments::StressRow]) -> Table {
    let mut t = Table::new(&["std_dev", "vao_work", "trad_work", "speedup", "vao_wall_ms"]);
    for r in rows {
        t.row(vec![
            format!("{:.2}", r.std_dev),
            fmt_work(r.vao_work),
            fmt_work(r.trad_work),
            fmt_speedup(r.speedup()),
            format!("{:.1}", r.vao_wall.as_secs_f64() * 1e3),
        ]);
    }
    t
}

fn main() {
    let args = parse_args();
    println!(
        "== VAO experiment harness: {} bonds, seed {} ==",
        args.bonds, args.seed
    );
    let mut tracer = args.trace.as_deref().map(|p| {
        println!("tracing execution events to {}", p.display());
        TraceWriter::create(p).expect("create trace file")
    });
    let t0 = Instant::now();
    let lab = Lab::new(args.bonds, args.seed);
    println!(
        "calibrated {} bonds in {:.1}s (traditional per-tick work: {})\n",
        lab.len(),
        t0.elapsed().as_secs_f64(),
        fmt_work(lab.traditional_work()),
    );

    if wants(&args, "fig8") {
        println!("-- Figure 8: selection with `>` predicate, selectivity sweep --");
        let rows = selection_sweep_traced(&lab, CmpOp::Gt, &SELECTIVITIES, tracer.as_mut());
        let t = selection_table(&rows);
        print!("{}", t.render());
        t.write_csv(&args.out.join("fig8_selection_gt.csv"))
            .expect("write csv");
        // §6.1's feasibility argument: rates arrive every 1-4 minutes; the
        // paper's traditional operator needs >100 processors to keep up
        // where the VAO needs a few. Report the implied processor ratio
        // from honest wall-clock (traditional actually re-solves).
        let (_, _, trad_wall) = lab.traditional_execute();
        let mean_vao_wall =
            rows.iter().map(|r| r.vao_wall.as_secs_f64()).sum::<f64>() / rows.len() as f64;
        println!(
            "traditional wall/tick: {:.1} ms; mean VAO wall/tick: {:.1} ms; implied processor ratio {:.0}x",
            trad_wall.as_secs_f64() * 1e3,
            mean_vao_wall * 1e3,
            trad_wall.as_secs_f64() / mean_vao_wall
        );
        println!();
    }

    if wants(&args, "fig9") {
        println!("-- Figure 9: selection with `<` predicate, selectivity sweep --");
        let rows = selection_sweep_traced(&lab, CmpOp::Lt, &SELECTIVITIES, tracer.as_mut());
        let t = selection_table(&rows);
        print!("{}", t.render());
        t.write_csv(&args.out.join("fig9_selection_lt.csv"))
            .expect("write csv");
        println!();
    }

    if wants(&args, "fig10") {
        println!("-- Figure 10: selection stress, Gaussian(mean=constant, σ) --");
        let rows = fig10_selection_stress(&lab, &STD_DEVS, args.seed);
        let t = stress_table(&rows);
        print!("{}", t.render());
        t.write_csv(&args.out.join("fig10_selection_stress.csv"))
            .expect("write csv");
        println!();
    }

    if wants(&args, "max-table") {
        println!("-- §6.2 table: MAX runtimes (Optimal / VAO / Traditional) --");
        let rows = max_table_traced(&lab, tracer.as_mut());
        let mut t = Table::new(&[
            "operator",
            "work",
            "wall_ms",
            "iterations",
            "iters_per_obj",
            "cpu_mae",
            "cpu_mape_pct",
        ]);
        for r in &rows {
            t.row(vec![
                r.operator.to_string(),
                fmt_work(r.work),
                format!("{:.1}", r.wall.as_secs_f64() * 1e3),
                r.iterations.to_string(),
                format!("{:.2}", r.mean_iterations_per_object()),
                format!("{:.1}", r.cpu_est.mean_abs_error),
                format!("{:.2}", r.cpu_est.mean_abs_pct_error * 100.0),
            ]);
        }
        print!("{}", t.render());
        let overhead =
            (rows[1].work as f64 - rows[0].work as f64) / rows[0].work.max(1) as f64 * 100.0;
        println!(
            "VAO is {:.1}% over Optimal; Traditional/VAO = {}",
            overhead,
            fmt_speedup(rows[2].work as f64 / rows[1].work.max(1) as f64)
        );
        t.write_csv(&args.out.join("max_table.csv"))
            .expect("write csv");
        println!();
    }

    if wants(&args, "fig11") {
        println!("-- Figure 11: MAX stress, lower-half Gaussian(max, σ) --");
        let rows = fig11_max_stress(&lab, &STD_DEVS, args.seed);
        let t = stress_table(&rows);
        print!("{}", t.render());
        t.write_csv(&args.out.join("fig11_max_stress.csv"))
            .expect("write csv");
        println!();
    }

    if wants(&args, "fig12") {
        println!("-- Figure 12: SUM with hot-cold weights (hot set = 10% of bonds) --");
        let rows = fig12_sum_hotcold(&lab, &HOT_SHARES, args.seed);
        let mut t = Table::new(&[
            "hot_share",
            "vao_work",
            "trad_work",
            "speedup",
            "hybrid_work",
            "hybrid_choice",
            "vao_wall_ms",
        ]);
        for r in &rows {
            t.row(vec![
                format!("{:.0}%", r.hot_share * 100.0),
                fmt_work(r.vao_work),
                fmt_work(r.trad_work),
                fmt_speedup(r.speedup()),
                fmt_work(r.hybrid_work),
                match r.hybrid_choice {
                    HybridChoice::Vao => "vao".to_string(),
                    HybridChoice::Traditional => "traditional".to_string(),
                },
                format!("{:.1}", r.vao_wall.as_secs_f64() * 1e3),
            ]);
        }
        print!("{}", t.render());
        t.write_csv(&args.out.join("fig12_sum_hotcold.csv"))
            .expect("write csv");
        println!();
    }

    if wants(&args, "ablations") {
        println!("-- Ablation: iteration strategies on MAX and SUM --");
        let rows = ablation_strategies(&lab, args.seed);
        let mut t = Table::new(&["policy", "max_work", "sum_work"]);
        for r in &rows {
            t.row(vec![
                r.policy.to_string(),
                fmt_work(r.max_work),
                fmt_work(r.sum_work),
            ]);
        }
        print!("{}", t.render());
        t.write_csv(&args.out.join("ablation_strategies.csv"))
            .expect("write csv");
        println!();

        println!("-- Ablation: chooseIter cost share vs universe size --");
        let sizes: Vec<usize> = [25usize, 50, 100, 200]
            .iter()
            .copied()
            .filter(|&s| s <= args.bonds.max(25))
            .collect();
        let rows = ablation_choose_cost(&sizes, args.seed);
        let mut t = Table::new(&["n", "total_work", "choose_work", "choose_share"]);
        for r in &rows {
            t.row(vec![
                r.n.to_string(),
                fmt_work(r.total_work),
                fmt_work(r.choose_work),
                format!("{:.5}%", r.choose_fraction() * 100.0),
            ]);
        }
        print!("{}", t.render());
        t.write_csv(&args.out.join("ablation_choose_cost.csv"))
            .expect("write csv");
        println!();

        println!("-- Ablation: scan vs heap iteration index on SUM (§5.2) --");
        let rows = ablation_choose_index(&sizes, args.seed);
        let mut t = Table::new(&["n", "scan_choose", "heap_choose", "scan_exec", "heap_exec"]);
        for r in &rows {
            t.row(vec![
                r.n.to_string(),
                fmt_work(r.scan_choose),
                fmt_work(r.heap_choose),
                fmt_work(r.scan_exec),
                fmt_work(r.heap_exec),
            ]);
        }
        print!("{}", t.render());
        t.write_csv(&args.out.join("ablation_choose_index.csv"))
            .expect("write csv");
        println!();
    }

    if wants(&args, "ticks") {
        println!("-- Extension: continuous selection over rate ticks, ± CASPER cache --");
        let rows = tick_amortization(&lab, 12, args.seed);
        let mut t = Table::new(&["tick", "rate", "vao_work", "cached_work", "cache_hits"]);
        for r in &rows {
            t.row(vec![
                r.tick.to_string(),
                format!("{:.5}", r.rate),
                fmt_work(r.vao_work),
                fmt_work(r.cached_work),
                r.cache_hits.to_string(),
            ]);
        }
        print!("{}", t.render());
        let plain: u64 = rows.iter().map(|r| r.vao_work).sum();
        let cached: u64 = rows.iter().map(|r| r.cached_work).sum();
        println!(
            "stream total: plain {} vs cached {} ({})",
            fmt_work(plain),
            fmt_work(cached),
            fmt_speedup(plain as f64 / cached.max(1) as f64)
        );
        t.write_csv(&args.out.join("ext_tick_amortization.csv"))
            .expect("write csv");
        println!();
    }

    if wants(&args, "server-scaling") {
        println!("-- Extension: va-server shared pool vs independent engines --");
        let rows = server_scaling(&lab, &QUERY_COUNTS, tracer.as_mut());
        let mut t = Table::new(&[
            "mode",
            "queries",
            "work_units",
            "work_per_query",
            "partial_answers",
        ]);
        for r in &rows {
            // Plain integers (no thousands separators) so the CSV stays
            // machine-parseable.
            t.row(vec![
                r.mode.to_string(),
                r.queries.to_string(),
                r.work_units.to_string(),
                r.work_per_query().to_string(),
                r.partial_answers.to_string(),
            ]);
        }
        print!("{}", t.render());
        for chunk in rows.chunks(3) {
            let (ind, sh) = (&chunk[0], &chunk[1]);
            println!(
                "  {} queries: shared does {} of the independent work",
                ind.queries,
                fmt_speedup(ind.work_units as f64 / sh.work_units.max(1) as f64)
            );
        }
        t.write_csv(&args.out.join("server_scaling.csv"))
            .expect("write csv");
        println!();
    }

    if wants(&args, "frontend-scaling") {
        println!("-- Extension: nonblocking front-end connection sweep --");
        let rows = frontend_scaling(&lab, &CONNECTION_COUNTS);
        let mut t = Table::new(&[
            "connections",
            "ticks",
            "results",
            "payloads",
            "p50_us",
            "p99_us",
            "max_us",
            "identical",
        ]);
        for r in &rows {
            // Plain integers so the CSV stays machine-parseable.
            t.row(vec![
                r.connections.to_string(),
                r.ticks.to_string(),
                r.results.to_string(),
                r.payloads.to_string(),
                r.p50.as_micros().to_string(),
                r.p99.as_micros().to_string(),
                r.max.as_micros().to_string(),
                r.identical.to_string(),
            ]);
        }
        print!("{}", t.render());
        for r in &rows {
            assert!(
                r.identical,
                "{} connections diverged from the serial golden run",
                r.connections
            );
        }
        if let Some(last) = rows.last() {
            println!(
                "  {} subscribers: {} RESULT lines from {} serialized payloads ({}x fan-out amortization)",
                last.connections,
                last.results,
                last.payloads,
                last.results / last.payloads.max(1)
            );
        }
        t.write_csv(&args.out.join("frontend_scaling.csv"))
            .expect("write csv");
        println!();
    }

    if wants(&args, "parallel-scaling") {
        println!("-- Extension: batched scheduler worker sweep (8 queries) --");
        let rows = parallel_scaling(&lab, &WORKER_COUNTS);
        let baseline = rows[0];
        let mut t = Table::new(&[
            "workers",
            "wall_ms",
            "speedup",
            "work_units",
            "iterations",
            "rounds",
            "matches_serial",
        ]);
        for r in &rows {
            t.row(vec![
                r.workers.to_string(),
                format!("{:.1}", r.wall.as_secs_f64() * 1e3),
                format!("{:.2}", r.speedup_over(&baseline)),
                r.work_units.to_string(),
                r.iterations.to_string(),
                r.rounds.to_string(),
                r.matches_serial.to_string(),
            ]);
        }
        print!("{}", t.render());
        println!(
            "  4-worker scheduler loop: {} over serial",
            fmt_speedup(
                rows.iter()
                    .find(|r| r.workers == 4)
                    .map(|r| r.speedup_over(&baseline))
                    .unwrap_or(1.0)
            )
        );
        t.write_csv(&args.out.join("parallel_scaling.csv"))
            .expect("write csv");
        println!();
    }

    if wants(&args, "batch-scaling") {
        println!("-- Extension: SoA batched solver vs scalar executor (8 queries) --");
        let rows = batch_scaling(&lab, &ROUND_BATCHES);
        let mut t = Table::new(&[
            "round_batch",
            "scalar_wall_ms",
            "batched_wall_ms",
            "work_units",
            "iterations",
            "scalar_tput",
            "batched_tput",
            "speedup",
            "identical",
        ]);
        for r in &rows {
            t.row(vec![
                r.round_batch.to_string(),
                format!("{:.1}", r.scalar_wall.as_secs_f64() * 1e3),
                format!("{:.1}", r.batched_wall.as_secs_f64() * 1e3),
                r.work_units.to_string(),
                r.iterations.to_string(),
                format!("{:.0}", r.scalar_throughput()),
                format!("{:.0}", r.batched_throughput()),
                format!("{:.2}", r.speedup()),
                r.identical.to_string(),
            ]);
        }
        print!("{}", t.render());
        let best = rows
            .iter()
            .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
            .expect("at least one batch size");
        println!(
            "  lane-parallel sweeps: {} work-unit throughput at batch {} (answers identical: {})",
            fmt_speedup(best.speedup()),
            best.round_batch,
            rows.iter().all(|r| r.identical)
        );
        t.write_csv(&args.out.join("batch_scaling.csv"))
            .expect("write csv");
        println!();
    }

    if wants(&args, "sketch-scaling") {
        println!("-- Extension: sketch-guided PERCENTILE vs full-relation exact quantile --");
        let rows = sketch_scaling(&lab, 0.5);
        let mut t = Table::new(&[
            "phi",
            "epsilon",
            "lo",
            "hi",
            "exact",
            "contained",
            "sketch_work",
            "exact_work",
        ]);
        for r in &rows {
            t.row(vec![
                format!("{:.2}", r.phi),
                format!("{:.2}", r.epsilon),
                format!("{:.4}", r.lo),
                format!("{:.4}", r.hi),
                format!("{:.4}", r.exact),
                r.contained.to_string(),
                r.sketch_work.to_string(),
                r.exact_work.to_string(),
            ]);
        }
        print!("{}", t.render());
        let first = rows.first().expect("at least one phi");
        println!(
            "  one shared sketch tick served {} subscriptions at {} of a single exact pass (all bounds contain exact: {})",
            rows.len(),
            fmt_speedup(first.work_ratio()),
            rows.iter().all(|r| r.contained)
        );
        t.write_csv(&args.out.join("sketch_scaling.csv"))
            .expect("write csv");
        println!();
    }

    if wants(&args, "tenant-scaling") {
        println!(
            "-- Extension: multi-relation tenancy, shared host vs isolated servers ({} subscriptions/relation) --",
            TENANT_SUBSCRIPTIONS
        );
        let rows = tenant_scaling(&lab, &TENANT_COUNTS, args.seed);
        let mut t = Table::new(&[
            "relations",
            "subscriptions",
            "shared_wall_ms",
            "isolated_wall_ms",
            "shard_speedup",
            "shared_work",
            "isolated_work",
            "budget_exhausted",
            "identical",
        ]);
        for r in &rows {
            // Plain integers so the CSV stays machine-parseable.
            t.row(vec![
                r.relations.to_string(),
                r.subscriptions.to_string(),
                format!("{:.1}", r.shared_wall.as_secs_f64() * 1e3),
                format!("{:.1}", r.isolated_wall.as_secs_f64() * 1e3),
                format!("{:.2}", r.shard_speedup()),
                r.shared_work.to_string(),
                r.isolated_work.to_string(),
                r.budget_exhausted.to_string(),
                r.identical.to_string(),
            ]);
        }
        print!("{}", t.render());
        for r in &rows {
            assert!(
                r.identical,
                "{} co-hosted relations diverged from their isolated twins",
                r.relations
            );
        }
        if let Some(last) = rows.last() {
            println!(
                "  {} relations on one host: bit-identical to {} isolated servers, {:.2}x wall-clock from sharding",
                last.relations,
                last.relations,
                last.shard_speedup()
            );
        }
        t.write_csv(&args.out.join("tenant_scaling.csv"))
            .expect("write csv");
        println!();
    }

    if wants(&args, "calibration-scaling") {
        println!(
            "-- Extension: cost calibration, budget admission error before vs after ({} ticks) --",
            CALIBRATION_TICKS
        );
        let rows = calibration_scaling(&lab, CALIBRATION_TICKS, args.seed);
        let mut t = Table::new(&[
            "tick",
            "raw_rounds",
            "raw_abs_error",
            "raw_mean_error",
            "raw_partials",
            "cal_rounds",
            "cal_abs_error",
            "cal_mean_error",
            "cal_partials",
            "observations",
            "gain_ppm",
            "off_identical",
        ]);
        for r in &rows {
            t.row(vec![
                r.tick.to_string(),
                r.raw_rounds.to_string(),
                r.raw_abs_error.to_string(),
                format!("{:.3}", r.raw_mean_error()),
                r.raw_partials.to_string(),
                r.calibrated_rounds.to_string(),
                r.calibrated_abs_error.to_string(),
                format!("{:.3}", r.calibrated_mean_error()),
                r.calibrated_partials.to_string(),
                r.observations.to_string(),
                r.gain_ppm.to_string(),
                r.off_identical.to_string(),
            ]);
        }
        print!("{}", t.render());
        for r in &rows {
            assert!(
                r.off_identical,
                "tick {}: calibrate-off replay diverged from the uncalibrated run",
                r.tick
            );
        }
        let mean = |err: u64, rounds: u64| err as f64 / rounds.max(1) as f64;
        let raw_mean = mean(
            rows.iter().map(|r| r.raw_abs_error).sum(),
            rows.iter().map(|r| r.raw_rounds).sum(),
        );
        let cal_mean = mean(
            rows.iter().map(|r| r.calibrated_abs_error).sum(),
            rows.iter().map(|r| r.calibrated_rounds).sum(),
        );
        assert!(
            cal_mean < raw_mean,
            "calibration failed to lower mean admission error: {cal_mean:.3} vs {raw_mean:.3}"
        );
        let raw_partials: u64 = rows.iter().map(|r| r.raw_partials).sum();
        let cal_partials: u64 = rows.iter().map(|r| r.calibrated_partials).sum();
        assert!(
            cal_partials <= raw_partials,
            "calibration cost answers at fixed budget: {cal_partials} vs {raw_partials} Partials"
        );
        println!(
            "  mean |estCPU - work| per round: {:.3} raw vs {:.3} calibrated ({} vs {} Partial answers)",
            raw_mean, cal_mean, raw_partials, cal_partials
        );
        t.write_csv(&args.out.join("calibration.csv"))
            .expect("write csv");
        println!();
    }

    if wants(&args, "recovery") {
        println!("-- Extension: kill-and-recover, warm restart vs cold restart --");
        let scratch =
            std::env::temp_dir().join(format!("va-bench-recovery-{}", std::process::id()));
        let rows = recovery_comparison(&lab, &scratch);
        std::fs::remove_dir_all(&scratch).ok();
        let mut t = Table::new(&["mode", "iterations", "work_units", "ratio"]);
        for r in &rows {
            t.row(vec![
                r.mode.to_string(),
                r.iterations.to_string(),
                r.work_units.to_string(),
                format!("{:.4}", r.ratio),
            ]);
        }
        print!("{}", t.render());
        println!(
            "  warm restart repeats the post-crash tick at {:.1}% of the cold cost ({} vs {} iterations)",
            rows[1].ratio * 100.0,
            rows[1].iterations,
            rows[0].iterations
        );
        t.write_csv(&args.out.join("recovery.csv"))
            .expect("write csv");
        println!();
    }

    if wants(&args, "compaction") {
        println!("-- Extension: segmented journal compaction, bounded vs unbounded growth --");
        let scratch =
            std::env::temp_dir().join(format!("va-bench-compaction-{}", std::process::id()));
        let rows = compaction_growth(&lab, &scratch);
        std::fs::remove_dir_all(&scratch).ok();
        let mut t = Table::new(&[
            "mode",
            "snapshot_every",
            "ticks",
            "journal_bytes",
            "segments",
            "snapshots",
            "replayed_events",
            "recover_wall_us",
        ]);
        for r in &rows {
            t.row(vec![
                r.mode.to_string(),
                r.snapshot_every.to_string(),
                r.ticks.to_string(),
                r.journal_bytes.to_string(),
                r.segments.to_string(),
                r.snapshots.to_string(),
                r.replayed_events.to_string(),
                r.recover_wall_us.to_string(),
            ]);
        }
        print!("{}", t.render());
        let last = |mode: &str| rows.iter().rev().find(|r| r.mode == mode);
        if let (Some(c), Some(u)) = (last("compacted"), last("unbounded")) {
            println!(
                "  after {} ticks: compacted journal {} bytes / {} events replayed vs unbounded {} bytes / {} events",
                c.ticks, c.journal_bytes, c.replayed_events, u.journal_bytes, u.replayed_events
            );
        }
        t.write_csv(&args.out.join("compaction.csv"))
            .expect("write csv");
        println!();
    }

    if let Some(t) = tracer {
        let lines = t.lines();
        t.finish().expect("flush trace");
        println!(
            "wrote {} trace events to {}",
            lines,
            args.trace.as_deref().expect("trace path").display()
        );
    }
    println!(
        "done in {:.1}s; CSVs in {}",
        t0.elapsed().as_secs_f64(),
        args.out.display()
    );
}
