//! Table formatting, CSV output and the JSONL trace writer for the
//! experiment harness.

use std::io::{BufWriter, Write};
use std::path::Path;

use vao::trace::TraceEvent;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column names.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Escapes a string for inclusion in a JSON string literal (hand-rolled —
/// the harness has no serialization dependency).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value: plain decimal when finite, `null`
/// otherwise (JSON has no Infinity/NaN).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Writes execution-trace events as JSON Lines: one event per line, tagged
/// with the run label that produced it. See `docs/OBSERVABILITY.md` for the
/// full schema.
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<std::fs::File>,
    lines: u64,
}

impl TraceWriter {
    /// Creates (truncating) the trace file, making parent directories.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        Ok(Self {
            out: BufWriter::new(std::fs::File::create(path)?),
            lines: 0,
        })
    }

    /// Lines written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Writes one event as a JSONL record. `run` labels the experiment run
    /// (e.g. `fig8_gt:s=0.10`); `seq` is the event's 0-based position in
    /// that run's stream.
    pub fn event(&mut self, run: &str, seq: usize, e: &TraceEvent) -> std::io::Result<()> {
        let prefix = format!("{{\"run\":\"{}\",\"seq\":{seq},", json_escape(run));
        let body = match e {
            TraceEvent::OperatorStart { kind, objects } => {
                format!("\"event\":\"operator_start\",\"operator\":\"{kind}\",\"objects\":{objects}")
            }
            TraceEvent::Choice(c) => format!(
                "\"event\":\"choice\",\"object\":{},\"benefit\":{},\"est_cpu\":{},\"score\":{},\"candidates\":{}",
                c.object,
                json_f64(c.benefit),
                c.est_cpu,
                json_f64(c.score),
                c.candidates
            ),
            TraceEvent::Iteration(it) => format!(
                "\"event\":\"iteration\",\"object\":{},\"iter\":{},\"lo_before\":{},\"hi_before\":{},\"lo_after\":{},\"hi_after\":{},\"est_cpu\":{},\"actual_cpu\":{},\"cpu_error\":{}",
                it.object,
                it.seq,
                json_f64(it.before.lo()),
                json_f64(it.before.hi()),
                json_f64(it.after.lo()),
                json_f64(it.after.hi()),
                it.est_cpu,
                it.actual_cpu,
                it.cpu_error()
            ),
            TraceEvent::HybridDecision(d) => format!(
                "\"event\":\"hybrid_decision\",\"chose_vao\":{},\"slack\":{},\"concentration\":{}",
                d.chose_vao,
                json_f64(d.slack),
                json_f64(d.concentration)
            ),
            TraceEvent::BudgetExhausted(r) => format!(
                "\"event\":\"budget_exhausted\",\"budget\":{},\"spent\":{},\"deferred\":{}",
                r.budget, r.spent, r.deferred
            ),
            TraceEvent::Round(r) => format!(
                "\"event\":\"round\",\"round\":{},\"candidates\":{},\"selected\":{},\"admitted\":{},\"est_cpu\":{},\"work\":{}",
                r.round, r.candidates, r.selected, r.admitted, r.est_cpu, r.work
            ),
            TraceEvent::Recovery(r) => format!(
                "\"event\":\"recovery\",\"snapshot_seq\":{},\"replayed_events\":{},\"truncated_bytes\":{},\"skipped_snapshots\":{},\"swept_tmp_files\":{}",
                r.snapshot_seq
                    .map_or_else(|| "null".to_string(), |s| s.to_string()),
                r.replayed_events,
                r.truncated_bytes,
                r.skipped_snapshots,
                r.swept_tmp_files
            ),
            TraceEvent::Calibration(c) => format!(
                "\"event\":\"calibration\",\"observations\":{},\"gain_ppm\":{},\"raw_est\":{},\"corrected_est\":{},\"actual\":{}",
                c.observations, c.gain_ppm, c.raw_est, c.corrected_est, c.actual
            ),
            TraceEvent::Compaction(c) => format!(
                "\"event\":\"compaction\",\"snapshot_seq\":{},\"segments_deleted\":{},\"bytes_reclaimed\":{},\"live_segments\":{}",
                c.snapshot_seq, c.segments_deleted, c.bytes_reclaimed, c.live_segments
            ),
            TraceEvent::OperatorEnd(end) => format!(
                "\"event\":\"operator_end\",\"operator\":\"{}\",\"iterations\":{},\"exec_iter\":{},\"get_state\":{},\"store_state\":{},\"choose_iter\":{}",
                end.kind,
                end.iterations,
                end.work.exec_iter,
                end.work.get_state,
                end.work.store_state,
                end.work.choose_iter
            ),
        };
        writeln!(self.out, "{prefix}{body}}}")?;
        self.lines += 1;
        Ok(())
    }

    /// Writes a whole recorded event stream under one run label.
    pub fn run(&mut self, run: &str, events: &[TraceEvent]) -> std::io::Result<()> {
        for (seq, e) in events.iter().enumerate() {
            self.event(run, seq, e)?;
        }
        Ok(())
    }

    /// Flushes buffered lines to disk.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// Formats a work-unit count with thousands separators.
#[must_use]
pub fn fmt_work(w: u64) -> String {
    let s = w.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a ratio as `12.3x`.
#[must_use]
pub fn fmt_speedup(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].contains("long-name"));
        // All rows align to the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(&["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("va_bench_report_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_work(0), "0");
        assert_eq!(fmt_work(999), "999");
        assert_eq!(fmt_work(1000), "1,000");
        assert_eq!(fmt_work(1234567), "1,234,567");
        assert_eq!(fmt_speedup(12.345), "12.35x");
    }

    #[test]
    fn json_helpers() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn trace_writer_emits_one_json_object_per_event() {
        use vao::cost::WorkBreakdown;
        use vao::trace::{
            ChoiceRecord, HybridDecisionRecord, IterationRecord, OperatorEndRecord, OperatorKind,
        };
        use vao::Bounds;

        let dir = std::env::temp_dir().join("va_bench_trace_test");
        let path = dir.join("trace.jsonl");
        let mut w = TraceWriter::create(&path).unwrap();
        let events = vec![
            TraceEvent::OperatorStart {
                kind: OperatorKind::Max,
                objects: 2,
            },
            TraceEvent::Choice(ChoiceRecord {
                object: 1,
                benefit: 3.5,
                est_cpu: 10,
                score: 0.35,
                candidates: 2,
            }),
            TraceEvent::Iteration(IterationRecord {
                object: 1,
                seq: 1,
                before: Bounds::new(0.0, 10.0),
                after: Bounds::new(2.0, 8.0),
                est_cpu: 10,
                actual_cpu: 8,
            }),
            TraceEvent::HybridDecision(HybridDecisionRecord {
                chose_vao: true,
                slack: f64::INFINITY,
                concentration: 0.4,
            }),
            TraceEvent::OperatorEnd(OperatorEndRecord {
                kind: OperatorKind::Max,
                iterations: 1,
                work: WorkBreakdown {
                    exec_iter: 8,
                    get_state: 2,
                    store_state: 1,
                    choose_iter: 3,
                },
            }),
        ];
        w.run("test:run", &events).unwrap();
        assert_eq!(w.lines(), 5);
        w.finish().unwrap();

        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 5);
        for l in &lines {
            assert!(l.starts_with("{\"run\":\"test:run\","), "line: {l}");
            assert!(l.ends_with('}'), "line: {l}");
        }
        assert!(lines[0].contains("\"event\":\"operator_start\""));
        assert!(lines[0].contains("\"operator\":\"max\""));
        assert!(lines[1].contains("\"candidates\":2"));
        assert!(lines[2].contains("\"cpu_error\":2"));
        // Infinite slack becomes JSON null, not an invalid token.
        assert!(lines[3].contains("\"slack\":null"));
        assert!(lines[4].contains("\"choose_iter\":3"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
