//! Table formatting and CSV output for the experiment harness.

use std::io::Write;
use std::path::Path;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column names.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Formats a work-unit count with thousands separators.
#[must_use]
pub fn fmt_work(w: u64) -> String {
    let s = w.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a ratio as `12.3x`.
#[must_use]
pub fn fmt_speedup(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].contains("long-name"));
        // All rows align to the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(&["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("va_bench_report_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_work(0), "0");
        assert_eq!(fmt_work(999), "999");
        assert_eq!(fmt_work(1000), "1,000");
        assert_eq!(fmt_work(1234567), "1,234,567");
        assert_eq!(fmt_speedup(12.345), "12.35x");
    }
}
