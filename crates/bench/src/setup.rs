//! Shared experimental setup: the bond universe, the pricer, and the
//! one-time calibration pass that every §6 experiment builds on.

use std::time::{Duration, Instant};

use bondlab::model::BondPde;
use bondlab::{BondPricer, BondUniverse, RateSeries};
use va_numerics::pde::{solve_on_mesh, PdeResultObject};
use vao::adapters::Shifted;
use vao::cost::WorkMeter;
use vao::ops::traditional::{calibrate, BlackBoxSpec};

use va_workloads::SyntheticMapping;

/// A prepared experimental environment.
///
/// Construction converges every bond once at the experiment rate (the
/// paper's methodology: the black-box baseline "knows a priori the step
/// sizes needed", and the synthetic workloads need each bond's converged
/// value for the shift mapping).
pub struct Lab {
    /// The bond universe.
    pub universe: BondUniverse,
    /// The pricing UDF.
    pub pricer: BondPricer,
    /// The experiment rate (paper: the opening rate for Jan 3, 1994).
    pub rate: f64,
    /// Per-bond converged model values.
    pub converged: Vec<f64>,
    /// Per-bond black-box execution specs at `rate`.
    pub specs: Vec<BlackBoxSpec>,
    /// Per-bond mesh resolutions `(n_t, n_x)` at convergence — the "step
    /// sizes needed" that the paper's black-box baseline replays.
    pub final_meshes: Vec<(u32, u32)>,
}

impl Lab {
    /// Builds a lab over `n` bonds at the default seed and opening rate.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        let universe = BondUniverse::generate(n, seed);
        let pricer = BondPricer::default();
        let rate = RateSeries::january_1994().opening_rate();
        let mut off_clock = WorkMeter::new();
        let mut converged = Vec::with_capacity(n);
        let mut specs = Vec::with_capacity(n);
        let mut final_meshes = Vec::with_capacity(n);
        for &bond in universe.bonds() {
            let mut obj = pricer.price(bond, rate, &mut off_clock);
            let spec = calibrate(&mut obj, &mut off_clock).expect("bond model must converge");
            converged.push(spec.value);
            specs.push(spec);
            final_meshes.push(obj.mesh());
        }
        Self {
            universe,
            pricer,
            rate,
            converged,
            specs,
            final_meshes,
        }
    }

    /// The paper-scale lab: 500 bonds.
    #[must_use]
    pub fn paper_scale() -> Self {
        Self::new(BondUniverse::PAPER_SIZE, 1994)
    }

    /// Number of bonds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.universe.len()
    }

    /// Whether the lab is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.universe.is_empty()
    }

    /// Fresh result objects for every bond (work charged to `meter`).
    #[must_use]
    pub fn objects(&self, meter: &mut WorkMeter) -> Vec<PdeResultObject<BondPde>> {
        self.universe
            .bonds()
            .iter()
            .map(|&b| self.pricer.price(b, self.rate, meter))
            .collect()
    }

    /// Fresh result objects shifted onto a synthetic distribution.
    #[must_use]
    pub fn synthetic_objects(
        &self,
        mapping: &SyntheticMapping,
        meter: &mut WorkMeter,
    ) -> Vec<Shifted<PdeResultObject<BondPde>>> {
        assert_eq!(mapping.len(), self.len(), "mapping/universe mismatch");
        self.universe
            .bonds()
            .iter()
            .enumerate()
            .map(|(i, &b)| mapping.wrap(i, self.pricer.price(b, self.rate, meter)))
            .collect()
    }

    /// Black-box specs shifted onto a synthetic distribution: the work is
    /// each real bond's (shifting is free), the value is the synthetic one.
    #[must_use]
    pub fn synthetic_specs(&self, mapping: &SyntheticMapping) -> Vec<BlackBoxSpec> {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, s)| BlackBoxSpec {
                value: mapping.synthetic_value(i, self.converged[i]),
                ..*s
            })
            .collect()
    }

    /// Total black-box work for one traditional evaluation over all bonds —
    /// the paper's query-independent baseline runtime.
    #[must_use]
    pub fn traditional_work(&self) -> u64 {
        self.specs.iter().map(|s| s.work).sum()
    }

    /// *Actually executes* one traditional pass: re-solves each bond's PDE
    /// at its calibrated mesh (the paper's "run the PDE solvers with the
    /// corresponding step sizes"). Returns `(values, work, wall)` — this is
    /// the honest wall-clock baseline for the Criterion benches, whereas
    /// [`Lab::traditional_work`] only replays the accounted work.
    #[must_use]
    pub fn traditional_execute(&self) -> (Vec<f64>, u64, Duration) {
        let start = Instant::now();
        let mut work = 0u64;
        let mut values = Vec::with_capacity(self.len());
        for (&bond, &(nt, nx)) in self.universe.bonds().iter().zip(&self.final_meshes) {
            let problem = BondPde::new(bond, self.pricer.model, self.rate);
            let sol = solve_on_mesh(&problem, nx, nt, &self.pricer.vao.solver)
                .expect("calibrated mesh must solve");
            values.push(sol.value);
            work += sol.work;
        }
        (values, work, start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vao::interface::ResultObject;

    #[test]
    fn lab_calibrates_every_bond() {
        let lab = Lab::new(6, 7);
        assert_eq!(lab.len(), 6);
        assert!(!lab.is_empty());
        for (v, s) in lab.converged.iter().zip(&lab.specs) {
            assert!((80.0..130.0).contains(v), "price {v}");
            assert!(s.final_width < 0.01);
            assert!(s.work > 0);
        }
        assert!(lab.traditional_work() > 0);
    }

    #[test]
    fn objects_are_fresh_and_coarse() {
        let lab = Lab::new(3, 7);
        let mut meter = WorkMeter::new();
        let objs = lab.objects(&mut meter);
        assert_eq!(objs.len(), 3);
        for o in &objs {
            assert!(!o.converged());
        }
        // Creating coarse objects costs far less than one traditional pass.
        assert!(meter.total() * 10 < lab.traditional_work());
    }

    #[test]
    fn traditional_execute_reproduces_calibrated_values_and_work() {
        let lab = Lab::new(4, 7);
        let (values, work, wall) = lab.traditional_execute();
        assert_eq!(values.len(), 4);
        assert_eq!(work, lab.traditional_work(), "same meshes, same work");
        assert!(wall.as_nanos() > 0);
        for (v, spec) in values.iter().zip(&lab.specs) {
            // The calibrated spec value is the bounds midpoint; a raw solve
            // at the same mesh lands within the final error bounds' scale.
            assert!((v - spec.value).abs() < 0.02, "{v} vs {}", spec.value);
        }
    }

    #[test]
    fn synthetic_objects_converge_to_mapped_values() {
        use va_workloads::TargetDistribution;
        use vao::ops::traditional::calibrate;

        let lab = Lab::new(3, 7);
        let mapping = SyntheticMapping::generate(
            &lab.converged,
            TargetDistribution::Gaussian {
                mean: 100.0,
                std_dev: 0.0,
            },
            5,
        );
        let mut meter = WorkMeter::new();
        let mut objs = lab.synthetic_objects(&mapping, &mut meter);
        for obj in &mut objs {
            let spec = calibrate(obj, &mut meter).unwrap();
            assert!(
                (spec.value - 100.0).abs() < 0.02,
                "synthetic value {}",
                spec.value
            );
        }
        let specs = lab.synthetic_specs(&mapping);
        for (i, s) in specs.iter().enumerate() {
            assert!((s.value - 100.0).abs() < 0.02);
            assert_eq!(s.work, lab.specs[i].work, "shifted work is unchanged");
        }
    }
}
