//! Drivers regenerating every table and figure of §6.

use std::time::{Duration, Instant};

use vao::cost::WorkMeter;
use vao::ops::hybrid::{hybrid_weighted_sum, HybridChoice, HybridConfig};
use vao::ops::minmax::{max_vao, max_vao_traced, max_vao_with, AggregateConfig};
use vao::ops::oracle::oracle_max;
use vao::ops::selection::{CmpOp, SelectionVao};
use vao::ops::sum::{weighted_sum_vao, weighted_sum_vao_with};
use vao::ops::traditional::{
    traditional_max, traditional_select, traditional_weighted_sum, BlackBoxSpec,
};
use vao::precision::PrecisionConstraint;
use vao::strategy::ChoicePolicy;
use vao::trace::{CpuEstimation, Recorder};

use crate::report::TraceWriter;

use va_workloads::{
    constant_for_selectivity, HotColdWeights, SyntheticMapping, TargetDistribution,
};

use crate::setup::Lab;

/// The default selectivity sweep of Figures 8–9.
pub const SELECTIVITIES: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// The default σ sweep (dollars) of Figures 10–11, including the σ = 0
/// pathological point.
pub const STD_DEVS: [f64; 7] = [0.0, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0];

/// The hot-weight shares of Figure 12.
pub const HOT_SHARES: [f64; 6] = [0.10, 0.30, 0.50, 0.70, 0.90, 0.99];

/// One point of a selectivity sweep (Figures 8–9).
#[derive(Clone, Copy, Debug)]
pub struct SelectivityRow {
    /// Target selectivity.
    pub selectivity: f64,
    /// The derived selection constant.
    pub constant: f64,
    /// Tuples that satisfied the predicate.
    pub selected: usize,
    /// VAO work units.
    pub vao_work: u64,
    /// Traditional work units (query-independent).
    pub trad_work: u64,
    /// VAO wall time.
    pub vao_wall: Duration,
    /// Result objects (bonds) the VAO evaluated.
    pub objects: usize,
    /// `estCPU` estimation error over this point's `iterate()` calls.
    pub cpu_est: CpuEstimation,
}

impl SelectivityRow {
    /// Traditional-over-VAO work ratio.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.trad_work as f64 / self.vao_work.max(1) as f64
    }

    /// Total `iterate()` calls at this sweep point.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.cpu_est.iterations
    }

    /// Mean `iterate()` calls per result object.
    #[must_use]
    pub fn mean_iterations_per_object(&self) -> f64 {
        if self.objects == 0 {
            0.0
        } else {
            self.cpu_est.iterations as f64 / self.objects as f64
        }
    }
}

/// Runs one selection query over fresh VAO objects, returning
/// (selected count, work, wall).
pub fn run_selection_vao(lab: &Lab, op: CmpOp, constant: f64) -> (usize, u64, Duration) {
    let mut rec = Recorder::new();
    run_selection_vao_recorded(lab, op, constant, &mut rec)
}

/// [`run_selection_vao`] capturing the execution trace into `rec` (one
/// selection operator start/end pair per bond, each bond as object 0).
pub fn run_selection_vao_recorded(
    lab: &Lab,
    op: CmpOp,
    constant: f64,
    rec: &mut Recorder,
) -> (usize, u64, Duration) {
    let start = Instant::now();
    let mut meter = WorkMeter::new();
    let vao = SelectionVao::new(op, constant).expect("finite constant");
    let mut selected = 0;
    for &bond in lab.universe.bonds() {
        let mut obj = lab.pricer.price(bond, lab.rate, &mut meter);
        let out = vao
            .evaluate_traced(&mut obj, &mut meter, rec)
            .expect("selection converges");
        if out.satisfied {
            selected += 1;
        }
    }
    (selected, meter.total(), start.elapsed())
}

/// Figure 8 (`>` predicate) or Figure 9 (`<` predicate): runtimes across a
/// selectivity sweep, VAO vs traditional.
pub fn selection_sweep(lab: &Lab, op: CmpOp, selectivities: &[f64]) -> Vec<SelectivityRow> {
    selection_sweep_traced(lab, op, selectivities, None)
}

/// [`selection_sweep`] optionally dumping each sweep point's full event
/// stream to a JSONL trace (run label `selection_<op>:s=<selectivity>`).
pub fn selection_sweep_traced(
    lab: &Lab,
    op: CmpOp,
    selectivities: &[f64],
    mut trace: Option<&mut TraceWriter>,
) -> Vec<SelectivityRow> {
    let trad_work = lab.traditional_work();
    let op_tag = match op {
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
    };
    selectivities
        .iter()
        .map(|&s| {
            let constant = constant_for_selectivity(&lab.converged, op, s);
            let mut rec = Recorder::new();
            let (selected, vao_work, vao_wall) =
                run_selection_vao_recorded(lab, op, constant, &mut rec);
            if let Some(w) = trace.as_deref_mut() {
                w.run(&format!("selection_{op_tag}:s={s:.2}"), rec.events())
                    .expect("write trace");
            }
            SelectivityRow {
                selectivity: s,
                constant,
                selected,
                vao_work,
                trad_work,
                vao_wall,
                objects: lab.len(),
                cpu_est: rec.cpu_estimation(),
            }
        })
        .collect()
}

/// One point of a synthetic stress sweep (Figures 10–11).
#[derive(Clone, Copy, Debug)]
pub struct StressRow {
    /// Distribution standard deviation (dollars).
    pub std_dev: f64,
    /// VAO work units.
    pub vao_work: u64,
    /// Traditional work units.
    pub trad_work: u64,
    /// VAO wall time.
    pub vao_wall: Duration,
}

impl StressRow {
    /// Traditional-over-VAO work ratio (< 1 means the VAO lost).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.trad_work as f64 / self.vao_work.max(1) as f64
    }
}

/// Figure 10: selection stress. Gaussian result distributions centered on
/// the selection constant, σ sweeping from the pathological 0 upward.
pub fn fig10_selection_stress(lab: &Lab, std_devs: &[f64], seed: u64) -> Vec<StressRow> {
    let constant = 100.0;
    std_devs
        .iter()
        .map(|&std_dev| {
            let mapping = SyntheticMapping::generate(
                &lab.converged,
                TargetDistribution::Gaussian {
                    mean: constant,
                    std_dev,
                },
                seed,
            );
            let trad_work: u64 = lab.synthetic_specs(&mapping).iter().map(|s| s.work).sum();
            let start = Instant::now();
            let mut meter = WorkMeter::new();
            let vao = SelectionVao::new(CmpOp::Gt, constant).expect("finite constant");
            for (i, &bond) in lab.universe.bonds().iter().enumerate() {
                let mut obj = mapping.wrap(i, lab.pricer.price(bond, lab.rate, &mut meter));
                vao.evaluate(&mut obj, &mut meter)
                    .expect("selection converges");
            }
            StressRow {
                std_dev,
                vao_work: meter.total(),
                trad_work,
                vao_wall: start.elapsed(),
            }
        })
        .collect()
}

/// One row of the §6.2 MAX runtime table.
#[derive(Clone, Copy, Debug)]
pub struct MaxTableRow {
    /// Operator name: "Optimal", "VAO" or "Traditional".
    pub operator: &'static str,
    /// Work units.
    pub work: u64,
    /// Wall time.
    pub wall: Duration,
    /// `iterate()` calls (0 for Traditional).
    pub iterations: u64,
    /// Result objects evaluated.
    pub objects: usize,
    /// `estCPU` estimation error (only the traced VAO row is non-zero;
    /// Optimal and Traditional run untraced).
    pub cpu_est: CpuEstimation,
}

impl MaxTableRow {
    /// Mean `iterate()` calls per result object.
    #[must_use]
    pub fn mean_iterations_per_object(&self) -> f64 {
        if self.objects == 0 {
            0.0
        } else {
            self.iterations as f64 / self.objects as f64
        }
    }
}

/// The §6.2 table: Optimal vs VAO vs Traditional on the real-data MAX
/// query, all returning bounds within ε = \$0.01.
pub fn max_table(lab: &Lab) -> Vec<MaxTableRow> {
    max_table_traced(lab, None)
}

/// [`max_table`] optionally dumping the VAO row's full event stream to a
/// JSONL trace (run label `max_table:vao`).
pub fn max_table_traced(lab: &Lab, trace: Option<&mut TraceWriter>) -> Vec<MaxTableRow> {
    let eps = PrecisionConstraint::new(0.01).expect("valid epsilon");

    // Optimal: knows the argmax a priori.
    let true_argmax = lab
        .converged
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite prices"))
        .map(|(i, _)| i)
        .expect("non-empty lab");
    let start = Instant::now();
    let mut meter = WorkMeter::new();
    let mut objs = lab.objects(&mut meter);
    let opt_res = oracle_max(&mut objs, true_argmax, eps, &mut meter).expect("oracle converges");
    let optimal = MaxTableRow {
        operator: "Optimal",
        work: meter.total(),
        wall: start.elapsed(),
        iterations: opt_res.iterations,
        objects: lab.len(),
        cpu_est: CpuEstimation::default(),
    };

    // VAO (traced: the recorder captures the full scheduling trace).
    let start = Instant::now();
    let mut meter = WorkMeter::new();
    let mut objs = lab.objects(&mut meter);
    let mut rec = Recorder::new();
    let vao_res = max_vao_traced(
        &mut objs,
        eps,
        &mut AggregateConfig::default(),
        &mut meter,
        &mut rec,
    )
    .expect("max vao converges");
    // With many bonds, the top two can sit within minWidth of each other;
    // any tie-winner within a cent of the true maximum is a correct answer.
    assert!(
        (lab.converged[vao_res.argext] - lab.converged[true_argmax]).abs() <= 0.02,
        "VAO winner {} (${}) vs oracle winner {} (${})",
        vao_res.argext,
        lab.converged[vao_res.argext],
        true_argmax,
        lab.converged[true_argmax]
    );
    let vao = MaxTableRow {
        operator: "VAO",
        work: meter.total(),
        wall: start.elapsed(),
        iterations: vao_res.iterations,
        objects: lab.len(),
        cpu_est: rec.cpu_estimation(),
    };
    if let Some(w) = trace {
        w.run("max_table:vao", rec.events()).expect("write trace");
    }

    // Traditional.
    let start = Instant::now();
    let mut meter = WorkMeter::new();
    let (trad_argmax, _) = traditional_max(&lab.specs, &mut meter).expect("non-empty");
    assert_eq!(
        trad_argmax, true_argmax,
        "specs and converged agree on argmax"
    );
    let traditional = MaxTableRow {
        operator: "Traditional",
        work: meter.total(),
        wall: start.elapsed(),
        iterations: 0,
        objects: lab.len(),
        cpu_est: CpuEstimation::default(),
    };

    vec![optimal, vao, traditional]
}

/// Figure 11: MAX stress. Results drawn from the lower half of a Gaussian
/// (clustered under the maximum), σ sweeping from the pathological 0.
pub fn fig11_max_stress(lab: &Lab, std_devs: &[f64], seed: u64) -> Vec<StressRow> {
    let eps = PrecisionConstraint::new(0.01).expect("valid epsilon");
    std_devs
        .iter()
        .map(|&std_dev| {
            let mapping = SyntheticMapping::generate(
                &lab.converged,
                TargetDistribution::LowerHalfGaussian {
                    max: 100.0,
                    std_dev,
                },
                seed,
            );
            let trad_work: u64 = lab.synthetic_specs(&mapping).iter().map(|s| s.work).sum();
            let start = Instant::now();
            let mut meter = WorkMeter::new();
            let mut objs = lab.synthetic_objects(&mapping, &mut meter);
            max_vao(&mut objs, eps, &mut meter).expect("max vao converges");
            StressRow {
                std_dev,
                vao_work: meter.total(),
                trad_work,
                vao_wall: start.elapsed(),
            }
        })
        .collect()
}

/// One point of the Figure-12 hot–cold sweep.
#[derive(Clone, Copy, Debug)]
pub struct HotColdRow {
    /// Fraction of total weight on the hot set.
    pub hot_share: f64,
    /// SUM VAO work units.
    pub vao_work: u64,
    /// Traditional work units.
    pub trad_work: u64,
    /// Hybrid operator work units (extension).
    pub hybrid_work: u64,
    /// Which path the hybrid chose.
    pub hybrid_choice: HybridChoice,
    /// VAO wall time.
    pub vao_wall: Duration,
}

impl HotColdRow {
    /// Traditional-over-VAO work ratio (< 1 means traditional won).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.trad_work as f64 / self.vao_work.max(1) as f64
    }
}

/// Figure 12: SUM with hot–cold weights. Total weight = n, hot set = 10 %
/// of bonds, ε = n·\$0.01 (the paper's 500·\$.01 = \$5), sweeping the hot
/// set's weight share. Also runs the §6.3 hybrid extension.
pub fn fig12_sum_hotcold(lab: &Lab, hot_shares: &[f64], seed: u64) -> Vec<HotColdRow> {
    let n = lab.len();
    let eps = PrecisionConstraint::new(n as f64 * 0.01 * (1.0 + 1e-9)).expect("valid epsilon");
    hot_shares
        .iter()
        .map(|&hot_share| {
            let weights = HotColdWeights::paper_scheme(n, hot_share, seed);

            // Traditional runs every model regardless of weights.
            let mut trad_meter = WorkMeter::new();
            traditional_weighted_sum(&lab.specs, weights.weights(), &mut trad_meter)
                .expect("weights valid");

            // SUM VAO.
            let start = Instant::now();
            let mut meter = WorkMeter::new();
            let mut objs = lab.objects(&mut meter);
            weighted_sum_vao(&mut objs, weights.weights(), eps, &mut meter)
                .expect("sum vao converges");
            let vao_wall = start.elapsed();

            // Hybrid extension.
            let mut hybrid_meter = WorkMeter::new();
            let mut objs = lab.objects(&mut hybrid_meter);
            let (_, decision) = hybrid_weighted_sum(
                &mut objs,
                weights.weights(),
                &lab.specs,
                eps,
                &HybridConfig::default(),
                &mut AggregateConfig::default(),
                &mut hybrid_meter,
            )
            .expect("hybrid converges");

            HotColdRow {
                hot_share,
                vao_work: meter.total(),
                trad_work: trad_meter.total(),
                hybrid_work: hybrid_meter.total(),
                hybrid_choice: decision.choice,
                vao_wall,
            }
        })
        .collect()
}

/// One row of the iteration-strategy ablation.
#[derive(Clone, Debug)]
pub struct StrategyRow {
    /// Policy name.
    pub policy: &'static str,
    /// MAX query work units.
    pub max_work: u64,
    /// SUM query work units (uniform weights, ε = n·\$0.01).
    pub sum_work: u64,
}

/// Ablation: the paper's greedy strategy vs round-robin, random and
/// widest-first, on the real-data MAX and SUM queries.
pub fn ablation_strategies(lab: &Lab, seed: u64) -> Vec<StrategyRow> {
    let n = lab.len();
    let eps_max = PrecisionConstraint::new(0.01).expect("valid epsilon");
    let eps_sum = PrecisionConstraint::new(n as f64 * 0.01 * (1.0 + 1e-9)).expect("valid epsilon");
    let weights = vec![1.0; n];
    let policies: [(&'static str, ChoicePolicy); 4] = [
        ("greedy", ChoicePolicy::greedy()),
        ("round-robin", ChoicePolicy::round_robin()),
        ("random", ChoicePolicy::random(seed)),
        ("widest-first", ChoicePolicy::widest_first()),
    ];
    policies
        .into_iter()
        .map(|(name, policy)| {
            let mut config = AggregateConfig {
                policy: policy.clone(),
                ..AggregateConfig::default()
            };
            let mut meter = WorkMeter::new();
            let mut objs = lab.objects(&mut meter);
            max_vao_with(&mut objs, eps_max, &mut config, &mut meter).expect("max converges");
            let max_work = meter.total();

            let mut config = AggregateConfig {
                policy,
                ..AggregateConfig::default()
            };
            let mut meter = WorkMeter::new();
            let mut objs = lab.objects(&mut meter);
            weighted_sum_vao_with(&mut objs, &weights, eps_sum, &mut config, &mut meter)
                .expect("sum converges");
            let sum_work = meter.total();

            StrategyRow {
                policy: name,
                max_work,
                sum_work,
            }
        })
        .collect()
}

/// One row of the choose-iteration cost ablation.
#[derive(Clone, Copy, Debug)]
pub struct ChooseCostRow {
    /// Universe size.
    pub n: usize,
    /// Total work of the MAX VAO evaluation.
    pub total_work: u64,
    /// The `chooseIter` component alone.
    pub choose_work: u64,
}

impl ChooseCostRow {
    /// `chooseIter` share of total work — §5 claims this is negligible.
    #[must_use]
    pub fn choose_fraction(&self) -> f64 {
        self.choose_work as f64 / self.total_work.max(1) as f64
    }
}

/// Ablation: the cost of choosing iterations (§5's `chooseIter`) as the
/// object-set size grows.
pub fn ablation_choose_cost(sizes: &[usize], seed: u64) -> Vec<ChooseCostRow> {
    sizes
        .iter()
        .map(|&n| {
            let lab = Lab::new(n, seed);
            let mut meter = WorkMeter::new();
            let mut objs = lab.objects(&mut meter);
            max_vao(
                &mut objs,
                PrecisionConstraint::new(0.01).expect("valid epsilon"),
                &mut meter,
            )
            .expect("max converges");
            let b = meter.breakdown();
            ChooseCostRow {
                n,
                total_work: b.total(),
                choose_work: b.choose_iter,
            }
        })
        .collect()
}

/// One row of the choose-index ablation (scan vs heap, §5.2).
#[derive(Clone, Copy, Debug)]
pub struct ChooseIndexRow {
    /// Universe size.
    pub n: usize,
    /// `chooseIter` work of the O(N)-scan SUM.
    pub scan_choose: u64,
    /// `chooseIter` work of the heap-indexed SUM.
    pub heap_choose: u64,
    /// Solver work of the scan version (should match the heap version).
    pub scan_exec: u64,
    /// Solver work of the heap version.
    pub heap_exec: u64,
}

/// Ablation: §5.2's heap-queue iteration index vs the baseline scan, on a
/// uniform-weight SUM run to the floor.
pub fn ablation_choose_index(sizes: &[usize], seed: u64) -> Vec<ChooseIndexRow> {
    use vao::ops::sum_heap::weighted_sum_vao_heap;
    sizes
        .iter()
        .map(|&n| {
            let lab = Lab::new(n, seed);
            let weights = vec![1.0; n];
            let eps =
                PrecisionConstraint::new(n as f64 * 0.01 * (1.0 + 1e-9)).expect("valid epsilon");

            let mut scan_meter = WorkMeter::new();
            let mut objs = lab.objects(&mut scan_meter);
            weighted_sum_vao(&mut objs, &weights, eps, &mut scan_meter).expect("sum converges");

            let mut heap_meter = WorkMeter::new();
            let mut objs = lab.objects(&mut heap_meter);
            weighted_sum_vao_heap(&mut objs, &weights, eps, &mut heap_meter)
                .expect("sum converges");

            ChooseIndexRow {
                n,
                scan_choose: scan_meter.breakdown().choose_iter,
                heap_choose: heap_meter.breakdown().choose_iter,
                scan_exec: scan_meter.breakdown().exec_iter,
                heap_exec: heap_meter.breakdown().exec_iter,
            }
        })
        .collect()
}

/// One tick of the continuous-query amortization experiment.
#[derive(Clone, Copy, Debug)]
pub struct TickRow {
    /// Tick index.
    pub tick: usize,
    /// The rate processed.
    pub rate: f64,
    /// Plain VAO work (no cross-tick caching).
    pub vao_work: u64,
    /// Work with the CASPER-style predicate-range cache.
    pub cached_work: u64,
    /// Cache hits on this tick.
    pub cache_hits: usize,
}

/// Extension experiment: a continuous selection over a stream of rate
/// ticks, with and without predicate result-range caching (the §2 CASPER
/// integration). The uncached VAO pays per tick; the cache amortizes
/// revisited rate bands toward zero.
pub fn tick_amortization(lab: &Lab, ticks: usize, seed: u64) -> Vec<TickRow> {
    use bondlab::RateSeries;
    use va_stream::casper::CachedSelectionEngine;
    use va_stream::relation::BondRelation;

    let relation = BondRelation::from_universe(&lab.universe);
    let mut cached =
        CachedSelectionEngine::new(lab.pricer, relation, CmpOp::Gt, 100.0).expect("valid query");
    let series = RateSeries::january_1994();
    let stream = series.intraday_ticks(ticks, seed);

    stream
        .iter()
        .enumerate()
        .map(|(i, t)| {
            // Uncached: fresh objects, full selection, every tick.
            let mut meter = WorkMeter::new();
            let vao = SelectionVao::new(CmpOp::Gt, 100.0).expect("finite constant");
            for &bond in lab.universe.bonds() {
                let mut obj = lab.pricer.price(bond, t.rate, &mut meter);
                vao.evaluate(&mut obj, &mut meter)
                    .expect("selection converges");
            }
            let vao_work = meter.total();

            let (_, stats) = cached.process_rate(t.rate).expect("cached selection");
            TickRow {
                tick: i,
                rate: t.rate,
                vao_work,
                cached_work: stats.work,
                cache_hits: stats.hits,
            }
        })
        .collect()
}

/// The query-count sweep of the `server-scaling` experiment.
pub const QUERY_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// One point of the server work-sharing sweep: a query count under one
/// execution mode.
#[derive(Clone, Copy, Debug)]
pub struct ServerScalingRow {
    /// `"independent"`, `"shared"`, or `"shared_budgeted"`.
    pub mode: &'static str,
    /// Concurrent queries registered for the tick.
    pub queries: usize,
    /// Total deterministic work units the tick cost.
    pub work_units: u64,
    /// Answers that degraded to anytime `Partial` bounds.
    pub partial_answers: u64,
}

impl ServerScalingRow {
    /// Work amortized over the registered queries.
    #[must_use]
    pub fn work_per_query(&self) -> u64 {
        self.work_units / self.queries.max(1) as u64
    }
}

/// The multi-trader workload template, cycled to the requested count: MAX
/// watchers at two precisions, portfolio SUMs at two tolerances, a
/// selection/count pair on one predicate, MIN and a top-5 — the overlap
/// profile of §1.2's many-users-one-relation scenario.
fn server_workload(n: usize, count: usize) -> Vec<va_stream::Query> {
    use va_stream::Query;
    let k = 5.min(n).max(1);
    let templates = [
        Query::Max { epsilon: 1.0 },
        Query::Sum {
            weights: vec![1.0; n],
            epsilon: 50.0,
        },
        Query::Selection {
            op: CmpOp::Gt,
            constant: 100.0,
        },
        Query::Min { epsilon: 1.0 },
        Query::TopK { k, epsilon: 1.0 },
        Query::Count {
            op: CmpOp::Gt,
            constant: 100.0,
            slack: 25,
        },
        Query::Max { epsilon: 0.5 },
        Query::Sum {
            weights: vec![1.0; n],
            epsilon: 60.0,
        },
    ];
    (0..count)
        .map(|i| templates[i % templates.len()].clone())
        .collect()
}

/// Compares shared-pool execution against independent per-query engines
/// across a query-count sweep. Three modes per count: `independent` sums
/// one [`ContinuousQueryEngine`](va_stream::ContinuousQueryEngine) tick per
/// query, `shared` answers the same queries off one `va-server` pool, and
/// `shared_budgeted` caps the shared tick at half its converged cost so
/// some answers degrade to anytime bounds. With `trace`, each shared tick's
/// scheduler events land in the JSONL stream under `server_scaling/qN`.
pub fn server_scaling(
    lab: &Lab,
    counts: &[usize],
    mut trace: Option<&mut TraceWriter>,
) -> Vec<ServerScalingRow> {
    use va_server::{Server, ServerConfig};
    use va_stream::relation::BondRelation;
    use va_stream::{ContinuousQueryEngine, ExecutionMode};

    let relation = BondRelation::from_universe(&lab.universe);
    let n = relation.len();
    let partials = |res: &va_server::TickResult| {
        res.answers.iter().filter(|(_, a)| !a.is_final()).count() as u64
    };

    let mut rows = Vec::new();
    for &count in counts {
        let queries = server_workload(n, count);

        let independent: u64 = queries
            .iter()
            .map(|q| {
                let engine = ContinuousQueryEngine::new(
                    lab.pricer,
                    relation.clone(),
                    q.clone(),
                    ExecutionMode::Vao,
                );
                let (_, stats) = engine.process_rate(lab.rate).expect("engine tick");
                stats.total_work()
            })
            .sum();
        rows.push(ServerScalingRow {
            mode: "independent",
            queries: count,
            work_units: independent,
            partial_answers: 0,
        });

        let mut shared = Server::new(lab.pricer, relation.clone(), ServerConfig::default());
        for q in &queries {
            shared.subscribe(q.clone(), 1).expect("subscribe");
        }
        let mut rec = Recorder::new();
        let full = shared
            .tick_with_observer(lab.rate, &mut rec)
            .expect("shared tick");
        if let Some(t) = trace.as_deref_mut() {
            t.run(&format!("server_scaling/q{count}"), rec.events())
                .expect("write trace");
        }
        let shared_work = full.stats.total_work();
        rows.push(ServerScalingRow {
            mode: "shared",
            queries: count,
            work_units: shared_work,
            partial_answers: partials(&full),
        });

        let mut capped = Server::new(
            lab.pricer,
            relation.clone(),
            ServerConfig::budgeted(shared_work / 2),
        );
        for q in &queries {
            capped.subscribe(q.clone(), 1).expect("subscribe");
        }
        let mut rec = Recorder::new();
        let res = capped
            .tick_with_observer(lab.rate, &mut rec)
            .expect("budgeted tick");
        if let Some(t) = trace.as_deref_mut() {
            // The budgeted tick's stream ends in a budget_exhausted event.
            t.run(&format!("server_scaling/q{count}_budgeted"), rec.events())
                .expect("write trace");
        }
        rows.push(ServerScalingRow {
            mode: "shared_budgeted",
            queries: count,
            work_units: res.stats.total_work(),
            partial_answers: partials(&res),
        });
    }
    rows
}

/// Worker counts swept by [`parallel_scaling`].
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One point of the batched-scheduler scaling sweep.
#[derive(Clone, Copy, Debug)]
pub struct ParallelScalingRow {
    /// Worker threads (and per-round batch size) for the tick.
    pub workers: usize,
    /// Wall-clock time of the full tick.
    pub wall: Duration,
    /// Total deterministic work units the tick cost.
    pub work_units: u64,
    /// Scheduler `iterate()` calls issued.
    pub iterations: u64,
    /// Batched scheduling rounds the tick took.
    pub rounds: u64,
    /// Whether this run's answers and iteration count are identical to the
    /// serial (`workers = 1`, batch 1) schedule. True by construction for
    /// the first row; larger batches may legally converge along a
    /// different (equally sound) path.
    pub matches_serial: bool,
}

impl ParallelScalingRow {
    /// Wall-clock speedup relative to `baseline`.
    #[must_use]
    pub fn speedup_over(&self, baseline: &ParallelScalingRow) -> f64 {
        baseline.wall.as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Sweeps the batched scheduler's worker count over the 8-query workload
/// on the lab relation: one tick per worker count, `batch = workers`.
///
/// The speedup at `workers > 1` comes from *batching*: a round of B
/// iterations recomputes every session's demand once instead of B times
/// (the recomputation is O(queries × objects) per round and unmetered),
/// on top of whatever `iterate()` parallelism the host's cores provide.
/// The `workers = 1` row is asserted against a dedicated serial run so
/// the sweep doubles as a regression check that batching is opt-in.
pub fn parallel_scaling(lab: &Lab, worker_counts: &[usize]) -> Vec<ParallelScalingRow> {
    use va_server::{Server, ServerConfig};
    use va_stream::relation::BondRelation;

    let relation = BondRelation::from_universe(&lab.universe);
    let queries = server_workload(relation.len(), 8);

    let run = |config: ServerConfig| {
        let mut srv = Server::new(lab.pricer, relation.clone(), config);
        for q in &queries {
            srv.subscribe(q.clone(), 1).expect("subscribe");
        }
        let mut rec = Recorder::new();
        let res = srv
            .tick_with_observer(lab.rate, &mut rec)
            .expect("scaling tick");
        (res, rec.rounds().len() as u64)
    };

    // The historical serial schedule: one pick per round.
    let (serial, _) = run(ServerConfig {
        workers: 1,
        batch: Some(1),
        ..ServerConfig::default()
    });

    worker_counts
        .iter()
        .map(|&workers| {
            let (res, rounds) = run(ServerConfig {
                workers,
                batch: None, // batch = workers
                ..ServerConfig::default()
            });
            ParallelScalingRow {
                workers,
                wall: res.stats.wall,
                work_units: res.stats.total_work(),
                iterations: res.stats.iterations,
                rounds,
                matches_serial: res.answers == serial.answers
                    && res.stats.iterations == serial.stats.iterations,
            }
        })
        .collect()
}

/// Round-batch sizes swept by [`batch_scaling`].
pub const ROUND_BATCHES: [usize; 3] = [16, 64, 256];

/// One point of the SoA-solver throughput sweep: the same tick executed
/// with and without the lane-parallel batched Thomas solver, at a fixed
/// round batch and a single worker.
#[derive(Clone, Copy, Debug)]
pub struct BatchScalingRow {
    /// Objects admitted per scheduling round (`ServerConfig::batch`); both
    /// executions use the same value, so they run the *same schedule* and
    /// differ only in how each round's solves execute.
    pub round_batch: usize,
    /// Wall-clock time of the scalar-executor tick.
    pub scalar_wall: Duration,
    /// Wall-clock time of the batched-solver tick.
    pub batched_wall: Duration,
    /// Deterministic work units of the tick (identical across executors by
    /// construction; asserted via `identical`).
    pub work_units: u64,
    /// Scheduler `iterate()` calls issued (likewise identical).
    pub iterations: u64,
    /// Whether the two executions produced bit-identical answers, work
    /// breakdowns, and iteration counts. Unlike `parallel_scaling`'s
    /// `matches_serial`, this must *always* be true: the batched solver
    /// replays the scalar arithmetic per lane exactly.
    pub identical: bool,
}

impl BatchScalingRow {
    /// Work-unit throughput (units per wall-second) of the scalar run.
    #[must_use]
    pub fn scalar_throughput(&self) -> f64 {
        self.work_units as f64 / self.scalar_wall.as_secs_f64().max(1e-9)
    }

    /// Work-unit throughput (units per wall-second) of the batched run.
    #[must_use]
    pub fn batched_throughput(&self) -> f64 {
        self.work_units as f64 / self.batched_wall.as_secs_f64().max(1e-9)
    }

    /// Throughput gain of the batched solver over the scalar executor.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.batched_throughput() / self.scalar_throughput().max(1e-9)
    }
}

/// Measures what the struct-of-arrays solver is worth on the 8-query
/// workload: for each round batch B, one tick runs every admitted round as
/// per-object scalar solves (`batch_solver: false`) and one groups
/// same-shape refinements into lane-parallel sweeps (`batch_solver:
/// true`). Both use a single worker, so the comparison isolates the
/// kernel: same schedule, same work units, same answers — only the
/// arithmetic layout (and hence the wall clock) differs.
pub fn batch_scaling(lab: &Lab, round_batches: &[usize]) -> Vec<BatchScalingRow> {
    use va_server::{Server, ServerConfig};
    use va_stream::relation::BondRelation;

    let relation = BondRelation::from_universe(&lab.universe);
    let queries = server_workload(relation.len(), 8);

    let run = |round_batch: usize, batch_solver: bool| {
        let mut srv = Server::new(
            lab.pricer,
            relation.clone(),
            ServerConfig {
                workers: 1,
                batch: Some(round_batch),
                batch_solver,
                ..ServerConfig::default()
            },
        );
        for q in &queries {
            srv.subscribe(q.clone(), 1).expect("subscribe");
        }
        srv.tick(lab.rate).expect("batch-scaling tick")
    };

    round_batches
        .iter()
        .map(|&round_batch| {
            let scalar = run(round_batch, false);
            let batched = run(round_batch, true);
            BatchScalingRow {
                round_batch,
                scalar_wall: scalar.stats.wall,
                batched_wall: batched.stats.wall,
                work_units: batched.stats.total_work(),
                iterations: batched.stats.iterations,
                identical: scalar.answers == batched.answers
                    && scalar.stats.work == batched.stats.work
                    && scalar.stats.iterations == batched.stats.iterations,
            }
        })
        .collect()
}

/// One side of the kill-and-recover comparison: the same post-crash tick
/// executed either `cold` (a fresh server recomputing from scratch) or
/// `warm` (a server recovered from the journal, with the pool re-admitted
/// at its achieved accuracy).
#[derive(Clone, Copy, Debug)]
pub struct RecoveryRow {
    /// `"cold"` or `"warm"`.
    pub mode: &'static str,
    /// Scheduler `iterate()` calls the tick issued.
    pub iterations: u64,
    /// Total deterministic work units the tick cost.
    pub work_units: u64,
    /// This mode's work as a fraction of the cold restart's work
    /// (1.0 for the cold row itself).
    pub ratio: f64,
}

/// Simulates a crash-and-restart against `dir` and measures what recovery
/// saves. One durable server subscribes the 8-query workload plus a
/// tight-ε MAX (ε just above the model's minimum refinable width, so at
/// least one object converges fully), ticks once at the lab rate, and is
/// dropped *without* a clean shutdown — only the fsync'd journal survives,
/// exactly as after a SIGKILL. A second server recovers from the journal
/// and repeats the tick warm; a third starts cold in a fresh state and
/// pays the full price. Returns the cold and warm rows, cold first.
pub fn recovery_comparison(lab: &Lab, dir: &std::path::Path) -> Vec<RecoveryRow> {
    use va_server::{Server, ServerConfig};
    use va_stream::relation::BondRelation;

    let relation = BondRelation::from_universe(&lab.universe);
    let mut queries = server_workload(relation.len(), 8);
    queries.push(va_stream::Query::Max { epsilon: 0.0101 });

    let data_dir = dir.join("journal");
    let mut doomed = Server::open_durable(
        lab.pricer,
        relation.clone(),
        ServerConfig::default(),
        &data_dir,
    )
    .expect("open durable server");
    for q in &queries {
        doomed.subscribe(q.clone(), 1).expect("subscribe");
    }
    doomed.tick(lab.rate).expect("pre-crash tick");
    drop(doomed); // the "SIGKILL": no shutdown, no final snapshot

    let mut recovered = Server::open_durable(
        lab.pricer,
        relation.clone(),
        ServerConfig::default(),
        &data_dir,
    )
    .expect("recover server");
    let warm = recovered.tick(lab.rate).expect("warm tick");

    let mut fresh = Server::new(lab.pricer, relation, ServerConfig::default());
    for q in &queries {
        fresh.subscribe(q.clone(), 1).expect("subscribe");
    }
    let cold = fresh.tick(lab.rate).expect("cold tick");

    let cold_work = cold.stats.total_work().max(1);
    vec![
        RecoveryRow {
            mode: "cold",
            iterations: cold.stats.iterations,
            work_units: cold.stats.total_work(),
            ratio: 1.0,
        },
        RecoveryRow {
            mode: "warm",
            iterations: warm.stats.iterations,
            work_units: warm.stats.total_work(),
            ratio: warm.stats.total_work() as f64 / cold_work as f64,
        },
    ]
}

/// One point of the journal-compaction growth comparison: one tick count
/// under one snapshot cadence, measured after a simulated crash.
#[derive(Clone, Copy, Debug)]
pub struct CompactionRow {
    /// `"compacted"` (frequent snapshots, bounded journal) or
    /// `"unbounded"` (snapshots effectively disabled, journal grows
    /// forever — the pre-compaction behaviour).
    pub mode: &'static str,
    /// The `snapshot_every` cadence this run used.
    pub snapshot_every: u64,
    /// Ticks executed before the crash.
    pub ticks: u64,
    /// Bytes across all `journal-*.jsonl` segments left on disk.
    pub journal_bytes: u64,
    /// Journal segments left on disk.
    pub segments: u64,
    /// Snapshot files left on disk.
    pub snapshots: u64,
    /// Journal events replayed by the post-crash recovery.
    pub replayed_events: u64,
    /// Wall-clock microseconds the post-crash `open_durable` took.
    pub recover_wall_us: u64,
}

/// Sizes the on-disk journal state under `dir`: total segment bytes,
/// segment count, snapshot count.
fn journal_disk_stats(dir: &std::path::Path) -> (u64, u64, u64) {
    let (mut bytes, mut segments, mut snapshots) = (0, 0, 0);
    let Ok(entries) = std::fs::read_dir(dir) else {
        return (0, 0, 0);
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("journal-") && name.ends_with(".jsonl") {
            segments += 1;
            bytes += entry.metadata().map_or(0, |m| m.len());
        } else if name.starts_with("snapshot-") && name.ends_with(".json") {
            snapshots += 1;
        }
    }
    (bytes, segments, snapshots)
}

/// Measures journal growth and recovery cost with and without segment
/// compaction. For each tick count, a durable server runs the 8-query
/// workload over a cycling rate stream and is dropped without shutdown (a
/// simulated SIGKILL); the on-disk journal is then sized and a recovery
/// timed. The `compacted` mode snapshots every 4 journal events, so
/// compaction keeps only the post-snapshot tail; `unbounded` never
/// snapshots mid-run, so its single segment grows linearly with the tick
/// count — the PR-4-era behaviour this experiment exists to retire.
pub fn compaction_growth(lab: &Lab, dir: &std::path::Path) -> Vec<CompactionRow> {
    use va_server::{Server, ServerConfig};
    use va_stream::relation::BondRelation;

    const TICK_COUNTS: [u64; 4] = [10, 20, 40, 80];
    const RATES: [f64; 3] = [0.0583, 0.0601, 0.0592];

    let relation = BondRelation::from_universe(&lab.universe);
    let queries = server_workload(relation.len(), 8);
    let mut rows = Vec::new();
    for (mode, snapshot_every) in [("compacted", 4), ("unbounded", u64::MAX)] {
        for ticks in TICK_COUNTS {
            let data_dir = dir.join(format!("{mode}-{ticks}"));
            let config = ServerConfig {
                snapshot_every,
                ..ServerConfig::default()
            };
            let mut doomed = Server::open_durable(lab.pricer, relation.clone(), config, &data_dir)
                .expect("open durable server");
            for q in &queries {
                doomed.subscribe(q.clone(), 1).expect("subscribe");
            }
            for i in 0..ticks {
                doomed
                    .tick(RATES[(i % RATES.len() as u64) as usize])
                    .expect("tick");
            }
            drop(doomed); // the "SIGKILL": no shutdown, no final snapshot

            let (journal_bytes, segments, snapshots) = journal_disk_stats(&data_dir);
            let t0 = Instant::now();
            let recovered = Server::open_durable(lab.pricer, relation.clone(), config, &data_dir)
                .expect("recover server");
            let recover_wall_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
            let replayed_events = recovered.last_recovery().map_or(0, |r| r.replayed_events);
            rows.push(CompactionRow {
                mode,
                snapshot_every,
                ticks,
                journal_bytes,
                segments,
                snapshots,
                replayed_events,
                recover_wall_us,
            });
        }
    }
    rows
}

/// The φ targets of the sketch-scaling workload: 8 concurrent PERCENTILE
/// subscriptions spanning the rank range, including the median.
pub const SKETCH_PHIS: [f64; 8] = [0.05, 0.10, 0.25, 0.40, 0.50, 0.60, 0.75, 0.90];

/// One PERCENTILE subscription of the sketch-scaling comparison.
#[derive(Clone, Copy, Debug)]
pub struct SketchScalingRow {
    /// The subscription's quantile target.
    pub phi: f64,
    /// The subscription's precision constraint.
    pub epsilon: f64,
    /// Reported lower bound of the converged answer interval.
    pub lo: f64,
    /// Reported upper bound of the converged answer interval.
    pub hi: f64,
    /// The exact rank-`⌈φN⌉` value, from the lab's calibrated prices.
    pub exact: f64,
    /// Whether `[lo, hi]` contains `exact` (up to the calibration width
    /// the reference values themselves carry).
    pub contained: bool,
    /// Total work units of the one shared sketch-guided tick that served
    /// all [`SKETCH_PHIS`] subscriptions — identical on every row.
    pub sketch_work: u64,
    /// Work units of one full-relation exact pass (converge every object,
    /// then sort) — the query-independent baseline a traditional quantile
    /// operator pays, identical on every row.
    pub exact_work: u64,
}

impl SketchScalingRow {
    /// How many times cheaper the shared sketch-guided tick is than a
    /// single full-relation exact pass.
    #[must_use]
    pub fn work_ratio(&self) -> f64 {
        self.exact_work as f64 / self.sketch_work.max(1) as f64
    }
}

/// Compares sketch-guided PERCENTILE execution against the full-relation
/// exact quantile baseline. One shared server subscribes all
/// [`SKETCH_PHIS`] at `epsilon` and ticks once: the per-round
/// [`IntervalQuantileSketch`](va_sketch::IntervalQuantileSketch) band
/// restricts demand to rank-boundary straddlers, so off-band objects are
/// never refined to ε. The baseline is the traditional operator's
/// query-independent cost — converge all N objects, then sort — which any
/// exact quantile over opaque variable-accuracy functions must pay at
/// least once regardless of how many queries share it. Containment is
/// checked against the lab's calibrated prices, slackened by the widest
/// calibration interval (the reference values are only known that well).
pub fn sketch_scaling(lab: &Lab, epsilon: f64) -> Vec<SketchScalingRow> {
    use va_server::{Server, ServerConfig};
    use va_stream::relation::BondRelation;
    use vao::ops::percentile::rank_from_top;

    let relation = BondRelation::from_universe(&lab.universe);
    let mut srv = Server::new(lab.pricer, relation, ServerConfig::default());
    let ids: Vec<_> = SKETCH_PHIS
        .iter()
        .map(|&phi| {
            srv.subscribe(va_stream::Query::Percentile { phi, epsilon }, 1)
                .expect("subscribe percentile")
        })
        .collect();
    let res = srv.tick(lab.rate).expect("shared sketch tick");
    let sketch_work = res.stats.total_work();
    let exact_work = lab.traditional_work();

    let mut sorted = lab.converged.clone();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let slack = lab
        .specs
        .iter()
        .map(|s| s.final_width)
        .fold(0.0f64, f64::max);

    SKETCH_PHIS
        .iter()
        .zip(&ids)
        .map(|(&phi, id)| {
            let out = res
                .answers
                .iter()
                .find(|(s, _)| s == id)
                .and_then(|(_, a)| a.final_output())
                .expect("unbudgeted tick converges");
            let va_stream::QueryOutput::Aggregate { bounds } = out else {
                panic!("percentile answers Aggregate, got {out:?}");
            };
            let exact = sorted[rank_from_top(phi, sorted.len()) - 1];
            SketchScalingRow {
                phi,
                epsilon,
                lo: bounds.lo(),
                hi: bounds.hi(),
                exact,
                contained: bounds.lo() - slack <= exact && exact <= bounds.hi() + slack,
                sketch_work,
                exact_work,
            }
        })
        .collect()
}

/// The connection-count sweep of the `frontend-scaling` experiment. The
/// top counts prove the acceptance bar: ≥ 50 concurrent subscribers on
/// one query shape, bit-identical to the serial golden run.
pub const CONNECTION_COUNTS: [usize; 6] = [1, 4, 8, 16, 32, 64];

/// One point of the front-end connection sweep.
#[derive(Clone, Copy, Debug)]
pub struct FrontendScalingRow {
    /// Concurrent loopback subscribers, all on the same query shape.
    pub connections: usize,
    /// Rate ticks driven through the stream.
    pub ticks: usize,
    /// `RESULT` lines the front-end delivered across all connections.
    pub results: u64,
    /// Result payloads it serialized — one per (tick, shape) group, so
    /// `results / payloads` is the fan-out amortization factor.
    pub payloads: u64,
    /// Median tick-to-RESULT latency across (connection, tick) samples.
    pub p50: Duration,
    /// 99th-percentile tick-to-RESULT latency.
    pub p99: Duration,
    /// Worst tick-to-RESULT latency.
    pub max: Duration,
    /// Every delivered line matched the serial golden run byte-for-byte.
    pub identical: bool,
}

/// Drives N concurrent loopback clients through the nonblocking
/// front-end and measures tick-to-`RESULT` delivery latency per client
/// per tick, comparing every line byte-for-byte against a serial
/// in-process golden run.
///
/// The sweep runs on a dedicated 32-bond universe rather than the lab's:
/// pricing cost is orthogonal to connection scaling (the same single
/// shared tick serves every subscriber), and small unbudgeted ticks keep
/// the latency samples dominated by the front-end, which is what this
/// experiment measures.
pub fn frontend_scaling(lab: &Lab, counts: &[usize]) -> Vec<FrontendScalingRow> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use bondlab::{BondUniverse, RateSeries};
    use va_server::{net::FrontEnd, proto, Server, ServerConfig};
    use va_stream::relation::BondRelation;

    let universe = BondUniverse::generate(32, 1994);
    let relation = BondRelation::from_universe(&universe);
    let rates: Vec<f64> = RateSeries::january_1994().daily_opens()[..12].to_vec();
    let subscribe = r#"{"type":"SUBSCRIBE","query":{"kind":"max","epsilon":0.05}}"#;

    let mut rows = Vec::new();
    for &count in counts {
        // Serial golden run: same universe, same registrations, same
        // rates, rendered with the same protocol serializers.
        let mut golden = Server::new(lab.pricer, relation.clone(), ServerConfig::default());
        for _ in 0..count {
            golden
                .subscribe(va_stream::Query::Max { epsilon: 0.05 }, 1)
                .expect("golden subscribe");
        }
        let mut expected: Vec<(Vec<String>, String)> = Vec::new();
        for &rate in &rates {
            let res = golden.tick(rate).expect("golden tick");
            let lines = res
                .answers
                .iter()
                .map(|(id, a)| {
                    proto::result(va_server::DEFAULT_RELATION, res.tick, res.rate, *id, a)
                })
                .collect();
            expected.push((
                lines,
                proto::tick_done(va_server::DEFAULT_RELATION, &res, golden.shed_ticks()),
            ));
        }

        // Wire run: the front-end on its own thread, N blocking clients
        // here. Connect/subscribe sequentially so session ids (and thus
        // the golden mapping) are deterministic.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let rel = relation.clone();
        let pricer = lab.pricer;
        let handle = std::thread::spawn(move || {
            let mut server = Server::new(pricer, rel, ServerConfig::default());
            let mut front = FrontEnd::default();
            front
                .run(&listener, &mut server, &flag)
                .expect("readiness loop");
            front.stats()
        });

        let mut writers: Vec<TcpStream> = Vec::new();
        let mut readers: Vec<BufReader<TcpStream>> = Vec::new();
        for _ in 0..count {
            let stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(60)))
                .expect("read timeout");
            writers.push(stream.try_clone().expect("clone"));
            let mut reader = BufReader::new(stream);
            writeln!(writers.last_mut().expect("writer"), "{subscribe}").expect("subscribe");
            let mut ack = String::new();
            reader.read_line(&mut ack).expect("subscribed ack");
            assert!(ack.contains("\"type\":\"SUBSCRIBED\""), "{ack}");
            readers.push(reader);
        }

        let mut samples: Vec<Duration> = Vec::new();
        let mut identical = true;
        for (ti, &rate) in rates.iter().enumerate() {
            let sent = Instant::now();
            writeln!(writers[0], "{{\"type\":\"TICK\",\"rate\":{rate}}}").expect("tick");
            for (ci, reader) in readers.iter_mut().enumerate() {
                let mut line = String::new();
                reader.read_line(&mut line).expect("result line");
                samples.push(sent.elapsed());
                identical &= line.trim_end() == expected[ti].0[ci];
            }
            let mut done = String::new();
            readers[0].read_line(&mut done).expect("tick_done line");
            identical &= done.trim_end() == expected[ti].1;
        }

        stop.store(true, Ordering::SeqCst);
        let stats = handle.join().expect("front-end thread");

        samples.sort();
        let at = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
        rows.push(FrontendScalingRow {
            connections: count,
            ticks: rates.len(),
            results: stats.results_delivered,
            payloads: stats.payloads_serialized,
            p50: at(0.50),
            p99: at(0.99),
            max: *samples.last().expect("nonempty samples"),
            identical,
        });
    }
    rows
}

/// Relation counts swept by [`tenant_scaling`].
pub const TENANT_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Subscriptions registered per relation in the tenant sweep.
pub const TENANT_SUBSCRIPTIONS: usize = 4;

/// One point of the multi-relation tenancy sweep: `relations` tenants
/// co-hosted on one server versus the same tenants on isolated
/// single-relation servers, each isolated server given exactly the budget
/// slice the shared host's arbitration would grant it.
#[derive(Clone, Copy, Debug)]
pub struct TenantScalingRow {
    /// Co-hosted relations in this round.
    pub relations: usize,
    /// Total subscriptions across all relations.
    pub subscriptions: usize,
    /// Wall-clock of the shared host's one `tick_multi` (4 shard workers).
    pub shared_wall: Duration,
    /// Wall-clock of ticking every isolated server sequentially.
    pub isolated_wall: Duration,
    /// Total work units the shared multi-tick cost.
    pub shared_work: u64,
    /// Total work units across the isolated servers.
    pub isolated_work: u64,
    /// Relations whose budget slice was exhausted (anytime answers).
    pub budget_exhausted: u64,
    /// Whether every relation's answers and stats were bit-identical
    /// between the shared host and its isolated twin.
    pub identical: bool,
}

impl TenantScalingRow {
    /// Shared-host wall-clock speedup from sharding relations across
    /// workers, relative to the sequential isolated baseline.
    #[must_use]
    pub fn shard_speedup(&self) -> f64 {
        self.isolated_wall.as_secs_f64() / self.shared_wall.as_secs_f64().max(1e-9)
    }
}

/// Sweeps co-hosted relation counts: each round builds one shared server
/// with `count` relations (16 bonds each, distinct universes), registers
/// [`TENANT_SUBSCRIPTIONS`] queries per relation at a per-tenant priority,
/// and runs one budgeted `tick_multi` with 4 shard workers. The baseline
/// runs the same tenants as isolated single-relation servers, each
/// configured with the exact budget slice
/// [`va_server::arbitrate_budget`] grants its weight — so the sweep is
/// also the system-level proof of the tenancy invariant: co-hosting
/// changes wall-clock, never answers.
pub fn tenant_scaling(lab: &Lab, counts: &[usize], seed: u64) -> Vec<TenantScalingRow> {
    use bondlab::BondUniverse;
    use va_server::{arbitrate_budget, Server, ServerConfig, TickResult};
    use va_stream::relation::BondRelation;

    const BONDS_PER_RELATION: usize = 16;
    const BUDGET_PER_RELATION: u64 = 30_000;

    // Everything observable about a tick except wall time (measured, not
    // derived): the bit-identity key.
    let key = |res: &TickResult| {
        let s = &res.stats;
        format!(
            "tick={} rate={:?} answers={:?} exhausted={} stats=({:?} {:?} {} {} {} {:?} {:?})",
            res.tick,
            res.rate,
            res.answers,
            res.budget_exhausted,
            s.rate,
            s.work,
            s.iterations,
            s.operator,
            s.objects,
            s.iter_histogram,
            s.cpu_est
        )
    };
    let relation = |i: usize| {
        BondRelation::from_universe(&BondUniverse::generate(
            BONDS_PER_RELATION,
            seed + 7 * i as u64 + 1,
        ))
    };
    let priority = |i: usize| (i % 3 + 1) as u32;
    let rate = |i: usize| lab.rate + i as f64 * 1e-4;
    let workload = server_workload(BONDS_PER_RELATION, TENANT_SUBSCRIPTIONS);

    let mut rows = Vec::new();
    for &count in counts {
        let total_budget = BUDGET_PER_RELATION * count as u64;
        // The shared host: relation 0 is the bootstrap "default", the rest
        // are created through the catalog. `batch` is pinned so the worker
        // count stays a pure wall-clock knob (the schedule is fixed by the
        // batch size, and sharding runs every relation with inner
        // workers = 1 anyway).
        let shared_config = ServerConfig {
            budget: Some(total_budget),
            workers: 4,
            batch: Some(1),
            ..ServerConfig::default()
        };
        let mut shared = Server::new(lab.pricer, relation(0), shared_config);
        let mut names = vec!["default".to_string()];
        for i in 1..count {
            let name = format!("t{i}");
            shared
                .create_relation(&name, relation(i), None)
                .expect("create relation");
            names.push(name);
        }
        for (i, name) in names.iter().enumerate() {
            for q in &workload {
                shared
                    .subscribe_to(name, q.clone(), priority(i))
                    .expect("subscribe");
            }
        }
        let ticks: Vec<(&str, f64)> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), rate(i)))
            .collect();
        let t0 = Instant::now();
        let shared_results = shared.tick_multi(&ticks).expect("shared multi-tick");
        let shared_wall = t0.elapsed();

        // The isolated baseline: the same per-relation budget slices the
        // shared host's arbitration produced, recomputed here from the
        // same priority weights.
        let weights: Vec<u64> = (0..count)
            .map(|i| u64::from(priority(i)) * TENANT_SUBSCRIPTIONS as u64)
            .collect();
        let slices = arbitrate_budget(Some(total_budget), &weights);
        let mut identical = true;
        let mut isolated_work = 0u64;
        let mut isolated_wall = Duration::ZERO;
        for i in 0..count {
            let config = ServerConfig {
                budget: slices[i],
                workers: 1,
                batch: Some(1),
                ..ServerConfig::default()
            };
            let mut isolated = Server::new(lab.pricer, relation(i), config);
            for q in &workload {
                isolated
                    .subscribe(q.clone(), priority(i))
                    .expect("subscribe");
            }
            let t0 = Instant::now();
            let res = isolated.tick(rate(i)).expect("isolated tick");
            isolated_wall += t0.elapsed();
            isolated_work += res.stats.total_work();
            identical &= key(&res) == key(&shared_results[i]);
        }

        rows.push(TenantScalingRow {
            relations: count,
            subscriptions: count * TENANT_SUBSCRIPTIONS,
            shared_wall,
            isolated_wall,
            shared_work: shared_results.iter().map(|r| r.stats.total_work()).sum(),
            isolated_work,
            budget_exhausted: shared_results.iter().filter(|r| r.budget_exhausted).count() as u64,
            identical,
        });
    }
    rows
}

/// Ticks run by [`calibration_scaling`] — long enough for every warm
/// magnitude class to clear [`vao::cost::CAL_MIN_OBSERVATIONS`].
pub const CALIBRATION_TICKS: usize = 10;

/// One tick of the cost-calibration comparison: the same workload and
/// rate sequence run on an uncalibrated and a calibrated server at the
/// same fixed budget, plus a third calibrate-off replay proving the
/// default path is bit-identical (the `--calibrate off` golden contract).
#[derive(Clone, Copy, Debug)]
pub struct CalibrationScalingRow {
    /// 1-based tick ordinal.
    pub tick: u64,
    /// Scheduler rounds the uncalibrated tick ran.
    pub raw_rounds: u64,
    /// Σ |admitted estCPU − metered work| across uncalibrated rounds —
    /// the budget-admission error raw estimates accumulate per tick.
    pub raw_abs_error: u64,
    /// Answers the uncalibrated tick degraded to anytime `Partial`s.
    pub raw_partials: u64,
    /// Scheduler rounds the calibrated tick ran.
    pub calibrated_rounds: u64,
    /// Σ |admitted estCPU − metered work| across calibrated rounds.
    pub calibrated_abs_error: u64,
    /// Answers the calibrated tick degraded to anytime `Partial`s.
    pub calibrated_partials: u64,
    /// Calibrator observations accumulated after the calibrated tick.
    pub observations: u64,
    /// Pooled learned `actual/est` ratio (ppm) after the calibrated tick.
    pub gain_ppm: u64,
    /// Whether the calibrate-off replay matched the uncalibrated run
    /// bit for bit (answers, stats, exhaustion).
    pub off_identical: bool,
}

impl CalibrationScalingRow {
    /// Mean absolute budget-admission error per uncalibrated round.
    #[must_use]
    pub fn raw_mean_error(&self) -> f64 {
        self.raw_abs_error as f64 / self.raw_rounds.max(1) as f64
    }

    /// Mean absolute budget-admission error per calibrated round.
    #[must_use]
    pub fn calibrated_mean_error(&self) -> f64 {
        self.calibrated_abs_error as f64 / self.calibrated_rounds.max(1) as f64
    }
}

/// Runs the cost-calibration comparison: three servers over the same
/// 16-bond relation and subscription set — calibration off, off again
/// (the determinism control), and on — ticked through the same rate
/// path at a fixed per-tick budget. Per tick it folds every scheduler
/// round's `|estCPU − work|` gap from the trace, counts `Partial`
/// answers, and snapshots the calibrator's observation count and pooled
/// gain, so the emitted table shows the admission error closing as the
/// per-class model warms while the budget and answers stay comparable.
pub fn calibration_scaling(lab: &Lab, ticks: usize, seed: u64) -> Vec<CalibrationScalingRow> {
    use bondlab::BondUniverse;
    use va_server::{Answer, Server, ServerConfig, TickResult, DEFAULT_RELATION};
    use va_stream::relation::BondRelation;
    use vao::trace::TraceEvent;

    const BONDS: usize = 16;
    const SUBSCRIPTIONS: usize = 8;
    const BUDGET: u64 = 12_000;

    // Everything observable about a tick: the bit-identity key for the
    // calibrate-off golden contract.
    let key = |res: &TickResult| {
        let s = &res.stats;
        format!(
            "tick={} rate={:?} answers={:?} exhausted={} stats=({:?} {:?} {} {} {} {:?} {:?})",
            res.tick,
            res.rate,
            res.answers,
            res.budget_exhausted,
            s.rate,
            s.work,
            s.iterations,
            s.operator,
            s.objects,
            s.iter_histogram,
            s.cpu_est
        )
    };
    let relation = || BondRelation::from_universe(&BondUniverse::generate(BONDS, seed));
    let config = |calibrate: bool| {
        ServerConfig {
            budget: Some(BUDGET),
            workers: 1,
            batch: Some(4),
            ..ServerConfig::default()
        }
        .with_calibration(calibrate)
    };
    let workload = server_workload(BONDS, SUBSCRIPTIONS);

    let mut raw = Server::new(lab.pricer, relation(), config(false));
    let mut golden = Server::new(lab.pricer, relation(), config(false));
    let mut calibrated = Server::new(lab.pricer, relation(), config(true));
    for q in &workload {
        raw.subscribe(q.clone(), 1).expect("subscribe raw");
        golden.subscribe(q.clone(), 1).expect("subscribe golden");
        calibrated
            .subscribe(q.clone(), 1)
            .expect("subscribe calibrated");
    }

    let partials = |res: &TickResult| {
        res.answers
            .iter()
            .filter(|(_, a)| matches!(a, Answer::Partial { .. }))
            .count() as u64
    };
    // Per-round admission error: how far the summed estCPU the budget
    // gate admitted landed from the work the meter then charged.
    let round_error = |rec: &Recorder| {
        let mut rounds = 0u64;
        let mut err = 0u64;
        for e in rec.events() {
            if let TraceEvent::Round(r) = e {
                rounds += 1;
                err += r.est_cpu.abs_diff(r.work);
            }
        }
        (rounds, err)
    };

    let mut rows = Vec::new();
    for t in 0..ticks {
        let rate = lab.rate + t as f64 * 5e-4;
        let mut raw_rec = Recorder::new();
        let raw_res = raw
            .tick_with_observer(rate, &mut raw_rec)
            .expect("uncalibrated tick");
        let golden_res = golden.tick(rate).expect("golden tick");
        let mut cal_rec = Recorder::new();
        let cal_res = calibrated
            .tick_with_observer(rate, &mut cal_rec)
            .expect("calibrated tick");

        let (raw_rounds, raw_abs_error) = round_error(&raw_rec);
        let (calibrated_rounds, calibrated_abs_error) = round_error(&cal_rec);
        let tenant = calibrated
            .catalog()
            .by_name(DEFAULT_RELATION)
            .expect("default relation");
        rows.push(CalibrationScalingRow {
            tick: raw_res.tick,
            raw_rounds,
            raw_abs_error,
            raw_partials: partials(&raw_res),
            calibrated_rounds,
            calibrated_abs_error,
            calibrated_partials: partials(&cal_res),
            observations: tenant.calibration_observations(),
            gain_ppm: tenant.calibration_gain_ppm(),
            off_identical: key(&golden_res) == key(&raw_res),
        });
    }
    rows
}

/// Runs the traditional selection for completeness/answer checking
/// (its work is query-independent; see [`Lab::traditional_work`]).
pub fn traditional_selection_answer(lab: &Lab, op: CmpOp, constant: f64) -> Vec<usize> {
    let mut meter = WorkMeter::new();
    traditional_select(&lab.specs, op, constant, &mut meter)
}

/// Convenience wrapper used by tests: the black-box specs of a lab.
#[must_use]
pub fn specs(lab: &Lab) -> &[BlackBoxSpec] {
    &lab.specs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab() -> Lab {
        Lab::new(24, 7)
    }

    #[test]
    fn calibration_closes_admission_error_without_costing_answers() {
        let lab = lab();
        let rows = calibration_scaling(&lab, 6, 7);
        assert_eq!(rows.len(), 6);
        assert!(
            rows.iter().all(|r| r.off_identical),
            "calibrate-off replay must be bit-identical"
        );
        let raw_rounds: u64 = rows.iter().map(|r| r.raw_rounds).sum();
        let raw_err: u64 = rows.iter().map(|r| r.raw_abs_error).sum();
        let cal_rounds: u64 = rows.iter().map(|r| r.calibrated_rounds).sum();
        let cal_err: u64 = rows.iter().map(|r| r.calibrated_abs_error).sum();
        let raw_mean = raw_err as f64 / raw_rounds.max(1) as f64;
        let cal_mean = cal_err as f64 / cal_rounds.max(1) as f64;
        assert!(
            cal_mean < raw_mean,
            "calibration must strictly lower mean |estCPU - work| per round: {cal_mean:.3} vs {raw_mean:.3}"
        );
        let raw_partials: u64 = rows.iter().map(|r| r.raw_partials).sum();
        let cal_partials: u64 = rows.iter().map(|r| r.calibrated_partials).sum();
        assert!(
            cal_partials <= raw_partials,
            "calibration must not cost answers at fixed budget: {cal_partials} vs {raw_partials}"
        );
        let last = rows.last().expect("rows");
        assert!(last.observations > 0, "model must have warmed");
        assert!(last.gain_ppm > 0);
    }

    #[test]
    fn selection_sweep_beats_traditional_everywhere() {
        let lab = lab();
        let rows = selection_sweep(&lab, CmpOp::Gt, &[0.1, 0.5, 0.9]);
        for r in &rows {
            assert!(
                r.speedup() > 5.0,
                "selectivity {}: speedup only {:.1}",
                r.selectivity,
                r.speedup()
            );
            let expected = (r.selectivity * lab.len() as f64).round() as usize;
            assert_eq!(r.selected, expected, "selectivity {}", r.selectivity);
        }
    }

    #[test]
    fn gt_and_lt_runtimes_mirror() {
        // §6.1: runtime for selectivity s with `>` equals runtime for 1-s
        // with `<` because the constants coincide.
        let lab = lab();
        let gt = selection_sweep(&lab, CmpOp::Gt, &[0.25]);
        let lt = selection_sweep(&lab, CmpOp::Lt, &[0.75]);
        assert!((gt[0].constant - lt[0].constant).abs() < 1e-9);
        assert_eq!(gt[0].vao_work, lt[0].vao_work);
    }

    #[test]
    fn fig10_pathological_sigma_zero_is_worse_than_traditional() {
        let lab = lab();
        let rows = fig10_selection_stress(&lab, &[0.0, 1.0], 3);
        assert!(
            rows[0].speedup() < 1.0,
            "σ=0 must lose to traditional, got speedup {:.2}",
            rows[0].speedup()
        );
        assert!(
            rows[1].speedup() > 1.0,
            "σ=$1 must beat traditional, got {:.2}",
            rows[1].speedup()
        );
        assert!(rows[1].vao_work < rows[0].vao_work);
    }

    #[test]
    fn max_table_ordering_matches_paper() {
        let lab = lab();
        let rows = max_table(&lab);
        let (opt, vao, trad) = (&rows[0], &rows[1], &rows[2]);
        assert_eq!(opt.operator, "Optimal");
        assert!(
            opt.work <= vao.work,
            "optimal {} vs vao {}",
            opt.work,
            vao.work
        );
        assert!(
            vao.work < trad.work / 2,
            "vao {} must clearly beat traditional {}",
            vao.work,
            trad.work
        );
    }

    #[test]
    fn fig11_sigma_zero_forces_full_convergence() {
        let lab = lab();
        let rows = fig11_max_stress(&lab, &[0.0, 1.0], 3);
        assert!(rows[0].speedup() < 1.0, "σ=0: {:.2}", rows[0].speedup());
        assert!(rows[1].speedup() > 1.0, "σ=$1: {:.2}", rows[1].speedup());
    }

    #[test]
    fn fig12_crossover_with_hot_share() {
        let lab = lab();
        let rows = fig12_sum_hotcold(&lab, &[0.10, 0.99], 5);
        // Uniform weights (hot share = hot fraction): VAO pays overhead.
        assert!(rows[0].speedup() < 1.0, "uniform: {:.2}", rows[0].speedup());
        // Concentrated weights: VAO wins.
        assert!(rows[1].speedup() > 1.0, "hot: {:.2}", rows[1].speedup());
        // Hybrid picks the right side at both extremes and is never much
        // worse than the best of the two.
        assert_eq!(rows[0].hybrid_choice, HybridChoice::Traditional);
        assert_eq!(rows[1].hybrid_choice, HybridChoice::Vao);
        for r in &rows {
            let best = r.vao_work.min(r.trad_work);
            assert!(
                r.hybrid_work <= best + best / 5,
                "hybrid {} vs best {}",
                r.hybrid_work,
                best
            );
        }
    }

    #[test]
    fn greedy_strategy_is_no_worse_than_ablations() {
        let lab = lab();
        let rows = ablation_strategies(&lab, 11);
        let greedy = &rows[0];
        assert_eq!(greedy.policy, "greedy");
        for r in &rows[1..] {
            assert!(
                greedy.max_work <= r.max_work + r.max_work / 10,
                "greedy MAX {} vs {} {}",
                greedy.max_work,
                r.policy,
                r.max_work
            );
        }
    }

    #[test]
    fn choose_cost_is_negligible() {
        let rows = ablation_choose_cost(&[8, 16], 7);
        for r in &rows {
            assert!(
                r.choose_fraction() < 0.01,
                "n={}: chooseIter is {:.4} of total",
                r.n,
                r.choose_fraction()
            );
        }
    }

    #[test]
    fn tick_amortization_cache_pays_off() {
        let lab = lab();
        let rows = tick_amortization(&lab, 8, 42);
        assert_eq!(rows.len(), 8);
        // First tick: cold cache costs as much as the plain VAO.
        assert_eq!(rows[0].cache_hits, 0);
        // Across the stream, the cached engine does strictly less work.
        let plain: u64 = rows.iter().map(|r| r.vao_work).sum();
        let cached: u64 = rows.iter().map(|r| r.cached_work).sum();
        assert!(cached < plain, "cached {cached} vs plain {plain}");
        // And hits appear once the band is revisited.
        assert!(rows.iter().skip(1).any(|r| r.cache_hits > 0));
    }

    #[test]
    fn sweep_and_max_table_carry_trace_metrics() {
        let lab = lab();
        let dir = std::env::temp_dir().join("va_bench_experiments_trace_test");
        let path = dir.join("trace.jsonl");
        let mut w = TraceWriter::create(&path).unwrap();

        let rows = selection_sweep_traced(&lab, CmpOp::Gt, &[0.5], Some(&mut w));
        assert_eq!(rows[0].objects, lab.len());
        assert!(rows[0].iterations() > 0, "sweep saw no iterations");
        assert!(rows[0].mean_iterations_per_object() > 0.0);

        let max_rows = max_table_traced(&lab, Some(&mut w));
        let vao = &max_rows[1];
        assert_eq!(vao.operator, "VAO");
        // The recorder and the meter agree on the iteration count.
        assert_eq!(vao.cpu_est.iterations, vao.iterations);
        assert!(vao.mean_iterations_per_object() > 0.0);
        // Untraced rows carry zeroed estimation stats.
        assert_eq!(max_rows[0].cpu_est, CpuEstimation::default());
        assert_eq!(max_rows[2].cpu_est, CpuEstimation::default());

        let lines = w.lines();
        assert!(lines > 0, "trace file stayed empty");
        w.finish().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count() as u64, lines);
        assert!(content.lines().all(|l| l.starts_with("{\"run\":\"")));
        assert!(content.contains("\"run\":\"max_table:vao\""));
        assert!(content.contains("\"run\":\"selection_gt:s=0.50\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn server_scaling_shares_work_and_degrades_under_budget() {
        let lab = lab();
        let rows = server_scaling(&lab, &[1, 4], None);
        assert_eq!(rows.len(), 6);
        for chunk in rows.chunks(3) {
            let (ind, shared, capped) = (&chunk[0], &chunk[1], &chunk[2]);
            assert_eq!(ind.mode, "independent");
            assert_eq!(shared.mode, "shared");
            assert_eq!(capped.mode, "shared_budgeted");
            // The shared pool never does more work than the independent
            // engines, and the half-budget tick never exceeds the shared
            // converged cost.
            assert!(
                shared.work_units <= ind.work_units,
                "q={}: shared {} vs independent {}",
                ind.queries,
                shared.work_units,
                ind.work_units
            );
            assert_eq!(shared.partial_answers, 0);
            assert!(capped.work_units <= shared.work_units);
            assert!(
                capped.partial_answers > 0,
                "q={}: half the work must leave partial answers",
                capped.queries
            );
        }
        // Multiple queries amortize: per-query shared work at 4 queries is
        // below the single-query cost.
        assert!(rows[4].work_per_query() < rows[1].work_units);
    }

    #[test]
    fn recovery_comparison_warm_restart_is_strictly_cheaper() {
        let lab = lab();
        let dir =
            std::env::temp_dir().join(format!("va_bench_recovery_test_{}", std::process::id()));
        let rows = recovery_comparison(&lab, &dir);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(rows.len(), 2);
        let (cold, warm) = (&rows[0], &rows[1]);
        assert_eq!((cold.mode, warm.mode), ("cold", "warm"));
        assert_eq!(cold.ratio, 1.0);
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {} iterations",
            warm.iterations,
            cold.iterations
        );
        assert!(warm.work_units < cold.work_units);
        assert!(warm.ratio < 1.0);
    }

    #[test]
    fn compaction_bounds_the_journal_where_unbounded_growth_does_not() {
        let lab = lab();
        let dir =
            std::env::temp_dir().join(format!("va_bench_compaction_test_{}", std::process::id()));
        let rows = compaction_growth(&lab, &dir);
        std::fs::remove_dir_all(&dir).ok();
        let compacted: Vec<_> = rows.iter().filter(|r| r.mode == "compacted").collect();
        let unbounded: Vec<_> = rows.iter().filter(|r| r.mode == "unbounded").collect();
        assert_eq!(compacted.len(), 4);
        assert_eq!(unbounded.len(), 4);
        let (c_last, u_last) = (compacted.last().unwrap(), unbounded.last().unwrap());

        // Unbounded mode is the degenerate baseline: one ever-growing
        // segment, every event replayed at recovery.
        assert!(unbounded.iter().all(|r| r.segments == 1));
        assert!(u_last.replayed_events > u_last.ticks, "replays everything");
        assert!(
            u_last.journal_bytes > unbounded[0].journal_bytes * 4,
            "the unbounded journal grows with the tick count"
        );

        // Compaction keeps disk and replay O(snapshot_every) regardless of
        // history length: at most two retained snapshot intervals plus the
        // active segment, and a replay bounded by the snapshot cadence.
        assert!(c_last.segments <= 3, "{} live segments", c_last.segments);
        assert!(c_last.snapshots <= 2, "{} snapshots kept", c_last.snapshots);
        assert!(
            c_last.replayed_events < c_last.snapshot_every * 2,
            "replay must be bounded by the snapshot cadence, got {}",
            c_last.replayed_events
        );
        assert!(
            c_last.journal_bytes < u_last.journal_bytes / 4,
            "compacted {} bytes vs unbounded {} bytes after {} ticks",
            c_last.journal_bytes,
            u_last.journal_bytes,
            c_last.ticks
        );
        // Flat, not merely slower growth: 8x the ticks must not cost more
        // than a small constant factor in retained bytes.
        assert!(
            c_last.journal_bytes <= compacted[0].journal_bytes.max(1) * 4,
            "compacted journal must stay flat: {} bytes at {} ticks vs {} at {}",
            c_last.journal_bytes,
            c_last.ticks,
            compacted[0].journal_bytes,
            compacted[0].ticks
        );
    }

    #[test]
    fn parallel_scaling_serial_row_matches_and_batches_cut_rounds() {
        let lab = lab();
        let rows = parallel_scaling(&lab, &[1, 4]);
        assert_eq!(rows.len(), 2);
        let (serial, batched) = (&rows[0], &rows[1]);
        assert_eq!(serial.workers, 1);
        assert!(
            serial.matches_serial,
            "workers=1 must reproduce the serial schedule"
        );
        assert_eq!(serial.iterations, serial.rounds, "serial: one pick/round");
        // A batch of 4 runs strictly fewer scheduling rounds, and every
        // answer still converged (no budget in this sweep).
        assert!(batched.rounds < serial.rounds);
        assert!(batched.iterations >= serial.iterations);
    }

    #[test]
    fn sketch_scaling_prunes_work_and_keeps_containment() {
        let lab = lab();
        let rows = sketch_scaling(&lab, 0.5);
        assert_eq!(rows.len(), SKETCH_PHIS.len());
        for r in &rows {
            assert!(
                r.contained,
                "φ={}: [{}, {}] must contain the exact value {}",
                r.phi, r.lo, r.hi, r.exact
            );
            assert!(r.hi - r.lo <= r.epsilon + 1e-9, "φ={}: width over ε", r.phi);
            assert!(
                r.work_ratio() >= 1.5,
                "φ={}: sketch tick {} vs exact pass {} is only {:.2}x",
                r.phi,
                r.sketch_work,
                r.exact_work,
                r.work_ratio()
            );
        }
        // One shared tick serves all eight subscriptions: every row reports
        // the same sketch cost.
        assert!(rows
            .windows(2)
            .all(|w| w[0].sketch_work == w[1].sketch_work));
    }

    #[test]
    fn traditional_answers_match_vao_selection() {
        let lab = lab();
        let constant = constant_for_selectivity(&lab.converged, CmpOp::Gt, 0.4);
        let trad = traditional_selection_answer(&lab, CmpOp::Gt, constant);
        let (count, _, _) = run_selection_vao(&lab, CmpOp::Gt, constant);
        assert_eq!(trad.len(), count);
        assert_eq!(specs(&lab).len(), lab.len());
    }
}
