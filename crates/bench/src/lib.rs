//! # va-bench — experiment drivers for every table and figure in §6
//!
//! Each function in [`experiments`] regenerates one of the paper's
//! artifacts (Figures 8–12 and the §6.2 MAX runtime table) plus ablations,
//! returning structured rows. The `harness` binary prints them and writes
//! CSVs; the Criterion benches wrap the same drivers for wall-clock
//! measurement.
//!
//! Runtimes are reported in deterministic **work units** (mesh entries
//! computed — see `vao::cost`) as the primary metric, with wall-clock as a
//! secondary column. The paper reports seconds on a 2.4 GHz Pentium 4;
//! shapes, crossovers and ratios are the comparison targets, not absolute
//! values (see EXPERIMENTS.md).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod report;
pub mod setup;

pub use setup::Lab;
