//! Microbenchmarks of the numerical substrate: mesh solves, tridiagonal
//! systems, quadrature ladder levels and bisection steps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bondlab::model::{BondPde, ShortRateModel};
use bondlab::Bond;
use va_numerics::pde::{solve_on_mesh, SolverConfig};
use va_numerics::integrate::TrapezoidLadder;
use va_numerics::roots::bisect;
use va_numerics::tridiag::solve_tridiagonal;

fn bench(c: &mut Criterion) {
    let bond = Bond::new(0, 0.07, 29.5, 100.0);
    let problem = BondPde::new(bond, ShortRateModel::default(), 0.0583);
    let cfg = SolverConfig::default();

    let mut group = c.benchmark_group("pde_solve");
    for (nx, nt) in [(8u32, 4u32), (32, 16), (128, 64), (256, 256)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nx}x{nt}")),
            &(nx, nt),
            |b, &(nx, nt)| {
                b.iter(|| solve_on_mesh(&problem, nx, nt, &cfg).unwrap().value);
            },
        );
    }
    group.finish();

    c.bench_function("tridiag_1k", |b| {
        let n = 1000;
        let sub = vec![-1.0; n];
        let diag = vec![4.0; n];
        let sup = vec![-1.0; n];
        let rhs = vec![1.0; n];
        b.iter(|| solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap());
    });

    c.bench_function("trapezoid_ladder_to_level_12", |b| {
        b.iter(|| {
            let mut ladder = TrapezoidLadder::new(|x: f64| x.sin() * x.exp(), 0.0, 2.0);
            for _ in 0..12 {
                ladder.advance();
            }
            ladder.estimate()
        });
    });

    c.bench_function("bisection_to_1e-12", |b| {
        b.iter(|| bisect(&|x: f64| x * x - 2.0, 0.0, 2.0, 1e-12, 100).unwrap());
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
