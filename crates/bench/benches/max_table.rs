//! §6.2 table wall-clock bench: MAX via Optimal, VAO and Traditional.

use criterion::{criterion_group, criterion_main, Criterion};
use va_bench::Lab;
use vao::cost::WorkMeter;
use vao::ops::minmax::max_vao;
use vao::ops::oracle::oracle_max;
use vao::precision::PrecisionConstraint;

fn bench(c: &mut Criterion) {
    let lab = Lab::new(48, 1994);
    let eps = PrecisionConstraint::new(0.01).unwrap();
    let true_argmax = lab
        .converged
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();

    let mut group = c.benchmark_group("max_table");
    group.sample_size(10);
    group.bench_function("optimal", |b| {
        b.iter(|| {
            let mut meter = WorkMeter::new();
            let mut objs = lab.objects(&mut meter);
            oracle_max(&mut objs, true_argmax, eps, &mut meter).unwrap();
            meter.total()
        });
    });
    group.bench_function("vao", |b| {
        b.iter(|| {
            let mut meter = WorkMeter::new();
            let mut objs = lab.objects(&mut meter);
            max_vao(&mut objs, eps, &mut meter).unwrap();
            meter.total()
        });
    });
    group.bench_function("traditional", |b| {
        b.iter(|| lab.traditional_execute());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
