//! Ablation benches: iteration-choice policies on MAX, and the chooseIter
//! overhead claim of §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use va_bench::Lab;
use vao::cost::WorkMeter;
use vao::ops::minmax::{max_vao_with, AggregateConfig};
use vao::precision::PrecisionConstraint;
use vao::strategy::ChoicePolicy;

fn bench(c: &mut Criterion) {
    let lab = Lab::new(48, 1994);
    let eps = PrecisionConstraint::new(0.01).unwrap();
    let mut group = c.benchmark_group("ablation_strategy_max");
    group.sample_size(10);
    let policies: [(&str, fn() -> ChoicePolicy); 4] = [
        ("greedy", ChoicePolicy::greedy),
        ("round-robin", ChoicePolicy::round_robin),
        ("widest-first", ChoicePolicy::widest_first),
        ("random", || ChoicePolicy::random(7)),
    ];
    for (name, make) in policies {
        group.bench_with_input(BenchmarkId::from_parameter(name), &make, |b, make| {
            b.iter(|| {
                let mut meter = WorkMeter::new();
                let mut objs = lab.objects(&mut meter);
                let mut config = AggregateConfig {
                    policy: make(),
                    ..AggregateConfig::default()
                };
                max_vao_with(&mut objs, eps, &mut config, &mut meter).unwrap();
                meter.total()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
