//! Figure 9 wall-clock bench: selection `price < c` across selectivities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use va_bench::experiments::run_selection_vao;
use va_bench::Lab;
use va_workloads::constant_for_selectivity;
use vao::ops::selection::CmpOp;

fn bench(c: &mut Criterion) {
    let lab = Lab::new(48, 1994);
    let mut group = c.benchmark_group("fig9_selection_lt");
    group.sample_size(10);
    for s in [0.1, 0.5, 0.9] {
        let constant = constant_for_selectivity(&lab.converged, CmpOp::Lt, s);
        group.bench_with_input(BenchmarkId::new("vao", format!("sel={s}")), &constant, |b, &c0| {
            b.iter(|| run_selection_vao(&lab, CmpOp::Lt, c0));
        });
    }
    group.bench_function("traditional", |b| {
        b.iter(|| lab.traditional_execute());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
