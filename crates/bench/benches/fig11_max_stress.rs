//! Figure 11 wall-clock bench: MAX stress with lower-half Gaussian
//! clustering of results under the maximum.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use va_bench::Lab;
use va_workloads::{SyntheticMapping, TargetDistribution};
use vao::cost::WorkMeter;
use vao::ops::minmax::max_vao;
use vao::precision::PrecisionConstraint;

fn bench(c: &mut Criterion) {
    let lab = Lab::new(48, 1994);
    let eps = PrecisionConstraint::new(0.01).unwrap();
    let mut group = c.benchmark_group("fig11_max_stress");
    group.sample_size(10);
    for std_dev in [0.0, 0.1, 1.0] {
        let mapping = SyntheticMapping::generate(
            &lab.converged,
            TargetDistribution::LowerHalfGaussian { max: 100.0, std_dev },
            7,
        );
        group.bench_with_input(
            BenchmarkId::new("vao", format!("sigma={std_dev}")),
            &mapping,
            |b, mapping| {
                b.iter(|| {
                    let mut meter = WorkMeter::new();
                    let mut objs = lab.synthetic_objects(mapping, &mut meter);
                    max_vao(&mut objs, eps, &mut meter).unwrap();
                    meter.total()
                });
            },
        );
    }
    group.bench_function("traditional", |b| {
        b.iter(|| lab.traditional_execute());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
