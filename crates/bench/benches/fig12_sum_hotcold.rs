//! Figure 12 wall-clock bench: SUM with hot-cold weights, VAO vs
//! traditional vs the hybrid extension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use va_bench::Lab;
use va_workloads::HotColdWeights;
use vao::cost::WorkMeter;
use vao::ops::hybrid::{hybrid_weighted_sum, HybridConfig};
use vao::ops::minmax::AggregateConfig;
use vao::ops::sum::weighted_sum_vao;
use vao::precision::PrecisionConstraint;

fn bench(c: &mut Criterion) {
    let lab = Lab::new(48, 1994);
    let n = lab.len();
    let eps = PrecisionConstraint::new(n as f64 * 0.01 * (1.0 + 1e-9)).unwrap();
    let mut group = c.benchmark_group("fig12_sum_hotcold");
    group.sample_size(10);
    for share in [0.1, 0.5, 0.9] {
        let weights = HotColdWeights::paper_scheme(n, share, 5);
        group.bench_with_input(
            BenchmarkId::new("vao", format!("hot={share}")),
            &weights,
            |b, w| {
                b.iter(|| {
                    let mut meter = WorkMeter::new();
                    let mut objs = lab.objects(&mut meter);
                    weighted_sum_vao(&mut objs, w.weights(), eps, &mut meter).unwrap();
                    meter.total()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hybrid", format!("hot={share}")),
            &weights,
            |b, w| {
                b.iter(|| {
                    let mut meter = WorkMeter::new();
                    let mut objs = lab.objects(&mut meter);
                    hybrid_weighted_sum(
                        &mut objs,
                        w.weights(),
                        &lab.specs,
                        eps,
                        &HybridConfig::default(),
                        &mut AggregateConfig::default(),
                        &mut meter,
                    )
                    .unwrap();
                    meter.total()
                });
            },
        );
    }
    group.bench_function("traditional", |b| {
        b.iter(|| lab.traditional_execute());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
