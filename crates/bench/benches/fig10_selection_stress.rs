//! Figure 10 wall-clock bench: selection stress with Gaussian result
//! distributions centered on the constant (σ = 0 is the pathological case).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use va_bench::Lab;
use va_workloads::{SyntheticMapping, TargetDistribution};
use vao::cost::WorkMeter;
use vao::ops::selection::{CmpOp, SelectionVao};

fn bench(c: &mut Criterion) {
    let lab = Lab::new(48, 1994);
    let constant = 100.0;
    let mut group = c.benchmark_group("fig10_selection_stress");
    group.sample_size(10);
    for std_dev in [0.0, 0.05, 1.0] {
        let mapping = SyntheticMapping::generate(
            &lab.converged,
            TargetDistribution::Gaussian { mean: constant, std_dev },
            7,
        );
        group.bench_with_input(
            BenchmarkId::new("vao", format!("sigma={std_dev}")),
            &mapping,
            |b, mapping| {
                b.iter(|| {
                    let mut meter = WorkMeter::new();
                    let vao = SelectionVao::new(CmpOp::Gt, constant).unwrap();
                    for (i, &bond) in lab.universe.bonds().iter().enumerate() {
                        let mut obj = mapping.wrap(i, lab.pricer.price(bond, lab.rate, &mut meter));
                        vao.evaluate(&mut obj, &mut meter).unwrap();
                    }
                    meter.total()
                });
            },
        );
    }
    group.bench_function("traditional", |b| {
        b.iter(|| lab.traditional_execute());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
