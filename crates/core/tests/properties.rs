//! Property-based tests for the VAO operator invariants.
//!
//! Result objects are generated as *nested interval scripts* around a known
//! true value, which makes them sound by construction (every refinement
//! contains the truth). The operators must then never lose the truth, never
//! disagree with ground-truth answers on well-separated inputs, and respect
//! their precision constraints regardless of the refinement schedules.

use proptest::prelude::*;

use vao::cost::WorkMeter;
use vao::interface::ResultObject;
use vao::ops::minmax::{max_vao, max_vao_with, min_vao, AggregateConfig};
use vao::ops::selection::{select, CmpOp};
use vao::ops::sum::weighted_sum_vao;
use vao::ops::traditional::calibrate;
use vao::precision::PrecisionConstraint;
use vao::strategy::ChoicePolicy;
use vao::testkit::ScriptedObject;
use vao::Bounds;

const MIN_WIDTH: f64 = 0.01;

/// A sound refinement script: nested intervals around `truth`, ending
/// below `MIN_WIDTH`.
fn nested_script(truth: f64, lo_pad: f64, hi_pad: f64, shrinks: &[f64]) -> Vec<(f64, f64)> {
    let mut lo_d = lo_pad.max(0.5);
    let mut hi_d = hi_pad.max(0.5);
    let mut script = vec![(truth - lo_d, truth + hi_d)];
    for &s in shrinks {
        lo_d *= s;
        hi_d *= s;
        script.push((truth - lo_d, truth + hi_d));
    }
    // Force convergence on the last step.
    let w = MIN_WIDTH * 0.4;
    script.push((truth - w, truth + w));
    script
}

fn script_strategy(
    value_range: std::ops::Range<f64>,
) -> impl Strategy<Value = (f64, Vec<(f64, f64)>)> {
    (
        value_range,
        0.5f64..20.0,
        0.5f64..20.0,
        prop::collection::vec(0.3f64..0.8, 1..8),
        1u64..200,
    )
        .prop_map(|(truth, lo_pad, hi_pad, shrinks, _cost)| {
            (truth, nested_script(truth, lo_pad, hi_pad, &shrinks))
        })
}

fn objects_strategy(n: usize) -> impl Strategy<Value = Vec<(f64, Vec<(f64, f64)>)>> {
    prop::collection::vec(script_strategy(50.0..150.0), 1..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bounds_intersection_is_contained_in_both(
        a_lo in -100.0f64..100.0, a_w in 0.0f64..50.0,
        b_lo in -100.0f64..100.0, b_w in 0.0f64..50.0,
    ) {
        let a = Bounds::new(a_lo, a_lo + a_w);
        let b = Bounds::new(b_lo, b_lo + b_w);
        if let Some(i) = a.intersect(&b) {
            prop_assert!(i.lo() >= a.lo() && i.hi() <= a.hi());
            prop_assert!(i.lo() >= b.lo() && i.hi() <= b.hi());
            prop_assert!(a.overlaps(&b));
            prop_assert!((a.overlap(&b) - i.width()).abs() < 1e-9);
        } else {
            prop_assert!(!a.overlaps(&b));
            prop_assert_eq!(a.overlap(&b), 0.0);
        }
    }

    #[test]
    fn bounds_negate_is_involutive_and_width_preserving(
        lo in -100.0f64..100.0, w in 0.0f64..50.0,
    ) {
        let b = Bounds::new(lo, lo + w);
        prop_assert_eq!(b.negate().negate(), b);
        prop_assert!((b.negate().width() - b.width()).abs() < 1e-12);
    }

    #[test]
    fn scripted_object_never_loses_truth((truth, script) in script_strategy(-50.0..50.0)) {
        let mut obj = ScriptedObject::converging(&script, 10, MIN_WIDTH);
        let mut meter = WorkMeter::new();
        prop_assert!(obj.bounds().contains(truth));
        while !obj.converged() {
            let b = obj.iterate(&mut meter);
            prop_assert!(b.contains(truth));
        }
        prop_assert!(obj.bounds().width() < MIN_WIDTH);
    }

    #[test]
    fn selection_agrees_with_ground_truth(
        (truth, script) in script_strategy(50.0..150.0),
        constant in 50.0f64..150.0,
        op_idx in 0usize..4,
    ) {
        let op = [CmpOp::Gt, CmpOp::Ge, CmpOp::Lt, CmpOp::Le][op_idx];
        let mut obj = ScriptedObject::converging(&script, 10, MIN_WIDTH);
        let mut meter = WorkMeter::new();
        let out = select(&mut obj, op, constant, &mut meter).unwrap();
        // When the constant is well separated from the truth, the answer
        // must match ground truth exactly.
        if (truth - constant).abs() > MIN_WIDTH {
            prop_assert_eq!(out.satisfied, op.eval(truth, constant),
                "op {} truth {} constant {}", op, truth, constant);
            prop_assert!(!out.decided_at_min_width);
        }
    }

    #[test]
    fn selection_never_costs_more_than_calibration(
        (_, script) in script_strategy(50.0..150.0),
        constant in 0.0f64..200.0,
    ) {
        let mut sel_meter = WorkMeter::new();
        let mut obj = ScriptedObject::converging(&script, 10, MIN_WIDTH);
        let _ = select(&mut obj, CmpOp::Gt, constant, &mut sel_meter).unwrap();

        let mut cal_meter = WorkMeter::new();
        let mut obj2 = ScriptedObject::converging(&script, 10, MIN_WIDTH);
        let _ = calibrate(&mut obj2, &mut cal_meter).unwrap();
        prop_assert!(sel_meter.total() <= cal_meter.total(),
            "selection may stop early but never works harder than full convergence");
    }

    #[test]
    fn max_vao_finds_the_true_maximum(objs in objects_strategy(8)) {
        let truths: Vec<f64> = objs.iter().map(|(t, _)| *t).collect();
        let mut scripted: Vec<ScriptedObject> = objs
            .iter()
            .map(|(_, s)| ScriptedObject::converging(s, 10, MIN_WIDTH))
            .collect();
        let mut meter = WorkMeter::new();
        let eps = PrecisionConstraint::new(MIN_WIDTH).unwrap();
        let res = max_vao(&mut scripted, eps, &mut meter).unwrap();

        let best = truths.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // The winner's truth must be within minWidth of the true maximum
        // (exact argmax is unknowable for values closer than the stopping
        // accuracy — the paper's stopping case 2).
        prop_assert!(truths[res.argext] > best - MIN_WIDTH,
            "winner {} vs best {}", truths[res.argext], best);
        prop_assert!(res.bounds.contains(truths[res.argext]));
    }

    #[test]
    fn min_vao_finds_the_true_minimum(objs in objects_strategy(8)) {
        let truths: Vec<f64> = objs.iter().map(|(t, _)| *t).collect();
        let mut scripted: Vec<ScriptedObject> = objs
            .iter()
            .map(|(_, s)| ScriptedObject::converging(s, 10, MIN_WIDTH))
            .collect();
        let mut meter = WorkMeter::new();
        let eps = PrecisionConstraint::new(MIN_WIDTH).unwrap();
        let res = min_vao(&mut scripted, eps, &mut meter).unwrap();
        let best = truths.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(truths[res.argext] < best + MIN_WIDTH);
        prop_assert!(res.bounds.contains(truths[res.argext]));
    }

    #[test]
    fn max_answer_is_policy_independent(objs in objects_strategy(6)) {
        let truths: Vec<f64> = objs.iter().map(|(t, _)| *t).collect();
        let eps = PrecisionConstraint::new(MIN_WIDTH).unwrap();
        let mut winners = Vec::new();
        for policy in [
            ChoicePolicy::greedy(),
            ChoicePolicy::round_robin(),
            ChoicePolicy::random(7),
            ChoicePolicy::widest_first(),
        ] {
            let mut scripted: Vec<ScriptedObject> = objs
                .iter()
                .map(|(_, s)| ScriptedObject::converging(s, 10, MIN_WIDTH))
                .collect();
            let mut meter = WorkMeter::new();
            let mut config = AggregateConfig { policy, iteration_limit: 100_000 };
            let res = max_vao_with(&mut scripted, eps, &mut config, &mut meter).unwrap();
            winners.push(truths[res.argext]);
        }
        // All policies must land on values within minWidth of each other.
        let lo = winners.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = winners.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(hi - lo <= MIN_WIDTH + 1e-12, "winners disagree: {:?}", winners);
    }

    #[test]
    fn weighted_sum_bounds_contain_true_sum(
        objs in objects_strategy(8),
        weight_seed in 0u64..1000,
    ) {
        let n = objs.len();
        // Deterministic pseudo-random nonnegative weights.
        let weights: Vec<f64> = (0..n)
            .map(|i| {
                let x = weight_seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64 * 1442695040888963407);
                (x >> 33) as f64 / (1u64 << 31) as f64 * 5.0
            })
            .collect();
        let true_sum: f64 = objs.iter().zip(&weights).map(|((t, _), w)| t * w).sum();
        let floor: f64 = weights.iter().map(|w| w * MIN_WIDTH).sum();
        let epsilon = (floor * 2.0).max(1e-6);

        let mut scripted: Vec<ScriptedObject> = objs
            .iter()
            .map(|(_, s)| ScriptedObject::converging(s, 10, MIN_WIDTH))
            .collect();
        let mut meter = WorkMeter::new();
        let res = weighted_sum_vao(
            &mut scripted,
            &weights,
            PrecisionConstraint::new(epsilon).unwrap(),
            &mut meter,
        )
        .unwrap();
        prop_assert!(res.bounds.contains(true_sum),
            "bounds {} vs true sum {}", res.bounds, true_sum);
        prop_assert!(res.bounds.width() <= epsilon + 1e-9 || res.stopped_at_floor);
    }

    #[test]
    fn sum_with_tighter_epsilon_costs_at_least_as_much(objs in objects_strategy(6)) {
        let n = objs.len();
        let weights = vec![1.0; n];
        let floor = n as f64 * MIN_WIDTH;

        let run = |epsilon: f64| -> u64 {
            let mut scripted: Vec<ScriptedObject> = objs
                .iter()
                .map(|(_, s)| ScriptedObject::converging(s, 10, MIN_WIDTH))
                .collect();
            let mut meter = WorkMeter::new();
            weighted_sum_vao(
                &mut scripted,
                &weights,
                PrecisionConstraint::new(epsilon).unwrap(),
                &mut meter,
            )
            .unwrap();
            meter.breakdown().exec_iter
        };
        let loose = run(floor * 100.0);
        // Tiny headroom over the floor: summing n×minWidth in floating
        // point can land a hair above the nominal product.
        let tight = run(floor * 1.001);
        prop_assert!(tight >= loose, "tight ε must not be cheaper: {tight} < {loose}");
    }

    #[test]
    fn calibration_value_matches_truth((truth, script) in script_strategy(50.0..150.0)) {
        let mut obj = ScriptedObject::converging(&script, 10, MIN_WIDTH);
        let mut meter = WorkMeter::new();
        let spec = calibrate(&mut obj, &mut meter).unwrap();
        prop_assert!((spec.value - truth).abs() < MIN_WIDTH);
        prop_assert!(spec.final_width < MIN_WIDTH);
    }
}
