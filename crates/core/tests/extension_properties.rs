//! Property-based tests for the extension operators (Top-K, quantile,
//! COUNT, heap SUM, projection) against ground truth on sound nested
//! scripts.

use proptest::prelude::*;

use vao::cost::WorkMeter;
use vao::ops::count::count_vao;
use vao::ops::project::project_all;
use vao::ops::quantile::quantile_vao;
use vao::ops::selection::CmpOp;
use vao::ops::sum::weighted_sum_vao;
use vao::ops::sum_heap::weighted_sum_vao_heap;
use vao::ops::topk::topk_vao;
use vao::precision::PrecisionConstraint;
use vao::testkit::ScriptedObject;

const MIN_WIDTH: f64 = 0.01;

fn nested_script(truth: f64, lo_pad: f64, hi_pad: f64, shrinks: &[f64]) -> Vec<(f64, f64)> {
    let mut lo_d = lo_pad.max(0.5);
    let mut hi_d = hi_pad.max(0.5);
    let mut script = vec![(truth - lo_d, truth + hi_d)];
    for &s in shrinks {
        lo_d *= s;
        hi_d *= s;
        script.push((truth - lo_d, truth + hi_d));
    }
    let w = MIN_WIDTH * 0.4;
    script.push((truth - w, truth + w));
    script
}

fn objects_strategy(_max: usize) -> impl Strategy<Value = Vec<(f64, Vec<(f64, f64)>)>> {
    prop::collection::vec(
        (
            0.0f64..200.0,
            0.5f64..15.0,
            0.5f64..15.0,
            prop::collection::vec(0.3f64..0.8, 1..6),
        )
            .prop_map(|(truth, lo, hi, shrinks)| (truth, nested_script(truth, lo, hi, &shrinks))),
        2..=10,
    )
}

fn build(objs: &[(f64, Vec<(f64, f64)>)]) -> Vec<ScriptedObject> {
    objs.iter()
        .map(|(_, s)| ScriptedObject::converging(s, 10, MIN_WIDTH))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn topk_members_are_the_k_largest(objs in objects_strategy(10), k_frac in 0.1f64..1.0) {
        let truths: Vec<f64> = objs.iter().map(|(t, _)| *t).collect();
        let k = ((truths.len() as f64 * k_frac).ceil() as usize).clamp(1, truths.len());
        let mut scripted = build(&objs);
        let mut meter = WorkMeter::new();
        let res = topk_vao(
            &mut scripted,
            k,
            PrecisionConstraint::new(MIN_WIDTH).unwrap(),
            &mut meter,
        )
        .unwrap();
        prop_assert_eq!(res.members.len(), k);
        // Every member's truth must be >= every non-member's truth, up to
        // the minWidth indistinguishability band.
        let member_min = res
            .members
            .iter()
            .map(|&i| truths[i])
            .fold(f64::INFINITY, f64::min);
        for (i, &truth) in truths.iter().enumerate() {
            if !res.members.contains(&i) {
                prop_assert!(
                    truth <= member_min + MIN_WIDTH,
                    "non-member {} ({}) above member floor {}",
                    i, truth, member_min
                );
            }
        }
    }

    #[test]
    fn quantile_matches_sorted_order(objs in objects_strategy(10), k_frac in 0.0f64..1.0) {
        let truths: Vec<f64> = objs.iter().map(|(t, _)| *t).collect();
        let n = truths.len();
        let k = ((n as f64 * k_frac).floor() as usize).clamp(1, n);
        let mut scripted = build(&objs);
        let mut meter = WorkMeter::new();
        let res = quantile_vao(
            &mut scripted,
            k,
            PrecisionConstraint::new(MIN_WIDTH).unwrap(),
            &mut meter,
        )
        .unwrap();
        let mut sorted = truths.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.reverse();
        prop_assert!(
            (truths[res.argext] - sorted[k - 1]).abs() <= 2.0 * MIN_WIDTH,
            "rank {} returned {} want {}",
            k, truths[res.argext], sorted[k - 1]
        );
        prop_assert!(res.bounds.contains(truths[res.argext]));
    }

    #[test]
    fn exact_count_matches_ground_truth(
        objs in objects_strategy(10),
        constant in 0.0f64..200.0,
    ) {
        let truths: Vec<f64> = objs.iter().map(|(t, _)| *t).collect();
        // Skip draws with truths inside the equality band of the constant
        // (resolution there is minWidth-defined, not ground-truth-defined).
        prop_assume!(truths.iter().all(|t| (t - constant).abs() > MIN_WIDTH));
        let mut scripted = build(&objs);
        let mut meter = WorkMeter::new();
        let res = count_vao(&mut scripted, CmpOp::Gt, constant, 0, &mut meter).unwrap();
        let expected = truths.iter().filter(|&&t| t > constant).count();
        prop_assert_eq!(res.exact(), Some(expected));
    }

    #[test]
    fn count_slack_bounds_always_bracket_truth(
        objs in objects_strategy(10),
        constant in 0.0f64..200.0,
        slack in 0usize..10,
    ) {
        let truths: Vec<f64> = objs.iter().map(|(t, _)| *t).collect();
        prop_assume!(truths.iter().all(|t| (t - constant).abs() > MIN_WIDTH));
        let mut scripted = build(&objs);
        let mut meter = WorkMeter::new();
        let res = count_vao(&mut scripted, CmpOp::Gt, constant, slack, &mut meter).unwrap();
        let expected = truths.iter().filter(|&&t| t > constant).count();
        prop_assert!(res.count_lo <= expected && expected <= res.count_hi,
            "[{}, {}] vs {}", res.count_lo, res.count_hi, expected);
        prop_assert!(res.count_hi - res.count_lo <= slack);
    }

    #[test]
    fn heap_sum_matches_scan_sum_exactly(objs in objects_strategy(10)) {
        let n = objs.len();
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let floor: f64 = weights.iter().map(|w| w * MIN_WIDTH).sum();
        let eps = PrecisionConstraint::new(floor * 5.0).unwrap();

        let mut a = build(&objs);
        let mut ma = WorkMeter::new();
        let ra = weighted_sum_vao(&mut a, &weights, eps, &mut ma).unwrap();

        let mut b = build(&objs);
        let mut mb = WorkMeter::new();
        let rb = weighted_sum_vao_heap(&mut b, &weights, eps, &mut mb).unwrap();

        let true_sum: f64 = objs.iter().zip(&weights).map(|((t, _), w)| t * w).sum();
        prop_assert!(ra.bounds.contains(true_sum));
        prop_assert!(rb.bounds.contains(true_sum));
        prop_assert_eq!(ma.breakdown().exec_iter, mb.breakdown().exec_iter);
    }

    #[test]
    fn projection_meets_epsilon_and_contains_truth(
        objs in objects_strategy(8),
        eps_scale in 1.0f64..50.0,
    ) {
        let epsilon = PrecisionConstraint::new(MIN_WIDTH * eps_scale).unwrap();
        let mut scripted = build(&objs);
        let mut meter = WorkMeter::new();
        let out = project_all(&mut scripted, epsilon, &mut meter).unwrap();
        for (p, (truth, _)) in out.iter().zip(&objs) {
            prop_assert!(p.bounds.width() <= epsilon.epsilon() + 1e-12);
            prop_assert!(p.bounds.contains(*truth));
        }
        // Looser ε can only reduce work: rerun with 2x ε.
        let mut scripted2 = build(&objs);
        let mut meter2 = WorkMeter::new();
        let _ = project_all(
            &mut scripted2,
            PrecisionConstraint::new(MIN_WIDTH * eps_scale * 2.0).unwrap(),
            &mut meter2,
        )
        .unwrap();
        prop_assert!(meter2.breakdown().exec_iter <= meter.breakdown().exec_iter);
    }
}
