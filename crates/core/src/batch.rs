//! Lane-batched iteration interfaces.
//!
//! A mesh-refining result object spends its `iterate()` almost entirely
//! inside one fresh solve on a grid whose *shape* — not its contents — is
//! shared by every sibling object at the same refinement depth. Solvers can
//! exploit that: K objects whose next solves share a [`GridShape`] advance
//! in lockstep as K *lanes* of one struct-of-arrays sweep, turning K
//! pointer-chasing scalar solves into cache-line-friendly, auto-vectorizable
//! inner loops over contiguous lane planes.
//!
//! This module defines the solver-agnostic lane protocol. The core crate
//! knows nothing about tridiagonal systems or PDE meshes; it only fixes the
//! *contract* between a batch dispatcher (e.g. the `va-server` round
//! scheduler) and a batch-capable object:
//!
//! 1. The dispatcher groups objects by [`ResultObject::batch_shape`] and
//!    obtains each group member's lane view via
//!    [`ResultObject::as_batch_lane`].
//! 2. A batched stepper (in `va-numerics`) drives the group:
//!    [`BatchLane::lane_init`] once, [`BatchLane::lane_rhs`] per time step,
//!    and finally [`BatchLane::lane_commit`] with the converged state plane.
//! 3. Per-lane failures are isolated: a lane whose elimination dies reports
//!    a [`LaneFailure`] at commit and degrades exactly as its scalar
//!    `iterate()` would, while sibling lanes are unaffected.
//!
//! **Bit-identity.** The protocol is designed so a lane performs the *same
//! floating-point operations in the same order* as the scalar path — lanes
//! are interleaved in memory, never mixed arithmetically — so a batched
//! round must produce answers bit-identical to scalar execution. Estimates
//! stay honest per the paper's cost model: a batch's `estCPU` is the plain
//! sum of its lanes' individual `est_cpu()` values, each charged to that
//! lane's own meter at commit.
//!
//! [`ResultObject::batch_shape`]: crate::interface::ResultObject::batch_shape
//! [`ResultObject::as_batch_lane`]: crate::interface::ResultObject::as_batch_lane

use crate::bounds::Bounds;
use crate::cost::{Work, WorkMeter};

/// The grid a batch-capable object's next refinement would solve, used as
/// the grouping key for lane batching.
///
/// For the finite-difference PDE objects this is the mesh resolution: `nt`
/// backward time steps over `nx` space intervals (so each time step solves
/// a tridiagonal system of `nx + 1` rows). Two objects may share a shape
/// while differing in every coefficient — shape equality only promises the
/// sweeps have identical *structure*, which is all lockstep execution
/// needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridShape {
    /// Backward time steps (the lockstep sweep length).
    pub nt: u32,
    /// Space intervals; the per-step linear system has `nx + 1` rows.
    pub nx: u32,
}

impl GridShape {
    /// Rows of the per-step linear system (`nx + 1` mesh columns).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.nx as usize + 1
    }

    /// Total mesh entries, `nt · (nx + 1)` — the work units one lane's
    /// solve charges, identical to the scalar solver's accounting.
    #[must_use]
    pub fn cells(&self) -> Work {
        u64::from(self.nt) * (u64::from(self.nx) + 1)
    }
}

impl std::fmt::Display for GridShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.nt, self.nx)
    }
}

/// Where a lane's elimination first broke down inside a batched sweep.
///
/// Sibling lanes keep computing (IEEE arithmetic never traps), so the
/// stepper records the *first* failing position per lane and keeps going;
/// the failed lane's plane entries are garbage from this point on and must
/// never escape — [`BatchLane::lane_commit`] receives the failure instead
/// of trusting the state plane. The position matches what the scalar
/// solver would report: identical per-lane arithmetic fails at the
/// identical spot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneFailure {
    /// 1-based backward time step whose linear system was singular.
    pub step: u32,
    /// Row of the (numerically) zero pivot within that system.
    pub row: usize,
}

/// One lane of a shape-grouped batched solve.
///
/// All slice parameters are struct-of-arrays planes shared by every lane in
/// the group: the entry for row `i` of this lane lives at
/// `i * stride + offset`, where `stride` is the group's lane count and
/// `offset` is this lane's index. A lane only ever touches its own strided
/// entries, which is what keeps lane failures isolated.
///
/// # Contract
///
/// * [`lane_shape`](BatchLane::lane_shape) must agree with the object's
///   [`batch_shape`](crate::interface::ResultObject::batch_shape), and both
///   return `Some` only when the next `iterate()` would run one fresh
///   full-grid solve (not a cache hit, not converged, not capped).
/// * The `lane_init` → `lane_rhs`* → `lane_commit` sequence must charge and
///   mutate exactly what one scalar `iterate()` would: same meter charges
///   in the same categories, same cache and model updates, same bounds.
/// * `lane_commit` with a [`LaneFailure`] must leave the object in the
///   state its scalar `iterate()` enters when *its* solve fails (for the
///   PDE objects: refinement stops, bounds unchanged, nothing charged).
pub trait BatchLane {
    /// Shape of the next fresh solve, or `None` when the next step cannot
    /// join a batch (converged, capped, cache hit, or refinement
    /// impossible).
    fn lane_shape(&self) -> Option<GridShape>;

    /// Writes this lane's time-independent system coefficients into the
    /// `sub`/`diag`/`sup` band planes and its terminal (initial-sweep)
    /// values into the `state` plane.
    #[allow(clippy::too_many_arguments)] // the four planes ARE the interface
    fn lane_init(
        &self,
        shape: GridShape,
        sub: &mut [f64],
        diag: &mut [f64],
        sup: &mut [f64],
        state: &mut [f64],
        stride: usize,
        offset: usize,
    );

    /// Fills this lane's right-hand side for backward step `step`
    /// (1-based), reading the lane's current `state` plane.
    fn lane_rhs(
        &self,
        shape: GridShape,
        step: u32,
        state: &[f64],
        rhs: &mut [f64],
        stride: usize,
        offset: usize,
    );

    /// Commits the finished sweep: `state` holds the lane's solution at the
    /// end of the sweep unless `failure` is set (then its entries are
    /// garbage and must be ignored). Performs the post-solve bookkeeping of
    /// one scalar `iterate()` — charging `meter`, updating caches, models
    /// and bounds — and returns the object's new bounds.
    ///
    /// The returned bounds are the *implementing* object's; callers holding
    /// the object behind a bounds-transforming adapter should re-read
    /// `bounds()` through the adapter instead of using the return value.
    fn lane_commit(
        &mut self,
        shape: GridShape,
        state: &[f64],
        stride: usize,
        offset: usize,
        failure: Option<LaneFailure>,
        meter: &mut WorkMeter,
    ) -> Bounds;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::ResultObject;
    use crate::testkit::ScriptedObject;

    #[test]
    fn shape_geometry_matches_mesh_accounting() {
        let s = GridShape { nt: 16, nx: 8 };
        assert_eq!(s.rows(), 9);
        assert_eq!(s.cells(), 16 * 9);
        assert_eq!(s.to_string(), "16x8");
    }

    #[test]
    fn objects_are_scalar_only_by_default() {
        let mut obj = ScriptedObject::converging(&[(0.0, 1.0)], 1, 0.01);
        assert_eq!(obj.batch_shape(), None);
        assert!(obj.as_batch_lane().is_none());
    }
}
