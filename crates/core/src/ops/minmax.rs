//! The MIN and MAX aggregate VAOs (§5.1).
//!
//! Given a set of result objects `O`, MAX returns the bounds of an object
//! `o_max` such that every other object is either provably smaller
//! (`o_max.L > o_i.H`) or indistinguishable at full accuracy (overlapping
//! with both objects at their stopping conditions). The operator cannot
//! know `o_max` up front — finding it *is* the objective — so it maintains
//! an **educated guess** `o'_max` (the object with the highest upper bound)
//! and greedily picks the iteration with the highest estimated
//! overlap-reduction per CPU cycle between `o'_max` and the rest, revising
//! the guess whenever it loses the highest upper bound. MIN is symmetric
//! and implemented by running MAX over negated views of the objects.

use crate::adapters::Negated;
use crate::bounds::Bounds;
use crate::cost::{Work, WorkBreakdown, WorkMeter};
use crate::error::VaoError;
use crate::interface::ResultObject;
use crate::ops::DEFAULT_ITERATION_LIMIT;
use crate::precision::PrecisionConstraint;
use crate::strategy::{Candidate, ChoicePolicy};
use crate::trace::{
    observe_iteration, ExecObserver, NoopObserver, OperatorEndRecord, OperatorKind,
};

/// Result of a MIN/MAX evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtremeResult {
    /// Index of the winning object in the input set.
    pub argext: usize,
    /// Final bounds on the winner's value (width ≤ ε unless `ties` is
    /// non-empty and tied objects stopped the refinement earlier).
    pub bounds: Bounds,
    /// Objects that reached their stopping condition while still
    /// overlapping the winner — indistinguishable from it at full accuracy
    /// (stopping case 2 of §5.1).
    pub ties: Vec<usize>,
    /// Total `iterate()` calls issued.
    pub iterations: u64,
}

/// Tunables shared by the aggregate VAOs.
#[derive(Clone, Debug)]
pub struct AggregateConfig {
    /// Iteration-choice policy (the paper's operators use greedy).
    pub policy: ChoicePolicy,
    /// Defensive cap on total `iterate()` calls per evaluation.
    pub iteration_limit: u64,
}

impl Default for AggregateConfig {
    fn default() -> Self {
        Self {
            policy: ChoicePolicy::greedy(),
            iteration_limit: DEFAULT_ITERATION_LIMIT,
        }
    }
}

/// Evaluates MAX over `objs` with the default (greedy) configuration.
///
/// ```
/// use vao::cost::WorkMeter;
/// use vao::ops::minmax::max_vao;
/// use vao::precision::PrecisionConstraint;
/// use vao::testkit::ScriptedObject;
///
/// // Two bonds: the operator identifies the winner without fully
/// // converging the loser.
/// let mut objs = vec![
///     ScriptedObject::converging(&[(90.0, 101.0), (94.0, 96.0), (95.0, 95.005)], 10, 0.01),
///     ScriptedObject::converging(&[(98.0, 112.0), (104.0, 106.0), (105.0, 105.005)], 10, 0.01),
/// ];
/// let mut meter = WorkMeter::new();
/// let res = max_vao(&mut objs, PrecisionConstraint::new(0.01).unwrap(), &mut meter).unwrap();
/// assert_eq!(res.argext, 1);
/// assert!(res.bounds.contains(105.0));
/// ```
pub fn max_vao<R: ResultObject>(
    objs: &mut [R],
    epsilon: PrecisionConstraint,
    meter: &mut WorkMeter,
) -> Result<ExtremeResult, VaoError> {
    max_vao_with(objs, epsilon, &mut AggregateConfig::default(), meter)
}

/// Evaluates MIN over `objs` with the default (greedy) configuration.
pub fn min_vao<R: ResultObject>(
    objs: &mut [R],
    epsilon: PrecisionConstraint,
    meter: &mut WorkMeter,
) -> Result<ExtremeResult, VaoError> {
    min_vao_with(objs, epsilon, &mut AggregateConfig::default(), meter)
}

/// Evaluates MIN by running MAX over negated views of the objects and
/// reflecting the resulting bounds back.
pub fn min_vao_with<R: ResultObject>(
    objs: &mut [R],
    epsilon: PrecisionConstraint,
    config: &mut AggregateConfig,
    meter: &mut WorkMeter,
) -> Result<ExtremeResult, VaoError> {
    min_vao_traced(objs, epsilon, config, meter, &mut NoopObserver)
}

/// [`min_vao_with`] with an [`ExecObserver`] receiving the execution trace.
///
/// MIN runs MAX over negated views, and trace events are emitted from
/// inside that MAX loop: bounds in [`crate::trace::IterationRecord`]s are
/// in the **negated** domain (the operator kind is still reported as
/// [`OperatorKind::Min`]).
pub fn min_vao_traced<R: ResultObject, O: ExecObserver>(
    objs: &mut [R],
    epsilon: PrecisionConstraint,
    config: &mut AggregateConfig,
    meter: &mut WorkMeter,
    observer: &mut O,
) -> Result<ExtremeResult, VaoError> {
    let mut negated: Vec<Negated<&mut R>> = objs.iter_mut().map(Negated).collect();
    let res = max_impl(
        &mut negated,
        epsilon,
        config,
        meter,
        observer,
        OperatorKind::Min,
    )?;
    Ok(ExtremeResult {
        argext: res.argext,
        bounds: res.bounds.negate(),
        ties: res.ties,
        iterations: res.iterations,
    })
}

/// Evaluates MAX over `objs` with an explicit configuration.
///
/// # Errors
///
/// * [`VaoError::EmptyInput`] for an empty object set.
/// * [`VaoError::PrecisionTooTight`] if ε < max(minWidth) (footnote 10).
/// * [`VaoError::IterationLimitExceeded`] if the configured budget runs out
///   (only possible when a result object violates its progress contract).
pub fn max_vao_with<R: ResultObject>(
    objs: &mut [R],
    epsilon: PrecisionConstraint,
    config: &mut AggregateConfig,
    meter: &mut WorkMeter,
) -> Result<ExtremeResult, VaoError> {
    max_vao_traced(objs, epsilon, config, meter, &mut NoopObserver)
}

/// [`max_vao_with`] with an [`ExecObserver`] receiving the execution
/// trace: operator start/end, one [`crate::trace::ChoiceRecord`] per
/// strategy decision in the identification phase, and one
/// [`crate::trace::IterationRecord`] per `iterate()` call (phase-2 winner
/// refinement included, without choice events — there is nothing left to
/// choose).
pub fn max_vao_traced<R: ResultObject, O: ExecObserver>(
    objs: &mut [R],
    epsilon: PrecisionConstraint,
    config: &mut AggregateConfig,
    meter: &mut WorkMeter,
    observer: &mut O,
) -> Result<ExtremeResult, VaoError> {
    max_impl(objs, epsilon, config, meter, observer, OperatorKind::Max)
}

fn max_impl<R: ResultObject, O: ExecObserver>(
    objs: &mut [R],
    epsilon: PrecisionConstraint,
    config: &mut AggregateConfig,
    meter: &mut WorkMeter,
    observer: &mut O,
    kind: OperatorKind,
) -> Result<ExtremeResult, VaoError> {
    if objs.is_empty() {
        return Err(VaoError::EmptyInput);
    }
    epsilon.validate_single_object(objs)?;

    if observer.is_enabled() {
        observer.on_operator_start(kind, objs.len());
    }
    let work_start = meter.snapshot();
    let mut iterations = 0u64;

    // Phase 1: identify the maximum object.
    let (winner, ties) = loop {
        let guess = guess_max(objs);
        let guess_lo = objs[guess].bounds().lo();

        // Objects not provably below the guess (violating o'_max.L > o_i.H).
        let unresolved: Vec<usize> = (0..objs.len())
            .filter(|&i| i != guess && objs[i].bounds().hi() >= guess_lo)
            .collect();

        if unresolved.is_empty() {
            break (guess, Vec::new());
        }
        if objs[guess].converged() && unresolved.iter().all(|&i| objs[i].converged()) {
            // Stopping case 2: the guess and everything overlapping it hit
            // their stopping conditions — indistinguishable at full accuracy.
            break (guess, unresolved);
        }

        let candidates = score_candidates(objs, guess, &unresolved);
        // §5.1: choosing an iteration costs O(N) in the number of objects
        // still in contention.
        meter.charge_choose(candidates.len() as Work);

        let Some(pick) = config.policy.pick_traced(&candidates, observer) else {
            // No non-converged candidates should be impossible given the
            // stopping checks above; treat as a stall.
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        };
        let chosen = candidates[pick].index;

        if iterations >= config.iteration_limit {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        }
        let (est_cpu, snapshot) = if observer.is_enabled() {
            (objs[chosen].est_cpu(), meter.snapshot())
        } else {
            (0, WorkBreakdown::default())
        };
        let before = objs[chosen].bounds();
        let after = objs[chosen].iterate(meter);
        iterations += 1;
        if observer.is_enabled() {
            observe_iteration(
                observer, chosen, iterations, before, after, est_cpu, meter, &snapshot,
            );
        }
        if after == before && !objs[chosen].converged() {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        }
    };

    // Phase 2: refine the winner's bounds to the precision constraint.
    // (Cheap once the argmax is known; footnote 10 guarantees ε is
    // achievable because ε ≥ minWidth.)
    while objs[winner].bounds().width() > epsilon.epsilon() && !objs[winner].converged() {
        if iterations >= config.iteration_limit {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        }
        let (est_cpu, snapshot) = if observer.is_enabled() {
            (objs[winner].est_cpu(), meter.snapshot())
        } else {
            (0, WorkBreakdown::default())
        };
        let before = objs[winner].bounds();
        let after = objs[winner].iterate(meter);
        iterations += 1;
        if observer.is_enabled() {
            observe_iteration(
                observer, winner, iterations, before, after, est_cpu, meter, &snapshot,
            );
        }
        if after == before && !objs[winner].converged() {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        }
    }

    if observer.is_enabled() {
        observer.on_operator_end(&OperatorEndRecord {
            kind,
            iterations,
            work: meter.since(&work_start),
        });
    }
    Ok(ExtremeResult {
        argext: winner,
        bounds: objs[winner].bounds(),
        ties,
        iterations,
    })
}

/// The *envelope* MAX bounds of footnote 9:
/// `[max_i oᵢ.L, max_i oᵢ.H]` — the alternative definition used by the
/// approximate distributed-caching literature, where the two endpoints may
/// come from *different* objects. It costs no iterations at all, but it
/// does not identify which object is the maximum ("give me bounds on the
/// bond with maximum value" is unanswerable from it), which is why the
/// paper's MAX VAO uses the object-identifying definition instead.
pub fn max_envelope<R: ResultObject>(objs: &[R]) -> Result<Bounds, VaoError> {
    if objs.is_empty() {
        return Err(VaoError::EmptyInput);
    }
    let (lo, hi) = objs
        .iter()
        .fold((f64::NEG_INFINITY, f64::NEG_INFINITY), |(lo, hi), o| {
            let b = o.bounds();
            (lo.max(b.lo()), hi.max(b.hi()))
        });
    Ok(Bounds::new(lo, hi))
}

/// The envelope MIN bounds: `[min_i oᵢ.L, min_i oᵢ.H]` (footnote 9's exact
/// formula). See [`max_envelope`] for the trade-off against the paper's
/// object-identifying MIN.
pub fn min_envelope<R: ResultObject>(objs: &[R]) -> Result<Bounds, VaoError> {
    if objs.is_empty() {
        return Err(VaoError::EmptyInput);
    }
    let (lo, hi) = objs
        .iter()
        .fold((f64::INFINITY, f64::INFINITY), |(lo, hi), o| {
            let b = o.bounds();
            (lo.min(b.lo()), hi.min(b.hi()))
        });
    Ok(Bounds::new(lo, hi))
}

/// The educated guess `o'_max`: highest upper bound, ties broken by higher
/// lower bound and then lower index (deterministic).
fn guess_max<R: ResultObject>(objs: &[R]) -> usize {
    let mut best = 0;
    let mut best_b = objs[0].bounds();
    for (i, o) in objs.iter().enumerate().skip(1) {
        let b = o.bounds();
        if b.hi() > best_b.hi() || (b.hi() == best_b.hi() && b.lo() > best_b.lo()) {
            best = i;
            best_b = b;
        }
    }
    best
}

/// Scores one candidate iteration per non-converged object in contention.
///
/// For an object `o_i ≠ o'_max`, only lowering `o_i.H` toward `estH` reduces
/// its overlap with the guess, and the reduction is capped by the current
/// overlap `o_i.H − o'_max.L` (§5.1's worked example). For the guess
/// itself, raising `L` toward `estL` reduces its overlap with *every*
/// unresolved object simultaneously.
fn score_candidates<R: ResultObject>(
    objs: &[R],
    guess: usize,
    unresolved: &[usize],
) -> Vec<Candidate> {
    let guess_bounds = objs[guess].bounds();
    let mut candidates = Vec::with_capacity(unresolved.len() + 1);

    if !objs[guess].converged() {
        let est_raise = (objs[guess].est_bounds().lo() - guess_bounds.lo()).max(0.0);
        let benefit: f64 = unresolved
            .iter()
            .map(|&j| {
                let overlap = (objs[j].bounds().hi() - guess_bounds.lo()).max(0.0);
                overlap.min(est_raise)
            })
            .sum();
        candidates.push(Candidate {
            index: guess,
            benefit,
            est_cpu: objs[guess].est_cpu(),
            width: guess_bounds.width(),
        });
    }

    for &i in unresolved {
        if objs[i].converged() {
            continue;
        }
        let b = objs[i].bounds();
        let overlap = (b.hi() - guess_bounds.lo()).max(0.0);
        let est_drop = (b.hi() - objs[i].est_bounds().hi()).max(0.0);
        candidates.push(Candidate {
            index: i,
            benefit: overlap.min(est_drop),
            est_cpu: objs[i].est_cpu(),
            width: b.width(),
        });
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{ScriptedObject, ScriptedStep};

    /// The three objects of the paper's Table 2, with perfect estimates for
    /// their first iteration and a convergent tail thereafter.
    fn table2_objects() -> Vec<ScriptedObject> {
        // o1: [97,101] -> est [98,99]; o2: [95,103] -> est [96,101];
        // o3: [100,106] -> est [102,104]; all estCPU = 4.
        let mk = |first: (f64, f64), est: (f64, f64), tail: &[(f64, f64)]| {
            let mut steps = vec![ScriptedStep {
                bounds: Bounds::new(first.0, first.1),
                cost: 0,
                est_cpu: 4,
                est_bounds: Bounds::new(est.0, est.1),
            }];
            let mut all = vec![est];
            all.extend_from_slice(tail);
            for (k, b) in all.iter().enumerate() {
                let next = all.get(k + 1).copied().unwrap_or(*b);
                steps.push(ScriptedStep {
                    bounds: Bounds::new(b.0, b.1),
                    cost: 4,
                    est_cpu: 4,
                    est_bounds: Bounds::new(next.0, next.1),
                });
            }
            ScriptedObject::new(steps, 0.01)
        };
        vec![
            mk((97.0, 101.0), (98.0, 99.0), &[(98.4, 98.405)]),
            mk(
                (95.0, 103.0),
                (96.0, 101.0),
                &[(97.0, 99.0), (98.0, 98.005)],
            ),
            mk(
                (100.0, 106.0),
                (102.0, 104.0),
                &[(102.9, 103.1), (103.0, 103.005)],
            ),
        ]
    }

    #[test]
    fn paper_table2_first_choice_is_o3() {
        // §5.1 computes estimated overlap reductions 1, 2 and 3 for o1, o2,
        // o3 and — with equal estCPU — picks o3 (the guess itself).
        let objs = table2_objects();
        let guess = guess_max(&objs);
        assert_eq!(guess, 2, "o3 has the highest upper bound");
        let unresolved: Vec<usize> = vec![0, 1];
        let cands = score_candidates(&objs, guess, &unresolved);
        let find = |idx: usize| cands.iter().find(|c| c.index == idx).unwrap();
        // o1: min(101-100, 101-99) = 1. o2: min(103-100, 103-101) = 2.
        // o3: raising L from 100 to estL 102 clears min(1,2)+min(3,2) = 3.
        assert_eq!(find(0).benefit, 1.0);
        assert_eq!(find(1).benefit, 2.0);
        assert_eq!(find(2).benefit, 3.0);
        let mut policy = ChoicePolicy::greedy();
        let pick = policy.pick(&cands).unwrap();
        assert_eq!(cands[pick].index, 2);
    }

    #[test]
    fn paper_table2_full_run_finds_o3() {
        let mut objs = table2_objects();
        let mut meter = WorkMeter::new();
        let eps = PrecisionConstraint::new(0.5).unwrap();
        let res = max_vao(&mut objs, eps, &mut meter).unwrap();
        assert_eq!(res.argext, 2);
        assert!(res.ties.is_empty());
        assert!(res.bounds.width() <= 0.5);
        assert!(res.bounds.lo() >= 102.0);
        // The strategy never needed to converge o1/o2 fully.
        assert!(!objs[0].converged() || !objs[1].converged());
        // chooseIter cost was charged.
        assert!(meter.breakdown().choose_iter > 0);
    }

    #[test]
    fn single_object_is_refined_to_epsilon() {
        let mut objs = vec![ScriptedObject::converging(
            &[(0.0, 10.0), (4.0, 6.0), (4.9, 5.1), (5.0, 5.005)],
            10,
            0.01,
        )];
        let mut meter = WorkMeter::new();
        let res = max_vao(
            &mut objs,
            PrecisionConstraint::new(0.3).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(res.argext, 0);
        assert!(res.bounds.width() <= 0.3);
        // Stopped at [4.9, 5.1] (width 0.2), not at full convergence.
        assert_eq!(res.iterations, 2);
    }

    #[test]
    fn disjoint_objects_require_no_iterations() {
        let mut objs = vec![
            ScriptedObject::converging(&[(0.0, 1.0)], 10, 2.0),
            ScriptedObject::converging(&[(5.0, 6.0)], 10, 2.0),
            ScriptedObject::converging(&[(2.0, 3.0)], 10, 2.0),
        ];
        let mut meter = WorkMeter::new();
        let res = max_vao(
            &mut objs,
            PrecisionConstraint::new(2.0).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(res.argext, 1);
        assert_eq!(res.iterations, 0);
        assert_eq!(meter.total(), 0);
    }

    #[test]
    fn indistinguishable_objects_reported_as_ties() {
        // Two objects converge to overlapping, sub-minWidth bounds around
        // the same value: stopping case 2.
        let mut objs = vec![
            ScriptedObject::converging(&[(90.0, 110.0), (99.999, 100.004)], 10, 0.01),
            ScriptedObject::converging(&[(95.0, 108.0), (100.0, 100.005)], 10, 0.01),
            ScriptedObject::converging(&[(0.0, 5.0)], 10, 0.01),
        ];
        let mut meter = WorkMeter::new();
        let res = max_vao(
            &mut objs,
            PrecisionConstraint::new(0.01).unwrap(),
            &mut meter,
        )
        .unwrap();
        // Winner has the highest upper bound among the tied pair.
        assert_eq!(res.argext, 1);
        assert_eq!(res.ties, vec![0]);
        assert!(objs[0].converged() && objs[1].converged());
    }

    #[test]
    fn empty_input_rejected() {
        let mut objs: Vec<ScriptedObject> = vec![];
        let mut meter = WorkMeter::new();
        let err = max_vao(
            &mut objs,
            PrecisionConstraint::new(1.0).unwrap(),
            &mut meter,
        )
        .unwrap_err();
        assert_eq!(err, VaoError::EmptyInput);
    }

    #[test]
    fn epsilon_below_min_width_rejected() {
        let mut objs = vec![ScriptedObject::converging(&[(0.0, 1.0)], 1, 0.05)];
        let mut meter = WorkMeter::new();
        let err = max_vao(
            &mut objs,
            PrecisionConstraint::new(0.01).unwrap(),
            &mut meter,
        )
        .unwrap_err();
        assert!(matches!(err, VaoError::PrecisionTooTight { .. }));
    }

    #[test]
    fn guess_revision_recovers_from_wrong_initial_guess() {
        // Object 0 starts with the highest H but collapses low; object 1 is
        // the true max. The operator must revise its guess and still win.
        let mut objs = vec![
            ScriptedObject::converging(&[(80.0, 120.0), (84.0, 86.0), (85.0, 85.005)], 10, 0.01),
            ScriptedObject::converging(&[(90.0, 110.0), (99.0, 101.0), (100.0, 100.005)], 10, 0.01),
        ];
        let mut meter = WorkMeter::new();
        let res = max_vao(
            &mut objs,
            PrecisionConstraint::new(0.01).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(res.argext, 1);
        assert!(res.bounds.lo() >= 100.0 - 1e-9);
    }

    #[test]
    fn min_vao_is_symmetric_to_max() {
        let mut objs = vec![
            ScriptedObject::converging(
                &[(90.0, 110.0), (104.0, 106.0), (105.0, 105.005)],
                10,
                0.01,
            ),
            ScriptedObject::converging(&[(85.0, 108.0), (94.0, 96.0), (95.0, 95.005)], 10, 0.01),
            ScriptedObject::converging(
                &[(97.0, 112.0), (102.0, 104.0), (103.0, 103.005)],
                10,
                0.01,
            ),
        ];
        let mut meter = WorkMeter::new();
        let res = min_vao(
            &mut objs,
            PrecisionConstraint::new(0.01).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(res.argext, 1);
        assert!(res.bounds.contains(95.0));
        assert!(res.bounds.lo() <= res.bounds.hi());
    }

    #[test]
    fn stalled_object_yields_iteration_error() {
        // Object 1 overlaps the guess forever without converging.
        let mut objs = vec![
            ScriptedObject::converging(&[(90.0, 110.0), (99.0, 101.0), (100.0, 100.005)], 10, 0.01),
            ScriptedObject::converging(&[(95.0, 105.0)], 10, 0.01),
        ];
        let mut meter = WorkMeter::new();
        let err = max_vao(
            &mut objs,
            PrecisionConstraint::new(0.01).unwrap(),
            &mut meter,
        )
        .unwrap_err();
        assert!(matches!(err, VaoError::IterationLimitExceeded { .. }));
    }

    #[test]
    fn envelope_bounds_need_no_iterations_but_mix_objects() {
        // Footnote 9's example distinction: the envelope's endpoints can
        // come from different objects.
        let objs = vec![
            ScriptedObject::converging(&[(97.0, 101.0)], 10, 0.01),
            ScriptedObject::converging(&[(95.0, 103.0)], 10, 0.01),
            ScriptedObject::converging(&[(100.0, 106.0)], 10, 0.01),
        ];
        let mx = max_envelope(&objs).unwrap();
        assert_eq!((mx.lo(), mx.hi()), (100.0, 106.0));
        let mn = min_envelope(&objs).unwrap();
        // min L from o2 (95), min H from o1 (101): mixed endpoints.
        assert_eq!((mn.lo(), mn.hi()), (95.0, 101.0));
        // Envelopes always contain the true extreme value.
        assert!(mx.contains(103.0)); // if o3 converged to 103
        assert!(mn.contains(98.4)); // if o1 converged to 98.4
        assert!(max_envelope::<ScriptedObject>(&[]).is_err());
        assert!(min_envelope::<ScriptedObject>(&[]).is_err());
    }

    #[test]
    fn envelope_contains_the_identified_extreme() {
        let mut objs = table2_objects();
        let envelope = max_envelope(&objs).unwrap();
        let mut meter = WorkMeter::new();
        let res = max_vao(
            &mut objs,
            PrecisionConstraint::new(0.01).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert!(envelope.lo() <= res.bounds.lo() + 1e-12);
        assert!(res.bounds.hi() <= envelope.hi() + 1e-12);
    }

    #[test]
    fn all_policies_find_the_same_argmax() {
        let eps = PrecisionConstraint::new(0.01).unwrap();
        for policy in [
            ChoicePolicy::greedy(),
            ChoicePolicy::round_robin(),
            ChoicePolicy::random(123),
            ChoicePolicy::widest_first(),
        ] {
            let mut objs = table2_objects();
            let mut meter = WorkMeter::new();
            let mut config = AggregateConfig {
                policy,
                iteration_limit: 1000,
            };
            let res = max_vao_with(&mut objs, eps, &mut config, &mut meter).unwrap();
            assert_eq!(res.argext, 2, "every strategy must agree on the answer");
        }
    }
}
