//! Sketch-guided HEAVY-HITTERS (extension): the `k` most-populated price
//! cells, pruned by SpaceSaving + count-min summaries.
//!
//! The value axis is divided into cells of width ε (`cell = ⌊v / ε⌋`). An
//! object is **resolved** once its bounds fit inside one cell, or once it has
//! converged (its `minWidth` interval may still straddle a boundary; the
//! midpoint cell is then the deterministic assignment — the `minWidth`-floor
//! caveat shared with SUM and PERCENTILE). The answer is the `k` cells with
//! the most resolved objects.
//!
//! Demand pruning composes two sound frequency summaries over the cells:
//!
//! * a [`SpaceSaving`] summary of the *resolved* cells yields
//!   `T = kth_guaranteed(k)`, a lower bound on the final k-th heaviest
//!   count (counts only grow as objects resolve);
//! * [`CountMin`] sketches of the resolved cells and of the unresolved
//!   *spans* yield `possible(c)`, an upper bound on any cell's final count
//!   (count-min never underestimates, and every unresolved object is charged
//!   to all cells it touches).
//!
//! An unresolved object whose whole span satisfies `possible(c) < T` can
//! neither join, displace nor tie the top-`k` wherever its value lands, so
//! it is pruned from the demand set without further iteration. When every
//! unresolved object is prunable the answer is final — the summaries only
//! ever err toward keeping an object in the demand set, never toward a
//! premature answer.

use std::collections::BTreeMap;

use va_sketch::{CountMin, SpaceSaving};

use crate::cost::{Work, WorkMeter};
use crate::error::VaoError;
use crate::interface::ResultObject;
use crate::ops::minmax::AggregateConfig;
use crate::precision::PrecisionConstraint;
use crate::strategy::Candidate;

/// Widest unresolved span (in cells) charged cell-by-cell to the pending
/// count-min; anything wider is treated as contended outright.
pub const SPAN_PROBE_CAP: i64 = 64;

/// Count-min geometry for the cell summaries (width is rounded up to a
/// power of two).
pub const COUNTMIN_WIDTH: usize = 1024;
/// Count-min rows.
pub const COUNTMIN_DEPTH: usize = 4;

/// The ε-width cell containing `v`: `⌊v / width⌋`, saturating at the `i64`
/// range for extreme magnitudes.
#[must_use]
pub fn cell_of(v: f64, width: f64) -> i64 {
    let r = (v / width).floor();
    if r >= i64::MAX as f64 {
        i64::MAX
    } else if r <= i64::MIN as f64 {
        i64::MIN
    } else {
        r as i64
    }
}

/// The value interval covered by `cell`: `[cell·width, (cell + 1)·width)`.
#[must_use]
pub fn cell_bounds(cell: i64, width: f64) -> (f64, f64) {
    (cell as f64 * width, (cell as f64 + 1.0) * width)
}

/// One ranked cell of a HEAVY-HITTERS answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeavyCell {
    /// The cell index (`⌊v / ε⌋`).
    pub cell: i64,
    /// Number of resolved objects assigned to the cell.
    pub count: u64,
}

/// Outcome of a HEAVY-HITTERS evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct HeavyResult {
    /// The top cells by count (descending; ties by ascending cell index),
    /// at most `k` of them — fewer when the relation populates fewer cells.
    pub cells: Vec<HeavyCell>,
    /// Non-member cells whose count equals the k-th member's count —
    /// indistinguishable from the boundary member, as in MAX's ties.
    pub ties: Vec<i64>,
    /// Total `iterate()` calls issued.
    pub iterations: u64,
    /// Distinct objects that were iterated at least once.
    pub refined: usize,
}

/// Evaluates the `k` heaviest ε-cells with the default (greedy)
/// configuration.
pub fn heavy_hitters_vao<R: ResultObject>(
    objs: &mut [R],
    k: usize,
    cell: PrecisionConstraint,
    meter: &mut WorkMeter,
) -> Result<HeavyResult, VaoError> {
    heavy_hitters_vao_with(objs, k, cell, &mut AggregateConfig::default(), meter)
}

/// Evaluates the `k` heaviest ε-cells with an explicit configuration.
pub fn heavy_hitters_vao_with<R: ResultObject>(
    objs: &mut [R],
    k: usize,
    cell: PrecisionConstraint,
    config: &mut AggregateConfig,
    meter: &mut WorkMeter,
) -> Result<HeavyResult, VaoError> {
    if objs.is_empty() || k == 0 {
        return Err(VaoError::EmptyInput);
    }
    let width = cell.epsilon();

    let mut iterations = 0u64;
    let step = |objs: &mut [R], idx: usize, iterations: &mut u64, meter: &mut WorkMeter| {
        if *iterations >= config.iteration_limit {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        }
        let before = objs[idx].bounds();
        let after = objs[idx].iterate(meter);
        *iterations += 1;
        if after == before && !objs[idx].converged() {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        }
        Ok(())
    };

    let mut ss = SpaceSaving::new((4 * k).max(64));
    let mut cm_resolved = CountMin::new(COUNTMIN_WIDTH, COUNTMIN_DEPTH);
    let mut cm_pending = CountMin::new(COUNTMIN_WIDTH, COUNTMIN_DEPTH);
    let mut touched = vec![false; objs.len()];
    loop {
        ss.clear();
        cm_resolved.clear();
        cm_pending.clear();
        let mut unresolved = Vec::new();
        for (i, o) in objs.iter().enumerate() {
            match resolved_cell(o, width) {
                Some(c) => {
                    ss.offer(c, 1);
                    cm_resolved.add(c, 1);
                }
                None => unresolved.push(i),
            }
        }
        if unresolved.is_empty() {
            break;
        }
        // Charge every unresolved object to all cells it might land in.
        for &i in &unresolved {
            let b = objs[i].bounds();
            let (c_lo, c_hi) = (cell_of(b.lo(), width), cell_of(b.hi(), width));
            if c_hi - c_lo <= SPAN_PROBE_CAP {
                for c in c_lo..=c_hi {
                    cm_pending.add(c, 1);
                }
            }
        }
        let threshold = ss.kth_guaranteed(k).max(1);

        let mut candidates = Vec::new();
        for &i in &unresolved {
            let b = objs[i].bounds();
            let (c_lo, c_hi) = (cell_of(b.lo(), width), cell_of(b.hi(), width));
            let contended = c_hi - c_lo > SPAN_PROBE_CAP
                || (c_lo..=c_hi)
                    .any(|c| cm_resolved.estimate(c) + cm_pending.estimate(c) >= threshold);
            if !contended {
                continue;
            }
            let est = objs[i].est_bounds();
            let shrink = (est.lo() - b.lo()).max(0.0) + (b.hi() - est.hi()).max(0.0);
            // Landing in a single cell is worth a full cell width on top of
            // the raw shrink — it removes the object from the demand set.
            let resolve_bonus = if cell_of(est.lo(), width) == cell_of(est.hi(), width) {
                width
            } else {
                0.0
            };
            candidates.push(Candidate {
                index: i,
                benefit: shrink + resolve_bonus,
                est_cpu: objs[i].est_cpu(),
                width: b.width(),
            });
        }
        if candidates.is_empty() {
            // Every unresolved object is provably clear of the top-k: the
            // membership and the member counts are already final.
            break;
        }
        meter.charge_choose(candidates.len() as Work);
        let Some(pick) = config.policy.pick(&candidates) else {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        };
        let idx = candidates[pick].index;
        step(objs, idx, &mut iterations, meter)?;
        touched[idx] = true;
    }

    // Finalize with an exact counting pass over the resolved objects — the
    // sketches only ever steer iteration, never the reported counts.
    let mut counts: BTreeMap<i64, u64> = BTreeMap::new();
    for o in objs.iter() {
        if let Some(c) = resolved_cell(o, width) {
            *counts.entry(c).or_default() += 1;
        }
    }
    let mut ranked: Vec<HeavyCell> = counts
        .into_iter()
        .map(|(cell, count)| HeavyCell { cell, count })
        .collect();
    ranked.sort_by(|a, b| b.count.cmp(&a.count).then(a.cell.cmp(&b.cell)));
    let take = k.min(ranked.len());
    let boundary = ranked[take - 1].count;
    let ties: Vec<i64> = ranked[take..]
        .iter()
        .take_while(|c| c.count == boundary)
        .map(|c| c.cell)
        .collect();
    ranked.truncate(take);
    Ok(HeavyResult {
        cells: ranked,
        ties,
        iterations,
        refined: touched.iter().filter(|&&t| t).count(),
    })
}

/// The cell an object definitively occupies, if any: its whole bounds fit
/// in one cell, or it has converged (midpoint assignment at the `minWidth`
/// floor).
fn resolved_cell<R: ResultObject>(o: &R, width: f64) -> Option<i64> {
    let b = o.bounds();
    let (c_lo, c_hi) = (cell_of(b.lo(), width), cell_of(b.hi(), width));
    if c_lo == c_hi {
        Some(c_lo)
    } else if o.converged() {
        Some(cell_of(b.mid(), width))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ScriptedObject;

    fn converging_to(values: &[f64]) -> Vec<ScriptedObject> {
        values
            .iter()
            .map(|&v| {
                ScriptedObject::converging(
                    &[
                        (v - 9.0, v + 9.0),
                        (v - 3.0, v + 3.0),
                        (v - 1.0, v + 1.0),
                        (v - 0.004, v + 0.004),
                    ],
                    10,
                    0.01,
                )
            })
            .collect()
    }

    /// Objects that start (and stay) inside a single cell of width 1.
    fn tight(values: &[f64]) -> Vec<ScriptedObject> {
        values
            .iter()
            .map(|&v| {
                ScriptedObject::converging(&[(v - 0.1, v + 0.1), (v - 0.004, v + 0.004)], 10, 0.01)
            })
            .collect()
    }

    #[test]
    fn cell_geometry_is_floor_based() {
        assert_eq!(cell_of(100.2, 1.0), 100);
        assert_eq!(cell_of(-0.5, 1.0), -1);
        assert_eq!(cell_of(0.0, 1.0), 0);
        assert_eq!(cell_bounds(100, 1.0), (100.0, 101.0));
        assert_eq!(cell_of(1e300, 1e-300), i64::MAX);
    }

    #[test]
    fn finds_the_heaviest_cell() {
        let values = [100.2, 100.4, 100.6, 200.5, 50.3];
        let mut objs = converging_to(&values);
        let mut meter = WorkMeter::new();
        let res = heavy_hitters_vao(
            &mut objs,
            1,
            PrecisionConstraint::new(1.0).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(res.cells.len(), 1);
        assert_eq!(
            res.cells[0],
            HeavyCell {
                cell: 100,
                count: 3
            }
        );
        assert!(res.ties.is_empty());
    }

    #[test]
    fn uncontended_objects_are_pruned_without_iteration() {
        // Four objects already resolved in cell 100 (T = 4); the wide
        // outlier's possible count is 1 everywhere it might land, so it must
        // be pruned with zero iterate() calls.
        let mut objs = tight(&[100.2, 100.4, 100.6, 100.8]);
        objs.extend(converging_to(&[500.0]));
        let mut meter = WorkMeter::new();
        let res = heavy_hitters_vao(
            &mut objs,
            1,
            PrecisionConstraint::new(1.0).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(
            res.cells[0],
            HeavyCell {
                cell: 100,
                count: 4
            }
        );
        assert_eq!(res.iterations, 0, "no object may be iterated");
        assert!(!objs[4].converged(), "the outlier must stay coarse");
    }

    #[test]
    fn contended_straddlers_are_refined_until_they_land() {
        // Two tight cells of 2; a wide straddler over both decides the
        // winner, so it must be refined until it resolves into cell 100.
        let mut objs = tight(&[100.2, 100.6, 101.3, 101.7]);
        objs.extend(converging_to(&[100.5]));
        let mut meter = WorkMeter::new();
        let res = heavy_hitters_vao(
            &mut objs,
            1,
            PrecisionConstraint::new(1.0).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert!(res.iterations > 0);
        assert_eq!(
            res.cells[0],
            HeavyCell {
                cell: 100,
                count: 3
            }
        );
        assert!(res.ties.is_empty());
    }

    #[test]
    fn equal_cells_are_reported_as_ties() {
        let mut objs = tight(&[100.2, 100.6, 200.3, 200.7]);
        let mut meter = WorkMeter::new();
        let res = heavy_hitters_vao(
            &mut objs,
            1,
            PrecisionConstraint::new(1.0).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(
            res.cells,
            vec![HeavyCell {
                cell: 100,
                count: 2
            }]
        );
        assert_eq!(res.ties, vec![200]);
    }

    #[test]
    fn fewer_cells_than_k_returns_them_all() {
        let mut objs = tight(&[100.2, 100.6]);
        let mut meter = WorkMeter::new();
        let res = heavy_hitters_vao(
            &mut objs,
            5,
            PrecisionConstraint::new(1.0).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(
            res.cells,
            vec![HeavyCell {
                cell: 100,
                count: 2
            }]
        );
    }

    #[test]
    fn converged_boundary_straddlers_take_their_midpoint_cell() {
        // A converged object whose minWidth interval straddles the 101
        // boundary: deterministic midpoint assignment.
        let mut objs = tight(&[100.2, 100.6]);
        objs.push(ScriptedObject::converging(&[(100.998, 101.006)], 10, 0.01));
        let mut meter = WorkMeter::new();
        let res = heavy_hitters_vao(
            &mut objs,
            2,
            PrecisionConstraint::new(1.0).unwrap(),
            &mut meter,
        )
        .unwrap();
        // Midpoint 101.002 → cell 101.
        assert_eq!(
            res.cells,
            vec![
                HeavyCell {
                    cell: 100,
                    count: 2
                },
                HeavyCell {
                    cell: 101,
                    count: 1
                }
            ]
        );
    }

    #[test]
    fn rejects_invalid_inputs() {
        let mut meter = WorkMeter::new();
        let eps = PrecisionConstraint::new(1.0).unwrap();
        let mut empty: Vec<ScriptedObject> = Vec::new();
        assert!(matches!(
            heavy_hitters_vao(&mut empty, 1, eps, &mut meter),
            Err(VaoError::EmptyInput)
        ));
        let mut objs = tight(&[1.0]);
        assert!(matches!(
            heavy_hitters_vao(&mut objs, 0, eps, &mut meter),
            Err(VaoError::EmptyInput)
        ));
    }
}
