//! Order statistics: MEDIAN and general quantiles (extension).
//!
//! The rank-`k`-from-top object generalizes both MAX (`k = 1`) and MIN
//! (`k = N`). The operator runs in two phases, each a guess-and-reduce
//! separation in the style of §5.1:
//!
//! 1. **Outer separation** — split the objects into the presumed top-`k`
//!    member set and the rest, iterating until no outsider's upper bound
//!    reaches above the members' boundary (exactly the Top-K phase).
//! 2. **Inner separation** — find the *minimum* of the member set (the
//!    rank-`k` object itself), iterating until no other member's lower
//!    bound dips below it.
//!
//! Ties at `minWidth` resolution are reported, as in MAX. MEDIAN is the
//! rank `⌈N/2⌉` from the top.

use crate::cost::{Work, WorkMeter};
use crate::error::VaoError;
use crate::interface::ResultObject;
use crate::ops::minmax::{AggregateConfig, ExtremeResult};
use crate::precision::PrecisionConstraint;
use crate::strategy::Candidate;

/// Evaluates the median (rank `⌈N/2⌉` from the top) with the default
/// greedy configuration.
pub fn median_vao<R: ResultObject>(
    objs: &mut [R],
    epsilon: PrecisionConstraint,
    meter: &mut WorkMeter,
) -> Result<ExtremeResult, VaoError> {
    let k = objs.len().div_ceil(2);
    quantile_vao(objs, k, epsilon, meter)
}

/// Evaluates the rank-`k`-from-top object (`k = 1` is MAX, `k = N` is MIN)
/// with the default greedy configuration.
pub fn quantile_vao<R: ResultObject>(
    objs: &mut [R],
    k: usize,
    epsilon: PrecisionConstraint,
    meter: &mut WorkMeter,
) -> Result<ExtremeResult, VaoError> {
    quantile_vao_with(objs, k, epsilon, &mut AggregateConfig::default(), meter)
}

/// Evaluates the rank-`k`-from-top object with an explicit configuration.
pub fn quantile_vao_with<R: ResultObject>(
    objs: &mut [R],
    k: usize,
    epsilon: PrecisionConstraint,
    config: &mut AggregateConfig,
    meter: &mut WorkMeter,
) -> Result<ExtremeResult, VaoError> {
    if objs.is_empty() || k == 0 || k > objs.len() {
        return Err(VaoError::EmptyInput);
    }
    epsilon.validate_single_object(objs)?;

    let mut iterations = 0u64;
    let step = |objs: &mut [R], idx: usize, iterations: &mut u64, meter: &mut WorkMeter| {
        if *iterations >= config.iteration_limit {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        }
        let before = objs[idx].bounds();
        let after = objs[idx].iterate(meter);
        *iterations += 1;
        if after == before && !objs[idx].converged() {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        }
        Ok(())
    };

    // ---- Phase 1: outer separation (identical in spirit to Top-K). ----
    let (members, mut ties) = loop {
        let members = top_by_hi(objs, k);
        let &theta_holder = members
            .iter()
            .min_by(|&&a, &&b| objs[a].bounds().lo().total_cmp(&objs[b].bounds().lo()))
            .expect("k >= 1");
        let theta = objs[theta_holder].bounds().lo();
        let unresolved: Vec<usize> = (0..objs.len())
            .filter(|&i| !members.contains(&i) && objs[i].bounds().hi() >= theta)
            .collect();
        if unresolved.is_empty() {
            break (members, Vec::new());
        }
        if objs[theta_holder].converged() && unresolved.iter().all(|&i| objs[i].converged()) {
            break (members, unresolved);
        }
        let mut candidates = Vec::with_capacity(unresolved.len() + 1);
        if !objs[theta_holder].converged() {
            let est_raise = (objs[theta_holder].est_bounds().lo() - theta).max(0.0);
            let benefit: f64 = unresolved
                .iter()
                .map(|&j| (objs[j].bounds().hi() - theta).max(0.0).min(est_raise))
                .sum();
            candidates.push(Candidate {
                index: theta_holder,
                benefit,
                est_cpu: objs[theta_holder].est_cpu(),
                width: objs[theta_holder].bounds().width(),
            });
        }
        for &i in &unresolved {
            if objs[i].converged() {
                continue;
            }
            let b = objs[i].bounds();
            candidates.push(Candidate {
                index: i,
                benefit: (b.hi() - theta)
                    .max(0.0)
                    .min((b.hi() - objs[i].est_bounds().hi()).max(0.0)),
                est_cpu: objs[i].est_cpu(),
                width: b.width(),
            });
        }
        meter.charge_choose(candidates.len() as Work);
        let Some(pick) = config.policy.pick(&candidates) else {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        };
        step(objs, candidates[pick].index, &mut iterations, meter)?;
    };

    // ---- Phase 2: inner MIN separation within the member set. ----
    let winner = loop {
        // Guess: the member with the lowest lower bound.
        let &guess = members
            .iter()
            .min_by(|&&a, &&b| objs[a].bounds().lo().total_cmp(&objs[b].bounds().lo()))
            .expect("k >= 1");
        let guess_hi = objs[guess].bounds().hi();
        let unresolved: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&i| i != guess && objs[i].bounds().lo() <= guess_hi)
            .collect();
        if unresolved.is_empty() {
            break guess;
        }
        if objs[guess].converged() && unresolved.iter().all(|&i| objs[i].converged()) {
            ties.extend(unresolved.iter().copied());
            break guess;
        }
        let mut candidates = Vec::with_capacity(unresolved.len() + 1);
        if !objs[guess].converged() {
            let est_drop = (guess_hi - objs[guess].est_bounds().hi()).max(0.0);
            let benefit: f64 = unresolved
                .iter()
                .map(|&j| (guess_hi - objs[j].bounds().lo()).max(0.0).min(est_drop))
                .sum();
            candidates.push(Candidate {
                index: guess,
                benefit,
                est_cpu: objs[guess].est_cpu(),
                width: objs[guess].bounds().width(),
            });
        }
        for &i in &unresolved {
            if objs[i].converged() {
                continue;
            }
            let b = objs[i].bounds();
            candidates.push(Candidate {
                index: i,
                benefit: (guess_hi - b.lo())
                    .max(0.0)
                    .min((objs[i].est_bounds().lo() - b.lo()).max(0.0)),
                est_cpu: objs[i].est_cpu(),
                width: b.width(),
            });
        }
        meter.charge_choose(candidates.len() as Work);
        let Some(pick) = config.policy.pick(&candidates) else {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        };
        step(objs, candidates[pick].index, &mut iterations, meter)?;
    };

    // ---- Phase 3: refine the rank-k object to ε. ----
    while objs[winner].bounds().width() > epsilon.epsilon() && !objs[winner].converged() {
        step(objs, winner, &mut iterations, meter)?;
    }

    ties.sort_unstable();
    ties.dedup();
    Ok(ExtremeResult {
        argext: winner,
        bounds: objs[winner].bounds(),
        ties,
        iterations,
    })
}

/// The `k` indices with the highest upper bounds (deterministic ties).
fn top_by_hi<R: ResultObject>(objs: &[R], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..objs.len()).collect();
    idx.sort_by(|&a, &b| {
        let (ba, bb) = (objs[a].bounds(), objs[b].bounds());
        bb.hi()
            .total_cmp(&ba.hi())
            .then(bb.lo().total_cmp(&ba.lo()))
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::minmax::{max_vao, min_vao};
    use crate::testkit::ScriptedObject;

    fn converging_to(values: &[f64]) -> Vec<ScriptedObject> {
        values
            .iter()
            .map(|&v| {
                ScriptedObject::converging(
                    &[
                        (v - 9.0, v + 9.0),
                        (v - 3.0, v + 3.0),
                        (v - 1.0, v + 1.0),
                        (v - 0.004, v + 0.004),
                    ],
                    10,
                    0.01,
                )
            })
            .collect()
    }

    #[test]
    fn median_of_odd_set_is_the_middle_value() {
        let values = [110.0, 90.0, 100.0, 130.0, 70.0];
        let mut objs = converging_to(&values);
        let mut meter = WorkMeter::new();
        let res = median_vao(
            &mut objs,
            PrecisionConstraint::new(0.01).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(values[res.argext], 100.0);
        assert!(res.bounds.contains(100.0));
        assert!(res.ties.is_empty());
    }

    #[test]
    fn rank_1_matches_max_and_rank_n_matches_min() {
        let values = [95.0, 105.0, 99.0, 101.0];
        let eps = PrecisionConstraint::new(0.01).unwrap();

        let mut a = converging_to(&values);
        let mut meter = WorkMeter::new();
        let q1 = quantile_vao(&mut a, 1, eps, &mut meter).unwrap();
        let mut b = converging_to(&values);
        let mx = max_vao(&mut b, eps, &mut meter).unwrap();
        assert_eq!(values[q1.argext], values[mx.argext]);

        let mut c = converging_to(&values);
        let qn = quantile_vao(&mut c, 4, eps, &mut meter).unwrap();
        let mut d = converging_to(&values);
        let mn = min_vao(&mut d, eps, &mut meter).unwrap();
        assert_eq!(values[qn.argext], values[mn.argext]);
    }

    #[test]
    fn quantile_sweeps_the_whole_order() {
        let values = [50.0, 80.0, 20.0, 110.0, 140.0, 65.0];
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        sorted.reverse(); // descending: rank k from top = sorted[k-1]
        for k in 1..=values.len() {
            let mut objs = converging_to(&values);
            let mut meter = WorkMeter::new();
            let res = quantile_vao(
                &mut objs,
                k,
                PrecisionConstraint::new(0.01).unwrap(),
                &mut meter,
            )
            .unwrap();
            assert_eq!(
                values[res.argext],
                sorted[k - 1],
                "rank {k}: got {}, want {}",
                values[res.argext],
                sorted[k - 1]
            );
        }
    }

    #[test]
    fn median_leaves_extremes_coarse() {
        // The far tails should not need full refinement to place the
        // median.
        let values = [10.0, 100.0, 101.0, 102.0, 200.0];
        let mut objs = converging_to(&values);
        let mut meter = WorkMeter::new();
        let res = median_vao(
            &mut objs,
            PrecisionConstraint::new(0.01).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(values[res.argext], 101.0);
        assert!(
            !objs[0].converged() && !objs[4].converged(),
            "the 10 and 200 outliers must stay coarse"
        );
    }

    #[test]
    fn indistinguishable_neighbors_reported_as_ties() {
        let values = [90.0, 100.0, 100.003, 120.0, 130.0];
        let mut objs = converging_to(&values);
        let mut meter = WorkMeter::new();
        let res = median_vao(
            &mut objs,
            PrecisionConstraint::new(0.01).unwrap(),
            &mut meter,
        )
        .unwrap();
        // Median is rank 3 from top: one of the two ~100 objects; the
        // other is indistinguishable.
        assert!((values[res.argext] - 100.0).abs() < 0.01);
        assert_eq!(res.ties.len(), 1);
    }

    #[test]
    fn rejects_bad_ranks() {
        let mut objs = converging_to(&[1.0, 2.0]);
        let mut meter = WorkMeter::new();
        let eps = PrecisionConstraint::new(0.01).unwrap();
        assert!(matches!(
            quantile_vao(&mut objs, 0, eps, &mut meter),
            Err(VaoError::EmptyInput)
        ));
        assert!(matches!(
            quantile_vao(&mut objs, 3, eps, &mut meter),
            Err(VaoError::EmptyInput)
        ));
    }
}
