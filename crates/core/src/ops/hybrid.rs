//! Hybrid SUM operator — the future-work extension sketched in §6.3.
//!
//! Figure 12 of the paper shows the SUM VAO *losing* to the traditional
//! operator when weights are nearly uniform (little room to shift work away
//! from any object, so the VAO pays its intermediate-iteration overhead for
//! nothing) and winning by >4× when weight concentrates on a small hot set.
//! The authors "plan to develop a hybrid operator that uses the VAO
//! algorithm only when it is cheaper than the traditional operator". This
//! module implements that operator with a decision rule driven by the two
//! quantities that determine which side wins:
//!
//! * **slack** — ε divided by the tightest achievable output width
//!   `Σ wᵢ·minWidthᵢ`. With generous slack the VAO can leave many objects
//!   coarse regardless of the weight profile.
//! * **concentration** — the share of total weight carried by the heaviest
//!   10 % of objects. High concentration lets the VAO leave the (many)
//!   light objects coarse even when the constraint is tight.

use crate::cost::WorkMeter;
use crate::error::VaoError;
use crate::interface::ResultObject;
use crate::ops::minmax::AggregateConfig;
use crate::ops::sum::{weighted_sum_vao_traced, SumResult};
use crate::ops::traditional::{traditional_weighted_sum, BlackBoxSpec};
use crate::precision::PrecisionConstraint;
use crate::trace::{
    ExecObserver, HybridDecisionRecord, NoopObserver, OperatorEndRecord, OperatorKind,
};
use crate::Bounds;

/// Which execution path the hybrid operator chose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HybridChoice {
    /// Adaptive iteration via the SUM VAO.
    Vao,
    /// One full-accuracy black-box call per object.
    Traditional,
}

/// Tunables of the hybrid decision rule.
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// Choose the VAO whenever `ε / Σ wᵢ·minWidthᵢ` exceeds this.
    pub slack_threshold: f64,
    /// Choose the VAO whenever the top-decile weight share *exceeds the
    /// uniform share* by more than this. (Using the excess over uniform
    /// keeps the rule meaningful for small object sets, where the raw
    /// top-decile share is large even for uniform weights.) Calibrated
    /// against the Figure-12 crossover: with a 10 % hot set the rule picks
    /// the VAO once the hot set carries more than ~45 % of the weight.
    pub concentration_threshold: f64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            slack_threshold: 1.5,
            concentration_threshold: 0.35,
        }
    }
}

/// The inputs to — and outcome of — the hybrid decision, surfaced so that
/// experiments can audit the rule.
#[derive(Clone, Copy, Debug)]
pub struct HybridDecision {
    /// The chosen path.
    pub choice: HybridChoice,
    /// Measured top-decile weight share.
    pub concentration: f64,
    /// Measured precision slack.
    pub slack: f64,
}

/// Evaluates the decision rule without executing anything.
pub fn decide(
    weights: &[f64],
    min_widths: &[f64],
    epsilon: f64,
    config: &HybridConfig,
) -> HybridDecision {
    let total: f64 = weights.iter().sum();
    let floor: f64 = weights.iter().zip(min_widths).map(|(w, m)| w * m).sum();
    let slack = if floor > 0.0 {
        epsilon / floor
    } else {
        f64::INFINITY
    };

    let (concentration, uniform_share) = if total > 0.0 && !weights.is_empty() {
        let mut sorted: Vec<f64> = weights.to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("weights are finite"));
        let top = (sorted.len().div_ceil(10)).max(1);
        (
            sorted.iter().take(top).sum::<f64>() / total,
            top as f64 / sorted.len() as f64,
        )
    } else {
        (0.0, 0.0)
    };

    let choice = if slack > config.slack_threshold
        || concentration - uniform_share > config.concentration_threshold
    {
        HybridChoice::Vao
    } else {
        HybridChoice::Traditional
    };
    HybridDecision {
        choice,
        concentration,
        slack,
    }
}

/// Runs the hybrid SUM: decides, then executes the chosen path.
///
/// `specs` must be the calibration results for the same function calls that
/// produced `objs` (the traditional path replays their recorded work). On
/// the traditional path the returned bounds reflect each value's calibrated
/// final width, mirroring what a black-box function reporting `±width/2`
/// error would justify.
pub fn hybrid_weighted_sum<R: ResultObject>(
    objs: &mut [R],
    weights: &[f64],
    specs: &[BlackBoxSpec],
    epsilon: PrecisionConstraint,
    config: &HybridConfig,
    agg: &mut AggregateConfig,
    meter: &mut WorkMeter,
) -> Result<(SumResult, HybridDecision), VaoError> {
    hybrid_weighted_sum_traced(
        objs,
        weights,
        specs,
        epsilon,
        config,
        agg,
        meter,
        &mut NoopObserver,
    )
}

/// [`hybrid_weighted_sum`] with an [`ExecObserver`] receiving the
/// execution trace. The observer sees the hybrid operator's own start/end
/// and its routing decision; when the VAO path is taken, the inner SUM
/// evaluation emits its own nested start/choice/iteration/end events.
#[allow(clippy::too_many_arguments)]
pub fn hybrid_weighted_sum_traced<R: ResultObject, O: ExecObserver>(
    objs: &mut [R],
    weights: &[f64],
    specs: &[BlackBoxSpec],
    epsilon: PrecisionConstraint,
    config: &HybridConfig,
    agg: &mut AggregateConfig,
    meter: &mut WorkMeter,
    observer: &mut O,
) -> Result<(SumResult, HybridDecision), VaoError> {
    if objs.is_empty() {
        return Err(VaoError::EmptyInput);
    }
    if objs.len() != specs.len() {
        return Err(VaoError::WeightCountMismatch {
            objects: objs.len(),
            weights: specs.len(),
        });
    }
    if observer.is_enabled() {
        observer.on_operator_start(OperatorKind::HybridSum, objs.len());
    }
    let work_start = meter.snapshot();
    let min_widths: Vec<f64> = objs.iter().map(R::min_width).collect();
    let decision = decide(weights, &min_widths, epsilon.epsilon(), config);
    if observer.is_enabled() {
        observer.on_hybrid_decision(&HybridDecisionRecord {
            chose_vao: decision.choice == HybridChoice::Vao,
            slack: decision.slack,
            concentration: decision.concentration,
        });
    }

    let result = match decision.choice {
        HybridChoice::Vao => weighted_sum_vao_traced(objs, weights, epsilon, agg, meter, observer)?,
        HybridChoice::Traditional => {
            let value = traditional_weighted_sum(specs, weights, meter)?;
            let half_err: f64 = specs
                .iter()
                .zip(weights)
                .map(|(s, &w)| w * s.final_width * 0.5)
                .sum();
            SumResult {
                bounds: Bounds::new(value - half_err, value + half_err),
                iterations: 0,
                stopped_at_floor: true,
            }
        }
    };
    if observer.is_enabled() {
        observer.on_operator_end(&OperatorEndRecord {
            kind: OperatorKind::HybridSum,
            iterations: result.iterations,
            work: meter.since(&work_start),
        });
    }
    Ok((result, decision))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ScriptedObject;

    #[test]
    fn uniform_weights_tight_epsilon_choose_traditional() {
        let weights = vec![1.0; 100];
        let min_widths = vec![0.01; 100];
        // ε exactly at the floor, no concentration: traditional territory.
        let d = decide(&weights, &min_widths, 1.0, &HybridConfig::default());
        assert_eq!(d.choice, HybridChoice::Traditional);
        assert!((d.concentration - 0.1).abs() < 1e-12);
        assert!((d.slack - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concentrated_weights_choose_vao() {
        // 10 hot objects carry 90% of the weight.
        let mut weights = vec![45.0; 10];
        weights.extend(vec![50.0 / 90.0; 90]);
        let min_widths = vec![0.01; 100];
        let floor: f64 = weights.iter().map(|w| w * 0.01).sum();
        let d = decide(&weights, &min_widths, floor, &HybridConfig::default());
        assert_eq!(d.choice, HybridChoice::Vao);
        assert!(d.concentration > 0.85);
    }

    #[test]
    fn generous_epsilon_chooses_vao_even_when_uniform() {
        let weights = vec![1.0; 100];
        let min_widths = vec![0.01; 100];
        let d = decide(&weights, &min_widths, 10.0, &HybridConfig::default());
        assert_eq!(d.choice, HybridChoice::Vao);
        assert!(d.slack > 9.0);
    }

    #[test]
    fn hybrid_traditional_path_charges_black_box_work() {
        let mut objs = vec![
            ScriptedObject::converging(&[(99.0, 101.0), (100.0, 100.005)], 10, 0.01),
            ScriptedObject::converging(&[(49.0, 51.0), (50.0, 50.005)], 10, 0.01),
        ];
        let specs = vec![
            BlackBoxSpec {
                value: 100.0,
                work: 77,
                final_width: 0.005,
            },
            BlackBoxSpec {
                value: 50.0,
                work: 33,
                final_width: 0.005,
            },
        ];
        let weights = [1.0, 1.0];
        let eps = PrecisionConstraint::new(0.02).unwrap(); // slack 1.0
        let mut meter = WorkMeter::new();
        let (res, dec) = hybrid_weighted_sum(
            &mut objs,
            &weights,
            &specs,
            eps,
            &HybridConfig::default(),
            &mut AggregateConfig::default(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(dec.choice, HybridChoice::Traditional);
        assert_eq!(meter.total(), 110);
        assert!(res.bounds.contains(150.0));
        assert!(res.bounds.width() <= 0.02);
        // The VAO objects were never touched.
        assert_eq!(objs[0].position(), 0);
    }

    #[test]
    fn hybrid_vao_path_iterates_objects() {
        let mut objs = vec![
            ScriptedObject::converging(&[(90.0, 110.0), (100.0, 100.005)], 10, 0.01),
            ScriptedObject::converging(&[(40.0, 60.0), (50.0, 50.005)], 10, 0.01),
        ];
        let specs = vec![
            BlackBoxSpec {
                value: 100.0,
                work: 77,
                final_width: 0.005,
            },
            BlackBoxSpec {
                value: 50.0,
                work: 33,
                final_width: 0.005,
            },
        ];
        let weights = [1.0, 1.0];
        let eps = PrecisionConstraint::new(5.0).unwrap(); // slack 250 -> VAO
        let mut meter = WorkMeter::new();
        let (res, dec) = hybrid_weighted_sum(
            &mut objs,
            &weights,
            &specs,
            eps,
            &HybridConfig::default(),
            &mut AggregateConfig::default(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(dec.choice, HybridChoice::Vao);
        assert!(res.iterations > 0);
        assert!(res.bounds.width() <= 5.0);
    }

    #[test]
    fn mismatched_specs_rejected() {
        let mut objs = vec![ScriptedObject::converging(&[(0.0, 1.0)], 1, 0.01)];
        let mut meter = WorkMeter::new();
        let err = hybrid_weighted_sum(
            &mut objs,
            &[1.0],
            &[],
            PrecisionConstraint::new(1.0).unwrap(),
            &HybridConfig::default(),
            &mut AggregateConfig::default(),
            &mut meter,
        )
        .unwrap_err();
        assert!(matches!(err, VaoError::WeightCountMismatch { .. }));
    }

    #[test]
    fn decide_handles_degenerate_inputs() {
        // Zero weights: floor 0, slack infinite -> VAO (it costs nothing).
        let d = decide(&[0.0, 0.0], &[0.01, 0.01], 1.0, &HybridConfig::default());
        assert_eq!(d.choice, HybridChoice::Vao);
        assert_eq!(d.concentration, 0.0);
    }
}
