//! Top-K: a natural generalization of the MAX VAO (§5.1).
//!
//! MAX separates one presumed winner from everything else; Top-K maintains
//! a presumed *member set* `S'` (the K objects with the highest upper
//! bounds) and drives iterations until every non-member is provably below
//! the weakest member — i.e. below the **boundary** `θ = min_{s∈S'} s.L` —
//! or indistinguishable from it at full accuracy. The greedy scoring
//! mirrors MAX: a non-member's iteration reduces its own overlap with the
//! boundary; iterating the boundary-holding member raises `θ` against all
//! unresolved non-members at once. With `k = 1` the operator degenerates
//! to MAX and performs the same iterations.

use crate::bounds::Bounds;
use crate::cost::{Work, WorkMeter};
use crate::error::VaoError;
use crate::interface::ResultObject;
use crate::ops::minmax::AggregateConfig;
use crate::precision::PrecisionConstraint;
use crate::strategy::Candidate;

/// Result of a Top-K evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct TopKResult {
    /// Indices of the K members, ordered by descending upper bound.
    pub members: Vec<usize>,
    /// Final bounds of each member (aligned with `members`; widths ≤ ε).
    pub bounds: Vec<Bounds>,
    /// Non-members that reached their stopping condition while still
    /// overlapping the boundary — indistinguishable from the weakest
    /// member at full accuracy.
    pub ties: Vec<usize>,
    /// Total `iterate()` calls issued.
    pub iterations: u64,
}

/// Evaluates Top-K with the default greedy configuration.
pub fn topk_vao<R: ResultObject>(
    objs: &mut [R],
    k: usize,
    epsilon: PrecisionConstraint,
    meter: &mut WorkMeter,
) -> Result<TopKResult, VaoError> {
    topk_vao_with(objs, k, epsilon, &mut AggregateConfig::default(), meter)
}

/// Evaluates Top-K with an explicit configuration.
///
/// # Errors
///
/// * [`VaoError::EmptyInput`] when `objs` is empty or `k` is zero or
///   exceeds the object count (a K that returns everything needs no
///   operator).
/// * [`VaoError::PrecisionTooTight`] if ε < max(minWidth).
/// * [`VaoError::IterationLimitExceeded`] on stalled objects.
pub fn topk_vao_with<R: ResultObject>(
    objs: &mut [R],
    k: usize,
    epsilon: PrecisionConstraint,
    config: &mut AggregateConfig,
    meter: &mut WorkMeter,
) -> Result<TopKResult, VaoError> {
    if objs.is_empty() || k == 0 || k > objs.len() {
        return Err(VaoError::EmptyInput);
    }
    epsilon.validate_single_object(objs)?;

    let mut iterations = 0u64;
    let step = |objs: &mut [R], idx: usize, iterations: &mut u64, meter: &mut WorkMeter| {
        if *iterations >= config.iteration_limit {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        }
        let before = objs[idx].bounds();
        let after = objs[idx].iterate(meter);
        *iterations += 1;
        if after == before && !objs[idx].converged() {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        }
        Ok(())
    };

    // Phase 1: separate the member set.
    let (members, ties) = loop {
        let members = guess_members(objs, k);
        // The boundary member: the presumed member with the lowest L.
        let &theta_holder = members
            .iter()
            .min_by(|&&a, &&b| {
                objs[a]
                    .bounds()
                    .lo()
                    .partial_cmp(&objs[b].bounds().lo())
                    .expect("finite bounds")
            })
            .expect("k >= 1");
        let theta = objs[theta_holder].bounds().lo();

        let in_members = |i: usize| members.contains(&i);
        let unresolved: Vec<usize> = (0..objs.len())
            .filter(|&i| !in_members(i) && objs[i].bounds().hi() >= theta)
            .collect();

        if unresolved.is_empty() {
            break (members, Vec::new());
        }
        if objs[theta_holder].converged() && unresolved.iter().all(|&i| objs[i].converged()) {
            break (members, unresolved);
        }

        // Score candidates: boundary holder + non-converged unresolved.
        let mut candidates = Vec::with_capacity(unresolved.len() + 1);
        if !objs[theta_holder].converged() {
            let est_raise = (objs[theta_holder].est_bounds().lo() - theta).max(0.0);
            let benefit: f64 = unresolved
                .iter()
                .map(|&j| (objs[j].bounds().hi() - theta).max(0.0).min(est_raise))
                .sum();
            candidates.push(Candidate {
                index: theta_holder,
                benefit,
                est_cpu: objs[theta_holder].est_cpu(),
                width: objs[theta_holder].bounds().width(),
            });
        }
        for &i in &unresolved {
            if objs[i].converged() {
                continue;
            }
            let b = objs[i].bounds();
            let overlap = (b.hi() - theta).max(0.0);
            let est_drop = (b.hi() - objs[i].est_bounds().hi()).max(0.0);
            candidates.push(Candidate {
                index: i,
                benefit: overlap.min(est_drop),
                est_cpu: objs[i].est_cpu(),
                width: b.width(),
            });
        }
        meter.charge_choose(candidates.len() as Work);
        let Some(pick) = config.policy.pick(&candidates) else {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        };
        let chosen = candidates[pick].index;
        step(objs, chosen, &mut iterations, meter)?;
    };

    // Phase 2: refine each member to ε.
    for &m in &members {
        while objs[m].bounds().width() > epsilon.epsilon() && !objs[m].converged() {
            step(objs, m, &mut iterations, meter)?;
        }
    }

    let mut ordered = members;
    ordered.sort_by(|&a, &b| {
        objs[b]
            .bounds()
            .hi()
            .partial_cmp(&objs[a].bounds().hi())
            .expect("finite bounds")
    });
    let bounds = ordered.iter().map(|&i| objs[i].bounds()).collect();
    Ok(TopKResult {
        members: ordered,
        bounds,
        ties,
        iterations,
    })
}

/// The K objects with the highest upper bounds (ties to higher lower
/// bound, then lower index).
fn guess_members<R: ResultObject>(objs: &[R], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..objs.len()).collect();
    idx.sort_by(|&a, &b| {
        let (ba, bb) = (objs[a].bounds(), objs[b].bounds());
        bb.hi()
            .partial_cmp(&ba.hi())
            .expect("finite bounds")
            .then(bb.lo().partial_cmp(&ba.lo()).expect("finite bounds"))
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::minmax::max_vao;
    use crate::testkit::ScriptedObject;

    fn converging_to(values: &[f64]) -> Vec<ScriptedObject> {
        values
            .iter()
            .map(|&v| {
                ScriptedObject::converging(
                    &[
                        (v - 8.0, v + 8.0),
                        (v - 3.0, v + 3.0),
                        (v - 1.0, v + 1.0),
                        (v - 0.004, v + 0.004),
                    ],
                    10,
                    0.01,
                )
            })
            .collect()
    }

    #[test]
    fn top1_agrees_with_max() {
        let values = [95.0, 105.0, 99.0, 101.0];
        let eps = PrecisionConstraint::new(0.01).unwrap();

        let mut a = converging_to(&values);
        let mut meter = WorkMeter::new();
        let top1 = topk_vao(&mut a, 1, eps, &mut meter).unwrap();

        let mut b = converging_to(&values);
        let mut meter2 = WorkMeter::new();
        let max = max_vao(&mut b, eps, &mut meter2).unwrap();

        assert_eq!(top1.members, vec![max.argext]);
        assert_eq!(top1.members[0], 1);
    }

    #[test]
    fn finds_the_true_top_3() {
        let values = [90.0, 107.0, 95.0, 103.0, 99.0, 111.0];
        let mut objs = converging_to(&values);
        let mut meter = WorkMeter::new();
        let res = topk_vao(
            &mut objs,
            3,
            PrecisionConstraint::new(0.01).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(res.members, vec![5, 1, 3], "descending by value");
        assert!(res.ties.is_empty());
        for b in &res.bounds {
            assert!(b.width() <= 0.01);
        }
        // The losers were not all run to convergence.
        assert!(!objs[0].converged());
    }

    #[test]
    fn disjoint_objects_need_no_separation_work() {
        let mut objs = vec![
            ScriptedObject::converging(&[(0.0, 1.0)], 10, 2.0),
            ScriptedObject::converging(&[(10.0, 11.0)], 10, 2.0),
            ScriptedObject::converging(&[(20.0, 21.0)], 10, 2.0),
            ScriptedObject::converging(&[(30.0, 31.0)], 10, 2.0),
        ];
        let mut meter = WorkMeter::new();
        let res = topk_vao(
            &mut objs,
            2,
            PrecisionConstraint::new(2.0).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(res.members, vec![3, 2]);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn boundary_ties_are_reported() {
        // Third and fourth values indistinguishable at minWidth: with k=3
        // the boundary member and the tied outsider both converge
        // overlapping.
        let mut objs = vec![
            ScriptedObject::converging(&[(100.0, 120.0), (110.0, 110.004)], 10, 0.01),
            ScriptedObject::converging(&[(95.0, 115.0), (105.0, 105.004)], 10, 0.01),
            ScriptedObject::converging(&[(80.0, 110.0), (99.999, 100.003)], 10, 0.01),
            ScriptedObject::converging(&[(85.0, 112.0), (100.0, 100.004)], 10, 0.01),
        ];
        let mut meter = WorkMeter::new();
        let res = topk_vao(
            &mut objs,
            3,
            PrecisionConstraint::new(0.01).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(res.members.len(), 3);
        assert_eq!(res.ties.len(), 1, "one indistinguishable outsider");
        let outsider = res.ties[0];
        assert!(!res.members.contains(&outsider));
    }

    #[test]
    fn k_equal_n_rejected_as_trivial() {
        let mut objs = converging_to(&[1.0, 2.0]);
        let mut meter = WorkMeter::new();
        let eps = PrecisionConstraint::new(0.01).unwrap();
        assert!(matches!(
            topk_vao(&mut objs, 3, eps, &mut meter),
            Err(VaoError::EmptyInput)
        ));
        assert!(matches!(
            topk_vao(&mut objs, 0, eps, &mut meter),
            Err(VaoError::EmptyInput)
        ));
        // k == n is allowed (refine-all), k > n is not.
        assert!(topk_vao(&mut objs, 2, eps, &mut meter).is_ok());
    }

    #[test]
    fn epsilon_validation_applies() {
        let mut objs = converging_to(&[1.0, 50.0]);
        let mut meter = WorkMeter::new();
        assert!(matches!(
            topk_vao(
                &mut objs,
                1,
                PrecisionConstraint::new(0.001).unwrap(),
                &mut meter
            ),
            Err(VaoError::PrecisionTooTight { .. })
        ));
    }

    #[test]
    fn guess_revision_handles_deceptive_uppers() {
        // Object 0 flashes the highest H but collapses; the true top-2 are
        // objects 1 and 2.
        let mut objs = vec![
            ScriptedObject::converging(&[(60.0, 140.0), (62.0, 66.0), (64.0, 64.004)], 10, 0.01),
            ScriptedObject::converging(
                &[(90.0, 120.0), (104.0, 106.0), (105.0, 105.004)],
                10,
                0.01,
            ),
            ScriptedObject::converging(&[(85.0, 118.0), (99.0, 101.0), (100.0, 100.004)], 10, 0.01),
        ];
        let mut meter = WorkMeter::new();
        let res = topk_vao(
            &mut objs,
            2,
            PrecisionConstraint::new(0.01).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(res.members, vec![1, 2]);
    }

    #[test]
    fn topk_work_grows_with_k_on_clustered_data() {
        // Separating a deeper boundary takes at least as much work.
        let values: Vec<f64> = (0..10).map(|i| 100.0 + i as f64 * 0.5).collect();
        let eps = PrecisionConstraint::new(0.01).unwrap();
        let mut works = Vec::new();
        for k in [1usize, 3, 6] {
            let mut objs = converging_to(&values);
            let mut meter = WorkMeter::new();
            topk_vao(&mut objs, k, eps, &mut meter).unwrap();
            works.push(meter.total());
        }
        assert!(works[0] <= works[2], "k=1 {} vs k=6 {}", works[0], works[2]);
    }
}
