//! Traditional ("black box") baseline operators (§3.1, §6).
//!
//! A traditional UDF always runs to full accuracy — error below `minWidth`
//! — because the operator evaluating its result has no control over its
//! execution. The paper builds its baseline generously: each function call
//! "knows a priori the step sizes needed to get the desired accuracy, and no
//! further work has to be done to ensure that the error is acceptable"
//! (§6). We reproduce that with a **calibration** pass: a result object is
//! iterated to convergence once, off the clock, and the baseline thereafter
//! charges only [`crate::ResultObject::standalone_cost`] — the cost of a
//! single solver run at the final accuracy.

use crate::cost::{Work, WorkMeter};
use crate::error::VaoError;
use crate::interface::ResultObject;
use crate::ops::selection::CmpOp;
use crate::ops::DEFAULT_ITERATION_LIMIT;

/// The outcome of calibrating one function call: the accurate value and the
/// work a single full-accuracy black-box execution costs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlackBoxSpec {
    /// The function value at full accuracy (bounds midpoint at convergence).
    pub value: f64,
    /// Work of one black-box execution at that accuracy.
    pub work: Work,
    /// The converged object's final bounds width (strictly below its
    /// `minWidth`).
    pub final_width: f64,
}

/// Iterates `obj` to convergence and records its black-box execution spec.
///
/// Calibration work is charged to `calibration_meter` (the experiments use
/// a throwaway meter here — this models the paper's off-line measurement of
/// the step sizes each bond needs).
pub fn calibrate<R: ResultObject>(
    obj: &mut R,
    calibration_meter: &mut WorkMeter,
) -> Result<BlackBoxSpec, VaoError> {
    let mut iterations = 0u64;
    while !obj.converged() {
        if iterations >= DEFAULT_ITERATION_LIMIT {
            return Err(VaoError::IterationLimitExceeded {
                limit: DEFAULT_ITERATION_LIMIT,
            });
        }
        let before = obj.bounds();
        let after = obj.iterate(calibration_meter);
        iterations += 1;
        if after == before && !obj.converged() {
            return Err(VaoError::IterationLimitExceeded {
                limit: DEFAULT_ITERATION_LIMIT,
            });
        }
    }
    let bounds = obj.bounds();
    Ok(BlackBoxSpec {
        value: bounds.mid(),
        work: obj.standalone_cost(),
        final_width: bounds.width(),
    })
}

/// Executes one black-box call: charges the calibrated work, returns the
/// full-accuracy value.
pub fn black_box_call(spec: &BlackBoxSpec, meter: &mut WorkMeter) -> f64 {
    meter.charge_exec(spec.work);
    spec.value
}

/// Traditional selection: run every function to full accuracy, then compare.
///
/// Returns the indices of tuples satisfying the predicate.
pub fn traditional_select(
    specs: &[BlackBoxSpec],
    op: CmpOp,
    constant: f64,
    meter: &mut WorkMeter,
) -> Vec<usize> {
    specs
        .iter()
        .enumerate()
        .filter_map(|(i, s)| {
            let v = black_box_call(s, meter);
            op.eval(v, constant).then_some(i)
        })
        .collect()
}

/// Traditional MAX: run every function to full accuracy, take the largest.
pub fn traditional_max(
    specs: &[BlackBoxSpec],
    meter: &mut WorkMeter,
) -> Result<(usize, f64), VaoError> {
    traditional_extreme(specs, meter, |candidate, best| candidate > best)
}

/// Traditional MIN: run every function to full accuracy, take the smallest.
pub fn traditional_min(
    specs: &[BlackBoxSpec],
    meter: &mut WorkMeter,
) -> Result<(usize, f64), VaoError> {
    traditional_extreme(specs, meter, |candidate, best| candidate < best)
}

fn traditional_extreme(
    specs: &[BlackBoxSpec],
    meter: &mut WorkMeter,
    better: impl Fn(f64, f64) -> bool,
) -> Result<(usize, f64), VaoError> {
    if specs.is_empty() {
        return Err(VaoError::EmptyInput);
    }
    let mut best = (0, black_box_call(&specs[0], meter));
    for (i, s) in specs.iter().enumerate().skip(1) {
        let v = black_box_call(s, meter);
        if better(v, best.1) {
            best = (i, v);
        }
    }
    Ok(best)
}

/// Traditional weighted SUM: run every function to full accuracy and form
/// the weighted sum of the point values.
pub fn traditional_weighted_sum(
    specs: &[BlackBoxSpec],
    weights: &[f64],
    meter: &mut WorkMeter,
) -> Result<f64, VaoError> {
    if specs.is_empty() {
        return Err(VaoError::EmptyInput);
    }
    if specs.len() != weights.len() {
        return Err(VaoError::WeightCountMismatch {
            objects: specs.len(),
            weights: weights.len(),
        });
    }
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w < 0.0 {
            return Err(VaoError::InvalidWeight {
                index: i,
                weight: w,
            });
        }
    }
    Ok(specs
        .iter()
        .zip(weights)
        .map(|(s, &w)| w * black_box_call(s, meter))
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ScriptedObject;

    fn converging(values: &[(f64, f64)], cost: Work) -> ScriptedObject {
        ScriptedObject::converging(values, cost, 0.01)
    }

    fn spec(v: f64, work: Work) -> BlackBoxSpec {
        BlackBoxSpec {
            value: v,
            work,
            final_width: 0.005,
        }
    }

    #[test]
    fn calibrate_converges_and_records_standalone_cost() {
        let mut obj = converging(&[(90.0, 110.0), (99.0, 101.0), (100.0, 100.004)], 50);
        let mut cal = WorkMeter::new();
        let spec = calibrate(&mut obj, &mut cal).unwrap();
        assert!((spec.value - 100.002).abs() < 1e-9);
        // ScriptedObject's standalone cost is its last step cost (PDE-style).
        assert_eq!(spec.work, 50);
        assert!(spec.final_width < 0.01);
        // Calibration itself paid the full iterative cost (2 steps).
        assert_eq!(cal.breakdown().exec_iter, 100);
    }

    #[test]
    fn calibrate_detects_stall() {
        let mut obj = converging(&[(90.0, 110.0), (95.0, 105.0)], 10);
        let mut cal = WorkMeter::new();
        assert!(matches!(
            calibrate(&mut obj, &mut cal),
            Err(VaoError::IterationLimitExceeded { .. })
        ));
    }

    #[test]
    fn black_box_call_charges_fixed_work() {
        let s = spec(105.0, 1234);
        let mut m = WorkMeter::new();
        assert_eq!(black_box_call(&s, &mut m), 105.0);
        assert_eq!(black_box_call(&s, &mut m), 105.0);
        assert_eq!(m.breakdown().exec_iter, 2468);
    }

    #[test]
    fn traditional_select_cost_is_query_independent() {
        // §6.1: the traditional operator's runtime is constant because it
        // does not depend on the query constant.
        let specs = vec![spec(95.0, 100), spec(105.0, 200), spec(99.0, 300)];
        for constant in [0.0, 99.5, 1000.0] {
            let mut m = WorkMeter::new();
            let _ = traditional_select(&specs, CmpOp::Gt, constant, &mut m);
            assert_eq!(m.total(), 600);
        }
        let mut m = WorkMeter::new();
        let sat = traditional_select(&specs, CmpOp::Gt, 100.0, &mut m);
        assert_eq!(sat, vec![1]);
        let sat = traditional_select(&specs, CmpOp::Lt, 100.0, &mut m);
        assert_eq!(sat, vec![0, 2]);
    }

    #[test]
    fn traditional_max_and_min() {
        let specs = vec![spec(95.0, 1), spec(105.0, 1), spec(99.0, 1)];
        let mut m = WorkMeter::new();
        assert_eq!(traditional_max(&specs, &mut m).unwrap(), (1, 105.0));
        assert_eq!(traditional_min(&specs, &mut m).unwrap(), (0, 95.0));
        assert_eq!(m.total(), 6, "both aggregates ran every function");
        assert!(matches!(
            traditional_max(&[], &mut m),
            Err(VaoError::EmptyInput)
        ));
    }

    #[test]
    fn traditional_weighted_sum_values_and_errors() {
        let specs = vec![spec(100.0, 10), spec(50.0, 10)];
        let mut m = WorkMeter::new();
        let v = traditional_weighted_sum(&specs, &[2.0, 1.0], &mut m).unwrap();
        assert_eq!(v, 250.0);
        assert_eq!(m.total(), 20);
        assert!(matches!(
            traditional_weighted_sum(&specs, &[1.0], &mut m),
            Err(VaoError::WeightCountMismatch { .. })
        ));
        assert!(matches!(
            traditional_weighted_sum(&specs, &[1.0, -1.0], &mut m),
            Err(VaoError::InvalidWeight { .. })
        ));
        assert!(matches!(
            traditional_weighted_sum(&[], &[], &mut m),
            Err(VaoError::EmptyInput)
        ));
    }
}
