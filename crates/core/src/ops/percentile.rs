//! Sketch-guided PERCENTILE (extension): value bounds on the φ-quantile.
//!
//! Unlike [`quantile`](crate::ops::quantile), which *identifies* the rank-`k`
//! object by exact separation, this operator answers the **value** question —
//! "what is the φ-quantile of the relation?" — with an interval of width ≤ ε,
//! and uses an [`IntervalQuantileSketch`] to decide which objects are worth
//! iterating:
//!
//! * The exact output bounds are the order statistics of the endpoint
//!   multisets: `[k-th largest lo, k-th largest hi]` (rank `k` from the top
//!   is `⌈(1 − φ)·N⌉`). Order statistics are monotone in every coordinate, so
//!   this interval contains the φ-quantile of *any* point selection
//!   `v_i ∈ [lo_i, hi_i]` — in particular the true one.
//! * The demand set is the objects whose bounds straddle the sketch's rank
//!   band, a superset of the exact `[k-th lo, k-th hi]` band (each sketch
//!   bucket envelopes the exact value it absorbed). Objects entirely clear of
//!   the band can never move the k-th order statistic, so they are pruned
//!   without ever being iterated — the sketch-guided generalization of
//!   Top-K's two-phase separation.
//!
//! If every straddler converges before the output width reaches ε, the
//! operator stops at the `minWidth` floor and reports the (still sound)
//! wider interval, mirroring SUM's behavior under an unsatisfiable ε.

pub use va_sketch::rank_from_top;
use va_sketch::IntervalQuantileSketch;

use crate::bounds::Bounds;
use crate::cost::{Work, WorkMeter};
use crate::error::VaoError;
use crate::interface::ResultObject;
use crate::ops::minmax::AggregateConfig;
use crate::precision::PrecisionConstraint;
use crate::strategy::Candidate;

/// Relative-error parameter of the guiding sketch. Shared with the server's
/// demand functions so offline and online evaluation prune identically.
pub const SKETCH_ALPHA: f64 = 0.01;

/// Bucket budget of the guiding sketch (per endpoint sketch).
pub const SKETCH_BUDGET: usize = 96;

/// Outcome of a PERCENTILE evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct PercentileResult {
    /// Sound bounds on the φ-quantile value: `[k-th largest lo, k-th
    /// largest hi]` at termination.
    pub bounds: Bounds,
    /// The evaluated rank from the top, `⌈(1 − φ)·N⌉` clamped to `1..=N`.
    pub rank: usize,
    /// Total `iterate()` calls issued.
    pub iterations: u64,
    /// Distinct objects that were iterated at least once — the pruning
    /// numerator (`refined / N` is the touched fraction).
    pub refined: usize,
}

/// Evaluates the φ-quantile value to width ≤ ε with the default (greedy)
/// configuration.
///
/// `phi = 0.5` is the MEDIAN value, `phi → 1` the MAX, `phi → 0` the MIN.
pub fn percentile_vao<R: ResultObject>(
    objs: &mut [R],
    phi: f64,
    epsilon: PrecisionConstraint,
    meter: &mut WorkMeter,
) -> Result<PercentileResult, VaoError> {
    percentile_vao_with(objs, phi, epsilon, &mut AggregateConfig::default(), meter)
}

/// Evaluates the φ-quantile value with an explicit configuration.
pub fn percentile_vao_with<R: ResultObject>(
    objs: &mut [R],
    phi: f64,
    epsilon: PrecisionConstraint,
    config: &mut AggregateConfig,
    meter: &mut WorkMeter,
) -> Result<PercentileResult, VaoError> {
    if objs.is_empty() {
        return Err(VaoError::EmptyInput);
    }
    if !phi.is_finite() || !(0.0..=1.0).contains(&phi) {
        return Err(VaoError::InvalidQuantile { phi });
    }
    epsilon.validate_single_object(objs)?;
    let n = objs.len();
    let k = rank_from_top(phi, n);

    let mut iterations = 0u64;
    let step = |objs: &mut [R], idx: usize, iterations: &mut u64, meter: &mut WorkMeter| {
        if *iterations >= config.iteration_limit {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        }
        let before = objs[idx].bounds();
        let after = objs[idx].iterate(meter);
        *iterations += 1;
        if after == before && !objs[idx].converged() {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        }
        Ok(())
    };

    let mut sketch = IntervalQuantileSketch::new(SKETCH_ALPHA, SKETCH_BUDGET);
    let mut touched = vec![false; n];
    let mut scratch = Vec::with_capacity(n);
    let bounds = loop {
        let out_lo = kth_largest(objs.iter().map(|o| o.bounds().lo()), k, &mut scratch);
        let out_hi = kth_largest(objs.iter().map(|o| o.bounds().hi()), k, &mut scratch);
        if out_hi - out_lo <= epsilon.epsilon() {
            break Bounds::new(out_lo, out_hi);
        }

        // Rebuild the guiding sketch from the live bounds and pull the rank
        // band — a provable superset of the exact [out_lo, out_hi] band.
        sketch.clear();
        for o in objs.iter() {
            let b = o.bounds();
            sketch.insert(b.lo(), b.hi());
        }
        let (band_lo, band_hi) = sketch
            .rank_band_from_top(k as u64)
            .expect("rank validated against non-empty input");

        let mut candidates = Vec::new();
        for (i, o) in objs.iter().enumerate() {
            if o.converged() {
                continue;
            }
            let b = o.bounds();
            // Only band straddlers can move the k-th order statistic.
            if b.hi() < band_lo || b.lo() > band_hi {
                continue;
            }
            let overlap = b.hi().min(band_hi) - b.lo().max(band_lo);
            let est = o.est_bounds();
            let shrink = (est.lo() - b.lo()).max(0.0) + (b.hi() - est.hi()).max(0.0);
            candidates.push(Candidate {
                index: i,
                benefit: overlap.max(0.0).min(shrink),
                est_cpu: o.est_cpu(),
                width: b.width(),
            });
        }
        if candidates.is_empty() {
            // Every straddler is at its minWidth floor: ε is unsatisfiable,
            // report the tightest sound interval (SUM's floor behavior).
            break Bounds::new(out_lo, out_hi);
        }
        meter.charge_choose(candidates.len() as Work);
        let Some(pick) = config.policy.pick(&candidates) else {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        };
        let idx = candidates[pick].index;
        step(objs, idx, &mut iterations, meter)?;
        touched[idx] = true;
    };

    Ok(PercentileResult {
        bounds,
        rank: k,
        iterations,
        refined: touched.iter().filter(|&&t| t).count(),
    })
}

/// The `k`-th largest (1-based) of `vals`, using `scratch` to avoid
/// reallocating across rounds.
fn kth_largest(vals: impl Iterator<Item = f64>, k: usize, scratch: &mut Vec<f64>) -> f64 {
    scratch.clear();
    scratch.extend(vals);
    scratch.sort_by(|a, b| b.total_cmp(a));
    scratch[k - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::quantile::quantile_vao;
    use crate::testkit::ScriptedObject;

    fn converging_to(values: &[f64]) -> Vec<ScriptedObject> {
        values
            .iter()
            .map(|&v| {
                ScriptedObject::converging(
                    &[
                        (v - 9.0, v + 9.0),
                        (v - 3.0, v + 3.0),
                        (v - 1.0, v + 1.0),
                        (v - 0.004, v + 0.004),
                    ],
                    10,
                    0.01,
                )
            })
            .collect()
    }

    fn exact_kth(values: &[f64], k: usize) -> f64 {
        let mut v = values.to_vec();
        v.sort_by(|a, b| b.total_cmp(a));
        v[k - 1]
    }

    #[test]
    fn median_value_is_bracketed_to_epsilon() {
        let values = [110.0, 90.0, 100.0, 130.0, 70.0];
        let mut objs = converging_to(&values);
        let mut meter = WorkMeter::new();
        let eps = PrecisionConstraint::new(0.05).unwrap();
        let res = percentile_vao(&mut objs, 0.5, eps, &mut meter).unwrap();
        assert_eq!(res.rank, 3);
        assert!(res.bounds.contains(100.0), "median 100 in {:?}", res.bounds);
        assert!(res.bounds.width() <= 0.05);
    }

    #[test]
    fn extreme_quantiles_bracket_max_and_min() {
        let values = [95.0, 105.0, 99.0, 101.0];
        let eps = PrecisionConstraint::new(0.05).unwrap();
        let mut meter = WorkMeter::new();

        let mut a = converging_to(&values);
        let hi = percentile_vao(&mut a, 1.0, eps, &mut meter).unwrap();
        assert!(hi.bounds.contains(105.0));

        let mut b = converging_to(&values);
        let lo = percentile_vao(&mut b, 0.0, eps, &mut meter).unwrap();
        assert!(lo.bounds.contains(95.0));
    }

    #[test]
    fn bounds_always_contain_the_exact_order_statistic() {
        let values = [50.0, 80.0, 20.0, 110.0, 140.0, 65.0, 71.0, 98.0];
        let eps = PrecisionConstraint::new(0.05).unwrap();
        for phi in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let mut objs = converging_to(&values);
            let mut meter = WorkMeter::new();
            let res = percentile_vao(&mut objs, phi, eps, &mut meter).unwrap();
            let exact = exact_kth(&values, res.rank);
            assert!(
                res.bounds.contains(exact),
                "phi={phi}: exact {exact} outside {:?}",
                res.bounds
            );
        }
    }

    #[test]
    fn agrees_with_exact_separation_at_equal_rank() {
        let values = [10.0, 100.0, 100.5, 101.0, 200.0, 55.0, 71.5];
        let eps = PrecisionConstraint::new(0.05).unwrap();

        let mut a = converging_to(&values);
        let mut meter = WorkMeter::new();
        let sk = percentile_vao(&mut a, 0.5, eps, &mut meter).unwrap();

        let mut b = converging_to(&values);
        let ex = quantile_vao(&mut b, sk.rank, eps, &mut meter).unwrap();
        // Both brackets contain the true median, so they must overlap.
        assert!(
            sk.bounds.overlaps(&ex.bounds),
            "sketch {:?} vs exact {:?}",
            sk.bounds,
            ex.bounds
        );
    }

    #[test]
    fn tail_objects_are_never_iterated() {
        // The 10 and 200 outliers never straddle the median band: the
        // sketch-guided demand set must leave them completely untouched.
        let values = [10.0, 100.0, 100.5, 101.0, 200.0];
        let mut objs = converging_to(&values);
        let mut meter = WorkMeter::new();
        let eps = PrecisionConstraint::new(0.05).unwrap();
        let res = percentile_vao(&mut objs, 0.5, eps, &mut meter).unwrap();
        assert!(res.bounds.contains(100.5));
        assert!(res.refined <= 3, "only the middle cluster may be refined");
        assert!(
            objs[0].bounds().width() > 17.0 && objs[4].bounds().width() > 17.0,
            "tails must keep their initial ±9 bounds"
        );
    }

    #[test]
    fn epsilon_below_min_width_is_rejected_upfront() {
        // Footnote 10: ε below an object's minWidth is unsatisfiable for a
        // single-object output — same typed error as MAX/MIN/quantile.
        let values = [100.0, 100.001, 100.002];
        let mut objs = converging_to(&values);
        let mut meter = WorkMeter::new();
        let eps = PrecisionConstraint::new(0.009).unwrap();
        assert!(matches!(
            percentile_vao(&mut objs, 0.5, eps, &mut meter),
            Err(VaoError::PrecisionTooTight { .. })
        ));
    }

    #[test]
    fn indistinguishable_values_still_terminate_with_sound_bounds() {
        // Values closer together than ε: every straddler converges and the
        // operator must terminate with a containing interval, not spin.
        let values = [100.0, 100.001, 100.002];
        let mut objs = converging_to(&values);
        let mut meter = WorkMeter::new();
        let eps = PrecisionConstraint::new(0.012).unwrap();
        let res = percentile_vao(&mut objs, 0.5, eps, &mut meter).unwrap();
        assert!(res.bounds.contains(100.001));
    }

    #[test]
    fn rejects_invalid_inputs() {
        let mut meter = WorkMeter::new();
        let eps = PrecisionConstraint::new(0.05).unwrap();
        let mut empty: Vec<ScriptedObject> = Vec::new();
        assert!(matches!(
            percentile_vao(&mut empty, 0.5, eps, &mut meter),
            Err(VaoError::EmptyInput)
        ));
        let mut objs = converging_to(&[1.0, 2.0]);
        for phi in [f64::NAN, -0.1, 1.5] {
            assert!(matches!(
                percentile_vao(&mut objs, phi, eps, &mut meter),
                Err(VaoError::InvalidQuantile { .. })
            ));
        }
    }
}
