//! Heap-indexed weighted SUM — §5.2's sublinear iteration choice.
//!
//! The baseline SUM VAO re-scans every unconverged object to pick its next
//! iteration (`O(N)` per choice; §5.2 notes "the VAO can choose iterations
//! in sublinear time using indexes such as heap queues, \[but\] we found
//! such optimizations unnecessary in our current experiments"). This
//! module implements that index: a lazy binary max-heap over per-object
//! scores. Iterating an object changes *only its own* score, so each
//! choice is `O(log N)` — pop the best fresh entry, iterate, push the
//! updated entry. Stale entries (superseded versions) are discarded on
//! pop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::bounds::Bounds;
use crate::cost::{Work, WorkMeter};
use crate::error::VaoError;
use crate::interface::ResultObject;
use crate::ops::sum::SumResult;
use crate::ops::DEFAULT_ITERATION_LIMIT;
use crate::precision::PrecisionConstraint;

/// Heap entry: score-ordered, with a version stamp for lazy invalidation.
struct Entry {
    score: f64,
    width: f64,
    version: u64,
    index: usize,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Primary: greedy score. Secondary: width (the same fallback the
        // scan-based policy uses when estimates carry no signal).
        // Tertiary: lower index, for determinism.
        self.score
            .total_cmp(&other.score)
            .then(self.width.total_cmp(&other.width))
            .then(other.index.cmp(&self.index))
    }
}

fn score_of<R: ResultObject>(obj: &R, weight: f64) -> (f64, f64) {
    let b = obj.bounds();
    let eb = obj.est_bounds();
    let reduction = (eb.lo() - b.lo()).max(0.0) + (b.hi() - eb.hi()).max(0.0);
    let score = weight * reduction / (obj.est_cpu().max(1) as f64);
    (score, b.width())
}

/// Weighted SUM with a heap-indexed greedy strategy. Semantically
/// equivalent to [`crate::ops::sum::weighted_sum_vao`] (same stopping
/// conditions, same greedy criterion); only the choice data structure —
/// and therefore the `chooseIter` cost profile — differs.
pub fn weighted_sum_vao_heap<R: ResultObject>(
    objs: &mut [R],
    weights: &[f64],
    epsilon: PrecisionConstraint,
    meter: &mut WorkMeter,
) -> Result<SumResult, VaoError> {
    if objs.is_empty() {
        return Err(VaoError::EmptyInput);
    }
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w < 0.0 {
            return Err(VaoError::InvalidWeight {
                index: i,
                weight: w,
            });
        }
    }
    epsilon.validate_weighted(objs, weights)?;

    let n = objs.len();
    let (mut lo_sum, mut hi_sum) =
        objs.iter()
            .zip(weights)
            .fold((0.0, 0.0), |(lo, hi), (o, &w)| {
                let b = o.bounds();
                (lo + w * b.lo(), hi + w * b.hi())
            });

    let mut versions = vec![0u64; n];
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(n);
    for (i, o) in objs.iter().enumerate() {
        if !o.converged() {
            let (score, width) = score_of(o, weights[i]);
            heap.push(Entry {
                score,
                width,
                version: 0,
                index: i,
            });
        }
    }
    // Building the index is one O(N) pass (heapify), charged like a scan.
    meter.charge_choose(n as Work);

    let mut iterations = 0u64;
    loop {
        if hi_sum - lo_sum <= epsilon.epsilon() {
            return Ok(SumResult {
                bounds: Bounds::new(lo_sum.min(hi_sum), hi_sum.max(lo_sum)),
                iterations,
                stopped_at_floor: false,
            });
        }
        // Pop the best fresh entry; stale or converged entries are skipped.
        let chosen = loop {
            match heap.pop() {
                None => {
                    return Ok(SumResult {
                        bounds: Bounds::new(lo_sum.min(hi_sum), hi_sum.max(lo_sum)),
                        iterations,
                        stopped_at_floor: true,
                    });
                }
                Some(e) => {
                    meter.charge_choose(1);
                    if e.version == versions[e.index] && !objs[e.index].converged() {
                        break e.index;
                    }
                }
            }
        };

        if iterations >= DEFAULT_ITERATION_LIMIT {
            return Err(VaoError::IterationLimitExceeded {
                limit: DEFAULT_ITERATION_LIMIT,
            });
        }
        let before = objs[chosen].bounds();
        let after = objs[chosen].iterate(meter);
        iterations += 1;
        if after == before && !objs[chosen].converged() {
            return Err(VaoError::IterationLimitExceeded {
                limit: DEFAULT_ITERATION_LIMIT,
            });
        }
        let w = weights[chosen];
        lo_sum += w * (after.lo() - before.lo());
        hi_sum += w * (after.hi() - before.hi());
        if iterations.is_multiple_of(1024) {
            let (l, h) = objs
                .iter()
                .zip(weights)
                .fold((0.0, 0.0), |(lo, hi), (o, &ww)| {
                    let b = o.bounds();
                    (lo + ww * b.lo(), hi + ww * b.hi())
                });
            lo_sum = l;
            hi_sum = h;
        }

        versions[chosen] += 1;
        if !objs[chosen].converged() {
            let (score, width) = score_of(&objs[chosen], w);
            heap.push(Entry {
                score,
                width,
                version: versions[chosen],
                index: chosen,
            });
            meter.charge_choose(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sum::weighted_sum_vao;
    use crate::testkit::ScriptedObject;

    fn converging_to(values: &[f64]) -> Vec<ScriptedObject> {
        values
            .iter()
            .map(|&v| {
                ScriptedObject::converging(
                    &[
                        (v - 16.0, v + 16.0),
                        (v - 6.0, v + 6.0),
                        (v - 2.0, v + 2.0),
                        (v - 0.5, v + 0.5),
                        (v - 0.004, v + 0.004),
                    ],
                    10,
                    0.01,
                )
            })
            .collect()
    }

    #[test]
    fn heap_and_scan_agree_on_results() {
        let values: Vec<f64> = (0..40).map(|i| 80.0 + (i as f64) * 1.3).collect();
        let weights: Vec<f64> = (0..40).map(|i| 1.0 + (i % 7) as f64).collect();
        let floor: f64 = weights.iter().map(|w| w * 0.01).sum();
        let eps = PrecisionConstraint::new(floor * 30.0).unwrap();
        let true_sum: f64 = values.iter().zip(&weights).map(|(v, w)| v * w).sum();

        let mut a = converging_to(&values);
        let mut ma = WorkMeter::new();
        let ra = weighted_sum_vao(&mut a, &weights, eps, &mut ma).unwrap();

        let mut b = converging_to(&values);
        let mut mb = WorkMeter::new();
        let rb = weighted_sum_vao_heap(&mut b, &weights, eps, &mut mb).unwrap();

        assert!(ra.bounds.contains(true_sum));
        assert!(rb.bounds.contains(true_sum));
        assert!(ra.bounds.width() <= eps.epsilon());
        assert!(rb.bounds.width() <= eps.epsilon());
        // Identical greedy criterion: execution work should match exactly
        // for deterministic scripted objects.
        assert_eq!(
            ma.breakdown().exec_iter,
            mb.breakdown().exec_iter,
            "both strategies perform the same greedy iterations"
        );
    }

    #[test]
    fn heap_choose_cost_is_far_below_scan_cost() {
        // Many objects, tight epsilon: the scan pays O(N) per iteration,
        // the heap O(log N).
        let values: Vec<f64> = (0..200).map(|i| 50.0 + (i as f64) * 0.7).collect();
        let weights = vec![1.0; 200];
        let eps = PrecisionConstraint::new(200.0 * 0.01 * 1.001).unwrap();

        let mut a = converging_to(&values);
        let mut ma = WorkMeter::new();
        weighted_sum_vao(&mut a, &weights, eps, &mut ma).unwrap();

        let mut b = converging_to(&values);
        let mut mb = WorkMeter::new();
        weighted_sum_vao_heap(&mut b, &weights, eps, &mut mb).unwrap();

        assert!(
            mb.breakdown().choose_iter * 10 < ma.breakdown().choose_iter,
            "heap {} vs scan {}",
            mb.breakdown().choose_iter,
            ma.breakdown().choose_iter
        );
    }

    #[test]
    fn heap_respects_epsilon_and_floor() {
        let values = [100.0, 50.0];
        let mut objs = converging_to(&values);
        let mut meter = WorkMeter::new();
        // Wide epsilon: stops early.
        let res = weighted_sum_vao_heap(
            &mut objs,
            &[1.0, 1.0],
            PrecisionConstraint::new(20.0).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert!(res.bounds.width() <= 20.0);
        assert!(!res.stopped_at_floor);
        assert!(res.bounds.contains(150.0));

        // Floor run: every object converges.
        let mut objs = converging_to(&values);
        let res = weighted_sum_vao_heap(
            &mut objs,
            &[1.0, 1.0],
            PrecisionConstraint::new(0.021).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert!(objs.iter().all(ScriptedObject::converged));
        assert!(res.bounds.width() <= 0.021);
    }

    #[test]
    fn heap_validates_inputs_like_the_scan() {
        let mut objs: Vec<ScriptedObject> = vec![];
        let mut meter = WorkMeter::new();
        let eps = PrecisionConstraint::new(1.0).unwrap();
        assert_eq!(
            weighted_sum_vao_heap(&mut objs, &[], eps, &mut meter).unwrap_err(),
            VaoError::EmptyInput
        );
        let mut objs = converging_to(&[1.0]);
        assert!(matches!(
            weighted_sum_vao_heap(&mut objs, &[-1.0], eps, &mut meter).unwrap_err(),
            VaoError::InvalidWeight { .. }
        ));
        let mut objs = converging_to(&[1.0]);
        assert!(matches!(
            weighted_sum_vao_heap(&mut objs, &[1.0, 2.0], eps, &mut meter).unwrap_err(),
            VaoError::WeightCountMismatch { .. }
        ));
    }

    #[test]
    fn heap_detects_stalled_objects() {
        let mut objs = vec![ScriptedObject::converging(
            &[(0.0, 10.0), (1.0, 9.0)],
            4,
            0.01,
        )];
        let mut meter = WorkMeter::new();
        assert!(matches!(
            weighted_sum_vao_heap(
                &mut objs,
                &[1.0],
                PrecisionConstraint::new(1.0).unwrap(),
                &mut meter
            )
            .unwrap_err(),
            VaoError::IterationLimitExceeded { .. }
        ));
    }
}
