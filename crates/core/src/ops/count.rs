//! COUNT over a selection predicate, with a bounded-slack early stop.
//!
//! `COUNT(model(args) ⟨op⟩ c)` needs each tuple only classified, not
//! priced — and often not even classified: if the query tolerates a count
//! error of ±`slack`, the operator can leave up to `slack` straddling
//! objects unresolved and report the count as an integer interval. This
//! extends the paper's selection VAO with the aggregate-style precision
//! trade-off of §5 (the paper's precision constraints bound *value* widths;
//! here the constraint bounds the count's width).

use crate::cost::{Work, WorkMeter};
use crate::error::VaoError;
use crate::interface::ResultObject;
use crate::ops::minmax::AggregateConfig;
use crate::ops::selection::CmpOp;
use crate::strategy::Candidate;

/// Result of a COUNT evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct CountResult {
    /// Objects proven (or resolved at `minWidth`) to satisfy the predicate.
    pub count_lo: usize,
    /// `count_lo` plus the objects left unresolved under the slack.
    pub count_hi: usize,
    /// Indices of the unresolved objects (`count_hi - count_lo` of them).
    pub unresolved: Vec<usize>,
    /// Total `iterate()` calls issued.
    pub iterations: u64,
}

impl CountResult {
    /// The exact count when no slack was consumed.
    #[must_use]
    pub fn exact(&self) -> Option<usize> {
        (self.count_lo == self.count_hi).then_some(self.count_lo)
    }
}

/// Evaluates COUNT with the default greedy configuration.
pub fn count_vao<R: ResultObject>(
    objs: &mut [R],
    op: CmpOp,
    constant: f64,
    slack: usize,
    meter: &mut WorkMeter,
) -> Result<CountResult, VaoError> {
    count_vao_with(
        objs,
        op,
        constant,
        slack,
        &mut AggregateConfig::default(),
        meter,
    )
}

/// Evaluates COUNT with an explicit configuration.
///
/// Iterates until at most `slack` objects remain unable to be classified,
/// greedily spending work where the estimated bounds shrink most per CPU
/// cycle. `slack = 0` gives the exact count (every object classified,
/// `minWidth`-resolution included).
pub fn count_vao_with<R: ResultObject>(
    objs: &mut [R],
    op: CmpOp,
    constant: f64,
    slack: usize,
    config: &mut AggregateConfig,
    meter: &mut WorkMeter,
) -> Result<CountResult, VaoError> {
    if !constant.is_finite() {
        return Err(VaoError::NonFiniteConstant { value: constant });
    }
    let mut iterations = 0u64;

    loop {
        // Classify.
        let mut count_lo = 0usize;
        let mut unresolved = Vec::new();
        for (i, o) in objs.iter().enumerate() {
            match op.decide(&o.bounds(), constant) {
                Some(true) => count_lo += 1,
                Some(false) => {}
                None => {
                    if o.converged() {
                        // minWidth resolution: value treated as equal.
                        if op.outcome_at_equality() {
                            count_lo += 1;
                        }
                    } else {
                        unresolved.push(i);
                    }
                }
            }
        }
        if unresolved.len() <= slack {
            return Ok(CountResult {
                count_lo,
                count_hi: count_lo + unresolved.len(),
                unresolved,
                iterations,
            });
        }

        // Greedy: biggest estimated width reduction per cycle, with a bonus
        // when the estimate already clears the constant (it would decide).
        let candidates: Vec<Candidate> = unresolved
            .iter()
            .map(|&i| {
                let b = objs[i].bounds();
                let eb = objs[i].est_bounds();
                let mut benefit = (eb.lo() - b.lo()).max(0.0) + (b.hi() - eb.hi()).max(0.0);
                if op.decide(&eb, constant).is_some() {
                    benefit += b.width();
                }
                Candidate {
                    index: i,
                    benefit,
                    est_cpu: objs[i].est_cpu(),
                    width: b.width(),
                }
            })
            .collect();
        meter.charge_choose(candidates.len() as Work);
        let pick = config
            .policy
            .pick(&candidates)
            .expect("unresolved set is non-empty");
        let chosen = candidates[pick].index;

        if iterations >= config.iteration_limit {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        }
        let before = objs[chosen].bounds();
        let after = objs[chosen].iterate(meter);
        iterations += 1;
        if after == before && !objs[chosen].converged() {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ScriptedObject;

    fn converging_to(values: &[f64]) -> Vec<ScriptedObject> {
        values
            .iter()
            .map(|&v| {
                ScriptedObject::converging(
                    &[
                        (v - 10.0, v + 10.0),
                        (v - 2.0, v + 2.0),
                        (v - 0.004, v + 0.004),
                    ],
                    10,
                    0.01,
                )
            })
            .collect()
    }

    #[test]
    fn exact_count_matches_ground_truth() {
        let values = [95.0, 105.0, 99.0, 110.0, 101.0];
        let mut objs = converging_to(&values);
        let mut meter = WorkMeter::new();
        let res = count_vao(&mut objs, CmpOp::Gt, 100.0, 0, &mut meter).unwrap();
        assert_eq!(res.exact(), Some(3));
        assert!(res.unresolved.is_empty());
    }

    #[test]
    fn slack_trades_precision_for_work() {
        // Three values hug the constant; allowing slack 3 lets the
        // operator skip their expensive resolution entirely.
        let values = [100.001, 99.999, 100.002, 150.0, 50.0];
        let exact_work = {
            let mut objs = converging_to(&values);
            let mut meter = WorkMeter::new();
            let res = count_vao(&mut objs, CmpOp::Gt, 100.0, 0, &mut meter).unwrap();
            // The three stragglers converge to ±0.004 around ~100, still
            // containing the constant: resolved as "equal", failing Gt.
            // Only 150.0 passes.
            assert_eq!(res.exact(), Some(1));
            meter.total()
        };
        let slack_work = {
            let mut objs = converging_to(&values);
            let mut meter = WorkMeter::new();
            let res = count_vao(&mut objs, CmpOp::Gt, 100.0, 3, &mut meter).unwrap();
            assert!(res.count_lo <= 3 && res.count_hi >= 1);
            assert!(res.count_hi - res.count_lo <= 3);
            meter.total()
        };
        assert!(
            slack_work * 3 < exact_work,
            "slack {slack_work} vs exact {exact_work}"
        );
    }

    #[test]
    fn exact_count_resolves_straddlers_via_min_width() {
        // Values converging to within minWidth of the constant count as
        // equal: Gt excludes them, Ge includes them.
        let values = [100.001, 99.999];
        let mut objs = converging_to(&values);
        let mut meter = WorkMeter::new();
        let res = count_vao(&mut objs, CmpOp::Gt, 100.0, 0, &mut meter).unwrap();
        assert_eq!(res.exact(), Some(0), "both treated as == 100, Gt fails");

        let mut objs = converging_to(&values);
        let res = count_vao(&mut objs, CmpOp::Ge, 100.0, 0, &mut meter).unwrap();
        assert_eq!(res.exact(), Some(2), "both treated as == 100, Ge passes");
    }

    #[test]
    fn well_separated_objects_cost_little() {
        let values = [10.0, 20.0, 300.0, 400.0];
        let mut objs = converging_to(&values);
        let mut meter = WorkMeter::new();
        let res = count_vao(&mut objs, CmpOp::Lt, 150.0, 0, &mut meter).unwrap();
        assert_eq!(res.exact(), Some(2));
        // One refinement per object at most (initial ±10 bounds straddle
        // nothing once refined to ±2).
        assert!(res.iterations <= 4, "{} iterations", res.iterations);
    }

    #[test]
    fn rejects_non_finite_constant() {
        let mut objs = converging_to(&[1.0]);
        let mut meter = WorkMeter::new();
        assert!(matches!(
            count_vao(&mut objs, CmpOp::Gt, f64::NAN, 0, &mut meter),
            Err(VaoError::NonFiniteConstant { .. })
        ));
    }

    #[test]
    fn empty_input_counts_zero() {
        let mut objs: Vec<ScriptedObject> = vec![];
        let mut meter = WorkMeter::new();
        let res = count_vao(&mut objs, CmpOp::Gt, 0.0, 0, &mut meter).unwrap();
        assert_eq!(res.exact(), Some(0));
    }

    #[test]
    fn stalled_object_errors() {
        let mut objs = vec![ScriptedObject::converging(&[(90.0, 110.0)], 10, 0.01)];
        let mut meter = WorkMeter::new();
        assert!(matches!(
            count_vao(&mut objs, CmpOp::Gt, 100.0, 0, &mut meter),
            Err(VaoError::IterationLimitExceeded { .. })
        ));
    }
}
