//! The Variable-Accuracy Operators of §5, their baselines, and extensions.
//!
//! * [`selection`] — predicate evaluation against a constant (§3.2's running
//!   example; evaluated per result object).
//! * [`minmax`] — the MIN/MAX aggregate VAOs with the guess-and-reduce
//!   greedy strategy of §5.1.
//! * [`sum`] — the weighted SUM/AVE aggregate VAO of §5.2.
//! * [`traditional`] — the "black box" baseline operators of §3.1/§6, plus
//!   the calibration procedure the paper uses to build them.
//! * [`oracle`] — the theoretically optimal MAX iteration strategy of §6.2.
//! * [`hybrid`] — the hybrid SUM operator sketched as future work in §6.3.
//! * [`topk`] — extension: Top-K by the MAX VAO's guess-and-reduce scheme.
//! * [`count`] — extension: predicate COUNT with a bounded-slack early
//!   stop.
//! * [`sum_heap`] — §5.2's heap-indexed iteration choice (`O(log N)` per
//!   pick instead of the baseline scan's `O(N)`).
//! * [`quantile`] — extension: MEDIAN/rank-k by two-phase separation
//!   (k = 1 ≡ MAX, k = N ≡ MIN).
//! * [`percentile`] — extension: φ-quantile *value* bounds with
//!   sketch-guided demand pruning (va-sketch rank bands).
//! * [`heavy`] — extension: top-k ε-cell heavy hitters with
//!   SpaceSaving/count-min demand pruning.
//! * [`project`] — §3.2's precision-constrained projection of function
//!   results into query output.

pub mod count;
pub mod heavy;
pub mod hybrid;
pub mod minmax;
pub mod oracle;
pub mod percentile;
pub mod project;
pub mod quantile;
pub mod selection;
pub mod sum;
pub mod sum_heap;
pub mod topk;
pub mod traditional;

/// Default cap on the total number of `iterate()` calls a single operator
/// evaluation may issue. This exists purely as a defense against result
/// objects that stop making progress (contract violation); the paper's
/// workloads stay orders of magnitude below it.
pub const DEFAULT_ITERATION_LIMIT: u64 = 10_000_000;
