//! The theoretically optimal MAX iteration strategy of §6.2.
//!
//! The "Optimal" operator is told the argmax a priori. It iterates that
//! object until its error meets the precision constraint, then iterates
//! every other object just until its bounds no longer overlap the winner's.
//! Running the maximum to higher accuracy than requested is useless, so no
//! strategy can do better — which makes this the yardstick the MAX VAO is
//! measured against (the paper reports the VAO within 3 % of it).

use crate::cost::WorkMeter;
use crate::error::VaoError;
use crate::interface::ResultObject;
use crate::ops::minmax::ExtremeResult;
use crate::ops::DEFAULT_ITERATION_LIMIT;
use crate::precision::PrecisionConstraint;

/// Evaluates MAX given oracular knowledge of the winning index.
///
/// # Errors
///
/// Same failure modes as the MAX VAO, plus a panic-free rejection of an
/// out-of-range `true_argmax` via [`VaoError::EmptyInput`] semantics is NOT
/// provided — passing a wrong argmax is a logic error in the caller and the
/// resulting bounds may be incorrect; this function is an experiment
/// yardstick, not a production operator.
pub fn oracle_max<R: ResultObject>(
    objs: &mut [R],
    true_argmax: usize,
    epsilon: PrecisionConstraint,
    meter: &mut WorkMeter,
) -> Result<ExtremeResult, VaoError> {
    if objs.is_empty() {
        return Err(VaoError::EmptyInput);
    }
    assert!(
        true_argmax < objs.len(),
        "oracle argmax {true_argmax} out of range for {} objects",
        objs.len()
    );
    epsilon.validate_single_object(objs)?;

    let mut iterations = 0u64;
    let step = |obj: &mut R, meter: &mut WorkMeter, iterations: &mut u64| {
        let before = obj.bounds();
        let after = obj.iterate(meter);
        *iterations += 1;
        if after == before && !obj.converged() {
            return Err(VaoError::IterationLimitExceeded {
                limit: DEFAULT_ITERATION_LIMIT,
            });
        }
        if *iterations >= DEFAULT_ITERATION_LIMIT {
            return Err(VaoError::IterationLimitExceeded {
                limit: DEFAULT_ITERATION_LIMIT,
            });
        }
        Ok(())
    };

    // 1. Run the known maximum to the requested precision.
    while objs[true_argmax].bounds().width() > epsilon.epsilon() && !objs[true_argmax].converged() {
        step(&mut objs[true_argmax], meter, &mut iterations)?;
    }
    let winner_lo = objs[true_argmax].bounds().lo();

    // 2. Iterate every other object until it no longer overlaps.
    let mut ties = Vec::new();
    #[allow(clippy::needless_range_loop)] // indexing sidesteps iter_mut borrow vs step()
    for i in 0..objs.len() {
        if i == true_argmax {
            continue;
        }
        while objs[i].bounds().hi() >= winner_lo && !objs[i].converged() {
            step(&mut objs[i], meter, &mut iterations)?;
        }
        if objs[i].bounds().hi() >= winner_lo {
            // Converged but still overlapping: genuinely indistinguishable.
            ties.push(i);
        }
    }

    Ok(ExtremeResult {
        argext: true_argmax,
        bounds: objs[true_argmax].bounds(),
        ties,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ScriptedObject;

    fn objs() -> Vec<ScriptedObject> {
        vec![
            ScriptedObject::converging(&[(90.0, 110.0), (94.0, 96.0), (95.0, 95.005)], 10, 0.01),
            ScriptedObject::converging(
                &[(95.0, 112.0), (104.0, 106.0), (105.0, 105.005)],
                10,
                0.01,
            ),
            ScriptedObject::converging(&[(60.0, 80.0), (69.0, 71.0), (70.0, 70.005)], 10, 0.01),
        ]
    }

    #[test]
    fn oracle_refines_winner_then_separates_others() {
        let mut o = objs();
        let mut meter = WorkMeter::new();
        let res = oracle_max(
            &mut o,
            1,
            PrecisionConstraint::new(0.01).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(res.argext, 1);
        assert!(res.ties.is_empty());
        assert!(res.bounds.width() <= 0.01);
        // Winner fully converged (2 iterations). Object 0 needed one
        // iteration to drop its H from 110 below 105. Object 2 never
        // overlapped: zero iterations.
        assert!(o[1].converged());
        assert_eq!(o[0].position(), 1);
        assert_eq!(o[2].position(), 0);
        assert_eq!(res.iterations, 3);
    }

    #[test]
    fn oracle_never_exceeds_vao_work() {
        use crate::ops::minmax::max_vao;
        let eps = PrecisionConstraint::new(0.01).unwrap();

        let mut a = objs();
        let mut oracle_meter = WorkMeter::new();
        let r1 = oracle_max(&mut a, 1, eps, &mut oracle_meter).unwrap();

        let mut b = objs();
        let mut vao_meter = WorkMeter::new();
        let r2 = max_vao(&mut b, eps, &mut vao_meter).unwrap();

        assert_eq!(r1.argext, r2.argext);
        assert!(
            oracle_meter.breakdown().exec_iter <= vao_meter.breakdown().exec_iter,
            "the oracle is a lower bound on execution work"
        );
    }

    #[test]
    fn oracle_reports_indistinguishable_ties() {
        let mut o = vec![
            ScriptedObject::converging(&[(90.0, 110.0), (100.0, 100.005)], 10, 0.01),
            ScriptedObject::converging(&[(90.0, 110.0), (99.998, 100.003)], 10, 0.01),
        ];
        let mut meter = WorkMeter::new();
        let res = oracle_max(
            &mut o,
            0,
            PrecisionConstraint::new(0.01).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(res.ties, vec![1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oracle_rejects_bad_index() {
        let mut o = objs();
        let mut meter = WorkMeter::new();
        let _ = oracle_max(
            &mut o,
            99,
            PrecisionConstraint::new(0.01).unwrap(),
            &mut meter,
        );
    }

    #[test]
    fn oracle_empty_input() {
        let mut o: Vec<ScriptedObject> = vec![];
        let mut meter = WorkMeter::new();
        assert!(matches!(
            oracle_max(
                &mut o,
                0,
                PrecisionConstraint::new(0.01).unwrap(),
                &mut meter
            ),
            Err(VaoError::EmptyInput)
        ));
    }
}
