//! The weighted SUM/AVE aggregate VAO (§5.2).
//!
//! Given result objects `O` and nonnegative weights `W`, the operator
//! maintains the interval `[Σ wᵢ·Lᵢ, Σ wᵢ·Hᵢ]` and iterates — greedily
//! picking the object with the largest estimated weighted error-reduction
//! per CPU cycle — until the interval is narrower than the precision
//! constraint ε or every object has reached its own `minWidth`. With unit
//! weights this is SUM; with weights `1/N` it is AVE.

use crate::bounds::Bounds;
use crate::cost::{Work, WorkBreakdown, WorkMeter};
use crate::error::VaoError;
use crate::interface::ResultObject;
use crate::ops::minmax::AggregateConfig;
use crate::precision::PrecisionConstraint;
use crate::strategy::Candidate;
use crate::trace::{
    observe_iteration, ExecObserver, NoopObserver, OperatorEndRecord, OperatorKind,
};

/// Result of a SUM/AVE evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct SumResult {
    /// Final bounds on the weighted sum.
    pub bounds: Bounds,
    /// Total `iterate()` calls issued.
    pub iterations: u64,
    /// True when the operator stopped because every object converged rather
    /// than because the ε target was met first. (The bounds may still meet
    /// ε — converged objects are typically narrower than their `minWidth`.)
    pub stopped_at_floor: bool,
}

/// Evaluates SUM (unit weights) with the default greedy configuration.
pub fn sum_vao<R: ResultObject>(
    objs: &mut [R],
    epsilon: PrecisionConstraint,
    meter: &mut WorkMeter,
) -> Result<SumResult, VaoError> {
    let weights = vec![1.0; objs.len()];
    weighted_sum_vao_with(
        objs,
        &weights,
        epsilon,
        &mut AggregateConfig::default(),
        meter,
    )
}

/// Evaluates AVE (weights `1/N`) with the default greedy configuration.
pub fn ave_vao<R: ResultObject>(
    objs: &mut [R],
    epsilon: PrecisionConstraint,
    meter: &mut WorkMeter,
) -> Result<SumResult, VaoError> {
    if objs.is_empty() {
        return Err(VaoError::EmptyInput);
    }
    let w = 1.0 / objs.len() as f64;
    let weights = vec![w; objs.len()];
    weighted_sum_vao_with(
        objs,
        &weights,
        epsilon,
        &mut AggregateConfig::default(),
        meter,
    )
}

/// Evaluates a weighted SUM with the default greedy configuration.
///
/// ```
/// use vao::cost::WorkMeter;
/// use vao::ops::sum::weighted_sum_vao;
/// use vao::precision::PrecisionConstraint;
/// use vao::testkit::ScriptedObject;
///
/// let mut objs = vec![
///     ScriptedObject::converging(&[(90.0, 110.0), (100.0, 100.005)], 10, 0.01),
///     ScriptedObject::converging(&[(40.0, 60.0), (50.0, 50.005)], 10, 0.01),
/// ];
/// let mut meter = WorkMeter::new();
/// // Portfolio of 2 shares of the first bond and 1 of the second.
/// let res = weighted_sum_vao(
///     &mut objs,
///     &[2.0, 1.0],
///     PrecisionConstraint::new(1.0).unwrap(),
///     &mut meter,
/// )
/// .unwrap();
/// assert!(res.bounds.contains(250.0));
/// assert!(res.bounds.width() <= 1.0);
/// ```
pub fn weighted_sum_vao<R: ResultObject>(
    objs: &mut [R],
    weights: &[f64],
    epsilon: PrecisionConstraint,
    meter: &mut WorkMeter,
) -> Result<SumResult, VaoError> {
    weighted_sum_vao_with(
        objs,
        weights,
        epsilon,
        &mut AggregateConfig::default(),
        meter,
    )
}

/// Evaluates a weighted SUM with an explicit configuration.
///
/// # Errors
///
/// * [`VaoError::EmptyInput`] for an empty object set.
/// * [`VaoError::WeightCountMismatch`] / [`VaoError::InvalidWeight`] for
///   malformed weights.
/// * [`VaoError::PrecisionTooTight`] if ε < Σ wᵢ·minWidthᵢ, which no amount
///   of iteration could satisfy.
/// * [`VaoError::IterationLimitExceeded`] if a result object stalls.
pub fn weighted_sum_vao_with<R: ResultObject>(
    objs: &mut [R],
    weights: &[f64],
    epsilon: PrecisionConstraint,
    config: &mut AggregateConfig,
    meter: &mut WorkMeter,
) -> Result<SumResult, VaoError> {
    weighted_sum_vao_traced(objs, weights, epsilon, config, meter, &mut NoopObserver)
}

/// [`weighted_sum_vao_with`] with an [`ExecObserver`] receiving the
/// execution trace: operator start/end, one
/// [`crate::trace::ChoiceRecord`] per strategy decision and one
/// [`crate::trace::IterationRecord`] per `iterate()` call.
pub fn weighted_sum_vao_traced<R: ResultObject, O: ExecObserver>(
    objs: &mut [R],
    weights: &[f64],
    epsilon: PrecisionConstraint,
    config: &mut AggregateConfig,
    meter: &mut WorkMeter,
    observer: &mut O,
) -> Result<SumResult, VaoError> {
    if objs.is_empty() {
        return Err(VaoError::EmptyInput);
    }
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w < 0.0 {
            return Err(VaoError::InvalidWeight {
                index: i,
                weight: w,
            });
        }
    }
    epsilon.validate_weighted(objs, weights)?;

    if observer.is_enabled() {
        observer.on_operator_start(OperatorKind::Sum, objs.len());
    }
    let work_start = meter.snapshot();
    let mut iterations = 0u64;
    let total = |objs: &[R]| -> (f64, f64) {
        objs.iter()
            .zip(weights)
            .fold((0.0, 0.0), |(lo, hi), (o, &w)| {
                let b = o.bounds();
                (lo + w * b.lo(), hi + w * b.hi())
            })
    };
    let (mut lo_sum, mut hi_sum) = total(objs);

    loop {
        if hi_sum - lo_sum <= epsilon.epsilon() {
            if observer.is_enabled() {
                observer.on_operator_end(&OperatorEndRecord {
                    kind: OperatorKind::Sum,
                    iterations,
                    work: meter.since(&work_start),
                });
            }
            return Ok(SumResult {
                bounds: Bounds::new(lo_sum.min(hi_sum), hi_sum.max(lo_sum)),
                iterations,
                stopped_at_floor: false,
            });
        }

        // Candidates: every object that can still be refined; benefit is the
        // paper's wᵢ[(estLᵢ − Lᵢ) + (Hᵢ − estHᵢ)], with each term clamped so
        // a wayward estimate cannot produce negative benefit.
        let mut candidates = Vec::new();
        for (i, o) in objs.iter().enumerate() {
            if o.converged() {
                continue;
            }
            let b = o.bounds();
            let eb = o.est_bounds();
            let reduction = (eb.lo() - b.lo()).max(0.0) + (b.hi() - eb.hi()).max(0.0);
            candidates.push(Candidate {
                index: i,
                benefit: weights[i] * reduction,
                est_cpu: o.est_cpu(),
                width: b.width(),
            });
        }
        if candidates.is_empty() {
            // Every object at its stopping condition: the floor.
            if observer.is_enabled() {
                observer.on_operator_end(&OperatorEndRecord {
                    kind: OperatorKind::Sum,
                    iterations,
                    work: meter.since(&work_start),
                });
            }
            return Ok(SumResult {
                bounds: Bounds::new(lo_sum.min(hi_sum), hi_sum.max(lo_sum)),
                iterations,
                stopped_at_floor: true,
            });
        }
        meter.charge_choose(candidates.len() as Work);
        let pick = config
            .policy
            .pick_traced(&candidates, observer)
            .expect("candidates is non-empty");
        let chosen = candidates[pick].index;

        if iterations >= config.iteration_limit {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        }
        let (est_cpu, snapshot) = if observer.is_enabled() {
            (objs[chosen].est_cpu(), meter.snapshot())
        } else {
            (0, WorkBreakdown::default())
        };
        let before = objs[chosen].bounds();
        let after = objs[chosen].iterate(meter);
        iterations += 1;
        if observer.is_enabled() {
            observe_iteration(
                observer, chosen, iterations, before, after, est_cpu, meter, &snapshot,
            );
        }
        if after == before && !objs[chosen].converged() {
            return Err(VaoError::IterationLimitExceeded {
                limit: config.iteration_limit,
            });
        }
        // Incremental update of the running totals; resynchronized
        // periodically to cap floating-point drift.
        let w = weights[chosen];
        lo_sum += w * (after.lo() - before.lo());
        hi_sum += w * (after.hi() - before.hi());
        if iterations.is_multiple_of(1024) {
            let (l, h) = total(objs);
            lo_sum = l;
            hi_sum = h;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::ChoicePolicy;
    use crate::testkit::ScriptedObject;

    fn trio() -> Vec<ScriptedObject> {
        // Table 2 objects with convergent tails; per-step cost 4.
        vec![
            ScriptedObject::converging(&[(97.0, 101.0), (98.0, 99.0), (98.4, 98.405)], 4, 0.01),
            ScriptedObject::converging(
                &[(95.0, 103.0), (96.0, 101.0), (97.0, 99.0), (98.0, 98.005)],
                4,
                0.01,
            ),
            ScriptedObject::converging(
                &[
                    (100.0, 106.0),
                    (102.0, 104.0),
                    (102.9, 103.1),
                    (103.0, 103.005),
                ],
                4,
                0.01,
            ),
        ]
    }

    #[test]
    fn paper_section52_first_choice_is_o3() {
        // §5.2: estimated error reductions for o1, o2, o3 are 1, 1 and 4/3
        // under AVE weights (1/3 each): the VAO iterates over o3.
        // With equal weights the same ranking holds: reductions 3, 3, 4.
        let objs = trio();
        let reductions: Vec<f64> = objs
            .iter()
            .map(|o| {
                let b = o.bounds();
                let eb = o.est_bounds();
                (eb.lo() - b.lo()).max(0.0) + (b.hi() - eb.hi()).max(0.0)
            })
            .collect();
        assert_eq!(reductions, vec![3.0, 3.0, 4.0]);
        // Weighted by 1/3: 1, 1, 4/3 — exactly the paper's numbers.
        let weighted: Vec<f64> = reductions.iter().map(|r| r / 3.0).collect();
        assert!((weighted[2] - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sum_terminates_at_epsilon_not_floor() {
        let mut objs = trio();
        let mut meter = WorkMeter::new();
        // Initial total bounds: [292, 310], width 18. ε = 8 is reachable
        // after refining without full convergence.
        let res = sum_vao(
            &mut objs,
            PrecisionConstraint::new(8.0).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert!(res.bounds.width() <= 8.0);
        assert!(!res.stopped_at_floor);
        assert!(
            objs.iter().any(|o| !o.converged()),
            "ε=8 must not need full accuracy"
        );
        // True sum of converged values ≈ 98.40 + 98.00 + 103.00 = 299.4.
        assert!(res.bounds.contains(299.4));
    }

    #[test]
    fn sum_runs_to_floor_when_epsilon_is_tight() {
        let mut objs = trio();
        let mut meter = WorkMeter::new();
        // Floor = 3 * 0.01 = 0.03; converged widths are 0.005 each, so the
        // final width 0.015 meets ε = 0.03 only after full convergence.
        let res = sum_vao(
            &mut objs,
            PrecisionConstraint::new(0.03).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert!(objs.iter().all(ScriptedObject::converged));
        assert!(res.bounds.width() <= 0.03);
        // 2 + 3 + 3 refinements in total.
        assert_eq!(res.iterations, 8);
    }

    #[test]
    fn epsilon_below_weighted_floor_rejected() {
        let mut objs = trio();
        let mut meter = WorkMeter::new();
        let err = sum_vao(
            &mut objs,
            PrecisionConstraint::new(0.02).unwrap(),
            &mut meter,
        )
        .unwrap_err();
        assert!(matches!(err, VaoError::PrecisionTooTight { .. }));
    }

    #[test]
    fn heavier_weights_draw_iterations_first() {
        // Two identical objects; one weighted 10x. The first refinements
        // must all go to the heavy object.
        let script: &[(f64, f64)] = &[
            (0.0, 16.0),
            (4.0, 12.0),
            (6.0, 10.0),
            (7.0, 9.0),
            (7.5, 8.5),
            (8.0, 8.005),
        ];
        let mut objs = vec![
            ScriptedObject::converging(script, 4, 0.01),
            ScriptedObject::converging(script, 4, 0.01),
        ];
        let weights = [10.0, 1.0];
        let mut meter = WorkMeter::new();
        // Initial width: 11 * 16 = 176. Stop at 80: heavy object should do
        // the shrinking (10 * (16 - width0) >= 96 -> width0 <= 6.4).
        let res = weighted_sum_vao(
            &mut objs,
            &weights,
            PrecisionConstraint::new(80.0).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert!(res.bounds.width() <= 80.0);
        assert!(objs[0].position() >= 2, "heavy object was refined");
        assert_eq!(objs[1].position(), 0, "light object untouched");
    }

    #[test]
    fn zero_weight_objects_are_ignored_costlessly() {
        let mut objs = vec![
            ScriptedObject::converging(&[(0.0, 10.0), (4.0, 6.0), (5.0, 5.005)], 4, 0.01),
            ScriptedObject::converging(&[(0.0, 1000.0)], 4, 0.01), // wide but weightless
        ];
        let weights = [1.0, 0.0];
        let mut meter = WorkMeter::new();
        let res = weighted_sum_vao(
            &mut objs,
            &weights,
            PrecisionConstraint::new(2.0).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert!(res.bounds.width() <= 2.0);
        assert_eq!(objs[1].position(), 0, "zero-weight object never iterated");
    }

    #[test]
    fn ave_scales_sum_by_n() {
        let mut objs = trio();
        let mut meter = WorkMeter::new();
        let res = ave_vao(
            &mut objs,
            PrecisionConstraint::new(0.05).unwrap(),
            &mut meter,
        )
        .unwrap();
        // Average of ≈ (98.4, 98.0, 103.0) ≈ 99.8.
        assert!(res.bounds.contains(299.4 / 3.0));
        assert!(res.bounds.width() <= 0.05);
    }

    #[test]
    fn invalid_weights_rejected() {
        let mut objs = trio();
        let mut meter = WorkMeter::new();
        let eps = PrecisionConstraint::new(1.0).unwrap();
        let err = weighted_sum_vao(&mut objs, &[1.0, -2.0, 1.0], eps, &mut meter).unwrap_err();
        assert_eq!(
            err,
            VaoError::InvalidWeight {
                index: 1,
                weight: -2.0
            }
        );
        let err = weighted_sum_vao(&mut objs, &[1.0, f64::NAN, 1.0], eps, &mut meter).unwrap_err();
        assert!(matches!(err, VaoError::InvalidWeight { index: 1, .. }));
        let err = weighted_sum_vao(&mut objs, &[1.0, 1.0], eps, &mut meter).unwrap_err();
        assert!(matches!(err, VaoError::WeightCountMismatch { .. }));
    }

    #[test]
    fn empty_input_rejected() {
        let mut objs: Vec<ScriptedObject> = vec![];
        let mut meter = WorkMeter::new();
        let eps = PrecisionConstraint::new(1.0).unwrap();
        assert_eq!(
            sum_vao(&mut objs, eps, &mut meter).unwrap_err(),
            VaoError::EmptyInput
        );
        assert_eq!(
            ave_vao(&mut objs, eps, &mut meter).unwrap_err(),
            VaoError::EmptyInput
        );
    }

    #[test]
    fn stalled_object_yields_iteration_error() {
        // Never converges, never narrows enough for ε.
        let mut objs = vec![ScriptedObject::converging(
            &[(0.0, 10.0), (1.0, 9.0)],
            4,
            0.01,
        )];
        let mut meter = WorkMeter::new();
        let err = sum_vao(
            &mut objs,
            PrecisionConstraint::new(1.0).unwrap(),
            &mut meter,
        )
        .unwrap_err();
        assert!(matches!(err, VaoError::IterationLimitExceeded { .. }));
    }

    #[test]
    fn round_robin_policy_still_converges() {
        let mut objs = trio();
        let mut meter = WorkMeter::new();
        let mut config = AggregateConfig {
            policy: ChoicePolicy::round_robin(),
            iteration_limit: 1000,
        };
        let res = weighted_sum_vao_with(
            &mut objs,
            &[1.0, 1.0, 1.0],
            PrecisionConstraint::new(0.03).unwrap(),
            &mut config,
            &mut meter,
        )
        .unwrap();
        assert!(res.bounds.width() <= 0.03);
    }
}
